package rslpa_test

import (
	"fmt"
	"strings"
	"testing"

	"rslpa"
)

// twoBlocks builds a graph of two dense blocks with a few bridges.
func twoBlocks() *rslpa.Graph {
	g := rslpa.NewGraph()
	block := func(base uint32) {
		for i := uint32(0); i < 10; i++ {
			for j := i + 1; j < 10; j++ {
				g.AddEdge(base+i, base+j)
			}
		}
	}
	block(0)
	block(100)
	g.AddEdge(0, 100)
	return g
}

func TestDetectSequential(t *testing.T) {
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	res, err := det.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities.Len() < 2 {
		t.Fatalf("communities: %v", res.Communities.Canonical())
	}
	if res.Tau1 < res.Tau2 {
		t.Fatalf("thresholds inverted: %v < %v", res.Tau1, res.Tau2)
	}
}

func TestDetectDistributedMatchesSequential(t *testing.T) {
	g := twoBlocks()
	seq, err := rslpa.Detect(g, rslpa.Config{Seed: 9, T: 60})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	dst, err := rslpa.Detect(g, rslpa.Config{Seed: 9, T: 60, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	g.ForEachVertex(func(v uint32) {
		a, b := seq.Labels(v), dst.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d pos %d: %d vs %d", v, i, a[i], b[i])
			}
		}
	})
	r1, err := seq.Communities()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := dst.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if rslpa.NMI(r1.Communities, r2.Communities, g.NumVertices()) < 0.999 {
		t.Fatal("sequential and distributed covers differ")
	}
}

func TestDetectOverTCP(t *testing.T) {
	g := twoBlocks()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 4, T: 30, Workers: 2, TCP: true})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	if det.Labels(0) == nil {
		t.Fatal("no labels after TCP detection")
	}
}

func TestUpdateFlow(t *testing.T) {
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{Seed: 2, T: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	stats, err := det.Update([]rslpa.Edit{
		{Op: rslpa.Insert, U: 5, V: 105},
		{Op: rslpa.Delete, U: 0, V: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 || stats.Deleted != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Repicked == 0 {
		t.Fatal("update repicked nothing")
	}
	if _, err := det.Communities(); err != nil {
		t.Fatal(err)
	}
}

func TestDetectSLPA(t *testing.T) {
	c, err := rslpa.DetectSLPA(twoBlocks(), rslpa.SLPAConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() < 2 {
		t.Fatalf("SLPA cover: %v", c.Canonical())
	}
}

func TestNMIEndpoints(t *testing.T) {
	g := twoBlocks()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 5, T: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	res, err := det.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if got := rslpa.NMI(res.Communities, res.Communities, g.NumVertices()); got != 1 {
		t.Fatalf("self-NMI = %v", got)
	}
}

func TestGenerators(t *testing.T) {
	g, truth, err := rslpa.GenerateLFR(rslpa.DefaultLFR(300))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 300 || truth.Len() == 0 {
		t.Fatal("LFR generator via facade broken")
	}
	w, err := rslpa.GenerateWebGraph(rslpa.DefaultWebGraph(300))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumVertices() != 300 {
		t.Fatal("web generator via facade broken")
	}
}

func TestReadEdgeListFacade(t *testing.T) {
	g, err := rslpa.ReadEdgeList(strings.NewReader("1 2\n2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatal("facade edge list parse")
	}
}

func TestLabelsAccessor(t *testing.T) {
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{Seed: 6, T: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	if got := len(det.Labels(0)); got != 26 {
		t.Fatalf("label sequence length %d, want T+1=26", got)
	}
	if det.Labels(9999) != nil {
		t.Fatal("labels for absent vertex")
	}
}

// ExampleDetect demonstrates the basic workflow; the output is stable
// because detection is deterministic for a fixed seed.
func ExampleDetect() {
	g := rslpa.NewGraph()
	for i := uint32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			g.AddEdge(i, j) // one 5-clique
		}
	}
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 1, T: 50})
	if err != nil {
		panic(err)
	}
	defer det.Close()
	res, err := det.Communities()
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Communities.Canonical()[0]) == 5)
	// Output: true
}
