// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section V) at laptop scale. Each bench corresponds to one experiment in
// README.md's reproduction section; `go run ./cmd/repro -exp <id>` prints
// the full series, while these targets make the same measurements available
// to `go test -bench`.
//
// Sizes are deliberately small so the whole suite runs in minutes; the
// repro command's flags raise them toward the paper's scale.
package rslpa_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"rslpa/internal/cluster"
	"rslpa/internal/complexity"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
	"rslpa/internal/webgraph"
)

// Shared fixtures, built once: an LFR graph with ground truth and a
// web-graph substitute with a propagated base state.
var (
	fixOnce sync.Once
	fixLFR  *lfr.Result
	fixWeb  *graph.Graph
	fixBase *core.State // rSLPA state on fixWeb, T=100
)

const (
	benchLFRSize = 2000
	benchWebSize = 4000
	benchT       = 100
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		p := lfr.Default(benchLFRSize)
		p.AvgDeg, p.MaxDeg, p.On = 15, 50, benchLFRSize/10
		res, err := lfr.Generate(p)
		if err != nil {
			panic(err)
		}
		fixLFR = res
		g, err := webgraph.Generate(webgraph.Default(benchWebSize))
		if err != nil {
			panic(err)
		}
		fixWeb = g
		st, err := core.Run(g, core.Config{T: benchT, Seed: 1})
		if err != nil {
			panic(err)
		}
		fixBase = st
	})
}

// BenchmarkTable2WebGraphStats regenerates Table II: the statistics of the
// (substitute) web dataset.
func BenchmarkTable2WebGraphStats(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := fixWeb.ComputeStats()
		if s.Vertices != benchWebSize {
			b.Fatal("bad stats")
		}
	}
}

// BenchmarkFig7aConvergence measures one convergence point (T=200 on the
// LFR fixture): propagation plus prefix extraction, the unit of work behind
// Figure 7a.
func BenchmarkFig7aConvergence(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := core.Run(fixLFR.Graph, core.Config{T: 200, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// fig7Point is the shared unit of Figures 7b-7f: generate + detect with
// both algorithms + score. The b.Run subtests pin the swept parameter.
func fig7Point(b *testing.B, mutate func(*lfr.Params)) {
	p := lfr.Default(benchLFRSize)
	p.AvgDeg, p.MaxDeg, p.On = 15, 50, benchLFRSize/10
	mutate(&p)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		res, err := lfr.Generate(p)
		if err != nil {
			b.Fatal(err)
		}
		st, err := core.Run(res.Graph, core.Config{T: 200, Seed: p.Seed})
		if err != nil {
			b.Fatal(err)
		}
		pp, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{})
		if err != nil {
			b.Fatal(err)
		}
		sr, err := slpa.Run(res.Graph, slpa.Config{T: 100, Tau: 0.2, Seed: p.Seed})
		if err != nil {
			b.Fatal(err)
		}
		rs := nmi.Compare(pp.Cover, res.Truth, p.N)
		ss := nmi.Compare(sr.Cover, res.Truth, p.N)
		b.ReportMetric(rs, "rslpa-nmi")
		b.ReportMetric(ss, "slpa-nmi")
	}
}

func BenchmarkFig7bVaryN(b *testing.B) { fig7Point(b, func(p *lfr.Params) { p.N = benchLFRSize }) }
func BenchmarkFig7cVaryK(b *testing.B) {
	fig7Point(b, func(p *lfr.Params) { p.AvgDeg = 30; p.MaxDeg = 60 })
}
func BenchmarkFig7dVaryMu(b *testing.B) { fig7Point(b, func(p *lfr.Params) { p.Mu = 0.3 }) }
func BenchmarkFig7eVaryOm(b *testing.B) { fig7Point(b, func(p *lfr.Params) { p.Om = 4 }) }
func BenchmarkFig7fVaryOn(b *testing.B) { fig7Point(b, func(p *lfr.Params) { p.On = 3 * p.N / 10 }) }

// BenchmarkFig8StaticRuntimeSLPA measures the SLPA side of Figure 8 on the
// distributed engine: label propagation plus thresholding.
func BenchmarkFig8StaticRuntimeSLPA(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := cluster.New(cluster.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		d, err := dist.NewSLPA(eng, fixWeb, slpa.Config{T: benchT, Tau: 0.2, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			b.Fatal(err)
		}
		slpa.ExtractCover(fixWeb, d.Memories(), slpa.Config{T: benchT, Tau: 0.2})
		eng.Close()
	}
}

// BenchmarkFig8StaticRuntimeRSLPA measures the rSLPA side of Figure 8:
// label propagation (2x the iterations, per the paper) plus the full
// distributed post-processing.
func BenchmarkFig8StaticRuntimeRSLPA(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := cluster.New(cluster.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		d, err := dist.NewRSLPA(eng, fixWeb, core.Config{T: 2 * benchT, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			b.Fatal(err)
		}
		if _, err := dist.Postprocess(eng, d, postprocess.Config{}); err != nil {
			b.Fatal(err)
		}
		eng.Close()
	}
}

// BenchmarkPostprocessWireBytes measures the distributed post-processing on
// the fig8-scale LFR fixture and reports its wire cost next to the cost of
// the naive protocol it replaced (one fixed 17-byte message per label per
// boundary pair plus an all-to-master weight funnel). The CI bench-smoke
// job archives these counters as BENCH_postprocess.json.
func BenchmarkPostprocessWireBytes(b *testing.B) {
	fixtures(b)
	const workers = 4
	const T = 2 * benchT // rSLPA runs 2x the SLPA iterations, per the paper
	g := fixLFR.Graph

	// The replaced protocol (per-label shipping + all-to-master weight
	// funnel), modeled by the same helper the regression test uses.
	naive := dist.NaivePostprocessBytes(g, cluster.Partitioner{P: workers}, T)

	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng, err := cluster.New(cluster.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		d, err := dist.NewRSLPA(eng, g, core.Config{T: T, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			b.Fatal(err)
		}
		if _, err := dist.Postprocess(eng, d, postprocess.Config{}); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(naive), "wire-bytes-before")
		b.ReportMetric(float64(d.LastPostprocess.Bytes), "wire-bytes-after")
		b.ReportMetric(float64(naive)/float64(d.LastPostprocess.Bytes), "reduction-x")
		eng.Close()
	}
}

// benchFig9 measures one Figure 9 point: incremental repair after a batch
// of the given size on the web fixture.
func benchFig9(b *testing.B, batchSize int) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := fixBase.Clone()
		batch, err := dynamic.Batch(st.Graph(), batchSize, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats := st.Update(batch)
		b.ReportMetric(float64(stats.Touched), "touched")
	}
}

func BenchmarkFig9IncrementalBatch100(b *testing.B)   { benchFig9(b, 100) }
func BenchmarkFig9IncrementalBatch1000(b *testing.B)  { benchFig9(b, 1000) }
func BenchmarkFig9IncrementalBatch10000(b *testing.B) { benchFig9(b, 10000) }

// BenchmarkFig9Scratch is Figure 9's from-scratch baseline: rerunning
// Algorithm 1 on the updated graph.
func BenchmarkFig9Scratch(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(fixWeb, core.Config{T: benchT, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkComplexityModel validates the Section IV-D cost model: the
// measured update volume against η̂ (reported as custom metrics).
func BenchmarkComplexityModel(b *testing.B) {
	fixtures(b)
	stats := fixWeb.ComputeStats()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := fixBase.Clone()
		batch, err := dynamic.Batch(st.Graph(), 1000, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		us := st.Update(batch)
		m := complexity.Model{V: stats.Vertices, E: stats.Edges, T: benchT, Md: us.Deleted, Ma: us.Inserted}
		b.ReportMetric(float64(us.Touched), "measured")
		b.ReportMetric(m.EtaHat(), "predicted")
	}
}

// BenchmarkAblationMessages reports the per-iteration message counts of
// both algorithms on the distributed engine (Section III-A's O(|V|) vs
// O(|E|) claim).
func BenchmarkAblationMessages(b *testing.B) {
	fixtures(b)
	const T = 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		engR, err := cluster.New(cluster.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		dr, err := dist.NewRSLPA(engR, fixWeb, core.Config{T: T, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := dr.Propagate(); err != nil {
			b.Fatal(err)
		}
		engS, err := cluster.New(cluster.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := dist.NewSLPA(engS, fixWeb, slpa.Config{T: T, Tau: 0.2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := ds.Propagate(); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(dr.PropagateStats.Messages/T), "rslpa-msgs/iter")
		b.ReportMetric(float64(ds.PropagateStats.Messages/T), "slpa-msgs/iter")
		engR.Close()
		engS.Close()
	}
}

// BenchmarkAblationWeightMetric compares the two weight definitions'
// extraction quality (see README.md's post-processing notes).
func BenchmarkAblationWeightMetric(b *testing.B) {
	fixtures(b)
	st, err := core.Run(fixLFR.Graph, core.Config{T: 200, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, metric := range []postprocess.WeightMetric{postprocess.Intersection, postprocess.SameLabelProbability} {
			pp, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{Metric: metric})
			if err != nil {
				b.Fatal(err)
			}
			score := nmi.Compare(pp.Cover, fixLFR.Truth, benchLFRSize)
			if metric == postprocess.Intersection {
				b.ReportMetric(score, "intersection-nmi")
			} else {
				b.ReportMetric(score, "product-nmi")
			}
		}
	}
}

// BenchmarkAblationTauSweep compares the exact τ1 sweep with the paper's
// 0.001-grid enumeration.
func BenchmarkAblationTauSweep(b *testing.B) {
	fixtures(b)
	st, err := core.Run(fixLFR.Graph, core.Config{T: 200, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	edges := postprocess.EdgeWeights(st.Graph(), st.Labels, postprocess.Intersection)
	b.Run("ExactSweep", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := postprocess.ExtractFromWeights(st.Graph(), edges, postprocess.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Grid0.001", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := postprocess.ExtractFromWeights(st.Graph(), edges, postprocess.Config{GridStep: 0.001}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// Micro-benchmarks for the core building blocks.

func BenchmarkPropagateSequential(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(fixWeb, core.Config{T: 20, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeWeights(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		postprocess.EdgeWeights(fixBase.Graph(), fixBase.Labels, postprocess.Intersection)
	}
}

func BenchmarkNMI(b *testing.B) {
	fixtures(b)
	st, err := core.Run(fixLFR.Graph, core.Config{T: 100, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	pp, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nmi.Compare(pp.Cover, fixLFR.Truth, benchLFRSize)
	}
}

func BenchmarkLFRGenerate(b *testing.B) {
	p := lfr.Default(benchLFRSize)
	p.AvgDeg, p.MaxDeg, p.On = 15, 50, benchLFRSize/10
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i)
		if _, err := lfr.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWebGraphGenerate(b *testing.B) {
	p := webgraph.Default(benchWebSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Seed = uint64(i + 1)
		if _, err := webgraph.Generate(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdate sweeps batch size × T for the distributed incremental
// Update at P=4 on the web fixture, reporting the sparse correction
// schedule's actual supersteps (rounds-run) against the fixed three-
// rounds-per-level schedule's budget (rounds-dense = 1+3T, what every
// Update paid before idle-level skipping): small batches dirty few levels
// and collapse most of the budget, large batches converge to dense but
// never exceed it. The CI bench-smoke job archives these counters as
// BENCH_update.json, so the rounds-per-Update trend is tracked per PR.
func BenchmarkUpdate(b *testing.B) {
	fixtures(b)
	for _, T := range []int{50, 200} {
		for _, batchSize := range []int{2, 100} {
			b.Run(fmt.Sprintf("T=%d/batch=%d", T, batchSize), func(b *testing.B) {
				eng, err := cluster.New(cluster.Config{Workers: 4})
				if err != nil {
					b.Fatal(err)
				}
				defer eng.Close()
				d, err := dist.NewRSLPA(eng, fixWeb, core.Config{T: T, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				if err := d.Propagate(); err != nil {
					b.Fatal(err)
				}
				dense := 1 + 3*T
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					batch, err := dynamic.Batch(d.Graph(), batchSize, uint64(i+1))
					if err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
					stats, err := d.Update(batch)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(stats.RoundsRun), "rounds-run")
					b.ReportMetric(float64(stats.LevelsSkipped), "levels-skipped")
					b.ReportMetric(float64(dense), "rounds-dense")
					if stats.RoundsRun > 0 {
						b.ReportMetric(float64(dense)/float64(stats.RoundsRun), "reduction-x")
					}
				}
			})
		}
	}
}

// BenchmarkCheckpointSaveLoad measures shard-parallel checkpointing at
// P=4 on the web fixture: save wall time (each worker encodes its shard
// concurrently, the master concatenates), checkpoint size, load wall time
// (records resharded through the loading engine's owner map), and the wire
// bytes the snapshot gather moved. The CI bench-smoke job archives these
// counters as BENCH_checkpoint.json.
func BenchmarkCheckpointSaveLoad(b *testing.B) {
	fixtures(b)
	const workers = 4
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := cluster.New(cluster.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		d, err := dist.NewRSLPA(eng, fixWeb, core.Config{T: benchT, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		var buf bytes.Buffer
		saveStart := time.Now()
		if err := d.Save(&buf); err != nil {
			b.Fatal(err)
		}
		saveMS := float64(time.Since(saveStart).Microseconds()) / 1000

		loadStart := time.Now()
		c, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		eng2, err := cluster.New(cluster.Config{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dist.NewRSLPAFromCheckpoint(eng2, c); err != nil {
			b.Fatal(err)
		}
		loadMS := float64(time.Since(loadStart).Microseconds()) / 1000

		b.ReportMetric(saveMS, "save-ms")
		b.ReportMetric(loadMS, "load-ms")
		b.ReportMetric(float64(buf.Len()), "checkpoint-bytes")
		b.ReportMetric(float64(d.LastCheckpoint.Bytes), "gather-wire-bytes")
		eng2.Close()
		eng.Close()
	}
}
