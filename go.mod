module rslpa

go 1.24
