package rslpa

import (
	"fmt"
	"io"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/graph"
	"rslpa/internal/nmi"
)

// This file extends the facade with the operational features a deployed
// incremental-detection service needs: state checkpointing, in-process
// parallel detection, weighted-network binarization, and the secondary
// cover-agreement metrics.

// ReadWeightedEdgeList parses a "u v w" edge list and binarizes it by
// weight thresholding — the preprocessing the paper prescribes for applying
// rSLPA to weighted networks. Two-field lines carry an implicit weight 1.
func ReadWeightedEdgeList(r io.Reader, threshold float64) (*Graph, error) {
	return graph.ReadWeightedEdgeList(r, threshold)
}

// DetectParallel is Detect with the label propagation fanned out across
// CPU cores in-process (cores <= 0 selects GOMAXPROCS). The result is
// bit-identical to sequential Detect for the same seed. Only sequential
// (non-Workers) execution supports this mode; the returned Detector behaves
// exactly like a sequential one (Update, Communities, Save all work).
func DetectParallel(g *Graph, cfg Config, cores int) (*Detector, error) {
	cfg = cfg.withDefaults()
	if cfg.Workers > 1 {
		return nil, fmt.Errorf("rslpa: DetectParallel is in-process; use Config.Workers with Detect for the partitioned engine")
	}
	st, err := core.RunParallel(g, core.Config{T: cfg.T, Seed: cfg.Seed}, cores)
	if err != nil {
		return nil, err
	}
	return &Detector{cfg: cfg, seq: st}, nil
}

// Save checkpoints the detector's full state (graph, label matrix, pick
// provenance, epoch) so a restarted process can resume incremental
// maintenance without re-running propagation. Sequential AND distributed
// detectors are supported: a distributed detector serializes its partitions
// shard-parallel (each worker encodes its own shard concurrently, the
// master concatenates), and the resulting checkpoint is portable — it can
// be loaded back at ANY worker count and transport via LoadDetector. A
// detector restored from a checkpoint resumes Update and Communities
// bit-identically to one that never restarted.
func (d *Detector) Save(w io.Writer) error {
	if d.seq != nil {
		return d.seq.SaveCheckpoint(w)
	}
	return d.dst.Save(w)
}

// LoadDetector restores a detector from a Save checkpoint. The execution
// mode comes from cfg — Workers and TCP select the engine the restored
// state is re-partitioned onto, independent of how the checkpoint was
// saved — while T and Seed are taken from the checkpoint itself. The
// extraction configuration (thresholds, metric) also comes from cfg.
// Close the returned detector if cfg.Workers > 1.
func LoadDetector(r io.Reader, cfg Config) (*Detector, error) {
	c, err := core.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	cfg.T = c.T
	cfg.Seed = c.Seed
	if cfg.Workers <= 1 {
		st, err := c.BuildState()
		if err != nil {
			return nil, err
		}
		return &Detector{cfg: cfg, seq: st}, nil
	}
	kind := cluster.Local
	if cfg.TCP {
		kind = cluster.TCP
	}
	eng, err := cluster.New(cluster.Config{Workers: cfg.Workers, Transport: kind})
	if err != nil {
		return nil, err
	}
	dst, err := dist.NewRSLPAFromCheckpoint(eng, c)
	if err != nil {
		eng.Close()
		return nil, err
	}
	return &Detector{cfg: cfg, eng: eng, dst: dst}, nil
}

// Omega computes the Omega index between two covers — the overlapping
// generalization of the Adjusted Rand Index, sensitive to how many
// communities each vertex pair shares (which NMI is not).
func Omega(a, b *Cover, n int) float64 { return nmi.Omega(a, b, n) }

// AverageF1 computes the symmetric best-match average F1 between two
// covers (Yang & Leskovec 2013).
func AverageF1(a, b *Cover) float64 { return nmi.AverageF1(a, b) }
