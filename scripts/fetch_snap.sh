#!/usr/bin/env sh
# fetch_snap.sh [dir]
#
# Download the real SNAP ground-truth community datasets the gauntlet
# (`go run ./cmd/repro -exp snap`) validates against, into <dir>
# (default: data/snap). Files are kept gzip-compressed; the loader in
# internal/snap decompresses transparently.
#
# Integrity: SNAP does not publish checksums, so this script records a
# sha256 for each file on first download (<dir>/SHA256SUMS) and verifies
# subsequent downloads against it — trust-on-first-use. Delete the
# matching line from SHA256SUMS to accept an upstream change.
set -eu

dir=${1:-data/snap}
base=https://snap.stanford.edu/data/bigdata/communities
files="com-amazon.ungraph.txt.gz com-amazon.top5000.cmty.txt.gz \
com-dblp.ungraph.txt.gz com-dblp.top5000.cmty.txt.gz \
com-youtube.ungraph.txt.gz com-youtube.top5000.cmty.txt.gz"

mkdir -p "$dir"
sums="$dir/SHA256SUMS"
touch "$sums"

for f in $files; do
    dst="$dir/$f"
    if [ ! -f "$dst" ]; then
        echo "fetching $f"
        curl -fsSL -o "$dst.part" "$base/$f"
        mv "$dst.part" "$dst"
    fi
    have=$(sha256sum "$dst" | awk '{print $1}')
    want=$(awk -v f="$f" '$2 == f {print $1}' "$sums")
    if [ -z "$want" ]; then
        echo "$have  $f" >> "$sums"
        echo "recorded $f sha256=$have (trust-on-first-use)"
    elif [ "$have" != "$want" ]; then
        echo "ERROR: $f sha256 mismatch (have $have, want $want)" >&2
        exit 1
    else
        echo "verified $f"
    fi
done
echo "datasets ready in $dir"
