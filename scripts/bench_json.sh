#!/usr/bin/env sh
# bench_json.sh <prefix> <in> <out>
#
# Convert `go test -bench` output to a JSON array for the CI bench
# artifacts: every line whose benchmark name starts with <prefix> becomes
# {"name": ..., "iterations": ..., "<unit>": <value>, ...} with one key per
# reported metric (ns/op, custom ReportMetric units, allocs, ...). The
# result is written to <out> and echoed for the job log.
set -eu

prefix=$1
in=$2
out=$3

# The testing package's allocation units ("B/op", "allocs/op") get stable
# snake_case keys so trajectory tooling can diff them across PRs.
awk -v prefix="$prefix" 'BEGIN { printf "[" }
     $0 ~ ("^" prefix) {
       if (n++) printf ",";
       printf "{\"name\":\"%s\",\"iterations\":%s", $1, $2;
       for (i = 3; i < NF; i += 2) {
         key = $(i+1);
         if (key == "B/op") key = "bytes_per_op";
         else if (key == "allocs/op") key = "allocs_per_op";
         printf ",\"%s\":%s", key, $i;
       }
       printf "}"
     }
     END { printf "]\n" }' "$in" > "$out"
cat "$out"
