#!/usr/bin/env sh
# check_docs.sh — the CI docs gate.
#
# Fails when (a) a markdown file links to an intra-repo path that does
# not exist, or (b) a non-main package is missing its "// Package <name>"
# doc comment. Both are drift detectors: the README and docs/ reference
# files, routes and packages by path, and those references rot silently
# without a check.
set -eu

cd "$(dirname "$0")/.."
fail=0

# --- intra-repo markdown links ---
# Pull every inline "](target)" out of the tracked markdown files.
# External links (with a scheme) and pure-fragment links are skipped;
# fragments are stripped before the existence check; a leading slash is
# repo-root-relative.
for md in $(git ls-files '*.md'); do
  case $md in
    # Quotes third-party material verbatim; its links are not ours.
    SNIPPETS.md) continue ;;
  esac
  dir=$(dirname "$md")
  for target in $(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//'); do
    case $target in
      *://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}
    [ -n "$path" ] || continue
    case $path in
      /*) resolved=.$path ;;
      *) resolved=$dir/$path ;;
    esac
    if [ ! -e "$resolved" ]; then
      echo "$md: broken link: $target"
      fail=1
    fi
  done
done

# --- package doc comments ---
# Every non-main package directory must have one file opening with the
# conventional "// Package <name>" doc comment (what go doc surfaces).
for dir in . internal/*; do
  [ -d "$dir" ] || continue
  ls "$dir"/*.go >/dev/null 2>&1 || continue
  name=$(basename "$dir")
  [ "$dir" = "." ] && name=rslpa
  if ! grep -q "^// Package $name " "$dir"/*.go; then
    echo "$dir: missing '// Package $name' doc comment"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "docs check failed" >&2
fi
exit $fail
