// Socialstream simulates the paper's motivating scenario: a social network
// whose friendship graph changes continuously while an analyst wants
// up-to-date overlapping communities.
//
// An LFR benchmark graph with planted ground truth stands in for the
// network. A stream of uniform edit batches mutates it; after every batch
// the detector repairs its state incrementally, and periodically we
// "publish" communities (the paper's suggestion: handle changes
// continuously, extract communities once per hour). Incremental quality is
// verified against a from-scratch run on the final graph.
//
// Run with: go run ./examples/socialstream
package main

import (
	"fmt"
	"log"
	"time"

	"rslpa"
	"rslpa/internal/dynamic"
)

func main() {
	const n = 3000
	params := rslpa.DefaultLFR(n)
	params.AvgDeg, params.MaxDeg, params.On = 15, 50, n/10
	g, truth, err := rslpa.GenerateLFR(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d members, %d friendships, %d ground-truth circles\n",
		g.NumVertices(), g.NumEdges(), truth.Len())

	start := time.Now()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer det.Close()
	fmt.Printf("initial detection: %v\n\n", time.Since(start).Round(time.Millisecond))

	// Stream: 12 batches of 200 edits (half new friendships, half ended).
	const batches, batchSize = 12, 200
	stream := g.Clone()
	var totalInc time.Duration
	for i := 0; i < batches; i++ {
		batch, err := dynamic.Batch(stream, batchSize, uint64(1000+i))
		if err != nil {
			log.Fatal(err)
		}
		stream.Apply(batch)

		t0 := time.Now()
		stats, err := det.Update(batch)
		if err != nil {
			log.Fatal(err)
		}
		inc := time.Since(t0)
		totalInc += inc
		fmt.Printf("batch %2d: %3d+ %3d-  repaired %6d labels in %8v\n",
			i+1, stats.Inserted, stats.Deleted, stats.Touched, inc.Round(time.Microsecond))

		if (i+1)%4 == 0 { // publish every 4th batch
			res, err := det.Communities()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  published: %d communities (%d strong, %d weak memberships), NMI vs truth %.3f\n",
				res.Communities.Len(), res.Strong, res.Weak,
				rslpa.NMI(res.Communities, truth, n))
		}
	}

	// Sanity: an analyst re-running from scratch on the final graph gets
	// communities of the same quality — incremental lost nothing.
	t0 := time.Now()
	fresh, err := rslpa.Detect(stream, rslpa.Config{Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	defer fresh.Close()
	scratchTime := time.Since(t0)
	incRes, _ := det.Communities()
	freshRes, err := fresh.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental repair averaged %v per batch; re-detecting from scratch costs %v per refresh\n",
		(totalInc / batches).Round(time.Millisecond), scratchTime.Round(time.Millisecond))
	fmt.Printf("quality: incremental NMI %.3f vs from-scratch NMI %.3f (vs ground truth)\n",
		rslpa.NMI(incRes.Communities, truth, n), rslpa.NMI(freshRes.Communities, truth, n))
}
