// Socialstream runs the paper's motivating scenario as a live service: a
// social network whose friendship graph changes continuously while many
// clients want up-to-date overlapping communities.
//
// An LFR benchmark graph with planted ground truth stands in for the
// network. Four producer goroutines race edit streams into the Service's
// bounded queue; the service coalesces them into canonical batches and
// repairs the detection state incrementally; four reader goroutines query
// communities and memberships the whole time, always answered from a
// consistent epoch snapshot that never blocks maintenance. The service
// checkpoints itself as it goes, and at the end the example restarts from
// that checkpoint and verifies the restored state is bit-identical.
//
// A read-only follower tails the writer over HTTP the whole time: it
// bootstraps from the writer's checkpoint, replays the replication feed
// batch by batch, and — because batch replay is deterministic — converges
// to the writer's exact state, bit for bit, at every epoch it publishes.
//
// Evolution tracking is on: after each published epoch the service diffs
// the community set against the previous one and journals birth, death,
// merge, split, grow, shrink and continue events under stable lineage
// IDs, served at GET /events. The example tallies the event kinds at the
// end — the visible life-cycle of the network's circles under churn.
//
// Run with: go run ./examples/socialstream
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rslpa"
	"rslpa/internal/dynamic"
	"rslpa/internal/replica"
)

func main() {
	const n = 3000
	params := rslpa.DefaultLFR(n)
	params.AvgDeg, params.MaxDeg, params.On = 15, 50, n/10
	g, truth, err := rslpa.GenerateLFR(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social network: %d members, %d friendships, %d ground-truth circles\n",
		g.NumVertices(), g.NumEdges(), truth.Len())

	start := time.Now()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial detection: %v\n", time.Since(start).Round(time.Millisecond))

	dir, err := os.MkdirTemp("", "socialstream")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "service.ckpt")

	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{
		MaxBatch:        200,
		FlushInterval:   20 * time.Millisecond,
		CheckpointPath:  ckpt,
		CheckpointEvery: 4,
		JournalDepth:    64,
		EvolutionDepth:  64,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The read tier: expose the writer over HTTP and attach a follower
	// that bootstraps from its checkpoint and tails its feed while the
	// stream below runs.
	writerSrv := httptest.NewServer(svc.Handler())
	defer writerSrv.Close()
	follower, err := replica.New(replica.Options{
		WriterURL:      writerSrv.URL,
		PollInterval:   5 * time.Millisecond,
		EvolutionDepth: 64,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer follower.Close()
	fmt.Printf("follower attached to %s at epoch %d\n", writerSrv.URL, follower.Snapshot().Epoch())

	// The edit stream: 12 batches of 200 edits (half new friendships,
	// half ended), generated against the evolving graph up front so the
	// producers can race them in concurrently.
	const batches, batchSize = 12, 200
	evolving := g.Clone()
	stream, err := dynamic.Stream(evolving, batchSize, batches, 1000)
	if err != nil {
		log.Fatal(err)
	}
	var edits []rslpa.Edit
	for _, b := range stream {
		edits = append(edits, b...)
	}

	// Four producers push interleaved slices of the stream; four readers
	// query concurrently, each from whatever consistent epoch is current.
	const producers, readers = 4, 4
	var (
		pwg, rwg   sync.WaitGroup
		stop       = make(chan struct{})
		queryCount atomic.Uint64
		epochsSeen sync.Map
	)
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := svc.Snapshot()
				epochsSeen.Store(sn.Epoch(), true)
				v := uint32(rng.Intn(n))
				sn.Labels(v) // label reads are a few ns: plain loads from the frozen matrix
				if rng.Intn(200) == 0 {
					// Membership pays for the (per-snapshot memoized)
					// community extraction on first touch.
					if member, err := sn.Membership(v); err == nil && rng.Intn(20) == 0 {
						fmt.Printf("  reader %d @epoch %d: member %d is in %d circles\n",
							r, sn.Epoch(), v, len(member))
					}
				}
				queryCount.Add(1)
			}
		}(r)
	}
	streamStart := time.Now()
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := p; i < len(edits); i += producers {
				if err := svc.Submit(edits[i]); err != nil {
					log.Print(err)
					return
				}
			}
		}(p)
	}
	pwg.Wait()
	if err := svc.Drain(); err != nil {
		log.Fatal(err)
	}
	streamed := time.Since(streamStart)
	close(stop)
	rwg.Wait()

	st := svc.Stats()
	var epochs int
	epochsSeen.Range(func(any, any) bool { epochs++; return true })
	fmt.Printf("\nstreamed %d edits in %v through %d producers: %d batches applied, %d edits coalesced away\n",
		st.SubmittedEdits, streamed.Round(time.Millisecond), producers, st.Batches, st.CoalescedEdits)
	fmt.Printf("readers issued %d queries across %d distinct epochs while maintenance ran\n",
		queryCount.Load(), epochs)
	fmt.Printf("update latency: last %dµs, mean %dµs/batch\n",
		st.LastUpdateMicros, st.TotalUpdateMicros/int64(st.Batches))

	res, epoch, err := svc.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published @epoch %d: %d communities (%d strong, %d weak memberships), NMI vs truth %.3f\n",
		epoch, res.Communities.Len(), res.Strong, res.Weak,
		rslpa.NMI(res.Communities, truth, n))

	// The evolution journal: how the circles changed, epoch over epoch,
	// straight from the writer's GET /events.
	resp, err := http.Get(writerSrv.URL + "/events?from=0&max=1024")
	if err != nil {
		log.Fatal(err)
	}
	var evj struct {
		Events []struct {
			Epoch   uint64 `json:"epoch"`
			Kind    string `json:"kind"`
			Lineage uint64 `json:"lineage"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&evj); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	kinds := map[string]int{}
	lineages := map[uint64]bool{}
	for _, ev := range evj.Events {
		kinds[ev.Kind]++
		lineages[ev.Lineage] = true
	}
	fmt.Printf("evolution journal: %d events over %d lineages —", len(evj.Events), len(lineages))
	for _, k := range []string{"birth", "death", "merge", "split", "grow", "shrink", "continue"} {
		if kinds[k] > 0 {
			fmt.Printf(" %d %s", kinds[k], k)
		}
	}
	fmt.Println()

	final := svc.Snapshot()

	// The follower converges to the writer's final epoch and serves the
	// identical state from its own snapshots.
	for follower.Stats().FollowerEpoch < final.Epoch() {
		time.Sleep(2 * time.Millisecond)
	}
	fsn := follower.Snapshot()
	for v := uint32(0); v < n; v++ {
		a, b := final.Labels(v), fsn.Labels(v)
		if len(a) != len(b) {
			log.Fatalf("follower diverged at member %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				log.Fatalf("follower diverged at member %d label %d", v, i)
			}
		}
	}
	fst := follower.Stats()
	fmt.Printf("follower check: epoch %d matches the writer bit for bit (%d feed batches replayed, lag %d, %d re-bootstraps)\n",
		fst.FollowerEpoch, fst.CatchupTotal, fst.LagBatches, fst.Rebootstraps)
	follower.Close()

	if err := svc.Close(); err != nil {
		log.Fatal(err)
	}

	// Restart from the service's own checkpoint: the restored detector
	// resumes bit-identically to the state the service closed with.
	f, err := os.Open(ckpt)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := rslpa.LoadDetector(f, rslpa.Config{})
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	defer restored.Close()
	for v := uint32(0); v < n; v++ {
		a, b := final.Labels(v), restored.Labels(v)
		if len(a) != len(b) {
			log.Fatalf("restart diverged at member %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				log.Fatalf("restart diverged at member %d label %d", v, i)
			}
		}
	}
	fmt.Printf("restart check: restored detector matches the final snapshot bit for bit (epoch %d)\n", final.Epoch())
}
