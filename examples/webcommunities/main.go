// Webcommunities reproduces the paper's real-world scenario on the
// web-graph substitute: detect topical page clusters in a large scale-free
// crawl, running label propagation on the partitioned BSP engine like the
// paper's 7-node Spark deployment.
//
// Run with: go run ./examples/webcommunities
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"rslpa"
)

func main() {
	// A scaled-down stand-in for eu-2015-tpd (see README.md's reproduction
	// section); raise N
	// to taste.
	g, err := rslpa.GenerateWebGraph(rslpa.DefaultWebGraph(12000))
	if err != nil {
		log.Fatal(err)
	}
	stats := g.ComputeStats()
	fmt.Printf("web crawl: %d pages, %d links, avg degree %.1f, max degree %d\n",
		stats.Vertices, stats.Edges, stats.AvgDegree, stats.MaxDegree)

	// Distributed detection across 4 partitions (the paper's cluster had
	// 7 workers; set Workers: 7 and TCP: true for the full simulation).
	start := time.Now()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 2018, Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer det.Close()
	fmt.Printf("distributed label propagation (T=200, 4 workers): %v\n",
		time.Since(start).Round(time.Millisecond))

	start = time.Now()
	res, err := det.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-processing: %v (τ1=%.3f τ2=%.3f)\n",
		time.Since(start).Round(time.Millisecond), res.Tau1, res.Tau2)

	sizes := res.Communities.Sizes()
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	top := sizes
	if len(top) > 10 {
		top = top[:10]
	}
	covered := res.Communities.CoveredVertices()
	overlapping, maxM := res.Communities.OverlappingVertices()
	fmt.Printf("%d communities (%d strong); %d/%d pages covered, %d in several communities (max %d)\n",
		res.Communities.Len(), res.Strong, covered, stats.Vertices, overlapping, maxM)
	fmt.Printf("largest communities: %v\n", top)
}
