// Quickstart: detect overlapping communities in a small two-community
// graph, then update the graph incrementally and watch the communities
// change — the complete public-API workflow in ~60 lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rslpa"
)

func main() {
	// Two dense cliques bridged by vertex 4, which belongs a bit to both
	// — the canonical overlapping-community picture from the paper's
	// introduction (a person shared between two social circles).
	g := rslpa.NewGraph()
	clique := func(vs ...uint32) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				g.AddEdge(vs[i], vs[j])
			}
		}
	}
	clique(0, 1, 2, 3, 4, 5)
	clique(7, 8, 9, 10, 11, 12)
	// The bridge vertex 6 has three friends in each circle: similar
	// enough to both for a weak membership, too loose for a strong one.
	for _, u := range []uint32{0, 1, 2, 7, 8, 9} {
		g.AddEdge(6, u)
	}

	// On graphs this tiny we pin the extraction thresholds; the automatic
	// selection (entropy maximization + the min-max rule) is designed for
	// real-sized graphs — see examples/socialstream for it in action.
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 42, Tau1: 0.8, Tau2: 0.55})
	if err != nil {
		log.Fatal(err)
	}
	defer det.Close()

	res, err := det.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("thresholds: τ1=%.3f τ2=%.3f\n", res.Tau1, res.Tau2)
	for i, members := range res.Communities.Canonical() {
		fmt.Printf("community %d: %v\n", i, members)
	}

	// The graph evolves: a new member 13 joins the second circle, and the
	// bridge vertex drops a link to the first. Instead of re-running
	// detection, apply the batch incrementally (Correction Propagation).
	stats, err := det.Update([]rslpa.Edit{
		{Op: rslpa.Insert, U: 13, V: 8},
		{Op: rslpa.Insert, U: 13, V: 9},
		{Op: rslpa.Insert, U: 13, V: 10},
		{Op: rslpa.Delete, U: 6, V: 0},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental update: %d labels re-picked, %d touched, %d changed\n",
		stats.Repicked, stats.Touched, stats.Changed)

	res, err = det.Communities()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("updated communities:")
	for i, members := range res.Communities.Canonical() {
		fmt.Printf("community %d: %v\n", i, members)
	}
}
