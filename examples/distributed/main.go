// Distributed demonstrates that the whole pipeline — propagation,
// incremental updates, post-processing — runs over a real network stack:
// the workers exchange every message through loopback TCP sockets, and the
// example verifies the result is bit-identical to the sequential run while
// reporting the wire traffic.
//
// Run with: go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"rslpa"
	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/dynamic"
)

func main() {
	g, err := rslpa.GenerateWebGraph(rslpa.DefaultWebGraph(2000))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{T: 100, Seed: 5}
	fmt.Printf("graph: %d vertices, %d edges; engine: 5 workers over loopback TCP\n",
		g.NumVertices(), g.NumEdges())

	// Sequential reference.
	seq, err := core.Run(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The same computation over TCP.
	eng, err := cluster.New(cluster.Config{Workers: 5, Transport: cluster.TCP})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dist.NewRSLPA(eng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation: %d rounds, %d messages, %.2f MB on the wire\n",
		d.PropagateStats.Rounds, d.PropagateStats.Messages,
		float64(d.PropagateStats.Bytes)/(1<<20))

	// An incremental batch, also over TCP.
	batch, err := dynamic.Batch(g, 500, 99)
	if err != nil {
		log.Fatal(err)
	}
	seqStats := seq.Update(batch)
	distStats, err := d.Update(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: %d edits; correction propagation moved %d messages in %d rounds\n",
		len(batch), d.LastUpdate.Messages, d.LastUpdate.Rounds)

	// Verify equivalence with the sequential implementation.
	mismatches := 0
	g2 := seq.Graph()
	g2.ForEachVertex(func(v uint32) {
		a, b := seq.Labels(v), d.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				mismatches++
				break
			}
		}
	})
	fmt.Printf("sequential repicked %d labels, distributed %d; label matrices identical: %v\n",
		seqStats.Repicked, distStats.Repicked, mismatches == 0)
	if mismatches > 0 {
		log.Fatalf("%d vertices differ between sequential and TCP-distributed state", mismatches)
	}
}
