// Distributed demonstrates that the whole pipeline — propagation,
// incremental updates, post-processing — runs over a real network stack:
// the workers exchange every message through loopback TCP sockets, and the
// example verifies the result is bit-identical to the sequential run while
// reporting the wire traffic.
//
// Run with: go run ./examples/distributed
package main

import (
	"bytes"
	"fmt"
	"log"

	"rslpa"
	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/dynamic"
	"rslpa/internal/postprocess"
)

func main() {
	g, err := rslpa.GenerateWebGraph(rslpa.DefaultWebGraph(2000))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.Config{T: 100, Seed: 5}
	fmt.Printf("graph: %d vertices, %d edges; engine: 5 workers over loopback TCP\n",
		g.NumVertices(), g.NumEdges())

	// Sequential reference.
	seq, err := core.Run(g, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The same computation over TCP.
	eng, err := cluster.New(cluster.Config{Workers: 5, Transport: cluster.TCP})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	d, err := dist.NewRSLPA(eng, g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("propagation: %d rounds, %d messages, %.2f MB on the wire\n",
		d.PropagateStats.Rounds, d.PropagateStats.Messages,
		float64(d.PropagateStats.Bytes)/(1<<20))

	// An incremental batch, also over TCP.
	batch, err := dynamic.Batch(g, 500, 99)
	if err != nil {
		log.Fatal(err)
	}
	seqStats := seq.Update(batch)
	distStats, err := d.Update(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update: %d edits; correction propagation moved %d messages in %d rounds\n",
		len(batch), d.LastUpdate.Messages, d.LastUpdate.Rounds)

	// Post-processing, also over TCP: RLE-shipped sequences, tree-reduced
	// thresholds, and a partitioned τ₁ sweep.
	dp, err := dist.Postprocess(eng, d, postprocess.Config{})
	if err != nil {
		log.Fatal(err)
	}
	sp, err := postprocess.Extract(seq.Graph(), seq.Labels, postprocess.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("postprocess: τ1=%.4f τ2=%.4f, %d strong communities, %d weak memberships\n",
		dp.Tau1, dp.Tau2, dp.Strong, dp.Weak)

	// Checkpoint the distributed detector: every worker serializes its own
	// shard concurrently and the blobs cross the same TCP sockets to the
	// master, so a deployment can restart without re-propagating. The
	// checkpoint is portable across worker counts — restore it onto a
	// 2-worker in-memory engine and verify nothing changed.
	var ckpt bytes.Buffer
	if err := d.Save(&ckpt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint: %.2f MB saved shard-parallel over TCP\n", float64(ckpt.Len())/(1<<20))
	c, err := core.ReadCheckpoint(bytes.NewReader(ckpt.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	eng2, err := cluster.New(cluster.Config{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng2.Close()
	restored, err := dist.NewRSLPAFromCheckpoint(eng2, c)
	if err != nil {
		log.Fatal(err)
	}
	restoredOK := true
	d.Graph().ForEachVertex(func(v uint32) {
		a, b := d.Labels(v), restored.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				restoredOK = false
				return
			}
		}
	})
	fmt.Printf("checkpoint restored at P=2: bit-identical: %v\n", restoredOK)
	if !restoredOK {
		log.Fatal("restored detector differs from the saved one")
	}

	// Per-phase wire cost: the engine meters every phase separately, which
	// is where the RLE + tree-reduce byte reduction shows up.
	fmt.Printf("\n%-14s %-10s %-12s %s\n", "phase", "rounds", "messages", "wire bytes")
	phase := func(name string, s cluster.Stats) {
		fmt.Printf("%-14s %-10d %-12d %d\n", name, s.Rounds, s.Messages, s.Bytes)
	}
	phase("propagate", d.PropagateStats)
	phase("update", d.LastUpdate)
	phase("postprocess", d.LastPostprocess)
	phase("checkpoint", d.LastCheckpoint)

	// Verify equivalence with the sequential implementation.
	mismatches := 0
	g2 := seq.Graph()
	g2.ForEachVertex(func(v uint32) {
		a, b := seq.Labels(v), d.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				mismatches++
				break
			}
		}
	})
	fmt.Printf("\nsequential repicked %d labels, distributed %d; label matrices identical: %v\n",
		seqStats.Repicked, distStats.Repicked, mismatches == 0)
	if mismatches > 0 {
		log.Fatalf("%d vertices differ between sequential and TCP-distributed state", mismatches)
	}
	if dp.Tau1 != sp.Tau1 || dp.Tau2 != sp.Tau2 || dp.Entropy != sp.Entropy {
		log.Fatalf("distributed extraction (τ1=%v τ2=%v) differs from sequential (τ1=%v τ2=%v)",
			dp.Tau1, dp.Tau2, sp.Tau1, sp.Tau2)
	}
	fmt.Println("distributed extraction bit-identical to sequential: true")
}
