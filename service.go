package rslpa

import (
	"log/slog"
	"net/http"
	"time"

	"rslpa/internal/graph"
	"rslpa/internal/obs"
	"rslpa/internal/postprocess"
	"rslpa/internal/stream"
)

// This file is the facade over internal/stream: a long-running detection
// service that ingests concurrent edit streams, coalesces them into
// canonical update batches, and serves snapshot-consistent community
// queries while maintenance runs.

// ServiceOptions configures a Service; the zero value selects defaults.
type ServiceOptions struct {
	// QueueCapacity bounds the ingest queue in edits; Submit blocks while
	// it is full (backpressure). Default 4096.
	QueueCapacity int
	// MaxBatch flushes the pending batch at this many net edits.
	// Default 512.
	MaxBatch int
	// FlushInterval flushes partial batches at least this often.
	// Default 100ms.
	FlushInterval time.Duration
	// CheckpointPath, when set, checkpoints the detector to this file
	// (atomic tmp+rename) every CheckpointEvery batches and on Close; a
	// restarted process resumes via LoadDetector + NewService.
	CheckpointPath string
	// CheckpointEvery is the number of batches between checkpoints.
	// Default 16.
	CheckpointEvery int
	// JournalDepth, when positive, retains the last JournalDepth applied
	// canonical batches plus an in-memory checkpoint and serves them over
	// the HTTP handler as GET /feed and GET /checkpoint, so read-only
	// follower replicas (internal/replica, `rslpa serve -follow`) can
	// bootstrap and tail this writer. Clamped to at least CheckpointEvery;
	// zero disables the feed.
	JournalDepth int
	// EvolutionDepth, when positive, tracks how communities evolve across
	// epochs: after each publish the new snapshot's community set is
	// diffed against the previous one (stable Jaccard matching), the
	// changes are classified (birth, death, merge, split, grow, shrink,
	// continue) under stable lineage IDs, and the last EvolutionDepth
	// epochs of events are served over the HTTP handler as GET /events,
	// GET /community/{id}/history and GET /communities?epoch=E. Zero
	// disables evolution tracking.
	EvolutionDepth int
	// Logger, when non-nil, receives structured operational events
	// (startup, flush and checkpoint failures, shutdown). Nil discards.
	Logger *slog.Logger
}

// ServiceStats is a point-in-time reading of a Service's operational
// counters (queue depth, batch and latency counters, cumulative update
// work).
type ServiceStats = stream.Stats

// Service runs a Detector as an always-on streaming detection service:
// any number of goroutines Submit edge edits (bounded queue, blocking
// backpressure), a single maintenance goroutine coalesces them into
// canonical batches and applies them through the detector's incremental
// Update, and queries are answered lock-free from an immutable
// epoch-versioned Snapshot swapped in after every batch — readers never
// block maintenance and always see a complete, single-epoch state.
//
// The service owns the detector: do not call its methods while the
// service runs, and Close the service (which also closes the detector)
// when done. Snapshots remain valid and queryable after Close.
type Service struct {
	inner *stream.Service
	det   *Detector

	// Observability plumbing (internal/obs types stay internal; they are
	// reachable through Handler's /metrics and /debug/batches routes and
	// through DebugHandler).
	reg  *obs.Registry
	ring *obs.TraceRing
}

// canonDetector hands the service's batches straight to the underlying
// engine: the coalescer already emits canonical batches, so routing them
// through Detector.Update would only re-canonicalize a fixed point.
type canonDetector struct{ *Detector }

func (d canonDetector) Update(batch []Edit) (UpdateStats, error) {
	return d.applyCanonical(batch)
}

// NewService starts a Service over det. The extraction configuration
// (thresholds, metric) is taken from the detector's Config, so snapshot
// queries return exactly what det.Communities would.
//
// Every service is born instrumented: a metrics registry (Prometheus
// text exposition at GET /metrics) and a per-batch pipeline trace ring
// (GET /debug/batches) are created internally and wired through the
// maintenance loop. The hot-path cost is a handful of atomic adds per
// batch — see BenchmarkObsOverhead in internal/stream.
func NewService(det *Detector, opts ServiceOptions) (*Service, error) {
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(0, 0)
	inner, err := stream.New(canonDetector{det}, stream.Options{
		QueueCapacity: opts.QueueCapacity,
		MaxBatch:      opts.MaxBatch,
		FlushInterval: opts.FlushInterval,
		Extraction: postprocess.Config{
			Tau1:   det.cfg.Tau1,
			Tau2:   det.cfg.Tau2,
			Metric: det.cfg.Metric,
		},
		CheckpointPath:  opts.CheckpointPath,
		CheckpointEvery: opts.CheckpointEvery,
		JournalDepth:    opts.JournalDepth,
		EvolutionDepth:  opts.EvolutionDepth,
		Obs:             reg,
		Trace:           ring,
		Logger:          opts.Logger,
		// Align service epochs with the detector's batch counter: a
		// detector resumed from a checkpoint starts publishing at its
		// restored epoch, so epochs are globally comparable across writer
		// restarts and between a writer and its followers.
		BaseEpoch: det.Epoch(),
	})
	if err != nil {
		return nil, err
	}
	return &Service{inner: inner, det: det, reg: reg, ring: ring}, nil
}

// Submit enqueues edge edits for application. It blocks while the ingest
// queue is full and fails once the service is closed.
func (s *Service) Submit(edits ...Edit) error { return s.inner.Submit(edits...) }

// Snapshot returns the current immutable snapshot. Holding a snapshot
// never blocks maintenance; it stays consistent forever.
func (s *Service) Snapshot() Snapshot { return Snapshot{sn: s.inner.Snapshot()} }

// Communities extracts the current snapshot's communities and reports the
// epoch it was taken at.
func (s *Service) Communities() (*Result, uint64, error) {
	sn := s.Snapshot()
	res, err := sn.Communities()
	return res, sn.Epoch(), err
}

// Drain flushes every edit enqueued before the call and returns once the
// resulting batch is applied and published — read-your-writes for a
// producer that has stopped submitting.
func (s *Service) Drain() error { return s.inner.Drain() }

// Stats returns the service's operational counters.
func (s *Service) Stats() ServiceStats { return s.inner.Stats() }

// Handler returns the HTTP+JSON front end: POST /edits, GET /communities,
// GET /vertex/{v}, GET /stats, GET /healthz, GET /readyz, GET /feed and
// GET /checkpoint (JournalDepth > 0), GET /events, GET
// /community/{id}/history and GET /evolution/state (EvolutionDepth > 0),
// GET /metrics (Prometheus text exposition), GET /debug/batches
// (per-batch pipeline traces) and GET /version. See docs/API.md for the
// full reference.
func (s *Service) Handler() http.Handler { return s.inner.Handler() }

// DebugHandler returns the debug server intended for a separate, private
// listener (`rslpa serve -debug-addr`): the net/http/pprof profile
// endpoints under /debug/pprof/, plus /metrics, /debug/batches and
// /version — so profiling and scraping never contend with (or get
// exposed alongside) the public API.
func (s *Service) DebugHandler() http.Handler { return obs.DebugMux(s.reg, s.ring) }

// Close drains the queue, applies the final batch, writes a final
// checkpoint when configured, stops maintenance, and closes the detector.
// It is idempotent and safe to call concurrently. Queries against held or
// freshly loaded snapshots keep working after Close.
func (s *Service) Close() error {
	err := s.inner.Close()
	if cerr := s.det.Close(); err == nil {
		err = cerr
	}
	return err
}

// Snapshot is an immutable, epoch-versioned view of the detection state,
// frozen atomically between update batches. All methods are safe for
// concurrent use; results are memoized per snapshot.
type Snapshot struct {
	sn *stream.Snapshot
}

// Epoch returns the number of update batches applied before this snapshot
// was taken (0 = the state the service started from).
func (s Snapshot) Epoch() uint64 { return s.sn.Epoch() }

// NumVertices reports the snapshot graph's vertex count.
func (s Snapshot) NumVertices() int { return s.sn.NumVertices() }

// NumEdges reports the snapshot graph's edge count.
func (s Snapshot) NumEdges() int { return s.sn.NumEdges() }

// NumShards reports how many fixed-size shards cover the snapshot's
// vertex ID space (snapshots are published copy-on-write, one shard at
// a time; see internal/stream).
func (s Snapshot) NumShards() int { return s.sn.NumShards() }

// ShardsRepublished reports how many shards were cloned (rather than
// shared with the previous epoch) to publish this snapshot.
func (s Snapshot) ShardsRepublished() int { return s.sn.ShardsRepublished() }

// HasVertex reports whether v is present in the snapshot.
func (s Snapshot) HasVertex(v uint32) bool { return s.sn.HasVertex(v) }

// Degree returns v's degree in the snapshot (0 if absent).
func (s Snapshot) Degree(v uint32) int { return s.sn.Degree(v) }

// UpdateStats returns the detector work of the batch that produced this
// epoch.
func (s Snapshot) UpdateStats() UpdateStats { return s.sn.UpdateStats() }

// Labels returns v's frozen label sequence (length T+1), or nil for
// absent vertices. Do not mutate the returned slice.
func (s Snapshot) Labels(v uint32) []uint32 { return s.sn.Labels(v) }

// Communities extracts the snapshot's overlapping communities. The first
// call pays for extraction; later calls (and Membership) reuse it.
func (s Snapshot) Communities() (*Result, error) {
	res, err := s.sn.Communities()
	if err != nil {
		return nil, err
	}
	return &Result{
		Communities: res.Cover,
		Tau1:        res.Tau1,
		Tau2:        res.Tau2,
		Strong:      res.Strong,
		Weak:        res.Weak,
		Entropy:     res.Entropy,
	}, nil
}

// Membership returns the indices (into Communities().Communities) of the
// communities containing v; nil for uncovered or absent vertices.
func (s Snapshot) Membership(v uint32) ([]int, error) { return s.sn.Membership(v) }

// Canonicalize reduces an edit batch to its canonical net effect against
// g: self-loops and no-op edits dropped, duplicate and mutually
// cancelling edits of one edge coalesced, survivors oriented U < V and
// sorted by edge key. Detector.Update and the Service apply exactly this
// reduction, so direct library callers and streamed producers share one
// semantics.
func Canonicalize(g *Graph, batch []Edit) []Edit { return graph.Canonicalize(g, batch) }
