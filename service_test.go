package rslpa_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rslpa"
	"rslpa/internal/dynamic"
	"rslpa/internal/evolution"
	"rslpa/internal/replica"
	"rslpa/internal/stream"
)

// labelHash folds the full label matrix (and the edge count) of a state
// into one word; two states hash equal iff their detection state is
// bit-identical over the dense ID range [0, maxID).
func labelHash(maxID uint32, edges int, labels func(uint32) []uint32) uint64 {
	h := fnv.New64a()
	word := func(x uint32) {
		h.Write([]byte{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24)})
	}
	word(uint32(edges))
	for v := uint32(0); v < maxID; v++ {
		seq := labels(v)
		word(uint32(len(seq)))
		for _, l := range seq {
			word(l)
		}
	}
	return h.Sum64()
}

func requireSameLabels(t *testing.T, maxID uint32, a, b func(uint32) []uint32) {
	t.Helper()
	for v := uint32(0); v < maxID; v++ {
		la, lb := a(v), b(v)
		if len(la) != len(lb) {
			t.Fatalf("vertex %d: label lengths %d vs %d", v, len(la), len(lb))
		}
		for i := range la {
			if la[i] != lb[i] {
				t.Fatalf("vertex %d label %d: %d vs %d", v, i, la[i], lb[i])
			}
		}
	}
}

// serviceGraph is a 200-vertex LFR graph — big enough for interesting
// batches, small enough to keep -race runs fast.
func serviceGraph(t testing.TB) *rslpa.Graph {
	t.Helper()
	params := rslpa.DefaultLFR(200)
	params.AvgDeg, params.MaxDeg = 8, 24
	g, _, err := rslpa.GenerateLFR(params)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The acceptance pin: ≥4 concurrent producers racing edits into the
// service and ≥4 concurrent readers querying it must, after drain, leave
// the detector bit-identical to a serial caller pushing the same edits
// through Detector.Update — regardless of producer interleaving, because
// coalescing canonicalizes the net batch.
func TestServiceMatchesSerialUpdate(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 40, Seed: 9}
	maxID := uint32(g.MaxVertexID())

	edits, err := dynamic.Batch(g, 200, 42)
	if err != nil {
		t.Fatal(err)
	}

	det, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// One coalesced batch: flush only at Drain.
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{MaxBatch: 1 << 20, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const producers, readers = 4, 4
	var rwg, pwg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r uint32) {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := svc.Snapshot()
				if e := sn.Epoch(); e != 0 && e != 1 {
					t.Errorf("impossible epoch %d", e)
					return
				}
				// A snapshot is always complete: every present vertex
				// has a full label sequence and extraction succeeds.
				if seq := sn.Labels(r % maxID); sn.HasVertex(r%maxID) && len(seq) != cfg.T+1 {
					t.Errorf("partial label read: %d labels", len(seq))
					return
				}
				if _, err := sn.Membership(r % maxID); err != nil {
					t.Errorf("membership: %v", err)
					return
				}
			}
		}(uint32(r))
	}
	per := len(edits) / producers
	for p := 0; p < producers; p++ {
		lo, hi := p*per, (p+1)*per
		if p == producers-1 {
			hi = len(edits)
		}
		pwg.Add(1)
		go func(chunk []rslpa.Edit) {
			defer pwg.Done()
			// Edits trickle in one at a time to maximize interleaving.
			for _, e := range chunk {
				if err := svc.Submit(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(edits[lo:hi])
	}
	// Wait for the producers only, then drain; readers keep querying
	// through the flush itself.
	pwg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rwg.Wait()

	sn := svc.Snapshot()
	if sn.Epoch() != 1 {
		t.Fatalf("epoch after drain = %d, want 1 (single coalesced batch)", sn.Epoch())
	}

	// Serial twin: same edits, one Update call, any order.
	serial, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	if _, err := serial.Update(edits); err != nil {
		t.Fatal(err)
	}
	requireSameLabels(t, maxID, sn.Labels, serial.Labels)

	got, err := sn.Communities()
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if got.Tau1 != want.Tau1 || got.Tau2 != want.Tau2 {
		t.Fatalf("thresholds: service (%v,%v) serial (%v,%v)", got.Tau1, got.Tau2, want.Tau1, want.Tau2)
	}
	a, b := got.Communities.Canonical(), want.Communities.Canonical()
	if len(a) != len(b) {
		t.Fatalf("community counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("community %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("community %d member %d: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// With deterministic batch boundaries (one producer, MaxBatch = the
// generator's batch size) the service applies exactly the serial caller's
// batches — and every snapshot a concurrent reader ever observes matches
// the serial detector at that epoch bit for bit: epochs are complete, or
// not published at all.
func TestServiceSnapshotsMatchSerialEpochs(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 30, Seed: 5}
	maxID := uint32(g.MaxVertexID())
	const batchSize, batchCount = 50, 6

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, batchSize, batchCount, 31)
	if err != nil {
		t.Fatal(err)
	}

	// Serial twin first: hash the state at every epoch.
	serial, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer serial.Close()
	wantHash := map[uint64]uint64{0: labelHash(maxID, serial.Graph().NumEdges(), serial.Labels)}
	for e, batch := range batches {
		if _, err := serial.Update(batch); err != nil {
			t.Fatal(err)
		}
		wantHash[uint64(e+1)] = labelHash(maxID, serial.Graph().NumEdges(), serial.Labels)
	}

	det, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{MaxBatch: batchSize, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	type obs struct {
		epoch uint64
		hash  uint64
	}
	const readers = 4
	observed := make([][]obs, readers)
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			var seen []obs
			last := uint64(1<<64 - 1)
			// Hash every distinct epoch the first time it appears;
			// re-hashing an already-verified epoch adds nothing.
			observe := func() {
				sn := svc.Snapshot()
				if e := sn.Epoch(); e != last {
					last = e
					seen = append(seen, obs{e, labelHash(maxID, sn.NumEdges(), sn.Labels)})
				}
			}
			observe() // at least one observation even if the stream outruns us
			for {
				select {
				case <-stop:
					observed[r] = seen
					return
				default:
				}
				observe()
			}
		}(r)
	}

	for _, batch := range batches {
		for _, e := range batch {
			if err := svc.Submit(e); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	rwg.Wait()

	sn := svc.Snapshot()
	if sn.Epoch() != batchCount {
		t.Fatalf("final epoch %d, want %d", sn.Epoch(), batchCount)
	}
	requireSameLabels(t, maxID, sn.Labels, serial.Labels)

	total := 0
	for r, seen := range observed {
		total += len(seen)
		for _, o := range seen {
			want, ok := wantHash[o.epoch]
			if !ok {
				t.Fatalf("reader %d saw epoch %d, beyond the %d applied batches", r, o.epoch, batchCount)
			}
			if o.hash != want {
				t.Fatalf("reader %d: snapshot at epoch %d does not match the serial detector at that epoch (torn or partial state)", r, o.epoch)
			}
		}
	}
	if total == 0 {
		t.Fatal("readers observed nothing")
	}
}

// Snapshot isolation under the distributed engine: readers hammer
// snapshots (labels, membership, extraction) while the BSP engine applies
// update batches concurrently. The race detector pins that queries never
// share memory with in-flight shard mutation; the assertions pin that
// every observed snapshot is complete.
func TestServiceDistributedSnapshotIsolation(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 25, Seed: 13, Workers: 3}
	maxID := uint32(g.MaxVertexID())

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, 40, 6, 63)
	if err != nil {
		t.Fatal(err)
	}

	det, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{MaxBatch: 16, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const producers, readers = 4, 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r uint32) {
			defer wg.Done()
			v := r
			for {
				select {
				case <-stop:
					return
				default:
				}
				sn := svc.Snapshot()
				if sn.HasVertex(v % maxID) {
					if seq := sn.Labels(v % maxID); len(seq) != cfg.T+1 {
						t.Errorf("vertex %d: %d labels, want %d", v%maxID, len(seq), cfg.T+1)
						return
					}
				}
				if v%5 == 0 {
					res, err := sn.Communities()
					if err != nil {
						t.Errorf("extraction at epoch %d: %v", sn.Epoch(), err)
						return
					}
					if res.Communities.Len() == 0 {
						t.Errorf("empty cover at epoch %d", sn.Epoch())
						return
					}
				}
				v += 11
			}
		}(uint32(r))
	}

	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := p; i < len(batches); i += producers {
				for _, e := range batches[i] {
					if err := svc.Submit(e); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(p)
	}
	pwg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// After drain (no updates in flight) the snapshot agrees with the
	// distributed detector's own Labels accessor.
	sn := svc.Snapshot()
	if sn.Epoch() == 0 {
		t.Fatal("no batches applied")
	}
	requireSameLabels(t, maxID, sn.Labels, det.Labels)
}

// A service restarted from its checkpoint resumes maintenance
// bit-identically to a detector that never stopped.
func TestServiceCheckpointResume(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 30, Seed: 21}
	maxID := uint32(g.MaxVertexID())
	ckpt := filepath.Join(t.TempDir(), "service.ckpt")

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, 40, 3, 17)
	if err != nil {
		t.Fatal(err)
	}

	det, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{
		MaxBatch: 1 << 20, FlushInterval: time.Hour,
		CheckpointPath: ckpt, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range batches[:2] {
		if err := svc.Submit(batch...); err != nil {
			t.Fatal(err)
		}
		if err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}

	// Restart: load the checkpoint, serve again, apply the third batch.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := rslpa.LoadDetector(f, rslpa.Config{})
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	svc2, err := rslpa.NewService(restored, rslpa.ServiceOptions{MaxBatch: 1 << 20, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if err := svc2.Submit(batches[2]...); err != nil {
		t.Fatal(err)
	}
	if err := svc2.Drain(); err != nil {
		t.Fatal(err)
	}

	// Twin that never restarted.
	twin, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	for _, batch := range batches {
		if _, err := twin.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	requireSameLabels(t, maxID, svc2.Snapshot().Labels, twin.Labels)
}

// Regression for the service-shutdown path: Detector.Close is idempotent
// and safe to call from many goroutines, racing in-flight Labels queries.
func TestDetectorCloseIdempotentConcurrent(t *testing.T) {
	for _, tcp := range []bool{false, true} {
		det, err := rslpa.Detect(twoBlocks(), rslpa.Config{T: 10, Seed: 2, Workers: 2, TCP: tcp})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		errs := make([]error, 8)
		for i := range errs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = det.Close()
			}(i)
		}
		for v := uint32(0); v < 4; v++ {
			wg.Add(1)
			go func(v uint32) {
				defer wg.Done()
				det.Labels(v) // must not race Close
			}(v)
		}
		wg.Wait()
		for i, err := range errs {
			if err != errs[0] {
				t.Fatalf("tcp=%v: Close %d returned %v, Close 0 returned %v", tcp, i, err, errs[0])
			}
		}
		if err := det.Close(); err != errs[0] {
			t.Fatalf("tcp=%v: late Close returned %v", tcp, err)
		}
	}
	// Sequential detectors: trivially idempotent.
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{T: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if det.Close() != nil || det.Close() != nil {
		t.Fatal("sequential Close not idempotent")
	}
}

// Detector.Update shares the service's canonical-batch semantics.
func TestUpdateCanonicalizesBatches(t *testing.T) {
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{T: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	stats, err := det.Update([]rslpa.Edit{
		{Op: rslpa.Insert, U: 5, V: 105},
		{Op: rslpa.Insert, U: 105, V: 5}, // duplicate, reversed
		{Op: rslpa.Delete, U: 7, V: 42},  // absent → no-op
		{Op: rslpa.Insert, U: 3, V: 3},   // self-loop
		{Op: rslpa.Insert, U: 6, V: 106}, // cancelled below
		{Op: rslpa.Delete, U: 6, V: 106},
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inserted != 1 || stats.Deleted != 0 {
		t.Fatalf("canonical stats: %+v", stats)
	}

	// Permuting a batch does not change the resulting state.
	a, err := rslpa.Detect(twoBlocks(), rslpa.Config{T: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := rslpa.Detect(twoBlocks(), rslpa.Config{T: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	batch := []rslpa.Edit{
		{Op: rslpa.Insert, U: 1, V: 101},
		{Op: rslpa.Delete, U: 0, V: 100},
		{Op: rslpa.Insert, U: 2, V: 102},
	}
	perm := []rslpa.Edit{batch[2], batch[0], batch[1]}
	if _, err := a.Update(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Update(perm); err != nil {
		t.Fatal(err)
	}
	requireSameLabels(t, 110, a.Labels, b.Labels)
}

// fetchFeed pages through a writer's replication feed starting after
// epoch from, returning every journaled batch in epoch order.
func fetchFeed(t *testing.T, base string, from uint64) []stream.FeedEntry {
	t.Helper()
	var out []stream.FeedEntry
	for {
		resp, err := http.Get(fmt.Sprintf("%s/feed?from=%d&max=1024", base, from))
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /feed?from=%d: %d: %s", from, resp.StatusCode, body)
		}
		var fr stream.FeedResponse
		if err := json.Unmarshal(body, &fr); err != nil {
			t.Fatal(err)
		}
		if len(fr.Batches) == 0 {
			return out
		}
		out = append(out, fr.Batches...)
		from = fr.Batches[len(fr.Batches)-1].Epoch
	}
}

// The read-tier correctness pin, end to end: 4 concurrent producers race
// edits into a journaling writer while a follower tails it over HTTP —
// and the writer crash-restarts from its checkpoint mid-run. Every
// snapshot the follower ever publishes at epoch E must be bit-identical
// to the writer's state at epoch E.
//
// With racing producers the writer's batch boundaries are
// nondeterministic, so the per-epoch ground truth cannot come from a
// pre-made serial batch list: it is built by replaying the writer's own
// feed — the exact canonical batches it applied — through a fresh
// detector, hashing after each epoch.
func TestFollowerMatchesWriterEpochsAcrossRestart(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 30, Seed: 13}
	maxID := uint32(g.MaxVertexID())
	opts := rslpa.ServiceOptions{
		MaxBatch: 64, FlushInterval: time.Hour,
		CheckpointPath:  filepath.Join(t.TempDir(), "writer.ckpt"),
		CheckpointEvery: 2,
		JournalDepth:    4096,
	}

	det1, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc1, err := rslpa.NewService(det1, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Stable front door: the follower keeps one writer URL across the
	// writer restart, exactly as it would behind a load balancer.
	var handler atomic.Pointer[http.Handler]
	setHandler := func(h http.Handler) { handler.Store(&h) }
	setHandler(svc1.Handler())
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*handler.Load()).ServeHTTP(w, r)
	}))
	defer front.Close()

	f, err := replica.New(replica.Options{
		WriterURL: front.URL, PollInterval: 2 * time.Millisecond,
		RetryMin: time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Observer: hash every distinct epoch the follower publishes, the
	// first time it appears.
	type obs struct {
		epoch uint64
		hash  uint64
	}
	var seen []obs
	stop := make(chan struct{})
	var owg sync.WaitGroup
	owg.Add(1)
	go func() {
		defer owg.Done()
		last := uint64(1<<64 - 1)
		for {
			sn := f.Snapshot()
			if e := sn.Epoch(); e != last {
				last = e
				seen = append(seen, obs{e, labelHash(maxID, sn.NumEdges(), sn.Labels)})
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	// produce races one phase's edits into a writer from 4 goroutines,
	// one edit at a time, then drains. Batch composition is up to the
	// scheduler; the journal records whatever the writer actually applied.
	produce := func(svc *rslpa.Service, edits []rslpa.Edit) {
		const producers = 4
		per := (len(edits) + producers - 1) / producers
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			lo, hi := p*per, min((p+1)*per, len(edits))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(chunk []rslpa.Edit) {
				defer wg.Done()
				for _, e := range chunk {
					if err := svc.Submit(e); err != nil {
						t.Error(err)
						return
					}
				}
			}(edits[lo:hi])
		}
		wg.Wait()
		if err := svc.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	phaseEdits := func(seed uint64) []rslpa.Edit {
		batches, err := dynamic.Stream(g.Clone(), 50, 6, seed)
		if err != nil {
			t.Fatal(err)
		}
		var flat []rslpa.Edit
		for _, b := range batches {
			flat = append(flat, b...)
		}
		return flat
	}

	// Phase 1, then capture the feed before tearing the writer down.
	produce(svc1, phaseEdits(71))
	e1 := svc1.Stats().Epoch
	feed1 := fetchFeed(t, front.URL, 0)
	if len(feed1) == 0 || feed1[len(feed1)-1].Epoch != e1 {
		t.Fatalf("feed ends at wrong epoch: %d entries, writer at %d", len(feed1), e1)
	}

	// Crash-restart: writer goes dark, then a new instance resumes from
	// the checkpoint Close flushed. Its BaseEpoch continues at e1, so the
	// follower sees a seamless epoch sequence.
	setHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "writer down", http.StatusServiceUnavailable)
	}))
	if err := svc1.Close(); err != nil {
		t.Fatal(err)
	}
	ckpt, err := os.Open(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	det2, err := rslpa.LoadDetector(ckpt, rslpa.Config{})
	ckpt.Close()
	if err != nil {
		t.Fatal(err)
	}
	if det2.Epoch() != e1 {
		t.Fatalf("restarted writer at epoch %d, want %d", det2.Epoch(), e1)
	}
	svc2, err := rslpa.NewService(det2, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	setHandler(svc2.Handler())

	// Phase 2 on the restarted writer.
	produce(svc2, phaseEdits(72))
	e2 := svc2.Stats().Epoch
	if e2 <= e1 {
		t.Fatalf("restarted writer did not advance: %d after %d", e2, e1)
	}
	feed2 := fetchFeed(t, front.URL, e1)
	if len(feed2) == 0 || feed2[len(feed2)-1].Epoch != e2 {
		t.Fatalf("post-restart feed ends at wrong epoch: %d entries, writer at %d", len(feed2), e2)
	}

	// Let the follower converge, then stop observing.
	deadline := time.Now().Add(30 * time.Second)
	for f.Stats().FollowerEpoch < e2 {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck: %+v", f.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	owg.Wait()

	// Ground truth: replay the writer's own canonical batches through a
	// fresh twin, hashing at every epoch.
	twin, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	wantHash := map[uint64]uint64{0: labelHash(maxID, twin.Graph().NumEdges(), twin.Labels)}
	for _, entry := range append(feed1, feed2...) {
		batch, err := entry.GraphEdits()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := twin.Update(batch); err != nil {
			t.Fatal(err)
		}
		wantHash[entry.Epoch] = labelHash(maxID, twin.Graph().NumEdges(), twin.Labels)
	}

	if len(seen) == 0 {
		t.Fatal("observer saw nothing")
	}
	for _, o := range seen {
		want, ok := wantHash[o.epoch]
		if !ok {
			t.Fatalf("follower published epoch %d, which the writer never journaled", o.epoch)
		}
		if o.hash != want {
			t.Fatalf("follower snapshot at epoch %d does not hash-match the writer at that epoch", o.epoch)
		}
	}
	sn := f.Snapshot()
	if sn.Epoch() != e2 {
		t.Fatalf("final follower epoch %d, want %d", sn.Epoch(), e2)
	}
	if got := labelHash(maxID, sn.NumEdges(), sn.Labels); got != wantHash[e2] {
		t.Fatalf("final follower state diverged from writer at epoch %d", e2)
	}
	requireSameLabels(t, maxID, sn.Labels, func(v uint32) []uint32 { return svc2.Snapshot().Labels(v) })
}

// fetchEventsPage GETs one /events page and returns the raw body next to
// the decoded envelope (the raw bytes are what the equivalence pin
// compares).
func fetchEventsPage(t *testing.T, base string, from uint64, max int) ([]byte, []evolution.Event) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/events?from=%d&max=%d", base, from, max))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/events?from=%d: %d: %s", base, from, resp.StatusCode, body)
	}
	var env struct {
		Events []evolution.Event `json:"events"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	return body, env.Events
}

// The evolution equivalence pin: a follower that bootstraps the writer's
// evolution state and replays the writer's canonical batches must serve a
// byte-identical GET /events stream — same kinds, same epochs, same
// lineage IDs — even when 4 racing producers make the writer's batch
// boundaries nondeterministic. The diff is a deterministic function of
// the snapshot sequence, and the snapshot sequence is pinned by the feed.
func TestFollowerEventsMatchWriter(t *testing.T) {
	g := serviceGraph(t)
	cfg := rslpa.Config{T: 30, Seed: 17}
	det, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{
		MaxBatch: 64, FlushInterval: time.Hour,
		JournalDepth:   4096,
		EvolutionDepth: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	writer := httptest.NewServer(svc.Handler())
	defer writer.Close()

	// Bootstrap the follower before producing, so it inherits the writer's
	// epoch-0 lineage table from GET /evolution/state and then replays
	// every diff the writer performs.
	f, err := replica.New(replica.Options{
		WriterURL: writer.URL, PollInterval: 2 * time.Millisecond,
		RetryMin: time.Millisecond, RetryMax: 20 * time.Millisecond,
		EvolutionDepth: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	follower := httptest.NewServer(f.Handler())
	defer follower.Close()

	// 4 concurrent producers race single-edit submits; batch composition
	// is whatever the scheduler produced.
	batches, err := dynamic.Stream(g.Clone(), 60, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	var flat []rslpa.Edit
	for _, b := range batches {
		flat = append(flat, b...)
	}
	const producers = 4
	per := (len(flat) + producers - 1) / producers
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		lo, hi := p*per, min((p+1)*per, len(flat))
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(chunk []rslpa.Edit) {
			defer wg.Done()
			for _, e := range chunk {
				if err := svc.Submit(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(flat[lo:hi])
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	head := svc.Stats().Epoch
	if head == 0 {
		t.Fatal("writer applied no batches")
	}

	deadline := time.Now().Add(30 * time.Second)
	for f.Stats().FollowerEpoch < head {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck: %+v", f.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Page both event journals with identical cursors; every page must be
	// byte-identical, and the walk must reach the head.
	var total int
	for from := uint64(0); ; {
		wb, wev := fetchEventsPage(t, writer.URL, from, 3)
		fb, _ := fetchEventsPage(t, follower.URL, from, 3)
		if string(wb) != string(fb) {
			t.Fatalf("events page from=%d differs:\nwriter:   %s\nfollower: %s", from, wb, fb)
		}
		if len(wev) == 0 {
			break
		}
		total += len(wev)
		from = wev[len(wev)-1].Epoch
	}
	if total == 0 {
		t.Fatal("no evolution events emitted over the run")
	}

	// Spot-check lineage histories through the same byte-equality lens.
	_, wev := fetchEventsPage(t, writer.URL, 0, 1024)
	checked := 0
	seenLineage := map[uint64]bool{}
	for _, ev := range wev {
		if seenLineage[ev.Lineage] || checked >= 5 {
			continue
		}
		seenLineage[ev.Lineage] = true
		checked++
		url := fmt.Sprintf("/community/%d/history", ev.Lineage)
		wr, err := http.Get(writer.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		wbody, _ := io.ReadAll(wr.Body)
		wr.Body.Close()
		fr, err := http.Get(follower.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		fbody, _ := io.ReadAll(fr.Body)
		fr.Body.Close()
		if wr.StatusCode != http.StatusOK || fr.StatusCode != http.StatusOK {
			t.Fatalf("history %s: writer %d, follower %d", url, wr.StatusCode, fr.StatusCode)
		}
		if string(wbody) != string(fbody) {
			t.Fatalf("history %s differs:\nwriter:   %s\nfollower: %s", url, wbody, fbody)
		}
	}
	if checked == 0 {
		t.Fatal("no lineages to spot-check")
	}
}
