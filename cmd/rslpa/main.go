// Command rslpa detects overlapping communities in dynamic graphs.
//
// Two subcommands:
//
//	rslpa detect -graph web.txt -T 200 -workers 4 -out communities.txt
//	rslpa detect -graph web.txt -algo slpa -T 100 -tau 0.2
//	rslpa serve  -graph web.txt -addr :7463 -checkpoint state.ckpt
//	rslpa serve  -follow http://writer:7463 -addr :7464
//
// detect runs one-shot detection (rSLPA by default, or the SLPA baseline,
// optionally on the distributed BSP engine); with -truth it reports NMI
// against a ground-truth cover. serve starts the streaming detection
// service: an HTTP front end that ingests edge edits and answers
// snapshot-consistent community queries while maintenance runs. With
// -follow it runs a read-only follower instead: it bootstraps from the
// writer's checkpoint, tails the writer's replication feed, and serves
// the same read endpoints from local snapshots.
//
// Invoking rslpa with flags but no subcommand behaves as detect, for
// compatibility with earlier versions.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rslpa"
	"rslpa/internal/cover"
	"rslpa/internal/obs"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "detect":
			runDetect(args[1:])
			return
		case "serve":
			runServe(args[1:])
			return
		case "version", "-version", "--version":
			printVersion()
			return
		case "help", "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: rslpa <detect|serve|version> [flags]  (run with -h after a subcommand for its flags)")
			os.Exit(2)
		}
	}
	runDetect(args) // legacy: bare flags mean detect
}

// printVersion reports the binary's build identity (module version, VCS
// revision when stamped, toolchain) — the same facts GET /version serves.
func printVersion() {
	bi := obs.Build()
	fmt.Printf("rslpa %s (%s)", bi.Version, bi.GoVersion)
	if bi.Revision != "" {
		rev := bi.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		fmt.Printf(" commit %s", rev)
		if bi.Modified {
			fmt.Print(" (dirty)")
		}
	}
	fmt.Println()
}

func runDetect(args []string) {
	fs := flag.NewFlagSet("rslpa detect", flag.ExitOnError)
	var (
		graphPath = fs.String("graph", "", "edge list input file (required)")
		algo      = fs.String("algo", "rslpa", "algorithm: rslpa or slpa")
		T         = fs.Int("T", 0, "iterations (0 = algorithm default: 200 rSLPA, 100 SLPA)")
		tau       = fs.Float64("tau", 0.2, "SLPA membership threshold")
		seed      = fs.Uint64("seed", 1, "PRNG seed")
		workers   = fs.Int("workers", 0, "rSLPA: BSP workers (0 = sequential)")
		tcp       = fs.Bool("tcp", false, "rSLPA: use loopback TCP transport")
		out       = fs.String("out", "", "communities output file (one per line)")
		truthPath = fs.String("truth", "", "ground-truth cover for NMI scoring")
	)
	fs.Parse(args)
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "rslpa: -graph is required")
		fs.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := rslpa.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	var communities *rslpa.Cover
	start := time.Now()
	switch *algo {
	case "rslpa":
		det, err := rslpa.Detect(g, rslpa.Config{T: *T, Seed: *seed, Workers: *workers, TCP: *tcp})
		if err != nil {
			fatal(err)
		}
		defer det.Close()
		propagated := time.Since(start)
		res, err := det.Communities()
		if err != nil {
			fatal(err)
		}
		communities = res.Communities
		fmt.Printf("rSLPA: propagation %v, post-processing %v (τ1=%.4f τ2=%.4f, %d strong + %d weak)\n",
			propagated.Round(time.Millisecond), time.Since(start).Round(time.Millisecond)-propagated.Round(time.Millisecond),
			res.Tau1, res.Tau2, res.Strong, res.Weak)
	case "slpa":
		c, err := rslpa.DetectSLPA(g, rslpa.SLPAConfig{T: *T, Tau: *tau, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		communities = c
		fmt.Printf("SLPA: total %v\n", time.Since(start).Round(time.Millisecond))
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	fmt.Printf("detected %d communities covering %d vertices\n",
		communities.Len(), communities.CoveredVertices())

	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			fatal(err)
		}
		truth, err := cover.Read(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NMI vs ground truth: %.4f\n", rslpa.NMI(communities, truth, g.NumVertices()))
	}
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		if err := communities.Write(of); err != nil {
			fatal(err)
		}
		fmt.Println("communities written to", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rslpa:", err)
	os.Exit(1)
}
