// Command rslpa detects overlapping communities in an edge-list graph
// using either rSLPA (default) or the SLPA baseline, optionally on the
// distributed BSP engine.
//
// Usage:
//
//	rslpa -graph web.txt -T 200 -workers 4 -out communities.txt
//	rslpa -graph web.txt -algo slpa -T 100 -tau 0.2
//
// With -truth, the NMI against a ground-truth cover is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rslpa"
	"rslpa/internal/cover"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge list input file (required)")
		algo      = flag.String("algo", "rslpa", "algorithm: rslpa or slpa")
		T         = flag.Int("T", 0, "iterations (0 = algorithm default: 200 rSLPA, 100 SLPA)")
		tau       = flag.Float64("tau", 0.2, "SLPA membership threshold")
		seed      = flag.Uint64("seed", 1, "PRNG seed")
		workers   = flag.Int("workers", 0, "rSLPA: BSP workers (0 = sequential)")
		tcp       = flag.Bool("tcp", false, "rSLPA: use loopback TCP transport")
		out       = flag.String("out", "", "communities output file (one per line)")
		truthPath = flag.String("truth", "", "ground-truth cover for NMI scoring")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "rslpa: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*graphPath)
	if err != nil {
		fatal(err)
	}
	g, err := rslpa.ReadEdgeList(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	var communities *rslpa.Cover
	start := time.Now()
	switch *algo {
	case "rslpa":
		det, err := rslpa.Detect(g, rslpa.Config{T: *T, Seed: *seed, Workers: *workers, TCP: *tcp})
		if err != nil {
			fatal(err)
		}
		defer det.Close()
		propagated := time.Since(start)
		res, err := det.Communities()
		if err != nil {
			fatal(err)
		}
		communities = res.Communities
		fmt.Printf("rSLPA: propagation %v, post-processing %v (τ1=%.4f τ2=%.4f, %d strong + %d weak)\n",
			propagated.Round(time.Millisecond), time.Since(start).Round(time.Millisecond)-propagated.Round(time.Millisecond),
			res.Tau1, res.Tau2, res.Strong, res.Weak)
	case "slpa":
		c, err := rslpa.DetectSLPA(g, rslpa.SLPAConfig{T: *T, Tau: *tau, Seed: *seed})
		if err != nil {
			fatal(err)
		}
		communities = c
		fmt.Printf("SLPA: total %v\n", time.Since(start).Round(time.Millisecond))
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	fmt.Printf("detected %d communities covering %d vertices\n",
		communities.Len(), communities.CoveredVertices())

	if *truthPath != "" {
		tf, err := os.Open(*truthPath)
		if err != nil {
			fatal(err)
		}
		truth, err := cover.Read(tf)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("NMI vs ground truth: %.4f\n", rslpa.NMI(communities, truth, g.NumVertices()))
	}
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer of.Close()
		if err := communities.Write(of); err != nil {
			fatal(err)
		}
		fmt.Println("communities written to", *out)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rslpa:", err)
	os.Exit(1)
}
