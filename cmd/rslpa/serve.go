package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rslpa"
	"rslpa/internal/obs"
	"rslpa/internal/replica"
)

// runServe starts the streaming detection service: detect (or resume from
// a checkpoint), then serve the HTTP front end until SIGINT/SIGTERM.
//
//	POST /edits        ingest edge edits (?wait=1 → apply before replying)
//	GET  /communities  current snapshot's overlapping communities
//	GET  /vertex/{v}   membership + degree of one vertex
//	GET  /stats        queue depth, epoch, batch/latency counters
//	GET  /healthz      liveness (+ latched checkpoint error, if any)
//	GET  /readyz       readiness: 503 once checkpointing is failing
//	GET  /feed         replication feed for followers (with -journal > 0)
//	GET  /checkpoint   bootstrap checkpoint for followers
//	GET  /events       community evolution events (with -evolution-depth > 0)
//	GET  /community/{id}/history  one lineage's retained life-cycle
//	GET  /evolution/state  serialized evolution baseline for followers
//	GET  /metrics      Prometheus text exposition
//	GET  /debug/batches  recent + slowest per-batch pipeline traces
//	GET  /version      build identity, start time, uptime
//
// With -debug-addr a second, private listener additionally serves the
// net/http/pprof profile endpoints (plus /metrics, /debug/batches and
// /version), kept off the public API listener.
//
// With -follow it instead runs a read-only follower of another rslpa
// server: bootstrap from the writer's checkpoint, tail its feed, and
// serve the read endpoints (no POST /edits) from local snapshots.
func runServe(args []string) {
	fs := flag.NewFlagSet("rslpa serve", flag.ExitOnError)
	var (
		graphPath = fs.String("graph", "", "edge list to detect on at startup (omit to start from an empty graph)")
		addr      = fs.String("addr", ":7463", "HTTP listen address")
		T         = fs.Int("T", 0, "propagation iterations (0 = 200)")
		seed      = fs.Uint64("seed", 1, "PRNG seed")
		workers   = fs.Int("workers", 0, "BSP workers (0 = sequential)")
		tcp       = fs.Bool("tcp", false, "use loopback TCP transport between workers")
		batch     = fs.Int("batch", 512, "max net edits per update batch")
		flush     = fs.Duration("flush", 100*time.Millisecond, "max delay before a partial batch is applied")
		queue     = fs.Int("queue", 4096, "ingest queue capacity (edits); full queue blocks producers")
		ckpt      = fs.String("checkpoint", "", "checkpoint file; loaded at startup when present, rewritten while serving")
		ckptEvery = fs.Int("checkpoint-every", 16, "batches between checkpoints")
		journal   = fs.Int("journal", 1024, "batches retained for the follower feed (0 disables /feed and /checkpoint)")
		evoDepth  = fs.Int("evolution-depth", 0, "epochs of community evolution events retained (0 disables /events and /community/{id}/history)")
		follow    = fs.String("follow", "", "run as a read-only follower of this writer base URL")
		poll      = fs.Duration("poll", 50*time.Millisecond, "follower: feed poll interval when caught up")
		debugAddr = fs.String("debug-addr", "", "private listen address for pprof + /metrics (empty disables)")
		logFormat = fs.String("log-format", "text", "log output format: text or json")
	)
	fs.Parse(args)

	logger, err := newLogger(*logFormat)
	if err != nil {
		fatal(err)
	}

	if *follow != "" {
		runFollower(*follow, *addr, *poll, *evoDepth, *debugAddr, logger)
		return
	}

	det, resumed, err := openDetector(*graphPath, *ckpt, rslpa.Config{T: *T, Seed: *seed, Workers: *workers, TCP: *tcp})
	if err != nil {
		fatal(err)
	}
	svc, err := rslpa.NewService(det, rslpa.ServiceOptions{
		QueueCapacity:   *queue,
		MaxBatch:        *batch,
		FlushInterval:   *flush,
		CheckpointPath:  *ckpt,
		CheckpointEvery: *ckptEvery,
		JournalDepth:    *journal,
		EvolutionDepth:  *evoDepth,
		Logger:          logger,
	})
	if err != nil {
		det.Close()
		fatal(err)
	}
	sn := svc.Snapshot()
	mode := "detected"
	if resumed {
		mode = "resumed from checkpoint"
	}
	logger.Info("serve: listening",
		"addr", *addr,
		"vertices", sn.NumVertices(),
		"edges", sn.NumEdges(),
		"mode", mode,
		"version", obs.Build().Version)
	stopDebug := startDebugServer(*debugAddr, svc.DebugHandler(), logger)

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		svc.Close()
		fatal(err)
	case <-ctx.Done():
	}
	logger.Info("serve: shutting down, draining queue and applying final batch")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	stopDebug(shutdownCtx)
	if err := svc.Close(); err != nil {
		fatal(err)
	}
	st := svc.Stats()
	logger.Info("serve: stopped",
		"epochs", st.Epoch,
		"applied_edits", st.AppliedEdits,
		"coalesced_edits", st.CoalescedEdits,
		"checkpoints", st.Checkpoints)
}

// newLogger builds the process logger writing to stderr in the requested
// format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
}

// startDebugServer starts the private pprof+metrics listener when addr is
// set, returning a shutdown func (a no-op when disabled).
func startDebugServer(addr string, h http.Handler, logger *slog.Logger) func(context.Context) {
	if addr == "" {
		return func(context.Context) {}
	}
	srv := &http.Server{Addr: addr, Handler: h}
	go func() {
		logger.Info("serve: debug listener up (pprof, /metrics, /debug/batches)", "addr", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve: debug listener failed", "error", err)
		}
	}()
	return func(ctx context.Context) { srv.Shutdown(ctx) }
}

// runFollower serves the read tier: bootstrap from the writer's
// checkpoint, tail its feed, answer reads from local snapshots.
func runFollower(writerURL, addr string, poll time.Duration, evoDepth int, debugAddr string, logger *slog.Logger) {
	reg := obs.NewRegistry()
	ring := obs.NewTraceRing(0, 0)
	f, err := replica.New(replica.Options{
		WriterURL:      writerURL,
		PollInterval:   poll,
		EvolutionDepth: evoDepth,
		Obs:            reg,
		Trace:          ring,
		Logger:         logger,
	})
	if err != nil {
		fatal(fmt.Errorf("follow %s: %w", writerURL, err))
	}
	sn := f.Snapshot()
	logger.Info("serve: following",
		"writer", writerURL,
		"addr", addr,
		"vertices", sn.NumVertices(),
		"edges", sn.NumEdges(),
		"epoch", sn.Epoch(),
		"version", obs.Build().Version)
	stopDebug := startDebugServer(debugAddr, obs.DebugMux(reg, ring), logger)

	srv := &http.Server{Addr: addr, Handler: f.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	select {
	case err := <-errc:
		f.Close()
		fatal(err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	srv.Shutdown(shutdownCtx)
	stopDebug(shutdownCtx)
	f.Close()
	st := f.Stats()
	logger.Info("serve: follower stopped",
		"follower_epoch", st.FollowerEpoch,
		"writer_epoch", st.WriterEpoch,
		"lag_batches", st.LagBatches,
		"batches_replayed", st.CatchupTotal,
		"rebootstraps", st.Rebootstraps)
}

// openDetector resumes from the checkpoint when one exists, otherwise
// detects on the start graph (or an empty one).
func openDetector(graphPath, ckpt string, cfg rslpa.Config) (*rslpa.Detector, bool, error) {
	if ckpt != "" {
		f, err := os.Open(ckpt)
		if err == nil {
			defer f.Close()
			det, err := rslpa.LoadDetector(f, cfg)
			if err != nil {
				return nil, false, fmt.Errorf("load checkpoint %s: %w", ckpt, err)
			}
			return det, true, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, false, err
		}
	}
	g := rslpa.NewGraph()
	if graphPath != "" {
		f, err := os.Open(graphPath)
		if err != nil {
			return nil, false, err
		}
		g, err = rslpa.ReadEdgeList(f)
		f.Close()
		if err != nil {
			return nil, false, err
		}
	}
	det, err := rslpa.Detect(g, cfg)
	return det, false, err
}
