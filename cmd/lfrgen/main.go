// Command lfrgen generates LFR benchmark graphs with planted overlapping
// communities (the synthetic workload of the paper's Section V-A).
//
// Usage:
//
//	lfrgen -n 10000 -k 30 -maxk 100 -mu 0.1 -on 1000 -om 2 \
//	       -out graph.txt -truth truth.txt
//
// The graph is written as an edge list ("u v" per line) and the ground
// truth as one community per line. Omitting -out/-truth prints statistics
// only.
package main

import (
	"flag"
	"fmt"
	"os"

	"rslpa/internal/lfr"
)

func main() {
	var (
		n     = flag.Int("n", 10000, "number of vertices (N)")
		k     = flag.Float64("k", 30, "average degree")
		maxk  = flag.Int("maxk", 100, "maximum degree")
		mu    = flag.Float64("mu", 0.1, "mixing parameter µ")
		on    = flag.Int("on", -1, "number of overlapping vertices (default 0.1·N)")
		om    = flag.Int("om", 2, "memberships per overlapping vertex")
		minc  = flag.Int("minc", 0, "minimum community size (0 = derive)")
		maxc  = flag.Int("maxc", 0, "maximum community size (0 = derive)")
		seed  = flag.Uint64("seed", 1, "PRNG seed")
		out   = flag.String("out", "", "edge list output file")
		truth = flag.String("truth", "", "ground-truth communities output file")
	)
	flag.Parse()

	p := lfr.Params{
		N: *n, AvgDeg: *k, MaxDeg: *maxk, Mu: *mu,
		On: *on, Om: *om, MinComm: *minc, MaxComm: *maxc, Seed: *seed,
	}
	if p.On < 0 {
		p.On = p.N / 10
	}
	res, err := lfr.Generate(p)
	if err != nil {
		fatal(err)
	}
	stats := res.Graph.ComputeStats()
	fmt.Printf("generated LFR graph: %d vertices, %d edges, avg degree %.2f, max degree %d\n",
		stats.Vertices, stats.Edges, stats.AvgDegree, stats.MaxDegree)
	fmt.Printf("ground truth: %d communities, %d overlapping vertices\n",
		res.Truth.Len(), p.On)
	mixing := lfr.MeasureMixing(res.Graph, res.Truth.Membership())
	fmt.Printf("realized mixing: %.4f (requested µ=%.4f)\n", mixing, p.Mu)

	if *out != "" {
		writeTo(*out, func(f *os.File) error { return res.Graph.WriteEdgeList(f) })
		fmt.Println("edge list written to", *out)
	}
	if *truth != "" {
		writeTo(*truth, func(f *os.File) error { return res.Truth.Write(f) })
		fmt.Println("ground truth written to", *truth)
	}
}

func writeTo(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := write(f); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lfrgen:", err)
	os.Exit(1)
}
