package main

import (
	"fmt"

	"rslpa/internal/core"
	"rslpa/internal/lfr"
	"rslpa/internal/metrics"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
)

// lfrPoint evaluates both algorithms on one LFR parameterization and
// returns the mean NMI over o.runs repetitions with distinct seeds.
func lfrPoint(o options, p lfr.Params) (rscore, sscore float64) {
	var rs, ss []float64
	for run := 0; run < o.runs; run++ {
		p.Seed = o.seed + uint64(run)*7919
		res, err := lfr.Generate(p)
		if err != nil {
			fatal(err)
		}
		rs = append(rs, rslpaNMI(res, o.rslpaT, p.Seed+101))
		ss = append(ss, slpaNMI(res, o.slpaT, p.Seed+202))
	}
	return metrics.Summarize(rs).Mean, metrics.Summarize(ss).Mean
}

func rslpaNMI(res *lfr.Result, T int, seed uint64) float64 {
	st, err := core.Run(res.Graph, core.Config{T: T, Seed: seed})
	if err != nil {
		fatal(err)
	}
	pp, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{})
	if err != nil {
		fatal(err)
	}
	return nmi.Compare(pp.Cover, res.Truth, res.Graph.NumVertices())
}

func slpaNMI(res *lfr.Result, T int, seed uint64) float64 {
	sr, err := slpa.Run(res.Graph, slpa.Config{T: T, Tau: slpa.DefaultTau, Seed: seed})
	if err != nil {
		fatal(err)
	}
	return nmi.Compare(sr.Cover, res.Truth, res.Graph.NumVertices())
}

func runTable1(o options) {
	p := lfr.Default(10000 / o.scale)
	fmt.Println("Parameter  Description                                   Default")
	fmt.Printf("N          number of vertices                            %d\n", p.N)
	fmt.Printf("k          average degree                                %.0f\n", p.AvgDeg)
	fmt.Printf("maxk       max degree                                    %d\n", p.MaxDeg)
	fmt.Printf("mu         mixing parameter                              %.1f\n", p.Mu)
	fmt.Printf("on         number of overlapping vertices                %d (0.1N)\n", p.On)
	fmt.Printf("om         memberships of overlapping vertices           %d\n", p.Om)
}

// runFig7a reproduces the convergence study. Because each pick's random
// stream depends only on (seed, vertex, iteration) — not on the configured
// total T — the label state after t iterations of a long run equals a run
// with T=t, so one propagation to T=1000 yields every prefix exactly.
func runFig7a(o options) {
	sizes := []int{10000 / o.scale, 20000 / o.scale, 50000 / o.scale}
	ts := []int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000}
	fmt.Printf("%-8s", "T")
	for _, n := range sizes {
		fmt.Printf("  N=%-7d", n)
	}
	fmt.Println("   (paper: stable for T >= 200 at every N)")
	results := make(map[int][]float64) // T -> scores per size
	for _, n := range sizes {
		p := lfr.Default(n)
		var scores [][]float64 // per T, per run
		for run := 0; run < o.runs; run++ {
			p.Seed = o.seed + uint64(run)*7919
			res, err := lfr.Generate(p)
			if err != nil {
				fatal(err)
			}
			st, err := core.Run(res.Graph, core.Config{T: ts[len(ts)-1], Seed: p.Seed + 101})
			if err != nil {
				fatal(err)
			}
			for i, T := range ts {
				prefix := func(v uint32) []uint32 { return st.Labels(v)[:T+1] }
				pp, err := postprocess.Extract(st.Graph(), prefix, postprocess.Config{})
				if err != nil {
					fatal(err)
				}
				score := nmi.Compare(pp.Cover, res.Truth, n)
				if len(scores) <= i {
					scores = append(scores, nil)
				}
				scores[i] = append(scores[i], score)
			}
		}
		for i, T := range ts {
			results[T] = append(results[T], metrics.Summarize(scores[i]).Mean)
		}
	}
	for _, T := range ts {
		fmt.Printf("%-8d", T)
		for _, s := range results[T] {
			fmt.Printf("  %-9.4f", s)
		}
		fmt.Println()
	}
}

func runFig7b(o options) {
	fmt.Printf("%-10s %-12s %-12s  (paper: both high and close, SLPA slightly ahead)\n", "N", "rSLPA NMI", "SLPA NMI")
	for _, n := range []int{10000, 20000, 30000, 40000, 50000} {
		p := lfr.Default(n / o.scale)
		r, s := lfrPoint(o, p)
		fmt.Printf("%-10d %-12.4f %-12.4f\n", p.N, r, s)
	}
}

func runFig7c(o options) {
	fmt.Printf("%-10s %-12s %-12s  (paper: rises with k, flat for k >= 50)\n", "k", "rSLPA NMI", "SLPA NMI")
	for _, k := range []float64{10, 20, 30, 40, 50, 60, 70} {
		p := lfr.Default(10000 / o.scale)
		p.AvgDeg = k
		if p.MaxDeg < int(2*k) {
			p.MaxDeg = int(2 * k)
		}
		r, s := lfrPoint(o, p)
		fmt.Printf("%-10.0f %-12.4f %-12.4f\n", k, r, s)
	}
}

func runFig7d(o options) {
	fmt.Printf("%-10s %-12s %-12s  (paper: SLPA flat; rSLPA high but drops slowly)\n", "mu", "rSLPA NMI", "SLPA NMI")
	for _, mu := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
		p := lfr.Default(10000 / o.scale)
		p.Mu = mu
		r, s := lfrPoint(o, p)
		fmt.Printf("%-10.2f %-12.4f %-12.4f\n", mu, r, s)
	}
}

func runFig7e(o options) {
	fmt.Printf("%-10s %-12s %-12s  (paper: both decrease; rSLPA better for om >= 3)\n", "om", "rSLPA NMI", "SLPA NMI")
	for _, om := range []int{2, 3, 4, 5} {
		p := lfr.Default(10000 / o.scale)
		p.Om = om
		r, s := lfrPoint(o, p)
		fmt.Printf("%-10d %-12.4f %-12.4f\n", om, r, s)
	}
}

func runFig7f(o options) {
	fmt.Printf("%-10s %-12s %-12s  (paper: both decrease as overlap widens)\n", "on/N", "rSLPA NMI", "SLPA NMI")
	for _, frac := range []float64{0.10, 0.15, 0.20, 0.25, 0.30} {
		p := lfr.Default(10000 / o.scale)
		p.On = int(frac * float64(p.N))
		r, s := lfrPoint(o, p)
		fmt.Printf("%-10.2f %-12.4f %-12.4f\n", frac, r, s)
	}
}

func fatal(err error) {
	panic(err)
}
