package main

import (
	"fmt"
	"time"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
	"rslpa/internal/webgraph"
)

// runMessages verifies the Section III-A claim that drove the rSLPA design:
// per iteration, SLPA moves two labels per edge while rSLPA moves one
// request+reply pair per vertex, cutting communication from O(|E|) to
// O(|V|).
func runMessages(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	st := g.ComputeStats()
	const T = 10
	engR, err := cluster.New(cluster.Config{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	defer engR.Close()
	dr, err := dist.NewRSLPA(engR, g, core.Config{T: T, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	if err := dr.Propagate(); err != nil {
		fatal(err)
	}
	engS, err := cluster.New(cluster.Config{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	defer engS.Close()
	ds, err := dist.NewSLPA(engS, g, slpa.Config{T: T, Tau: 0.2, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	if err := ds.Propagate(); err != nil {
		fatal(err)
	}

	rPer := dr.PropagateStats.Messages / T
	sPer := ds.PropagateStats.Messages / T
	fmt.Printf("graph: |V|=%d |E|=%d\n", st.Vertices, st.Edges)
	fmt.Printf("%-8s %-22s %-18s %s\n", "algo", "messages/iteration", "bytes/iteration", "model")
	fmt.Printf("%-8s %-22d %-18d 2|E| = %d\n", "SLPA", sPer, ds.PropagateStats.Bytes/T, 2*st.Edges)
	fmt.Printf("%-8s %-22d %-18d 2|V| = %d\n", "rSLPA", rPer, dr.PropagateStats.Bytes/T, 2*st.Vertices)
	fmt.Printf("reduction: %.1fx\n", float64(sPer)/float64(rPer))
}

// runWeights is the ablation for the edge-weight metric choice documented
// in README.md's reproduction section: histogram intersection (our
// reading of the paper's
// "counting the common labels") vs the literal same-label collision
// probability.
func runWeights(o options) {
	p := lfr.Default(10000 / o.scale)
	p.Seed = o.seed
	res, err := lfr.Generate(p)
	if err != nil {
		fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: o.rslpaT, Seed: o.seed + 101})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-22s %-10s %-10s %-8s %s\n", "metric", "tau1", "tau2", "strong", "NMI")
	for _, m := range []struct {
		name   string
		metric postprocess.WeightMetric
	}{
		{"intersection", postprocess.Intersection},
		{"same-label-prob", postprocess.SameLabelProbability},
	} {
		pp, err := postprocess.Extract(st.Graph(), st.Labels, postprocess.Config{Metric: m.metric})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-22s %-10.4f %-10.4f %-8d %.4f\n",
			m.name, pp.Tau1, pp.Tau2, pp.Strong, nmi.Compare(pp.Cover, res.Truth, p.N))
	}
}

// runSweep compares the exact descending-weight τ1 selection against the
// paper's literal 0.001-grid enumeration: same threshold, two orders of
// magnitude apart in work.
func runSweep(o options) {
	p := lfr.Default(10000 / o.scale)
	p.Seed = o.seed
	res, err := lfr.Generate(p)
	if err != nil {
		fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: o.rslpaT, Seed: o.seed + 101})
	if err != nil {
		fatal(err)
	}
	edges := postprocess.EdgeWeights(st.Graph(), st.Labels, postprocess.Intersection)

	t0 := time.Now()
	exact, err := postprocess.ExtractFromWeights(st.Graph(), edges, postprocess.Config{})
	if err != nil {
		fatal(err)
	}
	exactTime := time.Since(t0)

	t0 = time.Now()
	grid, err := postprocess.ExtractFromWeights(st.Graph(), edges, postprocess.Config{GridStep: 0.001})
	if err != nil {
		fatal(err)
	}
	gridTime := time.Since(t0)

	fmt.Printf("%-14s %-10s %-10s %-10s %s\n", "selection", "tau1", "entropy", "NMI", "time")
	fmt.Printf("%-14s %-10.4f %-10.4f %-10.4f %v\n", "exact sweep", exact.Tau1, exact.Entropy,
		nmi.Compare(exact.Cover, res.Truth, p.N), exactTime.Round(time.Microsecond))
	fmt.Printf("%-14s %-10.4f %-10.4f %-10.4f %v\n", "0.001 grid", grid.Tau1, grid.Entropy,
		nmi.Compare(grid.Cover, res.Truth, p.N), gridTime.Round(time.Microsecond))
	fmt.Printf("speedup: %.0fx; exact entropy >= grid entropy: %v\n",
		float64(gridTime)/float64(exactTime), exact.Entropy >= grid.Entropy-1e-12)
}
