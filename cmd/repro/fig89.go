package main

import (
	"fmt"
	"time"

	"rslpa/internal/cluster"
	"rslpa/internal/complexity"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/dynamic"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
	"rslpa/internal/webgraph"
)

func runTable2(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	fmt.Println("substitute for eu-2015-tpd (paper: 6,650,532 nodes, 170,145,510 edges, avg 25.584):")
	fmt.Print(webgraph.TableII(g))
}

// runFig8 measures the static running time of both algorithms on the
// distributed engine, split into label propagation and post-processing as
// the paper does. Expected shape: rSLPA's label propagation is faster per
// iteration (O(|V|) vs O(|E|) messages) and in total despite running 2x
// the iterations; its post-processing is much slower than SLPA's trivial
// thresholding; totals end up close, rSLPA slightly ahead.
func runFig8(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	st := g.ComputeStats()
	fmt.Printf("web graph: %d vertices, %d edges; %d workers, local transport\n",
		st.Vertices, st.Edges, o.workers)

	// SLPA on the engine.
	engS, err := cluster.New(cluster.Config{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	defer engS.Close()
	ds, err := dist.NewSLPA(engS, g, slpa.Config{T: o.slpaT, Tau: slpa.DefaultTau, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	if err := ds.Propagate(); err != nil {
		fatal(err)
	}
	slpaProp := time.Since(t0)
	t0 = time.Now()
	slpaCover := slpa.ExtractCover(g, ds.Memories(), slpa.Config{T: o.slpaT, Tau: slpa.DefaultTau})
	slpaPost := time.Since(t0)

	// rSLPA on the engine.
	engR, err := cluster.New(cluster.Config{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	defer engR.Close()
	dr, err := dist.NewRSLPA(engR, g, core.Config{T: o.rslpaT, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	t0 = time.Now()
	if err := dr.Propagate(); err != nil {
		fatal(err)
	}
	rslpaProp := time.Since(t0)
	t0 = time.Now()
	rslpaPP, err := dist.Postprocess(engR, dr, postprocess.Config{})
	if err != nil {
		fatal(err)
	}
	rslpaPost := time.Since(t0)

	fmt.Printf("%-8s %-6s %-14s %-16s %-12s %s\n", "algo", "T", "label-prop", "post-processing", "total", "communities")
	fmt.Printf("%-8s %-6d %-14v %-16v %-12v %d\n", "SLPA", o.slpaT,
		slpaProp.Round(time.Millisecond), slpaPost.Round(time.Millisecond),
		(slpaProp + slpaPost).Round(time.Millisecond), slpaCover.Len())
	fmt.Printf("%-8s %-6d %-14v %-16v %-12v %d\n", "rSLPA", o.rslpaT,
		rslpaProp.Round(time.Millisecond), rslpaPost.Round(time.Millisecond),
		(rslpaProp + rslpaPost).Round(time.Millisecond), rslpaPP.Cover.Len())
	perIterS := slpaProp / time.Duration(o.slpaT)
	perIterR := rslpaProp / time.Duration(o.rslpaT)
	fmt.Printf("per-iteration label-prop: SLPA %v, rSLPA %v (paper: SLPA > 5x rSLPA)\n",
		perIterS.Round(time.Microsecond), perIterR.Round(time.Microsecond))
	pp := dr.LastPostprocess
	fmt.Printf("rSLPA postprocess wire: %d rounds, %d messages, %.2f MB (RLE shipping + tree-reduce + partitioned τ1 sweep)\n",
		pp.Rounds, pp.Messages, float64(pp.Bytes)/(1<<20))
}

// runFig9 measures incremental updating vs recomputation from scratch
// across edit batch sizes (half insertions, half deletions). Expected
// shape: incremental time grows sublinearly with batch size and stays far
// below from-scratch for all sizes the paper tests.
func runFig9(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	stats := g.ComputeStats()
	fmt.Printf("web graph: %d vertices, %d edges; sequential timing, T=%d\n",
		stats.Vertices, stats.Edges, o.rslpaT)

	base, err := core.Run(g, core.Config{T: o.rslpaT, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	scratchState, err := core.Run(g, core.Config{T: o.rslpaT, Seed: o.seed + 1})
	if err != nil {
		fatal(err)
	}
	_ = scratchState
	scratch := time.Since(t0)

	fmt.Printf("%-12s %-14s %-14s %-10s %-12s %s\n",
		"batch", "incremental", "scratch", "speedup", "touched(η)", "predicted η̂")
	for _, size := range []int{100, 500, 1000, 5000, 10000, 50000, 100000} {
		if size/2 > g.NumEdges() {
			fmt.Printf("%-12d (skipped: batch larger than graph)\n", size)
			continue
		}
		// Fresh clone per batch size so edits do not accumulate.
		stc := base.Clone()
		batch, err := dynamic.Batch(stc.Graph(), size, o.seed+uint64(size))
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		us := stc.Update(batch)
		inc := time.Since(t0)
		model := complexity.Model{
			V: stats.Vertices, E: stats.Edges, T: o.rslpaT,
			Md: us.Deleted, Ma: us.Inserted,
		}
		fmt.Printf("%-12d %-14v %-14v %-10.1f %-12d %.0f\n",
			size, inc.Round(time.Microsecond), scratch.Round(time.Millisecond),
			float64(scratch)/float64(inc), us.Touched, model.EtaHat())
	}
	fmt.Println("(paper: incremental grows sublinearly with batch size)")
}

// runModel validates the Section IV-D complexity model: measured Touched
// must land between the analytic bounds and near the expectation.
func runModel(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	stats := g.ComputeStats()
	base, err := core.Run(g, core.Config{T: o.rslpaT, Seed: o.seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s %-10s %-14s %-14s %-14s %-14s %s\n",
		"batch", "p_c", "lower", "expected η̂", "upper", "measured", "meas/η̂")
	for _, size := range []int{100, 1000, 10000, 50000} {
		stc := base.Clone()
		batch, err := dynamic.Batch(stc.Graph(), size, o.seed+uint64(size)*3)
		if err != nil {
			fatal(err)
		}
		us := stc.Update(batch)
		m := complexity.Model{V: stats.Vertices, E: stats.Edges, T: o.rslpaT, Md: us.Deleted, Ma: us.Inserted}
		fmt.Printf("%-10d %-10.5f %-14.0f %-14.0f %-14.0f %-14d %.2f\n",
			size, m.PC(), m.EtaLower(), m.EtaHat(), m.EtaUpper(),
			us.Touched, float64(us.Touched)/m.EtaHat())
	}
	fmt.Println("(measured η must fall within [lower, upper]; the expectation assumes")
	fmt.Println(" degree-uniform picks, so a ratio near 1 validates Equations 3-12)")
}
