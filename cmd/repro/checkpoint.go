package main

import (
	"bytes"
	"fmt"
	"time"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dist"
	"rslpa/internal/dynamic"
	"rslpa/internal/webgraph"
)

// runCheckpoint exercises shard-parallel checkpointing end to end on the
// web-graph substitute: propagate at -workers, absorb an update batch, save
// (each worker serializes its shard concurrently, the master concatenates),
// then restore at several other worker counts — including sequential — and
// verify each restored detector is bit-identical to the saved one. This is
// the restart path a long-lived deployment takes instead of re-propagating,
// which is exactly the cost rSLPA's incremental maintenance exists to avoid.
func runCheckpoint(o options) {
	g, err := webgraph.Generate(webgraph.Default(o.webN))
	if err != nil {
		fatal(err)
	}
	cfg := core.Config{T: o.rslpaT, Seed: o.seed}
	fmt.Printf("web graph: %d vertices, %d edges; save at %d workers\n",
		g.NumVertices(), g.NumEdges(), o.workers)

	eng, err := cluster.New(cluster.Config{Workers: o.workers})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	d, err := dist.NewRSLPA(eng, g, cfg)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	if err := d.Propagate(); err != nil {
		fatal(err)
	}
	propagate := time.Since(t0)
	batch, err := dynamic.Batch(g, 200, o.seed+1)
	if err != nil {
		fatal(err)
	}
	if _, err := d.Update(batch); err != nil {
		fatal(err)
	}

	var buf bytes.Buffer
	t0 = time.Now()
	if err := d.Save(&buf); err != nil {
		fatal(err)
	}
	save := time.Since(t0)
	fmt.Printf("save: %v for %.2f MB (%d gather wire bytes); propagation had cost %v\n",
		save, float64(buf.Len())/(1<<20), d.LastCheckpoint.Bytes, propagate)

	fmt.Printf("\n%-10s %-12s %s\n", "load P", "load time", "bit-identical")
	for _, p := range []int{1, 2, o.workers, 7} {
		t0 = time.Now()
		c, err := core.ReadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			fatal(err)
		}
		identical := true
		if p <= 1 {
			st, err := c.BuildState()
			if err != nil {
				fatal(err)
			}
			load := time.Since(t0)
			d.Graph().ForEachVertex(func(v uint32) {
				identical = identical && equalU32(st.Labels(v), d.Labels(v))
			})
			fmt.Printf("%-10s %-12v %v\n", "seq", load, identical)
			continue
		}
		eng2, err := cluster.New(cluster.Config{Workers: p})
		if err != nil {
			fatal(err)
		}
		d2, err := dist.NewRSLPAFromCheckpoint(eng2, c)
		if err != nil {
			fatal(err)
		}
		load := time.Since(t0)
		d.Graph().ForEachVertex(func(v uint32) {
			identical = identical && equalU32(d2.Labels(v), d.Labels(v))
		})
		fmt.Printf("%-10d %-12v %v\n", p, load, identical)
		eng2.Close()
		if !identical {
			fatal(fmt.Errorf("restored state at P=%d differs from the saved detector", p))
		}
	}
}

func equalU32(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
