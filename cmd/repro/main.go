// Command repro regenerates every table and figure of the paper's
// evaluation (Section V) plus the model-validation and ablation studies
// described in README.md's reproduction section. Each experiment prints
// the same rows/series the paper reports; EXPERIMENTS.md records
// paper-vs-measured values.
//
// Usage:
//
//	repro -exp fig7b                 # one experiment
//	repro -exp all                   # everything
//	repro -exp fig9 -webn 50000      # bigger substitute web graph
//	repro -exp fig7a -scale 5        # shrink LFR sizes 5x for quick runs
//	repro -exp snap -snapdir data/snap  # gauntlet on real SNAP downloads
//
// Experiments: table1 fig7a fig7b fig7c fig7d fig7e fig7f table2 fig8 fig9
// model messages weights sweep checkpoint snap.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// options carries the shared experiment knobs.
type options struct {
	scale   int    // divides the paper's LFR sizes
	runs    int    // repetitions averaged per data point
	seed    uint64 // base seed
	workers int    // BSP workers for distributed experiments
	webN    int    // web-graph substitute size (fig8/fig9/table2)
	rslpaT  int    // rSLPA iterations
	slpaT   int    // SLPA iterations

	snapDir   string // SNAP dataset directory (snap gauntlet)
	snapBatch int    // streamed edges per Update batch (snap gauntlet)
	snapOut   string // JSON artifact path (snap gauntlet)
}

type experiment struct {
	name string
	desc string
	run  func(o options)
}

func main() {
	var o options
	exp := flag.String("exp", "", "experiment id (or 'all'); see -list")
	list := flag.Bool("list", false, "list experiments")
	flag.IntVar(&o.scale, "scale", 1, "divide the paper's LFR sizes by this factor")
	flag.IntVar(&o.runs, "runs", 2, "repetitions averaged per data point (paper: 10)")
	flag.Uint64Var(&o.seed, "seed", 1, "base PRNG seed")
	flag.IntVar(&o.workers, "workers", 4, "BSP workers for distributed experiments")
	flag.IntVar(&o.webN, "webn", 20000, "web-graph substitute vertices (paper dataset: 6.65M)")
	flag.IntVar(&o.rslpaT, "rslpaT", 200, "rSLPA iterations")
	flag.IntVar(&o.slpaT, "slpaT", 100, "SLPA iterations")
	flag.StringVar(&o.snapDir, "snapdir", "testdata/snap", "SNAP dataset directory for -exp snap")
	flag.IntVar(&o.snapBatch, "snapbatch", 50, "streamed edges per batch for -exp snap")
	flag.StringVar(&o.snapOut, "snapout", "BENCH_snap.json", "JSON artifact path for -exp snap")
	flag.Parse()

	exps := []experiment{
		{"table1", "LFR benchmark parameters (Table I)", runTable1},
		{"fig7a", "rSLPA convergence: NMI vs iterations T (Figure 7a)", runFig7a},
		{"fig7b", "NMI vs graph size N (Figure 7b)", runFig7b},
		{"fig7c", "NMI vs average degree k (Figure 7c)", runFig7c},
		{"fig7d", "NMI vs mixing µ (Figure 7d)", runFig7d},
		{"fig7e", "NMI vs memberships om (Figure 7e)", runFig7e},
		{"fig7f", "NMI vs overlapping vertices on (Figure 7f)", runFig7f},
		{"table2", "web-graph substitute statistics (Table II)", runTable2},
		{"fig8", "static running time, SLPA vs rSLPA (Figure 8)", runFig8},
		{"fig9", "incremental vs from-scratch time by batch size (Figure 9)", runFig9},
		{"model", "η̂ complexity model vs measured updates (Section IV-D)", runModel},
		{"messages", "per-iteration communication, SLPA vs rSLPA (Section III-A)", runMessages},
		{"weights", "ablation: edge-weight metric choice", runWeights},
		{"sweep", "ablation: τ1 exact sweep vs 0.001 grid", runSweep},
		{"checkpoint", "shard-parallel save/load and cross-P restore", runCheckpoint},
		{"snap", "real-dataset gauntlet: stream SNAP graphs, score vs ground truth", runSnap},
	}
	byName := make(map[string]experiment, len(exps))
	names := make([]string, 0, len(exps))
	for _, e := range exps {
		byName[e.name] = e
		names = append(names, e.name)
	}

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, e := range exps {
			fmt.Printf("  %-9s %s\n", e.name, e.desc)
		}
		if *exp == "" {
			os.Exit(2)
		}
		return
	}
	if *exp == "all" {
		for _, e := range exps {
			banner(e)
			e.run(o)
		}
		return
	}
	sort.Strings(names)
	e, ok := byName[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "repro: unknown experiment %q (have: %s)\n", *exp, strings.Join(names, " "))
		os.Exit(2)
	}
	banner(e)
	e.run(o)
}

func banner(e experiment) {
	fmt.Printf("\n=== %s — %s ===\n", e.name, e.desc)
}
