package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/metrics"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/snap"
)

// runSnap is the real-dataset gauntlet: for every SNAP-format dataset in
// -snapdir (edge list + ground-truth communities; the committed fixtures
// under testdata/snap by default, or the real com-Amazon/com-DBLP/
// com-YouTube downloads from scripts/fetch_snap.sh), it
//
//  1. bootstraps rSLPA on the first 80% of the edges,
//  2. streams the remaining 20% through State.Update in fixed-size
//     batches, measuring per-batch latency (p50/p99), allocations per
//     batch, and the touched-labels work η,
//  3. extracts communities and scores them against the ground truth with
//     NMI, Omega and AverageF1.
//
// Results print as a table and are archived to -snapout (BENCH_snap.json)
// in the same shape as the other CI bench artifacts.
func runSnap(o options) {
	type row struct {
		Name           string  `json:"name"`
		Vertices       int     `json:"vertices"`
		Edges          int     `json:"edges"`
		Communities    int     `json:"truth_communities"`
		BatchSize      int     `json:"batch_size"`
		Batches        int     `json:"batches"`
		UpdateP50Ns    int64   `json:"update_p50_ns"`
		UpdateP99Ns    int64   `json:"update_p99_ns"`
		AllocsPerBatch float64 `json:"allocs_per_batch"`
		TouchedPerOp   float64 `json:"touched_per_batch"`
		NMI            float64 `json:"nmi"`
		Omega          float64 `json:"omega"`
		AvgF1          float64 `json:"avg_f1"`
	}

	pairs, err := discoverSnap(o.snapDir)
	if err != nil {
		fatal(err)
	}
	if len(pairs) == 0 {
		fatal(fmt.Errorf("no *.ungraph.txt[.gz] datasets in %s", o.snapDir))
	}

	var rows []row
	for _, p := range pairs {
		d, err := snap.Load(p.edges, p.truth)
		if err != nil {
			fatal(err)
		}
		name := strings.TrimSuffix(strings.TrimSuffix(filepath.Base(p.edges), ".gz"), ".ungraph.txt")
		fmt.Printf("%s: %d vertices, %d edges, %d truth communities (%d dropped as trimmed)\n",
			name, d.N, len(d.Edges), d.Truth.Len(), d.TruthDropped)

		// Bootstrap on the first 80% of the edges, stream the rest.
		split := len(d.Edges) * 4 / 5
		g := graph.New()
		for _, e := range d.Edges[:split] {
			g.AddEdge(e[0], e[1])
		}
		st, err := core.Run(g, core.Config{T: o.rslpaT, Seed: o.seed})
		if err != nil {
			fatal(err)
		}

		batchSize := o.snapBatch
		var lats []int64
		var touched int
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		for lo := split; lo < len(d.Edges); lo += batchSize {
			hi := min(lo+batchSize, len(d.Edges))
			batch := make([]graph.Edit, 0, hi-lo)
			for _, e := range d.Edges[lo:hi] {
				batch = append(batch, graph.Edit{Op: graph.Insert, U: e[0], V: e[1]})
			}
			t0 := time.Now()
			stats := st.Update(batch)
			lats = append(lats, time.Since(t0).Nanoseconds())
			touched += stats.Touched
		}
		runtime.ReadMemStats(&m1)
		slices.Sort(lats)
		nb := len(lats)

		var sc postprocess.ExtractScratch
		res, err := sc.Extract(st.Graph(), st.Labels, postprocess.Config{})
		if err != nil {
			fatal(err)
		}

		r := row{
			Name:        "snap/" + name,
			Vertices:    d.N,
			Edges:       len(d.Edges),
			Communities: d.Truth.Len(),
			BatchSize:   batchSize,
			Batches:     nb,
			UpdateP50Ns: metrics.Quantile(lats, 0.50),
			UpdateP99Ns: metrics.Quantile(lats, 0.99),
			// Whole-stream malloc delta over the batch count; includes the
			// batch construction above, so it upper-bounds Update's own.
			AllocsPerBatch: float64(m1.Mallocs-m0.Mallocs) / float64(nb),
			TouchedPerOp:   float64(touched) / float64(nb),
			NMI:            nmi.Compare(res.Cover, d.Truth, d.N),
			Omega:          nmi.Omega(res.Cover, d.Truth, d.N),
			AvgF1:          nmi.AverageF1(res.Cover, d.Truth),
		}
		rows = append(rows, r)
		fmt.Printf("  stream: %d batches of %d; update p50=%s p99=%s, %.0f allocs/batch, η=%.0f/batch\n",
			r.Batches, r.BatchSize, time.Duration(r.UpdateP50Ns), time.Duration(r.UpdateP99Ns),
			r.AllocsPerBatch, r.TouchedPerOp)
		fmt.Printf("  quality: %d communities found; NMI=%.4f Omega=%.4f AvgF1=%.4f (τ1=%.3f τ2=%.3f)\n",
			res.Cover.Len(), r.NMI, r.Omega, r.AvgF1, res.Tau1, res.Tau2)
	}

	out, err := json.Marshal(rows)
	if err != nil {
		fatal(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(o.snapOut, out, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s\n", o.snapOut)
}

// snapPair is one dataset: its edge list and (optional) ground truth.
type snapPair struct {
	edges string
	truth string
}

// discoverSnap pairs every *.ungraph.txt[.gz] in dir with its
// *.top5000.cmty.txt[.gz] ground truth, sorted by name.
func discoverSnap(dir string) ([]snapPair, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snap dir: %w", err)
	}
	var pairs []snapPair
	for _, e := range entries {
		name := e.Name()
		base, ok := strings.CutSuffix(strings.TrimSuffix(name, ".gz"), ".ungraph.txt")
		if !ok || e.IsDir() {
			continue
		}
		p := snapPair{edges: filepath.Join(dir, name)}
		for _, cand := range []string{base + ".top5000.cmty.txt", base + ".top5000.cmty.txt.gz"} {
			if _, err := os.Stat(filepath.Join(dir, cand)); err == nil {
				p.truth = filepath.Join(dir, cand)
				break
			}
		}
		if p.truth == "" {
			return nil, fmt.Errorf("snap: %s has no matching *.top5000.cmty.txt[.gz] ground truth", name)
		}
		pairs = append(pairs, p)
	}
	slices.SortFunc(pairs, func(a, b snapPair) int { return strings.Compare(a.edges, b.edges) })
	return pairs, nil
}
