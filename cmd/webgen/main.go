// Command webgen generates the scale-free web-graph substitute for the
// paper's eu-2015-tpd dataset and prints its Table II statistics.
//
// Usage:
//
//	webgen -n 200000 -d 13 -copy 0.6 -out web.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"rslpa/internal/webgraph"
)

func main() {
	var (
		n    = flag.Int("n", 200000, "number of pages (vertices)")
		d    = flag.Int("d", 13, "links per new page")
		copy = flag.Float64("copy", 0.6, "copy-model probability")
		seed = flag.Uint64("seed", 1, "PRNG seed")
		out  = flag.String("out", "", "edge list output file")
	)
	flag.Parse()

	g, err := webgraph.Generate(webgraph.Params{N: *n, OutDegree: *d, CopyProb: *copy, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "webgen:", err)
		os.Exit(1)
	}
	fmt.Print(webgraph.TableII(g))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "webgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := g.WriteEdgeList(f); err != nil {
			fmt.Fprintln(os.Stderr, "webgen:", err)
			os.Exit(1)
		}
		fmt.Println("edge list written to", *out)
	}
}
