// Package rslpa detects overlapping communities on dynamic graphs, with
// optional distributed execution. It implements rSLPA — the randomized
// Speaker-Listener Label Propagation Algorithm of Jian, Lian and Chen,
// "On Efficiently Detecting Overlapping Communities over Distributed
// Dynamic Graphs" (ICDE 2018) — together with the SLPA baseline, the LFR
// benchmark generator, the overlapping-cover NMI metric, and a BSP cluster
// runtime the algorithms run on.
//
// # Quick start
//
//	g := rslpa.NewGraph()
//	g.AddEdge(0, 1) // ... build or rslpa.ReadEdgeList(...)
//
//	det, err := rslpa.Detect(g, rslpa.Config{Seed: 1})
//	if err != nil { ... }
//	defer det.Close()
//
//	res, err := det.Communities()   // overlapping communities
//
//	// The graph changed: apply the batch incrementally instead of
//	// re-running detection from scratch.
//	det.Update([]rslpa.Edit{{Op: rslpa.Insert, U: 7, V: 9}})
//	res, err = det.Communities()
//
// Detection runs sequentially by default; set Config.Workers > 1 to run on
// the partitioned BSP engine (Config.TCP selects real loopback sockets
// instead of in-memory exchange). Results are identical bit-for-bit across
// all execution modes for a given seed.
package rslpa

import (
	"io"
	"sync"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/cover"
	"rslpa/internal/dist"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
	"rslpa/internal/webgraph"
)

// Graph is a dynamic undirected binary graph (alias of the internal
// implementation so that the full graph API is available to users).
type Graph = graph.Graph

// Edit is one edge insertion or deletion in an update batch.
type Edit = graph.Edit

// Op is the edit operation type.
type Op = graph.Op

// Edit operations.
const (
	Insert = graph.Insert
	Delete = graph.Delete
)

// Cover is a set of (possibly overlapping) communities.
type Cover = cover.Cover

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// ReadEdgeList parses a whitespace-separated edge list; see the Graph
// documentation for the accepted format.
func ReadEdgeList(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WeightMetric selects the edge-similarity definition used by community
// extraction; see the post-processing notes in README.md.
type WeightMetric = postprocess.WeightMetric

// Weight metrics.
const (
	// Intersection (default) counts common label occurrences.
	Intersection = postprocess.Intersection
	// SameLabelProbability is the literal label-collision probability.
	SameLabelProbability = postprocess.SameLabelProbability
)

// Config configures rSLPA detection.
type Config struct {
	// T is the number of label propagation iterations; 0 means the
	// paper's default of 200.
	T int
	// Seed drives all randomness; a given (graph, Config) is fully
	// deterministic, including across Workers/TCP settings.
	Seed uint64
	// Tau1 and Tau2 fix the extraction thresholds; 0 selects them
	// automatically (entropy maximization and the min-max rule).
	Tau1, Tau2 float64
	// Metric selects the edge-weight definition (default Intersection).
	Metric WeightMetric
	// Workers > 1 runs detection on a partitioned BSP engine with that
	// many workers; 0 or 1 runs sequentially.
	Workers int
	// TCP moves inter-worker traffic over loopback TCP sockets instead
	// of in-memory queues (only meaningful with Workers > 1).
	TCP bool
}

func (c Config) withDefaults() Config {
	if c.T == 0 {
		c.T = core.DefaultT
	}
	return c
}

// Result is the outcome of community extraction.
type Result struct {
	// Communities is the detected cover.
	Communities *Cover
	// Tau1 and Tau2 are the thresholds used (selected automatically
	// unless fixed in Config).
	Tau1, Tau2 float64
	// Strong is the number of strongly connected communities; Weak is
	// the number of weak (overlap-creating) memberships added to them.
	Strong, Weak int
	// Entropy is the community-size information entropy at Tau1.
	Entropy float64
}

// UpdateStats reports the work an incremental update performed; Touched is
// the η quantity of the paper's complexity analysis.
type UpdateStats = core.UpdateStats

// Detector holds the label propagation state for one graph and keeps it
// maintainable under graph updates. Create with Detect; always Close a
// detector configured with Workers > 1.
type Detector struct {
	cfg Config
	seq *core.State
	eng *cluster.Engine
	dst *dist.RSLPA

	closeOnce sync.Once
	closeErr  error
}

// Detect runs rSLPA label propagation (Algorithm 1) on g and returns a
// Detector from which communities can be extracted. The graph is copied;
// apply subsequent changes through Update.
func Detect(g *Graph, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	d := &Detector{cfg: cfg}
	if cfg.Workers <= 1 {
		st, err := core.Run(g, core.Config{T: cfg.T, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		d.seq = st
		return d, nil
	}
	kind := cluster.Local
	if cfg.TCP {
		kind = cluster.TCP
	}
	eng, err := cluster.New(cluster.Config{Workers: cfg.Workers, Transport: kind})
	if err != nil {
		return nil, err
	}
	dst, err := dist.NewRSLPA(eng, g, core.Config{T: cfg.T, Seed: cfg.Seed})
	if err != nil {
		eng.Close()
		return nil, err
	}
	if err := dst.Propagate(); err != nil {
		eng.Close()
		return nil, err
	}
	d.eng, d.dst = eng, dst
	return d, nil
}

// Update applies a batch of edge edits and incrementally repairs the
// detection state (Correction Propagation, Algorithm 2). The resulting
// state is distributed exactly as a fresh detection on the updated graph.
//
// The batch is canonicalized first (graph.Canonicalize): self-loops and
// no-op edits are dropped, repeated or mutually cancelling edits of the
// same edge are coalesced, and the surviving edits are applied in a fixed
// edge-key order. The applied update is therefore a pure function of the
// batch's net effect — the same semantics the streaming Service gives
// coalesced producer traffic — so two callers whose batches have equal net
// effects drive the detector to bit-identical states. UpdateStats counts
// the canonical batch (absorbed edits are not counted).
func (d *Detector) Update(batch []Edit) (UpdateStats, error) {
	return d.applyCanonical(graph.Canonicalize(d.Graph(), batch))
}

// applyCanonical dispatches an already-canonical batch to the underlying
// engine. The streaming Service calls it directly: its coalescer emits
// canonical batches, so re-canonicalizing would be a no-op.
func (d *Detector) applyCanonical(batch []Edit) (UpdateStats, error) {
	if d.seq != nil {
		return d.seq.Update(batch), nil
	}
	return d.dst.Update(batch)
}

// Epoch returns the number of update batches applied so far. A detector
// loaded from a checkpoint resumes its saved epoch, so epochs are
// comparable across restarts (and across execution modes: both engines
// count identically).
func (d *Detector) Epoch() uint64 {
	if d.seq != nil {
		return d.seq.Epoch()
	}
	return d.dst.Epoch()
}

// EngineStats reports the BSP cluster engine's cumulative wire traffic
// (supersteps, messages, bytes) for distributed detectors; ok is false
// for sequential ones, whose wire traffic is definitionally zero. It
// implements the streaming service's EngineStatsProvider, so a Service
// over a Workers>1 detector surfaces these in /stats and /metrics.
func (d *Detector) EngineStats() (rounds, messages, bytes int64, ok bool) {
	if d.eng == nil {
		return 0, 0, 0, false
	}
	st := d.eng.Stats()
	return st.Rounds, st.Messages, st.Bytes, true
}

// Graph returns the detector's current graph. The graph is owned by the
// detector: callers must not mutate it (apply changes through Update) and
// must not read it concurrently with Update.
func (d *Detector) Graph() *Graph {
	if d.seq != nil {
		return d.seq.Graph()
	}
	return d.dst.Graph()
}

// Communities extracts the current overlapping communities (Section III-B
// post-processing).
func (d *Detector) Communities() (*Result, error) {
	pcfg := postprocess.Config{Tau1: d.cfg.Tau1, Tau2: d.cfg.Tau2, Metric: d.cfg.Metric}
	var (
		res *postprocess.Result
		err error
	)
	if d.seq != nil {
		res, err = postprocess.Extract(d.seq.Graph(), d.seq.Labels, pcfg)
	} else {
		res, err = dist.Postprocess(d.eng, d.dst, pcfg)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Communities: res.Cover,
		Tau1:        res.Tau1,
		Tau2:        res.Tau2,
		Strong:      res.Strong,
		Weak:        res.Weak,
		Entropy:     res.Entropy,
	}, nil
}

// Labels returns the raw label sequence of a vertex (length T+1), or nil
// for absent vertices — useful for custom post-processing.
func (d *Detector) Labels(v uint32) []uint32 {
	if d.seq != nil {
		return d.seq.Labels(v)
	}
	return d.dst.Labels(v)
}

// Close releases the cluster resources of a distributed detector. It is a
// no-op for sequential detectors. Close is idempotent and safe to call
// from multiple goroutines — every call returns the error of the one
// release that actually ran — and it may race with in-flight Labels
// queries (which never touch the cluster transport). It must not race
// with Update or Communities on a distributed detector.
func (d *Detector) Close() error {
	d.closeOnce.Do(func() {
		if d.eng != nil {
			d.closeErr = d.eng.Close()
		}
	})
	return d.closeErr
}

// SLPAConfig configures the SLPA baseline.
type SLPAConfig struct {
	// T is the iteration count; 0 means the original paper's 100.
	T int
	// Tau is the membership threshold; 0 means 0.2 (the paper's value).
	Tau float64
	// Seed drives all randomness.
	Seed uint64
}

// DetectSLPA runs the Speaker-Listener LPA baseline and returns its cover.
func DetectSLPA(g *Graph, cfg SLPAConfig) (*Cover, error) {
	if cfg.T == 0 {
		cfg.T = slpa.DefaultT
	}
	if cfg.Tau == 0 {
		cfg.Tau = slpa.DefaultTau
	}
	res, err := slpa.Run(g, slpa.Config{T: cfg.T, Tau: cfg.Tau, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	return res.Cover, nil
}

// NMI computes the overlapping Normalized Mutual Information (LFK variant)
// between two covers over a graph of n vertices; 1 means identical.
func NMI(a, b *Cover, n int) float64 { return nmi.Compare(a, b, n) }

// LFRParams parameterizes the LFR benchmark generator.
type LFRParams = lfr.Params

// DefaultLFR returns the paper's default LFR setting for n vertices.
func DefaultLFR(n int) LFRParams { return lfr.Default(n) }

// GenerateLFR builds an LFR benchmark graph with planted overlapping
// ground-truth communities.
func GenerateLFR(p LFRParams) (*Graph, *Cover, error) {
	res, err := lfr.Generate(p)
	if err != nil {
		return nil, nil, err
	}
	return res.Graph, res.Truth, nil
}

// WebGraphParams parameterizes the scale-free web-graph generator used as
// the stand-in for the paper's eu-2015-tpd dataset.
type WebGraphParams = webgraph.Params

// DefaultWebGraph returns web-crawl-shaped parameters for n vertices.
func DefaultWebGraph(n int) WebGraphParams { return webgraph.Default(n) }

// GenerateWebGraph builds the web-graph substitute.
func GenerateWebGraph(p WebGraphParams) (*Graph, error) { return webgraph.Generate(p) }

// Version is the library version.
const Version = "1.0.0"
