package rslpa_test

import (
	"bytes"
	"fmt"
	"testing"

	"rslpa"
	"rslpa/internal/dynamic"
)

// The cross-mode persistence suite: a checkpoint saved under ANY execution
// mode (worker count × transport) must restore under any OTHER mode with a
// bit-identical label matrix, and the restored detector must then absorb
// further Update batches and extract Communities exactly like a detector
// that never checkpointed.

// checkpointFixture builds the shared scenario: a web-shaped graph, a first
// edit batch applied before the save point, and a second batch applied
// after the restore.
func checkpointFixture(t *testing.T) (g *rslpa.Graph, batch1, batch2 []rslpa.Edit) {
	t.Helper()
	g, err := rslpa.GenerateWebGraph(rslpa.DefaultWebGraph(400))
	if err != nil {
		t.Fatal(err)
	}
	if batch1, err = dynamic.Batch(g, 60, 31); err != nil {
		t.Fatal(err)
	}
	g2 := g.Clone()
	g2.Apply(batch1)
	if batch2, err = dynamic.Batch(g2, 60, 32); err != nil {
		t.Fatal(err)
	}
	return g, batch1, batch2
}

// labelsOf snapshots the full label matrix of a detector.
func labelsOf(g *rslpa.Graph, d *rslpa.Detector) map[uint32][]uint32 {
	out := make(map[uint32][]uint32, g.NumVertices())
	g.ForEachVertex(func(v uint32) {
		out[v] = append([]uint32(nil), d.Labels(v)...)
	})
	return out
}

func requireEqualLabels(t *testing.T, tag string, want, got map[uint32][]uint32) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: vertex sets differ: %d vs %d", tag, len(want), len(got))
	}
	for v, a := range want {
		b, ok := got[v]
		if !ok || len(a) != len(b) {
			t.Fatalf("%s: vertex %d sequence missing or mis-sized", tag, v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: vertex %d slot %d: %d vs %d", tag, v, i, a[i], b[i])
			}
		}
	}
}

func requireEqualResults(t *testing.T, tag string, want, got *rslpa.Result) {
	t.Helper()
	if !want.Communities.Equal(got.Communities) {
		t.Fatalf("%s: covers differ", tag)
	}
	if want.Tau1 != got.Tau1 || want.Tau2 != got.Tau2 || want.Entropy != got.Entropy ||
		want.Strong != got.Strong || want.Weak != got.Weak {
		t.Fatalf("%s: extraction metadata differs: %+v vs %+v", tag, want, got)
	}
}

func TestCheckpointCrossModeEquivalence(t *testing.T) {
	g, batch1, batch2 := checkpointFixture(t)
	cfg := rslpa.Config{T: 20, Seed: 77}

	// The uninterrupted reference: sequential, never checkpointed.
	ref, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Update(batch1); err != nil {
		t.Fatal(err)
	}
	gAfter1 := g.Clone()
	gAfter1.Apply(batch1)
	wantAfter1 := labelsOf(gAfter1, ref)
	if _, err := ref.Update(batch2); err != nil {
		t.Fatal(err)
	}
	gAfter2 := gAfter1.Clone()
	gAfter2.Apply(batch2)
	wantAfter2 := labelsOf(gAfter2, ref)
	wantRes, err := ref.Communities()
	if err != nil {
		t.Fatal(err)
	}

	// loadP picks a worker count different from the save-side one.
	loadP := map[int]int{0: 4, 2: 3, 3: 1, 7: 2}

	for _, saveP := range []int{0, 2, 3, 7} {
		for _, saveTCP := range []bool{false, true} {
			if saveP == 0 && saveTCP {
				continue // sequential has no transport
			}
			saveCfg := cfg
			saveCfg.Workers = saveP
			saveCfg.TCP = saveTCP
			tag := fmt.Sprintf("save[P=%d tcp=%v]", saveP, saveTCP)

			det, err := rslpa.Detect(g, saveCfg)
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if _, err := det.Update(batch1); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			var buf bytes.Buffer
			if err := det.Save(&buf); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			det.Close()
			blob := buf.Bytes()

			for _, loadTCP := range []bool{false, true} {
				p := loadP[saveP]
				if p <= 1 && loadTCP {
					continue
				}
				ltag := fmt.Sprintf("%s->load[P=%d tcp=%v]", tag, p, loadTCP)
				restored, err := rslpa.LoadDetector(bytes.NewReader(blob),
					rslpa.Config{Workers: p, TCP: loadTCP})
				if err != nil {
					t.Fatalf("%s: %v", ltag, err)
				}
				requireEqualLabels(t, ltag+" at save point", wantAfter1, labelsOf(gAfter1, restored))
				if _, err := restored.Update(batch2); err != nil {
					t.Fatalf("%s: %v", ltag, err)
				}
				requireEqualLabels(t, ltag+" after resume", wantAfter2, labelsOf(gAfter2, restored))
				res, err := restored.Communities()
				if err != nil {
					t.Fatalf("%s: %v", ltag, err)
				}
				requireEqualResults(t, ltag, wantRes, res)
				restored.Close()
			}
		}
	}
}

// TestCheckpointAcceptanceP4 pins the issue's acceptance criterion
// verbatim: a detector saved at P=4 and loaded at P=2 (and at P=1) resumes
// Update/Communities bit-identically to an uninterrupted run, on both
// transports.
func TestCheckpointAcceptanceP4(t *testing.T) {
	g, batch1, batch2 := checkpointFixture(t)
	cfg := rslpa.Config{T: 20, Seed: 5}

	ref, err := rslpa.Detect(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.Update(batch1); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Update(batch2); err != nil {
		t.Fatal(err)
	}
	gFinal := g.Clone()
	gFinal.Apply(batch1)
	gFinal.Apply(batch2)
	want := labelsOf(gFinal, ref)
	wantRes, err := ref.Communities()
	if err != nil {
		t.Fatal(err)
	}

	for _, saveTCP := range []bool{false, true} {
		saveCfg := cfg
		saveCfg.Workers = 4
		saveCfg.TCP = saveTCP
		det, err := rslpa.Detect(g, saveCfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := det.Update(batch1); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := det.Save(&buf); err != nil {
			t.Fatal(err)
		}
		det.Close()

		for _, p := range []int{2, 1} {
			tag := fmt.Sprintf("saveTCP=%v loadP=%d", saveTCP, p)
			restored, err := rslpa.LoadDetector(bytes.NewReader(buf.Bytes()), rslpa.Config{Workers: p})
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			if _, err := restored.Update(batch2); err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			requireEqualLabels(t, tag, want, labelsOf(gFinal, restored))
			res, err := restored.Communities()
			if err != nil {
				t.Fatalf("%s: %v", tag, err)
			}
			requireEqualResults(t, tag, wantRes, res)
			restored.Close()
		}
	}
}
