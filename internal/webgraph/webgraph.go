// Package webgraph generates the scale-free graphs that stand in for the
// paper's real-world dataset eu-2015-tpd (a 2015 crawl of European private
// domains: 6.65 M pages, 170 M hyperlinks; Table II).
//
// The original corpus is distributed in WebGraph/LLP compressed form and is
// not available offline, and the experiments that use it (Figures 8 and 9)
// measure *efficiency only* — what matters is a large sparse graph with the
// heavy-tailed degree distribution and local clustering of a web crawl.
// The generator uses the copy model (Kumar et al.): each new page links to
// d targets, each chosen either uniformly at random or by copying a link
// from a random earlier page — the classic preferential-attachment
// mechanism that yields a power-law in-degree distribution and the
// hub-dominated structure of the web. Directions, duplicate links and
// self-loops are then discarded exactly as the paper's preprocessing does.
package webgraph

import (
	"fmt"

	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// Params configures the generator.
type Params struct {
	// N is the number of pages (vertices).
	N int
	// OutDegree is the number of links each new page attempts; the
	// realized average degree is slightly below 2·OutDegree after
	// de-duplication.
	OutDegree int
	// CopyProb is the probability that a link copies the destination of
	// an existing link instead of choosing uniformly; higher values give
	// heavier tails. The web-typical value is around 0.5-0.8.
	CopyProb float64
	// Seed drives all randomness.
	Seed uint64
}

// Default returns parameters that produce a graph with the shape of the
// paper's dataset scaled to n vertices: average degree ≈ 25 and a
// power-law tail.
func Default(n int) Params {
	return Params{N: n, OutDegree: 13, CopyProb: 0.6, Seed: 1}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	switch {
	case p.N < 2:
		return fmt.Errorf("webgraph: N=%d too small", p.N)
	case p.OutDegree < 1:
		return fmt.Errorf("webgraph: out-degree %d < 1", p.OutDegree)
	case p.OutDegree >= p.N:
		return fmt.Errorf("webgraph: out-degree %d must be < N=%d", p.OutDegree, p.N)
	case p.CopyProb < 0 || p.CopyProb > 1:
		return fmt.Errorf("webgraph: copy probability %.3f outside [0,1]", p.CopyProb)
	}
	return nil
}

// Generate builds the graph. Identical Params produce identical graphs.
func Generate(p Params) (*graph.Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := rng.New(p.Seed)
	g := graph.NewWithCapacity(p.N, p.N*p.OutDegree)

	// targets records every link destination ever created; copying a
	// uniform element of it realizes preferential attachment (a page is
	// copied proportionally to its current in-degree).
	targets := make([]uint32, 0, p.N*p.OutDegree)

	// Seed nucleus: a small clique so early pages have link targets.
	nucleus := p.OutDegree + 1
	if nucleus > p.N {
		nucleus = p.N
	}
	for u := 0; u < nucleus; u++ {
		g.AddVertex(uint32(u))
		for v := 0; v < u; v++ {
			if g.AddEdge(uint32(u), uint32(v)) {
				targets = append(targets, uint32(u), uint32(v))
			}
		}
	}

	for u := nucleus; u < p.N; u++ {
		g.AddVertex(uint32(u))
		for k := 0; k < p.OutDegree; k++ {
			var v uint32
			if r.Float64() < p.CopyProb && len(targets) > 0 {
				v = targets[r.Intn(len(targets))]
			} else {
				v = uint32(r.Intn(u))
			}
			if g.AddEdge(uint32(u), v) {
				targets = append(targets, uint32(u), v)
			}
		}
	}
	return g, nil
}

// TableII formats the statistics of g like the paper's Table II. The paper
// reports separate max in/out degrees for the directed crawl; after
// binarization only the undirected degree remains, which is what both
// implementations actually operate on.
func TableII(g *graph.Graph) string {
	s := g.ComputeStats()
	return fmt.Sprintf(
		"Statistics              Value\n"+
			"# nodes                 %d\n"+
			"# edges                 %d\n"+
			"avg. degree             %.3f\n"+
			"max degree (undirected) %d\n",
		s.Vertices, s.Edges, s.AvgDegree, s.MaxDegree)
}
