package webgraph

import (
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	if err := Default(1000).Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{N: 1, OutDegree: 1, CopyProb: 0.5},
		{N: 100, OutDegree: 0, CopyProb: 0.5},
		{N: 100, OutDegree: 100, CopyProb: 0.5},
		{N: 100, OutDegree: 5, CopyProb: 1.5},
		{N: 100, OutDegree: 5, CopyProb: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Default(500)
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("same params produced different graphs")
	}
}

func TestGenerateShape(t *testing.T) {
	p := Default(5000)
	g, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if s.Vertices != p.N {
		t.Fatalf("vertices %d", s.Vertices)
	}
	// Average degree ≈ 2·OutDegree less deduplication losses.
	if s.AvgDegree < float64(p.OutDegree) || s.AvgDegree > 2.2*float64(p.OutDegree) {
		t.Fatalf("avg degree %.2f outside [d, 2.2d]", s.AvgDegree)
	}
	if s.Isolated != 0 {
		t.Fatalf("%d isolated pages", s.Isolated)
	}
}

func TestHeavyTail(t *testing.T) {
	// The copy model must produce hubs: the max degree should far exceed
	// the average (a Poisson/uniform graph would have max ≈ avg + a few
	// sigma).
	g, err := Generate(Default(20000))
	if err != nil {
		t.Fatal(err)
	}
	s := g.ComputeStats()
	if float64(s.MaxDegree) < 8*s.AvgDegree {
		t.Fatalf("max degree %d vs avg %.1f: tail too light for a web graph",
			s.MaxDegree, s.AvgDegree)
	}
}

func TestCopyProbZeroStillConnectedish(t *testing.T) {
	// Pure uniform attachment (no copying) is the light-tail baseline;
	// everything must still be wired and valid.
	g, err := Generate(Params{N: 2000, OutDegree: 5, CopyProb: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.ComputeStats().Isolated != 0 {
		t.Fatal("isolated vertices with uniform attachment")
	}
}

func TestTinyGraph(t *testing.T) {
	g, err := Generate(Params{N: 5, OutDegree: 2, CopyProb: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 5 {
		t.Fatalf("vertices %d", g.NumVertices())
	}
}

func TestTableII(t *testing.T) {
	g, err := Generate(Default(300))
	if err != nil {
		t.Fatal(err)
	}
	out := TableII(g)
	if !strings.Contains(out, "# nodes") || !strings.Contains(out, "300") {
		t.Fatalf("TableII output: %q", out)
	}
}
