// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the rSLPA implementation.
//
// Community detection by label propagation is a randomized process; the
// incremental Correction Propagation algorithm additionally requires that a
// kept label "can still be treated as uniformly picked" after graph changes.
// Both concerns are easiest to reason about (and to test) when every random
// decision is drawn from an explicitly seeded, splittable generator:
//
//   - splitmix64 is used to derive independent stream seeds from a
//     (seed, vertex, iteration) triple, so results do not depend on the
//     number of partitions or on goroutine scheduling.
//   - xoshiro256** is the workhorse generator for each stream.
//
// All bounded-integer draws use Lemire-style rejection so they are exactly
// uniform (no modulo bias); exact uniformity matters because the paper's
// Theorems 2-5 argue about exactly uniform picks.
package rng

import "math/bits"

// SplitMix64 advances a splitmix64 state and returns the next output.
// It is the standard seeding/stream-splitting function recommended for
// xoshiro-family generators.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x to a well-distributed 64-bit value (one splitmix64 step
// with x as the state). It is used to combine seeds with vertex IDs and
// iteration numbers into independent stream seeds.
func Mix64(x uint64) uint64 {
	return SplitMix64(&x)
}

// Source is a xoshiro256** pseudo-random generator. The zero value is not
// usable; construct with New. Source is not safe for concurrent use; each
// goroutine (or each vertex stream) should own its own Source.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, guaranteeing a
// non-degenerate internal state for any seed value (including zero).
func New(seed uint64) *Source {
	var src Source
	src.Seed(seed)
	return &src
}

// NewStream returns a Source whose state is derived from a base seed and a
// stream identifier. Streams with distinct ids are statistically
// independent, which lets per-vertex decisions be drawn concurrently and
// deterministically regardless of partitioning.
func NewStream(seed, stream uint64) *Source {
	return New(Mix64(seed) ^ Mix64(stream^0xa0761d6478bd642f))
}

// Seed resets the generator state from seed.
func (r *Source) Seed(seed uint64) {
	state := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&state)
	}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9

	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)

	return result
}

// Intn returns an exactly uniform integer in [0, n). It panics if n <= 0,
// matching math/rand semantics.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns an exactly uniform integer in [0, n) using Lemire's
// multiply-shift method with rejection. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		// Rejection zone: resample until the low product clears the
		// threshold, which guarantees exact uniformity.
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *Source) Bool() bool {
	return r.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n), like rand.Perm.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, like
// rand.Shuffle.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
