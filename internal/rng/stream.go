package rng

import "math/bits"

// Stream is a tiny splitmix64-based generator intended for "one decision
// site" randomness: the label propagation algorithms derive one Stream per
// (seed, vertex, iteration) triple so that every random pick is a pure
// function of those coordinates. This makes results independent of the
// number of partitions, the scheduling of goroutines, and the order in
// which vertices are processed — the property the distributed/sequential
// equivalence tests rely on.
//
// Stream is a value type; copying it forks the sequence.
type Stream struct {
	state uint64
}

// StreamOf derives an independent Stream from a base seed and up to three
// coordinate values (e.g. epoch, vertex, iteration).
func StreamOf(seed uint64, coords ...uint64) Stream {
	s := Mix64(seed ^ 0x2545f4914f6cdd1d)
	for i, c := range coords {
		s = Mix64(s ^ Mix64(c+uint64(i)*0x9e3779b97f4a7c15))
	}
	return Stream{state: s}
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	return SplitMix64(&s.state)
}

// Uint64n returns an exactly uniform integer in [0, n); it panics if n == 0.
func (s *Stream) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Stream.Uint64n with zero n")
	}
	// Lemire multiply-shift with rejection, as in Source.Uint64n.
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns an exactly uniform integer in [0, n); it panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Stream.Intn with non-positive n")
	}
	return int(s.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
