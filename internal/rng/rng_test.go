package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("%d/64 identical outputs for different seeds", same)
	}
}

func TestZeroSeedWorks(t *testing.T) {
	r := New(0)
	x, y := r.Uint64(), r.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("zero seed produced degenerate zero state")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 30} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

// TestUint64nUniform is a chi-square test over a small modulus.
func TestUint64nUniform(t *testing.T) {
	r := New(99)
	const n = 10
	const draws = 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	expected := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; P(chi2 > 27.9) ≈ 0.001.
	if chi2 > 27.9 {
		t.Fatalf("chi-square %.2f exceeds 27.9 — not uniform: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean %.4f far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(5)
	xs := []int{1, 2, 2, 3, 3, 3, 9}
	orig := map[int]int{1: 1, 2: 2, 3: 3, 9: 1}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := map[int]int{}
	for _, x := range xs {
		got[x]++
	}
	for k, v := range orig {
		if got[k] != v {
			t.Fatalf("multiset changed: %v", xs)
		}
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := StreamOf(1, 2, 3, 4)
	b := StreamOf(1, 2, 3, 4)
	for i := 0; i < 50; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same coordinates diverged")
		}
	}
}

func TestStreamCoordinatesIndependent(t *testing.T) {
	// Different coordinates must give (essentially) uncorrelated streams,
	// and coordinate order must matter.
	a := StreamOf(1, 2, 3)
	b := StreamOf(1, 3, 2)
	c := StreamOf(2, 2, 3)
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv || av == cv || bv == cv {
		t.Fatalf("stream collisions: %x %x %x", av, bv, cv)
	}
}

func TestStreamValueSemantics(t *testing.T) {
	a := StreamOf(9, 1)
	b := a // copy forks the stream
	x := a.Uint64()
	y := b.Uint64()
	if x != y {
		t.Fatal("copied stream should replay the same sequence")
	}
}

func TestStreamUint64nUniform(t *testing.T) {
	const n = 7
	const draws = 70000
	counts := make([]int, n)
	s := StreamOf(42, 0)
	for i := 0; i < draws; i++ {
		counts[s.Uint64n(n)]++
	}
	expected := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Fatalf("bucket %d: %d vs expected %.0f", i, c, expected)
		}
	}
}

func TestStreamPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := StreamOf(1)
	s.Uint64n(0)
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x123456789abcdef)
	for bit := uint(0); bit < 64; bit += 7 {
		flipped := Mix64(0x123456789abcdef ^ (1 << bit))
		diff := popcount(base ^ flipped)
		if diff < 10 || diff > 54 {
			t.Fatalf("bit %d: only %d output bits changed", bit, diff)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
