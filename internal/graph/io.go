package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list ("u v" per line).
// Lines that are empty or start with '#' or '%' are skipped, so the common
// SNAP and WebGraph-export formats load directly. Directions, duplicate
// edges and self-loops are dropped, which is exactly the binarization step
// the paper applies to eu-2015-tpd ("remove the direction of edges, as well
// as multiple edges and self-loops").
func ReadEdgeList(r io.Reader) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineno, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, fields[1], err)
		}
		if u == v {
			continue // drop self-loops
		}
		g.AddEdge(VertexID(u), VertexID(v)) // AddEdge drops duplicates
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read edge list: %w", err)
	}
	return g, nil
}

// WriteEdgeList writes the graph as "u v" lines with u < v, in ascending
// edge order, suitable for ReadEdgeList round-trips.
func (g *Graph) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, k := range g.Edges() {
		u, v := UnpackEdgeKey(k)
		if _, err := fmt.Fprintf(bw, "%d %d\n", u, v); err != nil {
			return fmt.Errorf("graph: write edge list: %w", err)
		}
	}
	return bw.Flush()
}
