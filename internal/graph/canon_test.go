package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

func canonGraph() *Graph {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	return g
}

func TestCanonicalizeOrientsAndSorts(t *testing.T) {
	g := canonGraph()
	got := Canonicalize(g, []Edit{
		{Op: Insert, U: 9, V: 4}, // reversed orientation
		{Op: Insert, U: 0, V: 5},
	})
	want := []Edit{
		{Op: Insert, U: 0, V: 5},
		{Op: Insert, U: 4, V: 9},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCanonicalizeDropsSelfLoopsAndNoOps(t *testing.T) {
	g := canonGraph()
	got := Canonicalize(g, []Edit{
		{Op: Insert, U: 7, V: 7}, // self-loop
		{Op: Insert, U: 0, V: 1}, // already present
		{Op: Delete, U: 5, V: 6}, // absent
		{Op: Delete, U: 3, V: 3}, // self-loop
	})
	if got != nil {
		t.Fatalf("expected empty canonical batch, got %v", got)
	}
}

func TestCanonicalizeCancelsPairs(t *testing.T) {
	g := canonGraph()
	// Insert then delete of an absent edge nets out.
	if got := Canonicalize(g, []Edit{
		{Op: Insert, U: 5, V: 6},
		{Op: Delete, U: 6, V: 5},
	}); got != nil {
		t.Fatalf("insert+delete not cancelled: %v", got)
	}
	// Delete then re-insert of a present edge nets out.
	if got := Canonicalize(g, []Edit{
		{Op: Delete, U: 1, V: 2},
		{Op: Insert, U: 2, V: 1},
	}); got != nil {
		t.Fatalf("delete+insert not cancelled: %v", got)
	}
	// Delete then insert then delete again of a present edge nets to one delete.
	got := Canonicalize(g, []Edit{
		{Op: Delete, U: 1, V: 2},
		{Op: Insert, U: 1, V: 2},
		{Op: Delete, U: 1, V: 2},
	})
	want := []Edit{{Op: Delete, U: 1, V: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestCanonicalizeDeduplicates(t *testing.T) {
	g := canonGraph()
	got := Canonicalize(g, []Edit{
		{Op: Insert, U: 4, V: 5},
		{Op: Insert, U: 5, V: 4},
		{Op: Insert, U: 4, V: 5},
	})
	want := []Edit{{Op: Insert, U: 4, V: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

// The canonical batch is a pure function of the edit multiset's net effect:
// any permutation of the raw batch canonicalizes identically.
func TestCanonicalizeOrderIndependent(t *testing.T) {
	g := canonGraph()
	raw := []Edit{
		{Op: Insert, U: 0, V: 3},
		{Op: Delete, U: 1, V: 2},
		{Op: Insert, U: 5, V: 9},
		{Op: Insert, U: 9, V: 5}, // duplicate, reversed
		{Op: Delete, U: 2, V: 3},
	}
	want := Canonicalize(g, raw)
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		perm := make([]Edit, len(raw))
		for i, j := range r.Perm(len(raw)) {
			perm[i] = raw[j]
		}
		if got := Canonicalize(g, perm); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %d: got %v want %v", trial, got, want)
		}
	}
}

// Applying the canonical batch yields the same edge set as applying the raw
// batch in order, for random graphs and random raw batches.
func TestCanonicalizePreservesNetEffect(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := New()
		for i := 0; i < 40; i++ {
			g.AddEdge(uint32(r.Intn(12)), uint32(r.Intn(12)))
		}
		raw := make([]Edit, 0, 60)
		for i := 0; i < 60; i++ {
			op := Insert
			if r.Intn(2) == 0 {
				op = Delete
			}
			raw = append(raw, Edit{Op: op, U: uint32(r.Intn(12)), V: uint32(r.Intn(12))})
		}
		canon := Canonicalize(g, raw)

		perEdge := make(map[uint64]int)
		for _, e := range canon {
			if e.U >= e.V {
				t.Fatalf("trial %d: edit %v not oriented", trial, e)
			}
			perEdge[EdgeKey(e.U, e.V)]++
		}
		for k, n := range perEdge {
			if n > 1 {
				u, v := UnpackEdgeKey(k)
				t.Fatalf("trial %d: edge %d-%d edited %d times", trial, u, v, n)
			}
		}

		a, b := g.Clone(), g.Clone()
		a.Apply(raw)
		b.Apply(canon)
		if a.NumEdges() != b.NumEdges() {
			t.Fatalf("trial %d: raw → %d edges, canonical → %d", trial, a.NumEdges(), b.NumEdges())
		}
		for _, k := range a.Edges() {
			u, v := UnpackEdgeKey(k)
			if !b.HasEdge(u, v) {
				t.Fatalf("trial %d: edge %d-%d missing after canonical apply", trial, u, v)
			}
		}
	}
}

func TestCoalescerIncremental(t *testing.T) {
	g := canonGraph()
	c := NewCoalescer(g)
	if d := c.Add(Edit{Op: Insert, U: 4, V: 5}); d != 1 {
		t.Fatalf("fresh insert delta %d", d)
	}
	if d := c.Add(Edit{Op: Insert, U: 5, V: 4}); d != 0 {
		t.Fatalf("duplicate insert delta %d", d)
	}
	if d := c.Add(Edit{Op: Delete, U: 4, V: 5}); d != -1 {
		t.Fatalf("cancelling delete delta %d", d)
	}
	if c.Len() != 0 {
		t.Fatalf("len %d after cancellation", c.Len())
	}
	c.Add(Edit{Op: Delete, U: 0, V: 1})
	c.Add(Edit{Op: Insert, U: 8, V: 2})
	batch := c.Flush()
	want := []Edit{
		{Op: Delete, U: 0, V: 1},
		{Op: Insert, U: 2, V: 8},
	}
	if !reflect.DeepEqual(batch, want) {
		t.Fatalf("flush got %v want %v", batch, want)
	}
	if c.Len() != 0 || c.Flush() != nil {
		t.Fatal("coalescer not reset by Flush")
	}
}
