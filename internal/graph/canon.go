package graph

import "sort"

// Canonical edit batches.
//
// A raw edit batch may contain self-loops, edits that do not change the
// graph (inserting a present edge, deleting an absent one), several edits
// of the same edge in either orientation, and insert/delete pairs that net
// out. The Coalescer folds such a stream into its *canonical* form against
// a reference graph: at most one edit per edge, each oriented U < V, sorted
// by packed edge key, containing exactly the edits whose application
// changes the edge set. Applying the canonical batch to the reference graph
// produces the same vertex and edge sets as applying the raw stream in
// order — with one deliberate exception: vertices that would only be
// created by edits that later cancel (insert u-v then delete u-v of a
// never-seen edge) are not materialized.
//
// Canonical batches matter for reproducibility: the incremental update path
// appends to adjacency lists in edit order and random picks index into
// those lists, so two raw batches with the same net effect but different
// orderings would otherwise drive detection to different (equally valid)
// results. After canonicalization the applied batch is a pure function of
// the net edit set, which is what lets the streaming service coalesce
// concurrent producers and still match a serial caller bit for bit.

// Coalescer incrementally folds a stream of edge edits into the pending
// canonical batch. The reference graph is only read (HasEdge) and must not
// be mutated between the first Add after a Flush and the Flush that
// consumes those edits. A Coalescer is not safe for concurrent use.
type Coalescer struct {
	g *Graph
	// pending maps the packed key of every edge whose net state differs
	// from the reference graph to its *original* presence there (true →
	// the net edit is a delete, false → an insert).
	pending map[uint64]bool
}

// NewCoalescer returns an empty coalescer folding edits against g.
func NewCoalescer(g *Graph) *Coalescer {
	return &Coalescer{g: g, pending: make(map[uint64]bool)}
}

// Add folds one edit into the pending batch. It returns the change in net
// batch size: +1 if the edit introduced a net change, -1 if it cancelled a
// pending one, 0 if it was absorbed (self-loop, no-op against the graph,
// or duplicate of a pending edit).
func (c *Coalescer) Add(e Edit) int {
	if e.U == e.V {
		return 0
	}
	k := EdgeKey(e.U, e.V)
	want := e.Op == Insert
	if orig, ok := c.pending[k]; ok {
		// The edge has a pending net change, so its current state is
		// !orig. Flipping back to the original cancels; repeating the
		// pending change is a duplicate.
		if want == orig {
			delete(c.pending, k)
			return -1
		}
		return 0
	}
	if want == c.g.HasEdge(e.U, e.V) {
		return 0
	}
	c.pending[k] = !want
	return 1
}

// Len reports the current net batch size.
func (c *Coalescer) Len() int { return len(c.pending) }

// Flush returns the pending edits as a canonical batch — one edit per
// edge, U < V, ascending edge-key order — and resets the coalescer. It
// returns nil when nothing is pending.
func (c *Coalescer) Flush() []Edit {
	if len(c.pending) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(c.pending))
	for k := range c.pending {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	batch := make([]Edit, len(keys))
	for i, k := range keys {
		u, v := UnpackEdgeKey(k)
		op := Insert
		if c.pending[k] { // originally present → net delete
			op = Delete
		}
		batch[i] = Edit{Op: op, U: u, V: v}
	}
	clear(c.pending)
	return batch
}

// Canonicalize reduces batch to its canonical form against g; see the
// package comment on canonical batches. g is not mutated.
func Canonicalize(g *Graph, batch []Edit) []Edit {
	c := NewCoalescer(g)
	for _, e := range batch {
		c.Add(e)
	}
	return c.Flush()
}
