package graph

import (
	"strings"
	"testing"
)

func TestReadWeightedEdgeListThreshold(t *testing.T) {
	in := `# weighted network
1 2 0.9
2 3 0.4
3 4 0.7
4 4 5.0
5 6
`
	g, err := ReadWeightedEdgeList(strings.NewReader(in), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(3, 4) {
		t.Fatal("edges above threshold missing")
	}
	if g.HasEdge(2, 3) {
		t.Fatal("edge below threshold kept")
	}
	if g.HasEdge(4, 4) {
		t.Fatal("self-loop kept")
	}
	if !g.HasEdge(5, 6) {
		t.Fatal("implicit weight-1 edge dropped")
	}
}

func TestReadWeightedEdgeListEitherDirection(t *testing.T) {
	in := "1 2 0.2\n2 1 0.8\n"
	g, err := ReadWeightedEdgeList(strings.NewReader(in), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(1, 2) {
		t.Fatal("edge must be kept when either direction clears the threshold")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestReadWeightedEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "x 2 0.5\n", "1 y 0.5\n", "1 2 zzz\n"} {
		if _, err := ReadWeightedEdgeList(strings.NewReader(in), 0); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestReadWeightedEdgeListZeroThresholdKeepsAll(t *testing.T) {
	g, err := ReadWeightedEdgeList(strings.NewReader("1 2 0.0001\n3 4 100\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}
