package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestZeroValueUsable(t *testing.T) {
	var g Graph
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge on zero value failed")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeKeySymmetric(t *testing.T) {
	check := func(u, v uint32) bool {
		if EdgeKey(u, v) != EdgeKey(v, u) {
			return false
		}
		a, b := UnpackEdgeKey(EdgeKey(u, v))
		if u <= v {
			return a == u && b == v
		}
		return a == v && b == u
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddEdgeRejectsSelfLoopsAndDuplicates(t *testing.T) {
	g := New()
	if g.AddEdge(3, 3) {
		t.Fatal("self-loop accepted")
	}
	if !g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Fatal("duplicate (reversed) edge accepted")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !g.RemoveEdge(2, 1) { // reversed order must work
		t.Fatal("RemoveEdge failed")
	}
	if g.RemoveEdge(1, 2) {
		t.Fatal("double remove succeeded")
	}
	if g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("wrong edge removed")
	}
	if g.Degree(2) != 1 || g.Degree(1) != 0 {
		t.Fatalf("degrees: %d %d", g.Degree(2), g.Degree(1))
	}
}

func TestVertexLifecycle(t *testing.T) {
	g := New()
	if !g.AddVertex(5) || g.AddVertex(5) {
		t.Fatal("AddVertex semantics")
	}
	g.AddEdge(5, 6)
	g.AddEdge(5, 7)
	if !g.RemoveVertex(5) {
		t.Fatal("RemoveVertex failed")
	}
	if g.RemoveVertex(5) {
		t.Fatal("double remove succeeded")
	}
	if g.HasEdge(5, 6) || g.HasEdge(5, 7) {
		t.Fatal("incident edges survived vertex removal")
	}
	if g.NumVertices() != 2 || g.NumEdges() != 0 {
		t.Fatalf("%d vertices %d edges", g.NumVertices(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsAndIteration(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 3)
	if len(g.Neighbors(0)) != 3 {
		t.Fatalf("neighbors: %v", g.Neighbors(0))
	}
	if g.Neighbors(99) != nil {
		t.Fatal("absent vertex has neighbors")
	}
	var edges int
	g.ForEachEdge(func(u, v VertexID) {
		if u >= v {
			t.Fatalf("ForEachEdge order violated: %d >= %d", u, v)
		}
		edges++
	})
	if edges != 3 {
		t.Fatalf("iterated %d edges", edges)
	}
	vs := g.Vertices()
	if len(vs) != 4 || vs[0] != 0 || vs[3] != 3 {
		t.Fatalf("vertices: %v", vs)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	c := g.Clone()
	if !g.Equal(c) || !c.Equal(g) {
		t.Fatal("clone not equal")
	}
	c.AddEdge(3, 4)
	if g.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if g.HasEdge(3, 4) {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestApplyBatch(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	changed := g.Apply([]Edit{
		{Op: Insert, U: 2, V: 3},
		{Op: Insert, U: 1, V: 2}, // duplicate: no-op
		{Op: Delete, U: 1, V: 2},
		{Op: Delete, U: 8, V: 9}, // absent: no-op
	})
	if changed != 2 {
		t.Fatalf("changed = %d, want 2", changed)
	}
	if g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("batch applied incorrectly")
	}
}

func TestOpString(t *testing.T) {
	if Insert.String() != "insert" || Delete.String() != "delete" {
		t.Fatal("Op.String")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := New()
	g.AddEdge(1, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: break symmetry by hand.
	g.adj[1] = append(g.adj[1], 7)
	if err := g.Validate(); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment
% another comment
1 2
2 3 extra-ignored
3 3
2 1
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d (self-loops and duplicates must be dropped)", g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 3) {
		t.Fatal("edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	for _, in := range []string{"1\n", "a b\n", "1 x\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("no error for %q", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := New()
	g.AddEdge(5, 1)
	g.AddEdge(2, 9)
	g.AddEdge(1, 2)
	var buf bytes.Buffer
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	h, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(h) {
		t.Fatal("round trip lost edges")
	}
}

func TestComputeStats(t *testing.T) {
	g := New()
	g.AddVertex(9) // isolated
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	s := g.ComputeStats()
	if s.Vertices != 4 || s.Edges != 2 || s.MaxDegree != 2 || s.MinDegree != 0 || s.Isolated != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.AvgDegree != 1 {
		t.Fatalf("avg degree %v", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "# nodes      4") {
		t.Fatalf("String(): %q", s.String())
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddVertex(5)
	degrees, counts := g.DegreeHistogram()
	// degrees: 0 (vertex 5), 1 (vertices 1,2), 2 (vertex 0)
	if len(degrees) != 3 || degrees[0] != 0 || counts[0] != 1 || degrees[1] != 1 || counts[1] != 2 || degrees[2] != 2 || counts[2] != 1 {
		t.Fatalf("histogram: %v %v", degrees, counts)
	}
}

// TestRandomOpsInvariant drives random mutations and re-validates.
func TestRandomOpsInvariant(t *testing.T) {
	check := func(ops []uint32) bool {
		g := New()
		for _, op := range ops {
			u := VertexID(op % 17)
			v := VertexID((op / 17) % 17)
			switch op % 4 {
			case 0, 1:
				g.AddEdge(u, v)
			case 2:
				g.RemoveEdge(u, v)
			case 3:
				if op%8 == 3 {
					g.RemoveVertex(u)
				} else {
					g.AddVertex(u)
				}
			}
		}
		return g.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxVertexIDCountsDeleted(t *testing.T) {
	g := New()
	g.AddEdge(0, 9)
	g.RemoveVertex(9)
	if g.MaxVertexID() != 10 {
		t.Fatalf("MaxVertexID = %d, want 10 (ID space keeps deleted slots)", g.MaxVertexID())
	}
}

func TestRestoreAdjacencyPreservesOrder(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 3)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	g.RemoveEdge(0, 1) // swap-removal reorders 0's list: [2, 3]
	g.AddVertex(7)     // isolated vertex must survive the round trip

	present := g.Vertices()
	adj := make([][]VertexID, g.MaxVertexID())
	for _, v := range present {
		adj[v] = append([]VertexID(nil), g.Neighbors(v)...)
	}
	r, err := RestoreAdjacency(present, adj)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(g) {
		t.Fatal("restored graph differs")
	}
	for _, v := range present {
		want, got := g.Neighbors(v), r.Neighbors(v)
		if len(want) != len(got) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("vertex %d: neighbor order not preserved: %v vs %v", v, want, got)
			}
		}
	}
}

func TestRestoreAdjacencyRejectsBadInput(t *testing.T) {
	cases := []struct {
		name    string
		present []VertexID
		adj     [][]VertexID
	}{
		{"asymmetric", []VertexID{0, 1}, [][]VertexID{{1}, nil}},
		{"duplicate-neighbor", []VertexID{0, 1}, [][]VertexID{{1, 1}, {0, 0}}},
		{"self-loop", []VertexID{0}, [][]VertexID{{0}}},
		{"absent-neighbor", []VertexID{0}, [][]VertexID{{5}}},
		{"vertex-twice", []VertexID{0, 0}, [][]VertexID{nil}},
	}
	for _, tc := range cases {
		if _, err := RestoreAdjacency(tc.present, tc.adj); err == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
}
