package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadWeightedEdgeList parses a "u v w" edge list and binarizes it: edges
// whose weight is at least threshold are kept (unweighted, undirected),
// everything else is dropped. This is the transformation the paper's
// introduction prescribes for applying rSLPA to arbitrary networks: "any
// network can be transformed to a binary graph by removing the directions
// of edges and applying thresholding on weighted edges."
//
// Lines with only two fields are accepted with an implicit weight of 1, so
// mixed files load too. Comments ('#', '%') and blank lines are skipped;
// self-loops and duplicates are dropped. When both directions of an edge
// appear with different weights, the edge is kept if either one clears the
// threshold.
func ReadWeightedEdgeList(r io.Reader, threshold float64) (*Graph, error) {
	g := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want at least two fields, got %q", lineno, line)
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, fields[0], err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad vertex %q: %v", lineno, fields[1], err)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", lineno, fields[2], err)
			}
		}
		if u == v || w < threshold {
			continue
		}
		g.AddEdge(VertexID(u), VertexID(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read weighted edge list: %w", err)
	}
	return g, nil
}
