package graph

import "testing"

func TestShardGeometry(t *testing.T) {
	if ShardOf(0) != 0 || ShardOf(ShardSize-1) != 0 || ShardOf(ShardSize) != 1 {
		t.Fatalf("ShardOf boundary: %d %d %d", ShardOf(0), ShardOf(ShardSize-1), ShardOf(ShardSize))
	}
	for _, tc := range []struct{ maxID, want int }{
		{0, 0}, {1, 1}, {ShardSize, 1}, {ShardSize + 1, 2}, {3 * ShardSize, 3},
	} {
		if got := NumShards(tc.maxID); got != tc.want {
			t.Fatalf("NumShards(%d) = %d, want %d", tc.maxID, got, tc.want)
		}
	}
}

func TestCloneShardFreezesBoundaryAndTallies(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(ShardSize-1, ShardSize) // straddles the shard 0/1 boundary
	g.AddEdge(ShardSize-1, 2)

	s0, s1 := g.CloneShard(0), g.CloneShard(1)
	if s0.Base != 0 || s1.Base != ShardSize {
		t.Fatalf("bases: %d %d", s0.Base, s1.Base)
	}
	if s0.Present != 4 || s1.Present != 1 {
		t.Fatalf("present: %d %d", s0.Present, s1.Present)
	}
	// Half-edge tallies: the boundary edge contributes one half per side.
	if s0.HalfEdges != 5 || s1.HalfEdges != 1 {
		t.Fatalf("half-edges: %d %d", s0.HalfEdges, s1.HalfEdges)
	}
	if !s0.Has(ShardSize-1) || s0.Has(ShardSize) || !s1.Has(ShardSize) || s1.Has(ShardSize-1) {
		t.Fatal("boundary presence leaked across shards")
	}
	if s0.Degree(ShardSize-1) != 2 || s1.Degree(ShardSize) != 1 {
		t.Fatalf("boundary degrees: %d %d", s0.Degree(ShardSize-1), s1.Degree(ShardSize))
	}
	// Out-of-coverage IDs (including one below Base, which wraps the
	// unsigned offset) are absent, not a panic.
	if s1.Has(0) || s1.Degree(0) != 0 || s1.Neighbors(0) != nil {
		t.Fatal("shard 1 claims vertex 0")
	}
	if s0.Has(2 * ShardSize) {
		t.Fatal("shard 0 claims an ID beyond the graph")
	}
}

func TestCloneShardIsDeepCopy(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	sh := g.CloneShard(0)
	wantDeg := sh.Degree(1)

	g.RemoveEdge(1, 2)
	g.RemoveVertex(0)
	g.AddEdge(5, 6)

	if !sh.Has(0) || sh.Degree(1) != wantDeg || sh.Has(5) {
		t.Fatalf("frozen shard tracked live graph: has(0)=%v deg(1)=%d has(5)=%v",
			sh.Has(0), sh.Degree(1), sh.Has(5))
	}
	if n := sh.Neighbors(1); len(n) != 2 || n[0] != 0 || n[1] != 2 {
		t.Fatalf("frozen neighbors of 1: %v", n)
	}
}

func TestCloneShardEmptyRange(t *testing.T) {
	g := New()
	g.AddEdge(0, 1)
	sh := g.CloneShard(3) // far beyond the ID space
	if sh.Present != 0 || sh.HalfEdges != 0 || len(sh.Exists) != 0 {
		t.Fatalf("out-of-range shard not empty: %+v", sh)
	}
	if sh.Has(3 * ShardSize) {
		t.Fatal("empty shard claims a vertex")
	}
}
