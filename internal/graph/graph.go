// Package graph implements the dynamic, undirected, unweighted ("binary")
// graph substrate that the paper's algorithms operate on.
//
// The representation is tuned for the access patterns of label propagation
// and incremental maintenance:
//
//   - adjacency lists are flat []uint32 slices so that "pick a uniform
//     random neighbor" is a single index operation;
//   - a packed edge set gives O(1) HasEdge, which both the generators and
//     the dynamic-update path rely on;
//   - vertices are dense uint32 IDs (the generators emit 0..N-1), but the
//     structure grows transparently if a larger ID appears.
//
// Graphs are not safe for concurrent mutation; the distributed runtime
// partitions a graph into per-worker shards instead of sharing one.
package graph

import (
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are expected to be small and dense but
// any uint32 value is accepted.
type VertexID = uint32

// EdgeKey packs an undirected edge into a single comparable value.
// EdgeKey(u, v) == EdgeKey(v, u).
func EdgeKey(u, v VertexID) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// UnpackEdgeKey is the inverse of EdgeKey; it returns u <= v.
func UnpackEdgeKey(k uint64) (u, v VertexID) {
	return VertexID(k >> 32), VertexID(k)
}

// Graph is a dynamic undirected binary graph. The zero value is an empty
// graph ready to use.
type Graph struct {
	adj    [][]VertexID
	exists []bool
	edges  map[uint64]struct{}
	n      int // number of present vertices
	m      int // number of edges
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{edges: make(map[uint64]struct{})}
}

// NewWithCapacity returns an empty graph with room pre-allocated for
// vertices with IDs below n and approximately m edges.
func NewWithCapacity(n, m int) *Graph {
	return &Graph{
		adj:    make([][]VertexID, 0, n),
		exists: make([]bool, 0, n),
		edges:  make(map[uint64]struct{}, m),
	}
}

func (g *Graph) init() {
	if g.edges == nil {
		g.edges = make(map[uint64]struct{})
	}
}

func (g *Graph) grow(v VertexID) {
	for int(v) >= len(g.adj) {
		g.adj = append(g.adj, nil)
		g.exists = append(g.exists, false)
	}
}

// NumVertices reports the number of vertices currently in the graph.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges reports the number of edges currently in the graph.
func (g *Graph) NumEdges() int { return g.m }

// MaxVertexID returns the largest vertex ID ever added plus one (i.e. the
// length of the dense ID space), or 0 for an empty graph. Deleted vertices
// still count toward the ID space; callers use this to size per-vertex
// arrays.
func (g *Graph) MaxVertexID() int { return len(g.adj) }

// HasVertex reports whether v is present.
func (g *Graph) HasVertex(v VertexID) bool {
	return int(v) < len(g.exists) && g.exists[v]
}

// AddVertex inserts an isolated vertex. It reports whether the vertex was
// newly added (false if it already existed).
func (g *Graph) AddVertex(v VertexID) bool {
	g.init()
	g.grow(v)
	if g.exists[v] {
		return false
	}
	g.exists[v] = true
	g.n++
	return true
}

// RemoveVertex deletes v and all its incident edges. It reports whether the
// vertex existed.
func (g *Graph) RemoveVertex(v VertexID) bool {
	if !g.HasVertex(v) {
		return false
	}
	for _, u := range g.adj[v] {
		g.removeHalf(u, v)
		delete(g.edges, EdgeKey(u, v))
		g.m--
	}
	g.adj[v] = nil
	g.exists[v] = false
	g.n--
	return true
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v VertexID) bool {
	if g.edges == nil {
		return false
	}
	_, ok := g.edges[EdgeKey(u, v)]
	return ok
}

// AddEdge inserts the undirected edge {u, v}, creating the endpoints if
// needed. Self-loops and duplicate edges are rejected. It reports whether
// the edge was newly added.
func (g *Graph) AddEdge(u, v VertexID) bool {
	if u == v {
		return false
	}
	g.init()
	if g.HasEdge(u, v) {
		return false
	}
	g.AddVertex(u)
	g.AddVertex(v)
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges[EdgeKey(u, v)] = struct{}{}
	g.m++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}. It reports whether the edge
// existed.
func (g *Graph) RemoveEdge(u, v VertexID) bool {
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeHalf(u, v)
	g.removeHalf(v, u)
	delete(g.edges, EdgeKey(u, v))
	g.m--
	return true
}

// removeHalf deletes v from u's adjacency list by swap-removal.
func (g *Graph) removeHalf(u, v VertexID) {
	list := g.adj[u]
	for i, w := range list {
		if w == v {
			last := len(list) - 1
			list[i] = list[last]
			g.adj[u] = list[:last]
			return
		}
	}
}

// Degree returns the number of neighbors of v (0 if absent).
func (g *Graph) Degree(v VertexID) int {
	if int(v) >= len(g.adj) {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns v's adjacency list. The returned slice is owned by the
// graph: callers must not mutate it, and it is invalidated by the next
// mutation of the graph. Neighbor order is unspecified.
func (g *Graph) Neighbors(v VertexID) []VertexID {
	if int(v) >= len(g.adj) {
		return nil
	}
	return g.adj[v]
}

// Vertices returns the present vertex IDs in ascending order.
func (g *Graph) Vertices() []VertexID {
	vs := make([]VertexID, 0, g.n)
	for v, ok := range g.exists {
		if ok {
			vs = append(vs, VertexID(v))
		}
	}
	return vs
}

// ForEachVertex calls fn for every present vertex in ascending ID order.
func (g *Graph) ForEachVertex(fn func(v VertexID)) {
	for v, ok := range g.exists {
		if ok {
			fn(VertexID(v))
		}
	}
}

// ForEachEdge calls fn once per undirected edge with u < v. The iteration
// order is unspecified but deterministic for a given graph history.
func (g *Graph) ForEachEdge(fn func(u, v VertexID)) {
	for u, ok := range g.exists {
		if !ok {
			continue
		}
		for _, v := range g.adj[u] {
			if VertexID(u) < v {
				fn(VertexID(u), v)
			}
		}
	}
}

// Edges returns all edges as packed keys in ascending order.
func (g *Graph) Edges() []uint64 {
	keys := make([]uint64, 0, g.m)
	for k := range g.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// RestoreAdjacency rebuilds a graph from an explicit adjacency
// representation: present lists the vertices and adj — indexed by vertex ID —
// holds each present vertex's neighbor list. Neighbor order is preserved
// EXACTLY (lists are copied verbatim), which is what lets a checkpoint-
// restored detector replay future random picks bit-identically: the pick
// rules draw an index into the live adjacency order, so a restore that
// reordered neighbors would diverge from the never-restarted twin.
//
// The input is validated structurally: every neighbor must itself be
// present, self-loops are rejected, and every undirected edge must appear
// exactly once in each endpoint's list (symmetry, no duplicates). Entries of
// adj beyond the present set are ignored.
func RestoreAdjacency(present []VertexID, adj [][]VertexID) (*Graph, error) {
	g := New()
	for _, v := range present {
		g.grow(v)
		if g.exists[v] {
			return nil, fmt.Errorf("graph: restore: vertex %d listed twice", v)
		}
		g.exists[v] = true
		g.n++
	}
	// Each undirected edge {u, v} must be seen from both sides exactly once:
	// bit 1 marks the u<v half, bit 2 the v<u half.
	seen := make(map[uint64]uint8, len(present))
	for _, v := range present {
		var list []VertexID
		if int(v) < len(adj) {
			list = adj[v]
		}
		if len(list) == 0 {
			continue
		}
		g.adj[v] = append([]VertexID(nil), list...)
		for _, u := range list {
			if u == v {
				return nil, fmt.Errorf("graph: restore: self-loop at %d", v)
			}
			if !g.HasVertex(u) {
				return nil, fmt.Errorf("graph: restore: vertex %d lists absent neighbor %d", v, u)
			}
			var bit uint8 = 1
			if v > u {
				bit = 2
			}
			k := EdgeKey(v, u)
			if seen[k]&bit != 0 {
				return nil, fmt.Errorf("graph: restore: duplicate neighbor %d at vertex %d", u, v)
			}
			seen[k] |= bit
		}
	}
	for k, bits := range seen {
		if bits != 3 {
			u, v := UnpackEdgeKey(k)
			return nil, fmt.Errorf("graph: restore: edge %d-%d not symmetric", u, v)
		}
		g.edges[k] = struct{}{}
	}
	g.m = len(seen)
	return g, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		adj:    make([][]VertexID, len(g.adj)),
		exists: append([]bool(nil), g.exists...),
		edges:  make(map[uint64]struct{}, len(g.edges)),
		n:      g.n,
		m:      g.m,
	}
	for v, list := range g.adj {
		if len(list) > 0 {
			c.adj[v] = append([]VertexID(nil), list...)
		}
	}
	for k := range g.edges {
		c.edges[k] = struct{}{}
	}
	return c
}

// Equal reports whether g and h contain the same vertex and edge sets.
func (g *Graph) Equal(h *Graph) bool {
	if g.n != h.n || g.m != h.m {
		return false
	}
	for v, ok := range g.exists {
		if ok && !h.HasVertex(VertexID(v)) {
			return false
		}
	}
	for k := range g.edges {
		if _, ok := h.edges[k]; !ok {
			return false
		}
	}
	return true
}

// Op distinguishes edge-edit operations in a dynamic batch.
type Op uint8

const (
	// Insert adds an edge.
	Insert Op = iota
	// Delete removes an edge.
	Delete
)

// String returns "insert" or "delete".
func (op Op) String() string {
	if op == Insert {
		return "insert"
	}
	return "delete"
}

// Edit is a single edge insertion or deletion.
type Edit struct {
	Op   Op
	U, V VertexID
}

// Apply applies a batch of edge edits in order and returns the number of
// edits that changed the graph (inserting an existing edge or deleting an
// absent one is a no-op, mirroring the paper's uniform random edit model
// where batches are generated against the current graph).
func (g *Graph) Apply(batch []Edit) int {
	changed := 0
	for _, e := range batch {
		switch e.Op {
		case Insert:
			if g.AddEdge(e.U, e.V) {
				changed++
			}
		case Delete:
			if g.RemoveEdge(e.U, e.V) {
				changed++
			}
		}
	}
	return changed
}

// Validate checks internal invariants (adjacency symmetry, edge-set
// consistency, counters) and returns a descriptive error if any is violated.
// It is O(|V| + |E|) and intended for tests.
func (g *Graph) Validate() error {
	seen := 0
	for u, ok := range g.exists {
		if !ok {
			if len(g.adj[u]) != 0 {
				return fmt.Errorf("graph: absent vertex %d has %d neighbors", u, len(g.adj[u]))
			}
			continue
		}
		seen++
		for _, v := range g.adj[u] {
			if !g.HasVertex(v) {
				return fmt.Errorf("graph: edge %d-%d points at absent vertex", u, v)
			}
			if VertexID(u) == v {
				return fmt.Errorf("graph: self-loop at %d", u)
			}
			if !g.HasEdge(VertexID(u), v) {
				return fmt.Errorf("graph: adjacency %d-%d missing from edge set", u, v)
			}
			found := false
			for _, w := range g.adj[v] {
				if w == VertexID(u) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("graph: edge %d-%d not symmetric", u, v)
			}
		}
	}
	if seen != g.n {
		return fmt.Errorf("graph: vertex count %d != counted %d", g.n, seen)
	}
	half := 0
	for _, list := range g.adj {
		half += len(list)
	}
	if half != 2*g.m {
		return fmt.Errorf("graph: adjacency half-edges %d != 2*edges %d", half, 2*g.m)
	}
	if len(g.edges) != g.m {
		return fmt.Errorf("graph: edge set size %d != edge count %d", len(g.edges), g.m)
	}
	return nil
}
