package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Stats summarizes a graph with the statistics the paper reports for its
// real-world dataset (Table II) plus a few that the generators' tests use.
type Stats struct {
	Vertices  int
	Edges     int
	AvgDegree float64
	MaxDegree int
	MinDegree int
	Isolated  int // vertices with degree 0
}

// ComputeStats scans the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Vertices: g.n, Edges: g.m}
	if g.n == 0 {
		return s
	}
	s.MinDegree = int(^uint(0) >> 1)
	for v, ok := range g.exists {
		if !ok {
			continue
		}
		d := len(g.adj[v])
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d < s.MinDegree {
			s.MinDegree = d
		}
		if d == 0 {
			s.Isolated++
		}
	}
	s.AvgDegree = 2 * float64(g.m) / float64(g.n)
	return s
}

// String formats the statistics as a small aligned table in the spirit of
// the paper's Table II.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# nodes      %d\n", s.Vertices)
	fmt.Fprintf(&b, "# edges      %d\n", s.Edges)
	fmt.Fprintf(&b, "avg. degree  %.3f\n", s.AvgDegree)
	fmt.Fprintf(&b, "max degree   %d\n", s.MaxDegree)
	fmt.Fprintf(&b, "min degree   %d\n", s.MinDegree)
	fmt.Fprintf(&b, "isolated     %d", s.Isolated)
	return b.String()
}

// DegreeHistogram returns, for each distinct degree present in the graph,
// the number of vertices with that degree, sorted by degree. Tests use it to
// check the generators' power-law shape.
func (g *Graph) DegreeHistogram() (degrees []int, counts []int) {
	hist := make(map[int]int)
	for v, ok := range g.exists {
		if ok {
			hist[len(g.adj[v])]++
		}
	}
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	counts = make([]int, len(degrees))
	for i, d := range degrees {
		counts[i] = hist[d]
	}
	return degrees, counts
}
