package graph

// Snapshot sharding. The streaming service publishes copy-on-write
// snapshots: the dense vertex ID space is partitioned into fixed-size
// shards of ShardSize IDs, a snapshot is an immutable slice of shard
// pointers, and publishing a new epoch clones only the shards that the
// applied batch dirtied — every clean shard is shared structurally with
// the previous snapshot. This file provides the shard geometry and the
// frozen per-shard adjacency view; the label rows ride alongside in the
// service's snapshot type.

const (
	// ShardBits is log2 of the snapshot shard size.
	ShardBits = 12
	// ShardSize is the number of vertex IDs covered by one snapshot
	// shard (4096): small enough that a 2-edit batch republishes
	// kilobytes, large enough that shard headers stay negligible.
	ShardSize = 1 << ShardBits
)

// ShardOf returns the index of the snapshot shard covering vertex v.
func ShardOf(v VertexID) int { return int(v >> ShardBits) }

// NumShards returns the number of shards covering a dense ID space of
// the given size (MaxVertexID).
func NumShards(maxID int) int { return (maxID + ShardSize - 1) / ShardSize }

// AdjShard is the frozen adjacency of one snapshot shard: a deep copy of
// the presence flags and neighbor lists of the vertices in
// [Base, Base+ShardSize), taken at a single instant. It is immutable
// after CloneShard returns and safe to share between snapshots.
//
// The slices cover [Base, Base+len(Exists)); an ID space that grew after
// the clone leaves the tail uncovered, which is correct: those IDs were
// absent when the shard was frozen, and adding one later dirties the
// shard (forcing a re-clone) because every vertex addition rides an edge
// edit whose endpoints are in the update's dirty set.
type AdjShard struct {
	Base   VertexID
	Exists []bool
	Adj    [][]VertexID

	Present   int // present vertices in the shard
	HalfEdges int // sum of their degrees (each edge counted once per endpoint)
}

// CloneShard freezes snapshot shard idx of g: presence and neighbor
// lists are copied verbatim (preserving adjacency order, which keeps
// shard-view edge iteration bit-compatible with the graph's own), and
// the per-shard vertex/half-edge tallies are computed so a snapshot can
// total its counts in O(#shards).
func (g *Graph) CloneShard(idx int) *AdjShard {
	base := idx * ShardSize
	sh := &AdjShard{Base: VertexID(base)}
	hi := base + ShardSize
	if hi > len(g.adj) {
		hi = len(g.adj)
	}
	if hi <= base {
		return sh
	}
	sh.Exists = append([]bool(nil), g.exists[base:hi]...)
	sh.Adj = make([][]VertexID, hi-base)
	for v := base; v < hi; v++ {
		if !g.exists[v] {
			continue
		}
		sh.Present++
		sh.HalfEdges += len(g.adj[v])
		if len(g.adj[v]) > 0 {
			sh.Adj[v-base] = append([]VertexID(nil), g.adj[v]...)
		}
	}
	return sh
}

// Has reports whether vertex v (a global ID) is present in the frozen
// shard. IDs outside the frozen coverage are absent.
func (sh *AdjShard) Has(v VertexID) bool {
	off := int(v - sh.Base)
	return off >= 0 && off < len(sh.Exists) && sh.Exists[off]
}

// Neighbors returns the frozen neighbor list of vertex v (nil for absent
// vertices). The slice is owned by the shard; do not mutate it.
func (sh *AdjShard) Neighbors(v VertexID) []VertexID {
	if !sh.Has(v) {
		return nil
	}
	return sh.Adj[v-sh.Base]
}

// Degree returns the frozen degree of vertex v (0 if absent).
func (sh *AdjShard) Degree(v VertexID) int { return len(sh.Neighbors(v)) }
