package core

import (
	"bytes"
	"testing"

	"rslpa/internal/graph"
)

// fuzzSeedBlobs builds the seed corpus: one valid legacy (v1) stream, one
// valid sharded (v2) container, systematic truncations of both, and
// bit-flipped variants at spread-out offsets. The fuzzer mutates from
// there; the target's only contract is error-not-panic with bounded
// allocation.
func fuzzSeedBlobs(f *testing.F) [][]byte {
	f.Helper()
	g := randomGraph(40, 90, 12)
	st, err := Run(g, Config{T: 7, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	st.Update([]graph.Edit{{Op: graph.Insert, U: 1, V: 39}, {Op: graph.Delete, U: 0, V: g.Neighbors(0)[0]}})

	var v1, v2 bytes.Buffer
	if err := st.Save(&v1); err != nil {
		f.Fatal(err)
	}
	if err := st.SaveCheckpoint(&v2); err != nil {
		f.Fatal(err)
	}
	// A genuinely multi-shard container, like a distributed detector writes.
	c := st.Checkpoint()
	all := c.Shards[0]
	var sharded bytes.Buffer
	third := len(all) / 3
	blobs := [][]byte{
		EncodeShard(c.T, all[:third]),
		EncodeShard(c.T, all[third:2*third]),
		EncodeShard(c.T, all[2*third:]),
	}
	if err := WriteCheckpoint(&sharded, c.CheckpointMeta, blobs); err != nil {
		f.Fatal(err)
	}

	seeds := [][]byte{v1.Bytes(), v2.Bytes(), sharded.Bytes()}
	for _, full := range [][]byte{v1.Bytes(), sharded.Bytes()} {
		for _, cut := range []int{0, 3, 7, 20, len(full) / 2, len(full) - 3} {
			if cut >= 0 && cut < len(full) {
				seeds = append(seeds, append([]byte(nil), full[:cut]...))
			}
		}
		for off := 0; off < len(full); off += 41 {
			mut := append([]byte(nil), full...)
			mut[off] ^= 0x80
			seeds = append(seeds, mut)
		}
	}
	return seeds
}

// FuzzLoadCheckpoint proves the checkpoint decoders return errors — never
// panic, never allocate unboundedly — on arbitrary input. ReadCheckpoint
// covers both container versions; when a stream parses, the full
// BuildState + Validate pipeline must also terminate cleanly, and a state
// that passes Validate must round-trip back through Save.
func FuzzLoadCheckpoint(f *testing.F) {
	for _, seed := range fuzzSeedBlobs(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<22 {
			return // keep per-exec memory bounded; framing limits are exercised below that
		}
		c, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return // rejected: the only other acceptable outcome
		}
		st, err := c.BuildState()
		if err != nil {
			return
		}
		if err := st.Validate(); err != nil {
			t.Fatalf("accepted checkpoint built an invalid state: %v", err)
		}
		var out bytes.Buffer
		if err := st.SaveCheckpoint(&out); err != nil {
			t.Fatalf("valid state failed to re-save: %v", err)
		}
		if _, err := Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-saved checkpoint failed to load: %v", err)
		}
	})
}
