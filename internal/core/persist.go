package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rslpa/internal/graph"
)

// Save / Load serialize a State so that a long-running incremental service
// can checkpoint its label matrix and resume after a restart without
// re-running T propagation iterations. The format is a little-endian
// binary stream:
//
//	magic "RSLPA1\n", T, seed, epoch, vertex-ID-space size,
//	then per present vertex: id, degree, neighbors,
//	labels[1..T], src[1..T], pos[1..T].
//
// Records are not stored: they are fully determined by the (src, pos)
// choices (Validate's record-symmetry invariant), so Load rebuilds them,
// which keeps checkpoints ~25% smaller and structurally impossible to
// corrupt into an inconsistent record set.

const persistMagic = "RSLPA1\n"

// Save writes the State to w. The State is unchanged.
func (s *State) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	hdr := []uint64{uint64(s.cfg.T), s.cfg.Seed, s.epoch, uint64(len(s.labels)), uint64(s.g.NumVertices())}
	for _, x := range hdr {
		if err := writeU64(bw, x); err != nil {
			return err
		}
	}
	var failure error
	s.g.ForEachVertex(func(v uint32) {
		if failure != nil {
			return
		}
		nbrs := s.g.Neighbors(v)
		if err := writeU32s(bw, v, uint32(len(nbrs))); err != nil {
			failure = err
			return
		}
		if err := writeU32s(bw, nbrs...); err != nil {
			failure = err
			return
		}
		if err := writeU32s(bw, s.labels[v][1:]...); err != nil {
			failure = err
			return
		}
		// src and pos fit int32; store bit patterns (sentinel -1 included).
		for _, arr := range [][]int32{s.src[v][1:], s.pos[v][1:]} {
			for _, x := range arr {
				if err := writeU32s(bw, uint32(x)); err != nil {
					failure = err
					return
				}
			}
		}
	})
	if failure != nil {
		return fmt.Errorf("core: save: %w", failure)
	}
	return bw.Flush()
}

// Load reads a State saved by Save and reconstructs it, including the
// reverse records and the graph. The result passes Validate.
func Load(r io.Reader) (*State, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(persistMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	if string(magic) != persistMagic {
		return nil, fmt.Errorf("core: load: bad magic %q", magic)
	}
	var hdr [5]uint64
	for i := range hdr {
		x, err := readU64(br)
		if err != nil {
			return nil, fmt.Errorf("core: load header: %w", err)
		}
		hdr[i] = x
	}
	T := int(hdr[0])
	if T <= 0 || T > 1<<20 {
		return nil, fmt.Errorf("core: load: implausible T=%d", T)
	}
	idSpace := int(hdr[3])
	present := int(hdr[4])

	s := &State{cfg: Config{T: T, Seed: hdr[1]}, epoch: hdr[2], g: graph.New()}
	s.labels = make([][]uint32, idSpace)
	s.src = make([][]int32, idSpace)
	s.pos = make([][]int32, idSpace)
	s.recv = make([][]Record, idSpace)

	type pendingEdges struct {
		v    uint32
		nbrs []uint32
	}
	adjacency := make([]pendingEdges, 0, present)
	for i := 0; i < present; i++ {
		v, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("core: load vertex %d: %w", i, err)
		}
		if int(v) >= idSpace {
			return nil, fmt.Errorf("core: load: vertex %d outside ID space %d", v, idSpace)
		}
		deg, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if int(deg) >= idSpace {
			return nil, fmt.Errorf("core: load: vertex %d degree %d outside ID space", v, deg)
		}
		nbrs := make([]uint32, deg)
		for j := range nbrs {
			if nbrs[j], err = readU32(br); err != nil {
				return nil, err
			}
		}
		adjacency = append(adjacency, pendingEdges{v: v, nbrs: nbrs})

		labels := make([]uint32, T+1)
		srcs := make([]int32, T+1)
		poss := make([]int32, T+1)
		labels[0], srcs[0], poss[0] = v, -1, -1
		for t := 1; t <= T; t++ {
			if labels[t], err = readU32(br); err != nil {
				return nil, err
			}
		}
		for t := 1; t <= T; t++ {
			x, err := readU32(br)
			if err != nil {
				return nil, err
			}
			srcs[t] = int32(x)
		}
		for t := 1; t <= T; t++ {
			x, err := readU32(br)
			if err != nil {
				return nil, err
			}
			poss[t] = int32(x)
		}
		s.labels[v], s.src[v], s.pos[v] = labels, srcs, poss
		s.g.AddVertex(v)
	}
	// Rebuild the edge set. Neighbor-list ORDER is not preserved by this
	// (AddEdge appends to both endpoints), and does not need to be:
	// future Update draws index whatever uniform-ordered list the graph
	// holds, so a restored State evolves with the same distribution as
	// the original — though not bit-identically to a twin that never
	// restarted, which is fine (and documented on Save).
	for _, pe := range adjacency {
		for _, u := range pe.nbrs {
			if int(u) >= idSpace || s.labels[u] == nil {
				return nil, fmt.Errorf("core: load: vertex %d has absent neighbor %d", pe.v, u)
			}
			s.g.AddEdge(pe.v, u)
		}
	}

	// Rebuild the reverse records from the picks.
	for _, pe := range adjacency {
		v := pe.v
		for t := 1; t <= T; t++ {
			sv := s.src[v][t]
			if sv < 0 {
				continue
			}
			if int(sv) >= idSpace || s.labels[sv] == nil {
				return nil, fmt.Errorf("core: load: vertex %d iter %d references absent source %d", v, t, sv)
			}
			pv := s.pos[v][t]
			if pv < 0 || int(pv) >= t {
				return nil, fmt.Errorf("core: load: vertex %d iter %d has pos %d", v, t, pv)
			}
			s.recv[sv] = append(s.recv[sv], Record{Pos: pv, Tar: v, Iter: int32(t)})
		}
	}
	return s, nil
}

func writeU64(w io.Writer, x uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func writeU32s(w *bufio.Writer, xs ...uint32) error {
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], x)
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
