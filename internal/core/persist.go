package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// # Checkpoint format specification
//
// Two on-disk formats exist, distinguished by a 7-byte magic prefix. All
// integers are little-endian; u32/u64 denote 32/64-bit unsigned fields.
//
// ## Version 1 — legacy sequential stream (magic "RSLPA1\n")
//
//	magic   7 bytes  "RSLPA1\n"
//	header  5 × u64  T, seed, epoch, idSpace, present-vertex count
//	body    present × vertex record (see framing below)
//
// ## Version 2 — sharded container (magic "RSLPA2\n")
//
//	magic   7 bytes  "RSLPA2\n"
//	header  6 × u64  T, seed, epoch, idSpace, P (shard count),
//	                 owner-map digest
//	index   P × u64  per-shard byte lengths; shard s starts at
//	                 offset 7 + 8·(6+P) + Σ_{i<s} length[i], so shards can
//	                 be located and decoded independently (and written
//	                 concurrently by P workers before a single concatenation)
//	shards  P × shard blob
//
// A shard blob is self-contained:
//
//	digest  u64      FNV-1a over the shard's vertex IDs in record order
//	count   u64      number of vertex records
//	body    count × vertex record
//
// ## Vertex record framing (shared by both versions)
//
//	v        u32        vertex ID
//	degree   u32        neighbor count
//	nbrs     deg × u32  adjacency in EXACT live order (picks draw an index
//	                    into this order; preserving it is what makes a
//	                    restored detector resume bit-identically)
//	labels   T × u32    label sequence l¹..l^T (l⁰ = v is implied)
//	src      T × u32    pick sources as int32 bit patterns (-1 = sentinel)
//	pos      T × u32    pick positions, parallel to src
//
// Reverse records are not stored: they are fully determined by the (src,
// pos) choices (Validate's record-symmetry invariant), so loaders rebuild
// them — checkpoints stay ~25% smaller and cannot encode an inconsistent
// record set. No RNG state is stored either: every random draw is a pure
// function of (seed, epoch, vertex, iteration), so the epoch counter IS the
// RNG stream position.
//
// ## Versioning and validation rules
//
//   - An unrecognized magic is rejected with a version error; decoders never
//     guess. New layouts bump the magic ("RSLPA3\n", ...); fields are never
//     re-interpreted within a version.
//   - The container digest is the FNV-1a combination of every shard's
//     (count, digest) pair in shard order. It pins the owner map the
//     checkpoint was saved under: a reordered, dropped, duplicated or
//     bit-flipped shard fails loudly as "owner-map digest mismatch" before
//     any state is built.
//   - Shard byte lengths are enforced exactly: a shard that decodes to
//     fewer or more bytes than its index entry is rejected.
//   - Loaders re-partition records through the LOADING engine's owner map
//     (or merge them into a sequential State), so a checkpoint saved at any
//     P loads at any other P, on any transport.
//
// The version-2 implementation lives in checkpoint.go; this file keeps the
// legacy version-1 stream working and routes loads through the shared
// decoder.

const persistMagic = "RSLPA1\n"

// Save writes the State to w in the legacy version-1 stream (sequential,
// single blob). The State is unchanged. Prefer SaveCheckpoint for new
// writers: version 2 is what distributed detectors produce and load.
func (s *State) Save(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(persistMagic); err != nil {
		return fmt.Errorf("core: save: %w", err)
	}
	hdr := []uint64{uint64(s.cfg.T), s.cfg.Seed, s.epoch, uint64(len(s.labels)), uint64(s.g.NumVertices())}
	for _, x := range hdr {
		if err := writeU64(bw, x); err != nil {
			return err
		}
	}
	var failure error
	var buf []byte
	s.g.ForEachVertex(func(v uint32) {
		if failure != nil {
			return
		}
		rec := VertexRecord{
			V:      v,
			Nbrs:   s.g.Neighbors(v),
			Labels: s.labels[v][1:],
			Src:    s.src[v][1:],
			Pos:    s.pos[v][1:],
		}
		buf = appendVertexRecord(buf[:0], &rec)
		if _, err := bw.Write(buf); err != nil {
			failure = err
		}
	})
	if failure != nil {
		return fmt.Errorf("core: save: %w", failure)
	}
	return bw.Flush()
}

// Load reads a checkpoint in either format version and reconstructs the
// State, including the reverse records and the graph with its exact saved
// neighbor order. The result passes Validate and evolves bit-identically to
// a State that never round-tripped.
func Load(r io.Reader) (*State, error) {
	c, err := ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	return c.BuildState()
}

func writeU64(w io.Writer, x uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], x)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
