package core

import (
	"slices"
	"testing"
	"testing/quick"

	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// ring builds a cycle of n vertices.
func ring(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(uint32(i), uint32((i+1)%n))
	}
	return g
}

// randomGraph builds an Erdős–Rényi-ish graph with n vertices and ~m edges.
func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(uint32(i))
	}
	for g.NumEdges() < m {
		u := uint32(r.Intn(n))
		v := uint32(r.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func mustRun(t *testing.T, g *graph.Graph, cfg Config) *State {
	t.Helper()
	s, err := Run(g, cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return s
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(ring(4), Config{T: 0}); err == nil {
		t.Fatal("want error for T=0")
	}
	if _, err := Run(ring(4), Config{T: -3}); err == nil {
		t.Fatal("want error for negative T")
	}
}

func TestRunInvariants(t *testing.T) {
	s := mustRun(t, randomGraph(200, 600, 7), Config{T: 30, Seed: 42})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunLabelSequenceLength(t *testing.T) {
	const T = 17
	s := mustRun(t, ring(10), Config{T: T, Seed: 1})
	for v := uint32(0); v < 10; v++ {
		if got := len(s.Labels(v)); got != T+1 {
			t.Fatalf("vertex %d: sequence length %d, want %d", v, got, T+1)
		}
		if s.Labels(v)[0] != v {
			t.Fatalf("vertex %d: initial label %d", v, s.Labels(v)[0])
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := randomGraph(100, 300, 3)
	a := mustRun(t, g, Config{T: 20, Seed: 9})
	b := mustRun(t, g, Config{T: 20, Seed: 9})
	if !a.EqualLabels(b) {
		t.Fatal("same seed must give identical label matrices")
	}
	c := mustRun(t, g, Config{T: 20, Seed: 10})
	if a.EqualLabels(c) {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
}

func TestIsolatedVertexCollapsesToSelf(t *testing.T) {
	g := graph.New()
	g.AddVertex(5)
	g.AddEdge(1, 2)
	s := mustRun(t, g, Config{T: 10, Seed: 1})
	for _, l := range s.Labels(5) {
		if l != 5 {
			t.Fatalf("isolated vertex label %d, want 5", l)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPickAccessor(t *testing.T) {
	s := mustRun(t, ring(6), Config{T: 5, Seed: 2})
	if _, _, ok := s.Pick(0, 0); ok {
		t.Fatal("t=0 has no pick")
	}
	src, pos, ok := s.Pick(0, 3)
	if !ok {
		t.Fatal("expected a pick at t=3")
	}
	if src != 1 && src != 5 {
		t.Fatalf("src %d is not a ring neighbor of 0", src)
	}
	if pos < 0 || pos >= 3 {
		t.Fatalf("pos %d out of range", pos)
	}
}

func TestUpdateInsertMaintainsInvariants(t *testing.T) {
	g := randomGraph(150, 400, 11)
	s := mustRun(t, g, Config{T: 25, Seed: 5})
	stats := s.Update([]graph.Edit{
		{Op: graph.Insert, U: 0, V: 50},
		{Op: graph.Insert, U: 1, V: 60},
		{Op: graph.Insert, U: 2, V: 70},
	})
	if stats.Inserted == 0 {
		t.Fatal("expected at least one insertion to apply")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateDeleteMaintainsInvariants(t *testing.T) {
	g := randomGraph(150, 400, 13)
	s := mustRun(t, g, Config{T: 25, Seed: 5})
	var batch []graph.Edit
	count := 0
	g.ForEachEdge(func(u, v uint32) {
		if count < 20 {
			batch = append(batch, graph.Edit{Op: graph.Delete, U: u, V: v})
			count++
		}
	})
	stats := s.Update(batch)
	if stats.Deleted != 20 {
		t.Fatalf("deleted %d, want 20", stats.Deleted)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNoOpBatch(t *testing.T) {
	g := randomGraph(50, 120, 17)
	s := mustRun(t, g, Config{T: 15, Seed: 3})
	before := s.Clone()
	// Deleting absent edges and inserting existing ones must change nothing.
	var existing graph.Edit
	g.ForEachEdge(func(u, v uint32) { existing = graph.Edit{Op: graph.Insert, U: u, V: v} })
	stats := s.Update([]graph.Edit{
		existing,
		{Op: graph.Delete, U: 900, V: 901},
	})
	if stats.Inserted != 0 || stats.Deleted != 0 || stats.Touched != 0 {
		t.Fatalf("no-op batch produced stats %+v", stats)
	}
	if !s.EqualLabels(before) {
		t.Fatal("no-op batch changed labels")
	}
}

func TestUpdateCancellingEditsAreNoOp(t *testing.T) {
	g := randomGraph(50, 120, 19)
	s := mustRun(t, g, Config{T: 15, Seed: 3})
	before := s.Clone()
	stats := s.Update([]graph.Edit{
		{Op: graph.Insert, U: 0, V: 40}, // assume absent; then removed again
		{Op: graph.Delete, U: 0, V: 40},
	})
	if stats.Repicked != 0 || stats.Touched != 0 {
		t.Fatalf("cancelling batch repicked %d touched %d", stats.Repicked, stats.Touched)
	}
	if !s.EqualLabels(before) {
		t.Fatal("cancelling batch changed labels")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateNewVertexViaEdge(t *testing.T) {
	g := ring(10)
	s := mustRun(t, g, Config{T: 12, Seed: 4})
	s.Update([]graph.Edit{{Op: graph.Insert, U: 3, V: 99}})
	if s.Labels(99) == nil {
		t.Fatal("vertex 99 has no labels after insertion")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The new vertex's picks must all point at its only neighbor.
	for tt := 1; tt <= 12; tt++ {
		src, _, ok := s.Pick(99, tt)
		if !ok || src != 3 {
			t.Fatalf("iter %d: new vertex pick src=%d ok=%v, want 3", tt, src, ok)
		}
	}
}

func TestUpdateVertexLosesAllNeighbors(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	s := mustRun(t, g, Config{T: 10, Seed: 8})
	s.Update([]graph.Edit{
		{Op: graph.Delete, U: 0, V: 1},
		{Op: graph.Delete, U: 0, V: 2},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, l := range s.Labels(0) {
		if l != 0 {
			t.Fatalf("isolated vertex kept foreign label %d", l)
		}
	}
}

func TestAddRemoveVertex(t *testing.T) {
	g := ring(8)
	s := mustRun(t, g, Config{T: 10, Seed: 2})
	st, ok := s.AddVertex(100)
	if !ok {
		t.Fatal("AddVertex(100) = false")
	}
	if len(st.Dirty) != 1 || st.Dirty[0] != 100 {
		t.Fatalf("AddVertex Dirty = %v, want [100]", st.Dirty)
	}
	if _, ok := s.AddVertex(100); ok {
		t.Fatal("second AddVertex(100) = true")
	}
	s.Update([]graph.Edit{
		{Op: graph.Insert, U: 100, V: 0},
		{Op: graph.Insert, U: 100, V: 4},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	rs, ok := s.RemoveVertex(100)
	if !ok {
		t.Fatal("RemoveVertex(100) = false")
	}
	if !slices.Contains(rs.Dirty, 100) {
		t.Fatalf("RemoveVertex Dirty = %v, missing the removed vertex", rs.Dirty)
	}
	if _, ok := s.RemoveVertex(100); ok {
		t.Fatal("second RemoveVertex(100) = true")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Labels(100) != nil {
		t.Fatal("removed vertex still has labels")
	}

	// The isolated-vertex removal path: the induced edge-deletion batch is
	// empty, yet the shard's presence bit changes — Dirty must still carry
	// the vertex or a COW snapshot would keep serving it.
	if _, ok := s.AddVertex(101); !ok {
		t.Fatal("AddVertex(101) = false")
	}
	rs, ok = s.RemoveVertex(101)
	if !ok {
		t.Fatal("RemoveVertex(101) = false")
	}
	if len(rs.Dirty) != 1 || rs.Dirty[0] != 101 {
		t.Fatalf("isolated RemoveVertex Dirty = %v, want [101]", rs.Dirty)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDirty(t *testing.T) {
	cases := []struct {
		in   []uint32
		v    uint32
		want []uint32
	}{
		{nil, 5, []uint32{5}},
		{[]uint32{5}, 5, []uint32{5}},
		{[]uint32{1, 9}, 5, []uint32{1, 5, 9}},
		{[]uint32{1, 9}, 0, []uint32{0, 1, 9}},
		{[]uint32{1, 9}, 12, []uint32{1, 9, 12}},
	}
	for _, c := range cases {
		if got := MergeDirty(append([]uint32(nil), c.in...), c.v); !slices.Equal(got, c.want) {
			t.Fatalf("MergeDirty(%v, %d) = %v, want %v", c.in, c.v, got, c.want)
		}
	}
}

// TestUpdateInvariantsUnderRandomBatches is the main property test: after
// arbitrary random edit batches, the State must still look like a valid
// Algorithm 1 run on the current graph.
func TestUpdateInvariantsUnderRandomBatches(t *testing.T) {
	g := randomGraph(120, 350, 23)
	s := mustRun(t, g, Config{T: 20, Seed: 6})
	r := rng.New(77)
	for round := 0; round < 15; round++ {
		var batch []graph.Edit
		for i := 0; i < 25; i++ {
			u := uint32(r.Intn(140)) // occasionally new IDs
			v := uint32(r.Intn(140))
			if u == v {
				continue
			}
			op := graph.Insert
			if r.Bool() {
				op = graph.Delete
			}
			batch = append(batch, graph.Edit{Op: op, U: u, V: v})
		}
		s.Update(batch)
		if err := s.Validate(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

// TestUpdateQuickProperty drives Update with quick-generated batches.
func TestUpdateQuickProperty(t *testing.T) {
	check := func(seed uint64, ops []uint16) bool {
		g := randomGraph(40, 80, seed)
		s, err := Run(g, Config{T: 12, Seed: seed})
		if err != nil {
			return false
		}
		var batch []graph.Edit
		for _, op := range ops {
			u := uint32(op % 45)
			v := uint32((op / 45) % 45)
			if u == v {
				continue
			}
			kind := graph.Insert
			if op%2 == 0 {
				kind = graph.Delete
			}
			batch = append(batch, graph.Edit{Op: kind, U: u, V: v})
		}
		s.Update(batch)
		return s.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem4KeptSourceUniform checks the statistical core of Theorem 4:
// after deleting edges, kept+repicked sources are uniform over the
// remaining neighbors. We fix a star graph, delete some leaves, and check
// the empirical source distribution of the center across many seeds.
func TestTheorem4KeptSourceUniform(t *testing.T) {
	const leaves = 10
	const runs = 4000
	counts := make(map[uint32]int)
	for seed := uint64(0); seed < runs; seed++ {
		g := graph.New()
		for i := 1; i <= leaves; i++ {
			g.AddEdge(0, uint32(i))
		}
		s, err := Run(g, Config{T: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// Delete leaves 1..3; vertices 4..10 remain.
		s.Update([]graph.Edit{
			{Op: graph.Delete, U: 0, V: 1},
			{Op: graph.Delete, U: 0, V: 2},
			{Op: graph.Delete, U: 0, V: 3},
		})
		src, _, ok := s.Pick(0, 1)
		if !ok {
			t.Fatal("center has no pick")
		}
		if src <= 3 {
			t.Fatalf("seed %d: pick kept deleted source %d", seed, src)
		}
		counts[src]++
	}
	// Expect runs/7 per remaining leaf, within 5 sigma of binomial.
	expected := float64(runs) / 7
	sigma := 23.0 // sqrt(runs * p * (1-p)) ≈ 22.1
	for v, c := range counts {
		if diff := float64(c) - expected; diff > 5*sigma || diff < -5*sigma {
			t.Fatalf("source %d picked %d times, expected %.0f ± %.0f", v, c, expected, 5*sigma)
		}
	}
}

// TestTheorem5AddedSourceUniform checks Theorem 5: after adding neighbors,
// the source distribution is uniform over the enlarged neighbor set.
func TestTheorem5AddedSourceUniform(t *testing.T) {
	const runs = 7000
	counts := make(map[uint32]int)
	for seed := uint64(0); seed < runs; seed++ {
		g := graph.New()
		g.AddEdge(0, 1)
		g.AddEdge(0, 2) // center 0 with 2 neighbors
		s, err := Run(g, Config{T: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s.Update([]graph.Edit{
			{Op: graph.Insert, U: 0, V: 3},
			{Op: graph.Insert, U: 0, V: 4},
			{Op: graph.Insert, U: 0, V: 5},
		}) // now 5 neighbors
		src, _, ok := s.Pick(0, 1)
		if !ok {
			t.Fatal("center has no pick")
		}
		counts[src]++
	}
	expected := float64(runs) / 5
	sigma := 33.5 // sqrt(runs * 0.2 * 0.8)
	for v := uint32(1); v <= 5; v++ {
		c := counts[v]
		if diff := float64(c) - expected; diff > 5*sigma || diff < -5*sigma {
			t.Fatalf("source %d picked %d times, expected %.0f ± %.0f", v, c, expected, 5*sigma)
		}
	}
}

// TestIncrementalMatchesScratchDistribution verifies the headline claim:
// the incremental result is distributed like a from-scratch run. We compare
// the per-(vertex,iteration) marginal label distributions over many seeds
// on a small graph; they must agree within statistical noise.
func TestIncrementalMatchesScratchDistribution(t *testing.T) {
	const runs = 3000
	const T = 6
	base := func() *graph.Graph {
		g := graph.New()
		g.AddEdge(0, 1)
		g.AddEdge(1, 2)
		g.AddEdge(2, 3)
		g.AddEdge(3, 0)
		g.AddEdge(0, 2)
		return g
	}
	batch := []graph.Edit{
		{Op: graph.Delete, U: 0, V: 2},
		{Op: graph.Insert, U: 1, V: 3},
	}
	nVerts := 4
	incCounts := make([]map[uint32]int, nVerts*(T+1))
	scrCounts := make([]map[uint32]int, nVerts*(T+1))
	for i := range incCounts {
		incCounts[i] = make(map[uint32]int)
		scrCounts[i] = make(map[uint32]int)
	}
	for seed := uint64(0); seed < runs; seed++ {
		inc, err := Run(base(), Config{T: T, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		inc.Update(batch)
		g2 := base()
		g2.Apply(batch)
		scr, err := Run(g2, Config{T: T, Seed: seed + 500000}) // independent randomness
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < nVerts; v++ {
			for tt := 0; tt <= T; tt++ {
				incCounts[v*(T+1)+tt][inc.Labels(uint32(v))[tt]]++
				scrCounts[v*(T+1)+tt][scr.Labels(uint32(v))[tt]]++
			}
		}
	}
	// Compare marginals: every label's frequency must agree within 5 sigma
	// of the two-sample binomial difference.
	for i := range incCounts {
		for l := uint32(0); l < uint32(nVerts); l++ {
			pi := float64(incCounts[i][l]) / runs
			ps := float64(scrCounts[i][l]) / runs
			p := (pi + ps) / 2
			se := 5 * sqrt(2*p*(1-p)/runs)
			if diff := pi - ps; diff > se+0.001 || diff < -se-0.001 {
				t.Fatalf("slot %d label %d: incremental %.3f vs scratch %.3f (se %.3f)", i, l, pi, ps, se)
			}
		}
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestCloneIsDeep(t *testing.T) {
	g := randomGraph(60, 150, 29)
	s := mustRun(t, g, Config{T: 15, Seed: 12})
	c := s.Clone()
	s.Update([]graph.Edit{{Op: graph.Insert, U: 0, V: 59}})
	if err := c.Validate(); err != nil {
		t.Fatalf("clone corrupted by original's update: %v", err)
	}
}

func TestEpochAdvances(t *testing.T) {
	s := mustRun(t, ring(6), Config{T: 5, Seed: 1})
	if s.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", s.Epoch())
	}
	s.Update(nil)
	s.Update(nil)
	if s.Epoch() != 2 {
		t.Fatalf("epoch after two updates = %d", s.Epoch())
	}
}

// TestTouchedGrowsWithBatchSize sanity-checks the complexity trend the
// paper's Figure 9 relies on: larger batches touch more labels, but
// sublinearly.
func TestTouchedGrowsWithBatchSize(t *testing.T) {
	g := randomGraph(400, 1600, 31)
	r := rng.New(99)
	makeBatch := func(k int) []graph.Edit {
		var batch []graph.Edit
		edges := g.Edges()
		for i := 0; i < k/2; i++ {
			e := edges[r.Intn(len(edges))]
			u, v := graph.UnpackEdgeKey(e)
			batch = append(batch, graph.Edit{Op: graph.Delete, U: u, V: v})
		}
		for i := 0; i < k/2; i++ {
			batch = append(batch, graph.Edit{Op: graph.Insert, U: uint32(r.Intn(400)), V: uint32(r.Intn(400))})
		}
		return batch
	}
	small := mustRun(t, g, Config{T: 20, Seed: 3}).Update(makeBatch(10))
	large := mustRun(t, g, Config{T: 20, Seed: 3}).Update(makeBatch(200))
	if large.Touched <= small.Touched {
		t.Fatalf("larger batch touched %d <= smaller batch %d", large.Touched, small.Touched)
	}
}

// TestDirtySetContract pins the UpdateStats.Dirty contract the streaming
// layer's copy-on-write publication depends on: nil for a batch that
// changed nothing, sorted and deduplicated otherwise, covering every
// effective-edit endpoint.
func TestDirtySetContract(t *testing.T) {
	g := randomGraph(200, 600, 13)
	s := mustRun(t, g, Config{T: 20, Seed: 7})

	if stats := s.Update(nil); stats.Dirty != nil {
		t.Fatalf("empty batch: Dirty = %v, want nil", stats.Dirty)
	}
	// An all-no-op batch (deleting absent edges) changes nothing either.
	noop := graph.Canonicalize(s.Graph(), []graph.Edit{{Op: graph.Insert, U: 0, V: s.Graph().Neighbors(0)[0]}})
	if len(noop) != 0 {
		t.Fatalf("canonicalization kept a duplicate insert: %v", noop)
	}

	batch := graph.Canonicalize(s.Graph(), []graph.Edit{
		{Op: graph.Insert, U: 3, V: 190},
		{Op: graph.Delete, U: 0, V: s.Graph().Neighbors(0)[0]},
	})
	dirtyOf := make(map[uint32]bool)
	for _, e := range batch {
		dirtyOf[e.U], dirtyOf[e.V] = true, true
	}
	stats := s.Update(batch)
	if stats.Dirty == nil {
		t.Fatal("effective batch produced nil Dirty")
	}
	seen := make(map[uint32]bool, len(stats.Dirty))
	for i, v := range stats.Dirty {
		if i > 0 && stats.Dirty[i-1] >= v {
			t.Fatalf("Dirty not strictly sorted at %d: %v", i, stats.Dirty[:i+1])
		}
		seen[v] = true
	}
	for v := range dirtyOf {
		if !seen[v] {
			t.Fatalf("edit endpoint %d missing from Dirty %v", v, stats.Dirty)
		}
	}
	if uint64(len(stats.Dirty)) > 2*uint64(len(batch))+uint64(stats.Touched) {
		t.Fatalf("Dirty has %d vertices for %d edits touching %d labels", len(stats.Dirty), len(batch), stats.Touched)
	}
}

// TestSortedDirty covers the set-to-slice helper directly.
func TestSortedDirty(t *testing.T) {
	if got := SortedDirty(nil); got != nil {
		t.Fatalf("SortedDirty(nil) = %v", got)
	}
	if got := SortedDirty(map[uint32]struct{}{}); got != nil {
		t.Fatalf("SortedDirty(empty) = %v", got)
	}
	set := map[uint32]struct{}{9: {}, 1: {}, 4096: {}, 0: {}}
	got := SortedDirty(set)
	want := []uint32{0, 1, 9, 4096}
	if len(got) != len(want) {
		t.Fatalf("SortedDirty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedDirty = %v, want %v", got, want)
		}
	}
}
