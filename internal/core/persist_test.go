package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rslpa/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := randomGraph(150, 400, 31)
	orig := mustRun(t, g, Config{T: 25, Seed: 77})
	orig.Update([]graph.Edit{{Op: graph.Insert, U: 0, V: 149}})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded state invalid: %v", err)
	}
	if loaded.T() != orig.T() || loaded.Seed() != orig.Seed() || loaded.Epoch() != orig.Epoch() {
		t.Fatal("config/epoch lost")
	}
	if !loaded.Graph().Equal(orig.Graph()) {
		t.Fatal("graph lost")
	}
	g.ForEachVertex(func(v uint32) {
		a, b := orig.Labels(v), loaded.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d iter %d: %d vs %d", v, i, a[i], b[i])
			}
		}
		for tt := 1; tt <= orig.T(); tt++ {
			s1, p1, ok1 := orig.Pick(v, tt)
			s2, p2, ok2 := loaded.Pick(v, tt)
			if ok1 != ok2 || s1 != s2 || p1 != p2 {
				t.Fatalf("vertex %d iter %d: picks differ", v, tt)
			}
		}
	})
}

func TestLoadedStateUpdatable(t *testing.T) {
	g := randomGraph(80, 200, 17)
	orig := mustRun(t, g, Config{T: 15, Seed: 5})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Update([]graph.Edit{
		{Op: graph.Insert, U: 1, V: 79},
		{Op: graph.Delete, U: 0, V: loaded.Graph().Neighbors(0)[0]},
	})
	if err := loaded.Validate(); err != nil {
		t.Fatalf("update after load: %v", err)
	}
}

func TestSaveLoadWithSentinels(t *testing.T) {
	// A fresh isolated vertex keeps -1 sentinels; they must survive.
	g := graph.New()
	g.AddEdge(0, 1)
	st := mustRun(t, g, Config{T: 8, Seed: 2})
	st.AddVertex(5)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := loaded.Pick(5, 3); ok {
		t.Fatal("sentinel pick resurrected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXXXXX",
		"RSLPA1\n", // truncated header
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Fatalf("garbage %q accepted", in)
		}
	}
}

func TestLoadRejectsTruncatedBody(t *testing.T) {
	g := randomGraph(30, 60, 3)
	st := mustRun(t, g, Config{T: 10, Seed: 1})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 3, len(full) - 5} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsCorruptSource(t *testing.T) {
	// Flip bytes until Load either rejects the stream or produces a state
	// that still validates (a flipped label value is legal data); what
	// must never happen is an inconsistent state passing Validate... so
	// assert: Load error OR Validate error OR fully consistent equal-shape
	// state.
	g := randomGraph(20, 40, 9)
	st := mustRun(t, g, Config{T: 6, Seed: 4})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for off := len(persistMagic) + 40; off < len(full); off += 97 {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		loaded, err := Load(bytes.NewReader(mut))
		if err != nil {
			continue // rejected: good
		}
		// Accepted: the state must at least be structurally sound enough
		// that Validate gives a definite verdict without panicking.
		_ = loaded.Validate()
	}
}

func TestSaveCheckpointRoundTrip(t *testing.T) {
	g := randomGraph(120, 320, 8)
	orig := mustRun(t, g, Config{T: 18, Seed: 44})
	orig.Update([]graph.Edit{{Op: graph.Insert, U: 3, V: 119}})

	var buf bytes.Buffer
	if err := orig.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded state invalid: %v", err)
	}
	if loaded.Epoch() != orig.Epoch() {
		t.Fatal("epoch lost")
	}
	if !orig.EqualLabels(loaded) {
		t.Fatal("label matrix or picks lost")
	}
}

// TestLoadedStateResumesBitIdentically is the sequential half of the
// checkpoint contract: because neighbor-list ORDER survives the round trip,
// a restored State replays future updates with the exact same random draws
// as the twin that never round-tripped — bit-identical, not just
// identically distributed.
func TestLoadedStateResumesBitIdentically(t *testing.T) {
	g := randomGraph(100, 260, 23)
	twin := mustRun(t, g, Config{T: 20, Seed: 6})
	// Churn first so adjacency lists carry swap-removal reorderings — the
	// case a naive AddEdge-based reload would scramble.
	churn := []graph.Edit{
		{Op: graph.Delete, U: 0, V: g.Neighbors(0)[0]},
		{Op: graph.Insert, U: 0, V: 99},
		{Op: graph.Delete, U: 5, V: g.Neighbors(5)[1]},
	}
	twin.Update(churn)

	for _, save := range []func(*State, *bytes.Buffer) error{
		func(s *State, b *bytes.Buffer) error { return s.Save(b) },           // legacy v1
		func(s *State, b *bytes.Buffer) error { return s.SaveCheckpoint(b) }, // sharded v2
	} {
		var buf bytes.Buffer
		if err := save(twin, &buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		resume := []graph.Edit{
			{Op: graph.Insert, U: 7, V: 93},
			{Op: graph.Delete, U: 0, V: twin.Graph().Neighbors(0)[0]},
			{Op: graph.Insert, U: 50, V: 150}, // brand-new vertex after restore
		}
		twinCopy := twin.Clone()
		s1 := twinCopy.Update(resume)
		s2 := loaded.Update(resume)
		if !reflect.DeepEqual(s1, s2) {
			t.Fatalf("update stats diverged: %+v vs %+v", s1, s2)
		}
		if !twinCopy.EqualLabels(loaded) {
			t.Fatal("restored state diverged from the never-restarted twin")
		}
	}
}

func TestReadCheckpointRejectsUnknownVersion(t *testing.T) {
	_, err := ReadCheckpoint(strings.NewReader("RSLPA3\n" + strings.Repeat("x", 64)))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future magic: got %v, want explicit version error", err)
	}
}

func TestCheckpointShardLengthMismatchRejected(t *testing.T) {
	st := mustRun(t, randomGraph(20, 40, 2), Config{T: 5, Seed: 1})
	var buf bytes.Buffer
	if err := st.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Shrink the recorded shard length: the shard then under-consumes and
	// the framing check must reject the stream.
	mut := append([]byte(nil), full...)
	off := len(checkpointMagic) + 8*6 // first (only) shard length slot
	mut[off] -= 4
	if _, err := ReadCheckpoint(bytes.NewReader(mut)); err == nil {
		t.Fatal("shard length mismatch accepted")
	}
}
