package core

import (
	"bytes"
	"strings"
	"testing"

	"rslpa/internal/graph"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	g := randomGraph(150, 400, 31)
	orig := mustRun(t, g, Config{T: 25, Seed: 77})
	orig.Update([]graph.Edit{{Op: graph.Insert, U: 0, V: 149}})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatalf("loaded state invalid: %v", err)
	}
	if loaded.T() != orig.T() || loaded.Seed() != orig.Seed() || loaded.Epoch() != orig.Epoch() {
		t.Fatal("config/epoch lost")
	}
	if !loaded.Graph().Equal(orig.Graph()) {
		t.Fatal("graph lost")
	}
	g.ForEachVertex(func(v uint32) {
		a, b := orig.Labels(v), loaded.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d iter %d: %d vs %d", v, i, a[i], b[i])
			}
		}
		for tt := 1; tt <= orig.T(); tt++ {
			s1, p1, ok1 := orig.Pick(v, tt)
			s2, p2, ok2 := loaded.Pick(v, tt)
			if ok1 != ok2 || s1 != s2 || p1 != p2 {
				t.Fatalf("vertex %d iter %d: picks differ", v, tt)
			}
		}
	})
}

func TestLoadedStateUpdatable(t *testing.T) {
	g := randomGraph(80, 200, 17)
	orig := mustRun(t, g, Config{T: 15, Seed: 5})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loaded.Update([]graph.Edit{
		{Op: graph.Insert, U: 1, V: 79},
		{Op: graph.Delete, U: 0, V: loaded.Graph().Neighbors(0)[0]},
	})
	if err := loaded.Validate(); err != nil {
		t.Fatalf("update after load: %v", err)
	}
}

func TestSaveLoadWithSentinels(t *testing.T) {
	// A fresh isolated vertex keeps -1 sentinels; they must survive.
	g := graph.New()
	g.AddEdge(0, 1)
	st := mustRun(t, g, Config{T: 8, Seed: 2})
	st.AddVertex(5)
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := loaded.Pick(5, 3); ok {
		t.Fatal("sentinel pick resurrected")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"XXXXXXX",
		"RSLPA1\n", // truncated header
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Fatalf("garbage %q accepted", in)
		}
	}
}

func TestLoadRejectsTruncatedBody(t *testing.T) {
	g := randomGraph(30, 60, 3)
	st := mustRun(t, g, Config{T: 10, Seed: 1})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) / 3, len(full) - 5} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLoadRejectsCorruptSource(t *testing.T) {
	// Flip bytes until Load either rejects the stream or produces a state
	// that still validates (a flipped label value is legal data); what
	// must never happen is an inconsistent state passing Validate... so
	// assert: Load error OR Validate error OR fully consistent equal-shape
	// state.
	g := randomGraph(20, 40, 9)
	st := mustRun(t, g, Config{T: 6, Seed: 4})
	var buf bytes.Buffer
	if err := st.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for off := len(persistMagic) + 40; off < len(full); off += 97 {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xff
		loaded, err := Load(bytes.NewReader(mut))
		if err != nil {
			continue // rejected: good
		}
		// Accepted: the state must at least be structurally sound enough
		// that Validate gives a definite verdict without panicking.
		_ = loaded.Validate()
	}
}
