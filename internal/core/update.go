package core

import (
	"slices"

	"rslpa/internal/graph"
)

// UpdateStats reports what an Update batch did; Touched is the measured η
// of Section IV-D (the number of labels that needed to be examined), which
// the analytic model in internal/complexity predicts.
type UpdateStats struct {
	Inserted int // edge insertions that changed the graph
	Deleted  int // edge deletions that changed the graph

	Repicked int // picks re-drawn or switched (Categories 2 and 3)
	Touched  int // label slots visited by correction propagation (η)
	Changed  int // label values that actually changed

	// LevelsSkipped counts correction levels in 1..T that held no dirty
	// slots and were therefore collapsed to zero work by the sparse
	// schedule. The set of non-idle levels is a pure function of the batch,
	// so the count is identical across execution modes and worker counts.
	LevelsSkipped int
	// RoundsRun is the cost of correction propagation under the engine's
	// own schedule: the sequential State counts one pass per non-idle level
	// (the fully-fused lower bound every distributed run approaches), while
	// the distributed driver counts the BSP supersteps it actually executed
	// (the apply/repick round plus one to three rounds per non-idle level).
	// A batch that dirties nothing reports zero for both counters.
	RoundsRun int

	// Dirty is the sorted, deduplicated set of vertices whose externally
	// visible state (adjacency or label sequence) may have changed: the
	// endpoints of every effective edit plus every vertex correction
	// propagation visited. It is what lets the streaming service publish
	// copy-on-write snapshots — only the shards covering Dirty vertices
	// are recloned; everything else is shared with the previous epoch.
	// The set is a pure function of the canonical batch, so it is
	// identical across execution modes and worker counts. Nil when the
	// batch changed nothing.
	Dirty []uint32
}

// Update applies a batch of edge edits to the State's graph and runs
// Correction Propagation (Algorithm 2) so that afterwards the label matrix
// is distributed exactly as a fresh Algorithm 1 run on the updated graph.
//
// Inserting an edge that exists or deleting one that does not is a no-op,
// and inserting+deleting the same edge within one batch cancels out. Edges
// may reference vertex IDs never seen before; those vertices are created
// (the paper's vertex-insertion rule: "pretend the new vertex was an old
// vertex with all old neighbors removed").
func (s *State) Update(batch []graph.Edit) UpdateStats {
	s.epoch++
	var stats UpdateStats
	a := &s.arena
	a.begin(s.cfg.T)

	// Phase 0: apply the batch, accumulating the *net* neighbor delta per
	// vertex (+1 added, -1 removed; cancellations vanish after Finalize).
	for _, e := range batch {
		switch e.Op {
		case graph.Insert:
			s.growTo(e.U)
			s.growTo(e.V)
			if s.g.AddEdge(e.U, e.V) {
				stats.Inserted++
				a.deltas.Bump(e.U, e.V, 1)
				a.deltas.Bump(e.V, e.U, 1)
				if s.labels[e.U] == nil {
					s.initVertex(e.U)
				}
				if s.labels[e.V] == nil {
					s.initVertex(e.V)
				}
			}
		case graph.Delete:
			if s.g.RemoveEdge(e.U, e.V) {
				stats.Deleted++
				a.deltas.Bump(e.U, e.V, -1)
				a.deltas.Bump(e.V, e.U, -1)
			}
		}
	}
	a.deltas.Finalize()
	a.ensure(len(s.labels)) // the batch may have grown the ID space

	// Phase 1: handle adjacent edge changes (Algorithm 2 lines 1-12).
	// Affected vertices arrive in ascending ID order straight from the
	// sorted accumulator and are classified per label slot into the three
	// categories of Section IV-A, re-picking where required.
	a.deltas.ForEach(func(v uint32, dl DeltaList) {
		a.collect(v) // adjacency changed even if no slot repicks
		stats.Repicked += s.repickVertex(v, dl)
	})

	// Phase 2: correction propagation (Algorithm 2 lines 13-24), level by
	// level. pos < t always, so by the time level t runs every label it
	// can read is final; each slot is therefore recomputed at most once.
	T := s.cfg.T
	activeLevels := 0
	for t := 1; t <= T; t++ {
		if len(a.dirty[t]) == 0 {
			continue // idle level: the sparse schedule's zero-cost case
		}
		activeLevels++
		for i := 0; i < len(a.dirty[t]); i++ {
			v := a.dirty[t][i]
			if !a.stampAt(v, int32(t)) {
				continue // duplicate mark within this level
			}
			a.collect(v)
			stats.Touched++
			newVal := s.labels[s.src[v][t]][s.pos[v][t]]
			if newVal == s.labels[v][t] {
				continue
			}
			s.labels[v][t] = newVal
			stats.Changed++
			// Forward the change to everyone who copied this label; a
			// linear scan of the flat record list beats any per-vertex
			// index here (profiled: map-based indexing tripled Update
			// time on web graphs).
			for _, rec := range s.recv[v] {
				if rec.Pos == int32(t) {
					a.dirty[rec.Iter] = append(a.dirty[rec.Iter], rec.Tar)
				}
			}
		}
		a.dirty[t] = a.dirty[t][:0] // recycle the queue's capacity
	}
	if activeLevels > 0 {
		stats.RoundsRun = activeLevels
		stats.LevelsSkipped = T - activeLevels
	}
	stats.Dirty = a.finishDirty()
	return stats
}

// SortedDirty flattens a dirty-vertex set into the canonical UpdateStats
// form: ascending IDs, nil when empty. Shared with the distributed driver
// so both modes report identical sets.
func SortedDirty(set map[uint32]struct{}) []uint32 {
	if len(set) == 0 {
		return nil
	}
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

// repickVertex applies the Category 1/2/3 analysis to every label slot of
// an affected vertex. dl is the vertex's sorted net neighbor delta. Slots
// that get a new (src, pos) are marked dirty in the arena's level queues.
// It returns the number of re-picked slots. The decision rules live in
// RepickPlan, shared with the distributed driver.
func (s *State) repickVertex(v uint32, dl DeltaList) int {
	a := &s.arena
	plan := NewRepickPlan(v, dl, s.g.Neighbors(v), a.arrivals)
	a.arrivals = plan.Buf() // keep the (possibly grown) buffer for the next vertex
	if !plan.Active() {
		return 0
	}

	repicked := 0
	T := int32(s.cfg.T)
	for t := int32(1); t <= T; t++ {
		oldSrc := s.src[v][t]
		newSrc, newPos, rp := plan.Slot(s.cfg, s.epoch, t, oldSrc)
		if !rp {
			continue
		}
		if oldSrc >= 0 {
			s.dropRecord(uint32(oldSrc), s.pos[v][t], v, t)
		}
		s.src[v][t] = int32(newSrc)
		s.pos[v][t] = newPos
		s.recv[newSrc] = append(s.recv[newSrc], Record{Pos: newPos, Tar: v, Iter: t})
		a.dirty[t] = append(a.dirty[t], v)
		repicked++
	}
	return repicked
}

// growTo extends the per-vertex arrays to cover vertex ID v.
func (s *State) growTo(v uint32) {
	for int(v) >= len(s.labels) {
		s.labels = append(s.labels, nil)
		s.src = append(s.src, nil)
		s.pos = append(s.pos, nil)
		s.recv = append(s.recv, nil)
	}
}

// MergeDirty inserts v into a canonical (sorted, deduplicated) Dirty set,
// preserving the invariant. The input slice is never aliased by callers
// that must not observe the mutation: UpdateStats.Dirty is freshly
// allocated by every Update, so in-place insertion is safe here.
func MergeDirty(dirty []uint32, v uint32) []uint32 {
	i, found := slices.BinarySearch(dirty, v)
	if found {
		return dirty
	}
	return slices.Insert(dirty, i, v)
}

// AddVertex inserts an isolated vertex (no label slots need repair: an
// isolated vertex's sequence is all its own label). ok is false if the
// vertex already existed. Even though no labels change, the vertex's
// presence bit does — the returned stats carry v in Dirty so copy-on-write
// snapshot publication reclones the shard that must now serve it.
func (s *State) AddVertex(v uint32) (UpdateStats, bool) {
	s.growTo(v)
	if !s.g.AddVertex(v) {
		return UpdateStats{}, false
	}
	if s.labels[v] == nil {
		s.initVertex(v)
	}
	return UpdateStats{Dirty: []uint32{v}}, true
}

// RemoveVertex deletes a vertex and its incident edges, repairing all
// affected labels (the paper's rule: deletion is handled by deleting the
// incident edges and then ignoring the vertex). It returns the stats of the
// induced edge-deletion batch; ok is false if the vertex was absent.
//
// Dirty always includes v itself, even when the vertex was isolated and
// the induced batch therefore empty: removing it still flips its shard's
// presence bit, which a copy-on-write snapshot must observe.
func (s *State) RemoveVertex(v uint32) (UpdateStats, bool) {
	if !s.g.HasVertex(v) {
		return UpdateStats{}, false
	}
	nbrs := s.g.Neighbors(v)
	batch := make([]graph.Edit, 0, len(nbrs))
	for _, u := range nbrs {
		batch = append(batch, graph.Edit{Op: graph.Delete, U: v, V: u})
	}
	stats := s.Update(batch)
	// After the batch no external pick references v (its former neighbors
	// all re-picked away), and v's own picks are self-picks whose records
	// live at v itself; dropping the vertex wholesale is safe.
	s.g.RemoveVertex(v)
	s.labels[v] = nil
	s.src[v] = nil
	s.pos[v] = nil
	s.recv[v] = nil
	stats.Dirty = MergeDirty(stats.Dirty, v)
	return stats, true
}
