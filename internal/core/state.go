// Package core implements rSLPA, the paper's primary contribution: the
// randomized Speaker-Listener Label Propagation Algorithm of Section III
// (Algorithm 1) together with the incremental Correction Propagation
// algorithm of Section IV (Algorithm 2).
//
// # The randomized propagation model
//
// After T iterations every vertex v holds a label sequence
// L_v = (l⁰_v, …, l^T_v) with l⁰_v = v. For t ≥ 1, the label l^t_v is
// obtained by uniformly picking a source neighbor src ∈ N(v) and a position
// pos ∈ [0, t), and copying l^pos_src (Theorems 2 and 3 show this is
// equivalent to SLPA's "speaker" step followed by uniform — rather than
// plurality — selection). The package stores the full choice, not just the
// value:
//
//	labels[v][t] == labels[src[v][t]][pos[v][t]]
//
// which is the invariant that makes the result *trackable* under graph
// updates. Reverse records R (one per picked label) let a changed label
// notify exactly the labels that copied it.
//
// # Incremental maintenance
//
// Update applies a batch of edge insertions/deletions and repairs the label
// matrix so that its distribution is exactly what a from-scratch run on the
// new graph would produce. Per Section IV-A, a pick survives if its source
// can still be treated as uniformly chosen from the *current* neighbor set:
// sources over deleted edges are re-picked (Category 2 / Theorem 4), and
// when neighbors were added the pick is kept only with probability
// n_u/(n_u+n_a), otherwise re-picked among the new neighbors (Category 3 /
// Theorem 5). Value changes then cascade along the records (Section IV-B).
//
// # Determinism
//
// Every random decision is drawn from a stream derived from
// (seed, epoch, vertex, iteration), so results are reproducible and
// independent of partitioning — the distributed driver in internal/dist
// produces bit-identical label matrices.
//
// Isolated vertices (the paper leaves them undefined) use the effective
// neighbor set N_eff(v) = N(v) when non-empty, else {v}: a vertex with no
// neighbors keeps talking to itself and its sequence collapses to its own
// label, which is what the post-processing expects.
package core

import (
	"fmt"

	"rslpa/internal/graph"
)

// Config configures a propagation run.
type Config struct {
	// T is the number of label propagation iterations. The paper uses
	// T=200 for rSLPA (Figure 7a shows convergence for T >= 200).
	T int
	// Seed drives all randomness; identical Config + graph => identical
	// result.
	Seed uint64
}

// DefaultT is the iteration count the paper settles on for rSLPA.
const DefaultT = 200

// Record is a reverse edge of the label propagation forest: it lives at the
// *source* vertex and says "receiver Tar picked my label at position Pos to
// be its label for iteration Iter" (the set R^Pos in Section IV-B).
type Record struct {
	Pos  int32  // position of the picked label at the source
	Tar  uint32 // receiving vertex
	Iter int32  // iteration at which Tar picked it (always > Pos)
}

// State is the complete, updatable result of a propagation run: the label
// matrix, the (src, pos) choices behind it, the reverse records, and the
// graph it was computed on. Create one with Run; evolve it with Update.
// A State is not safe for concurrent mutation.
type State struct {
	cfg Config
	g   *graph.Graph

	labels [][]uint32 // labels[v][0..T]; nil for never-seen vertex IDs
	src    [][]int32  // src[v][t]; -1 = no recorded pick (fresh vertex)
	pos    [][]int32  // pos[v][t]; parallel to src
	recv   [][]Record // records stored at the source vertex

	epoch uint64 // update-batch counter, part of repick stream derivation

	// arena is the reusable Update scratch (see arena.go). It carries no
	// observable state — Clone deliberately leaves the copy's arena zero —
	// so checkpoints and snapshots are unaffected.
	arena updArena
}

// Run executes Algorithm 1 on g and returns the resulting State. The graph
// is cloned; later mutations of g do not affect the State (feed them through
// Update instead).
func Run(g *graph.Graph, cfg Config) (*State, error) {
	if cfg.T <= 0 {
		return nil, fmt.Errorf("core: config T=%d must be positive", cfg.T)
	}
	s := &State{cfg: cfg, g: g.Clone()}
	n := s.g.MaxVertexID()
	s.labels = make([][]uint32, n)
	s.src = make([][]int32, n)
	s.pos = make([][]int32, n)
	s.recv = make([][]Record, n)
	s.g.ForEachVertex(func(v uint32) { s.initVertex(v) })

	// Label propagation: T synchronous iterations. Every pick reads only
	// labels from iterations < t, so a single in-order sweep per level is
	// exactly the BSP computation of Algorithm 1.
	for t := 1; t <= cfg.T; t++ {
		s.g.ForEachVertex(func(v uint32) {
			src, pos := InitialPick(s.cfg, v, t, s.g.Neighbors(v))
			s.install(v, int32(t), src, pos)
		})
	}
	return s, nil
}

// initVertex allocates the per-vertex arrays with the initial label
// l⁰_v = v and sentinel picks.
func (s *State) initVertex(v uint32) {
	t := s.cfg.T
	labels := make([]uint32, t+1)
	srcs := make([]int32, t+1)
	poss := make([]int32, t+1)
	for i := range labels {
		labels[i] = v
		srcs[i] = -1
		poss[i] = -1
	}
	s.labels[v] = labels
	s.src[v] = srcs
	s.pos[v] = poss
}

// install sets vertex v's pick for iteration t to (src, pos), copying the
// label value and appending the reverse record at the source.
func (s *State) install(v uint32, t int32, src uint32, pos int32) {
	s.labels[v][t] = s.labels[src][pos]
	s.src[v][t] = int32(src)
	s.pos[v][t] = pos
	s.recv[src] = append(s.recv[src], Record{Pos: pos, Tar: v, Iter: t})
}

// dropRecord removes the record {pos, v, t} from source vertex src's list.
// It is a no-op if the record is absent (fresh-vertex sentinels).
func (s *State) dropRecord(src uint32, pos int32, v uint32, t int32) {
	list := s.recv[src]
	for i, rec := range list {
		if rec.Pos == pos && rec.Tar == v && rec.Iter == t {
			last := len(list) - 1
			list[i] = list[last]
			s.recv[src] = list[:last]
			return
		}
	}
}

// T returns the configured iteration count.
func (s *State) T() int { return s.cfg.T }

// Seed returns the configured seed.
func (s *State) Seed() uint64 { return s.cfg.Seed }

// Epoch returns the number of Update batches applied so far.
func (s *State) Epoch() uint64 { return s.epoch }

// Graph returns the State's current graph. The caller must not mutate it;
// use Update.
func (s *State) Graph() *graph.Graph { return s.g }

// Labels returns vertex v's label sequence (length T+1). The slice is owned
// by the State; callers must not mutate it. It returns nil for vertices not
// in the graph.
func (s *State) Labels(v uint32) []uint32 {
	if int(v) >= len(s.labels) || !s.g.HasVertex(v) {
		return nil
	}
	return s.labels[v]
}

// Pick returns the recorded (src, pos) choice behind vertex v's label at
// iteration t; ok is false for t = 0, fresh sentinels, or absent vertices.
func (s *State) Pick(v uint32, t int) (src uint32, pos int, ok bool) {
	if int(v) >= len(s.src) || t <= 0 || t >= len(s.src[v]) {
		return 0, 0, false
	}
	if s.src[v][t] < 0 {
		return 0, 0, false
	}
	return uint32(s.src[v][t]), int(s.pos[v][t]), true
}

// Records returns the reverse records stored at vertex v. The slice is
// owned by the State.
func (s *State) Records(v uint32) []Record {
	if int(v) >= len(s.recv) {
		return nil
	}
	return s.recv[v]
}

// Clone returns a deep copy of the State, useful for comparing incremental
// updates against from-scratch recomputation in tests.
func (s *State) Clone() *State {
	c := &State{cfg: s.cfg, g: s.g.Clone(), epoch: s.epoch}
	c.labels = make([][]uint32, len(s.labels))
	c.src = make([][]int32, len(s.src))
	c.pos = make([][]int32, len(s.pos))
	c.recv = make([][]Record, len(s.recv))
	for v := range s.labels {
		if s.labels[v] != nil {
			c.labels[v] = append([]uint32(nil), s.labels[v]...)
			c.src[v] = append([]int32(nil), s.src[v]...)
			c.pos[v] = append([]int32(nil), s.pos[v]...)
		}
		if s.recv[v] != nil {
			c.recv[v] = append([]Record(nil), s.recv[v]...)
		}
	}
	return c
}
