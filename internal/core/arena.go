package core

import "slices"

// This file implements the reusable update arena: the scratch state Update
// needs on every batch, persisted inside the State so the steady-state
// incremental hot path allocates O(η) — proportional to the work the batch
// actually causes — instead of O(n) or O(T) per call. Three tricks carry
// the design:
//
//   - Generation stamping. The per-vertex stamp and seen arrays are never
//     cleared; each Update bumps a generation counter and a slot is "set"
//     only when it carries the current generation. Resetting is O(1), and
//     the arrays grow monotonically with the vertex ID space.
//   - Flat delta accumulation. The net neighbor delta of a batch is
//     collected as a flat (vertex, neighbor, ±1) triple list, then sorted
//     and merged in place — replacing the map-of-maps that dominated the
//     old allocation profile. Sorting also yields the affected vertices in
//     ascending order for free, with each vertex's delta a sorted
//     contiguous run (the DeltaList the repick rules consume).
//   - Queue pooling. The per-level dirty queues and every other slice are
//     truncated to length zero after use, so their capacity is reused by
//     the next batch.
//
// None of this changes any observable result: the repick streams are pure
// functions of (seed, epoch, vertex, iteration), and the equivalence,
// checkpoint and fuzz suites pin bit-identity with the distributed driver.

// NbrDelta is one entry of a DeltaList: the net adjacency change of a
// single neighbor within one batch (+1 added, -1 removed; exact
// cancellations never appear).
type NbrDelta struct {
	Nbr uint32
	D   int8
}

// DeltaList is one affected vertex's net neighbor delta, sorted by
// ascending neighbor ID. It replaces the map[uint32]int8 the repick rules
// used to consume: the sorted order makes the Category 3 arrival sequence
// deterministic without a per-vertex sort, and lookups are binary searches.
type DeltaList []NbrDelta

// Of returns the delta recorded for neighbor u (0 when absent).
func (dl DeltaList) Of(u uint32) int8 {
	i, ok := slices.BinarySearchFunc(dl, u, func(e NbrDelta, t uint32) int {
		if e.Nbr < t {
			return -1
		}
		if e.Nbr > t {
			return 1
		}
		return 0
	})
	if !ok {
		return 0
	}
	return dl[i].D
}

// deltaEdge is one raw accumulation entry: vertex v's adjacency to u
// changed by d. Two entries (one per endpoint) are recorded per effective
// edit.
type deltaEdge struct {
	v, u uint32
	d    int8
}

// DeltaAcc accumulates the net neighbor delta of a batch without maps.
// Bump records raw entries; Finalize sorts and merges them, after which
// ForEach visits each affected vertex in ascending ID order with its
// sorted DeltaList. The zero value is ready to use, and Reset recycles the
// backing arrays for the next batch. Shared with the distributed driver so
// both Update paths stay map-free.
type DeltaAcc struct {
	entries []deltaEdge
	dl      []NbrDelta // reusable DeltaList buffer for ForEach
}

// Reset discards the accumulated entries, keeping capacity.
func (a *DeltaAcc) Reset() { a.entries = a.entries[:0] }

// Bump records that v's adjacency to u changed by d.
func (a *DeltaAcc) Bump(v, u uint32, d int8) {
	a.entries = append(a.entries, deltaEdge{v: v, u: u, d: d})
}

// Finalize sorts the raw entries by (vertex, neighbor) and merges
// duplicates, dropping exact cancellations — the semantics of the
// map-of-maps it replaces.
func (a *DeltaAcc) Finalize() {
	slices.SortFunc(a.entries, func(x, y deltaEdge) int {
		if x.v != y.v {
			if x.v < y.v {
				return -1
			}
			return 1
		}
		if x.u != y.u {
			if x.u < y.u {
				return -1
			}
			return 1
		}
		return 0
	})
	out := a.entries[:0]
	for i := 0; i < len(a.entries); {
		j := i
		sum := 0
		for j < len(a.entries) && a.entries[j].v == a.entries[i].v && a.entries[j].u == a.entries[i].u {
			sum += int(a.entries[j].d)
			j++
		}
		if sum != 0 {
			out = append(out, deltaEdge{v: a.entries[i].v, u: a.entries[i].u, d: int8(sum)})
		}
		i = j
	}
	a.entries = out
}

// ForEach visits each affected vertex in ascending ID order with its
// sorted DeltaList. The list lives in the accumulator's reusable buffer
// and is only valid within fn. Must be called after Finalize.
func (a *DeltaAcc) ForEach(fn func(v uint32, dl DeltaList)) {
	for i := 0; i < len(a.entries); {
		j := i
		for j < len(a.entries) && a.entries[j].v == a.entries[i].v {
			j++
		}
		a.dl = a.dl[:0]
		for _, e := range a.entries[i:j] {
			a.dl = append(a.dl, NbrDelta{Nbr: e.u, D: e.d})
		}
		fn(a.entries[i].v, DeltaList(a.dl))
		i = j
	}
}

// updArena is the State's reusable Update scratch. All fields persist
// across batches; begin() performs the O(1) generation reset.
type updArena struct {
	gen   uint32   // current generation (0 = never used)
	stamp []uint64 // stamp[v] = gen<<32|level: v drained at level this batch
	seen  []uint32 // seen[v] == gen: v already collected into dirtyBuf

	dirtyBuf []uint32   // dirty vertices of the current batch (unsorted)
	dirty    [][]uint32 // per-level pending-slot queues, reused
	deltas   DeltaAcc   // batch net-delta accumulation
	arrivals []uint32   // RepickPlan Category 3 arrival buffer
}

// begin starts a new batch: bump the generation (clearing stamp/seen in
// O(1)) and make sure the per-level queues cover 1..T. On the
// once-in-4-billion generation wraparound the stamp arrays are zeroed so
// stale marks can never alias.
func (a *updArena) begin(T int) {
	a.gen++
	if a.gen == 0 { // wrapped: hard-clear and restart at 1
		clear(a.stamp)
		clear(a.seen)
		a.gen = 1
	}
	for len(a.dirty) < T+1 {
		a.dirty = append(a.dirty, nil)
	}
	a.dirtyBuf = a.dirtyBuf[:0]
	a.deltas.Reset()
}

// ensure grows the stamp arrays to cover n vertex IDs (new vertices can
// appear mid-batch). Grown tails are zero, which no generation ≥ 1 ever
// matches.
func (a *updArena) ensure(n int) {
	for len(a.stamp) < n {
		a.stamp = append(a.stamp, 0)
	}
	for len(a.seen) < n {
		a.seen = append(a.seen, 0)
	}
}

// stampAt marks v drained at level t, reporting whether it was already
// marked this batch (duplicate mark within the level).
func (a *updArena) stampAt(v uint32, t int32) bool {
	key := uint64(a.gen)<<32 | uint64(uint32(t))
	if a.stamp[v] == key {
		return false
	}
	a.stamp[v] = key
	return true
}

// collect adds v to the batch's dirty set (idempotent per batch).
func (a *updArena) collect(v uint32) {
	if a.seen[v] == a.gen {
		return
	}
	a.seen[v] = a.gen
	a.dirtyBuf = append(a.dirtyBuf, v)
}

// finishDirty flattens the collected dirty set into the canonical
// UpdateStats form: a freshly allocated ascending slice (it escapes into
// snapshots), nil when empty.
func (a *updArena) finishDirty() []uint32 {
	if len(a.dirtyBuf) == 0 {
		return nil
	}
	out := make([]uint32, len(a.dirtyBuf))
	copy(out, a.dirtyBuf)
	slices.Sort(out)
	return out
}
