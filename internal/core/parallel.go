package core

import (
	"fmt"
	"runtime"
	"sync"

	"rslpa/internal/graph"
)

// RunParallel executes Algorithm 1 with the level loop parallelized across
// CPU cores (workers <= 0 selects GOMAXPROCS). Because every pick's random
// stream depends only on (seed, vertex, iteration) and reads only labels
// from earlier iterations, vertices within one level are embarrassingly
// parallel — the result is bit-identical to Run, which a test asserts.
//
// This is in-process parallelism for a single machine, distinct from the
// partitioned message-passing execution in internal/dist: no messages are
// exchanged, the full state is shared, and only the per-level compute is
// fanned out. The records are accumulated per worker and merged at the end
// of each level so no locking appears on the hot path.
func RunParallel(g *graph.Graph, cfg Config, workers int) (*State, error) {
	if cfg.T <= 0 {
		return nil, fmt.Errorf("core: config T=%d must be positive", cfg.T)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &State{cfg: cfg, g: g.Clone()}
	n := s.g.MaxVertexID()
	s.labels = make([][]uint32, n)
	s.src = make([][]int32, n)
	s.pos = make([][]int32, n)
	s.recv = make([][]Record, n)
	vertices := s.g.Vertices()
	for _, v := range vertices {
		s.initVertex(v)
	}
	if len(vertices) == 0 {
		return s, nil
	}

	// Pre-split the vertex list into contiguous shards, one per worker.
	shards := make([][]uint32, 0, workers)
	per := (len(vertices) + workers - 1) / workers
	for off := 0; off < len(vertices); off += per {
		end := off + per
		if end > len(vertices) {
			end = len(vertices)
		}
		shards = append(shards, vertices[off:end])
	}

	type pick struct {
		v   uint32
		src uint32
		pos int32
	}
	picks := make([][]pick, len(shards))
	var wg sync.WaitGroup
	for t := 1; t <= cfg.T; t++ {
		for si, shard := range shards {
			si, shard := si, shard
			wg.Add(1)
			go func() {
				defer wg.Done()
				out := picks[si][:0]
				for _, v := range shard {
					src, pos := InitialPick(s.cfg, v, t, s.g.Neighbors(v))
					out = append(out, pick{v: v, src: src, pos: pos})
				}
				picks[si] = out
			}()
		}
		wg.Wait()
		// Serial merge: install picks (writes labels[v][t], the records at
		// sources, and src/pos) — cheap relative to the draws, and gives
		// the exact same record multiset as the sequential Run.
		for _, out := range picks {
			for _, p := range out {
				s.install(p.v, int32(t), p.src, p.pos)
			}
		}
	}
	return s, nil
}
