package core_test

import (
	"testing"

	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/lfr"
)

// TestUpdateSmallBatchAllocs pins the arena refactor's payoff: a warm
// sequential State processes a small batch in a handful of allocations,
// independent of graph size. The budget covers the unavoidable escapes —
// UpdateStats.Dirty is freshly allocated every call because it outlives the
// batch (stream snapshots keep it) — plus slack for map/slice growth noise.
// Before the reusable arena this path cost ~75 allocs per Update; a value
// anywhere near that again means the scratch state is being rebuilt per
// batch.
func TestUpdateSmallBatchAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 4000-vertex fixture")
	}
	res, err := lfr.Generate(lfr.Params{N: 4000, AvgDeg: 8, MaxDeg: 40, Mu: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.Run(res.Graph, core.Config{T: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := dynamic.Batch(s.Graph(), 2, 99)
	if err != nil {
		t.Fatal(err)
	}
	inv := dynamic.Invert(batch)

	// Warm the arena (first Update sizes the stamp arrays and queues), then
	// measure an apply/undo pair so the graph returns to its start state
	// every round and the arena stays at steady-state capacity.
	s.Update(batch)
	s.Update(inv)
	avg := testing.AllocsPerRun(50, func() {
		s.Update(batch)
		s.Update(inv)
	}) / 2

	const budget = 7
	if avg > budget {
		t.Fatalf("sequential Update: %.1f allocs per small batch, budget %d", avg, budget)
	}
	t.Logf("sequential Update: %.1f allocs per small batch (budget %d)", avg, budget)
}
