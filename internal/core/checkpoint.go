package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rslpa/internal/graph"
)

// This file implements the sharded checkpoint container (format version 2,
// magic "RSLPA2\n") and the shared per-vertex record codec both format
// versions use. The full format specification lives in the doc block of
// persist.go; the architectural summary is:
//
//   - a shard is an independently-encodable byte blob holding the complete
//     propagation state of a set of vertices (EncodeShard), so P workers can
//     serialize their partitions concurrently and a master only concatenates;
//   - the container header records (T, seed, epoch, idSpace, P, owner-map
//     digest) and the per-shard byte lengths, from which shard offsets follow
//     as prefix sums;
//   - loading never trusts the shard boundaries: records are re-partitioned
//     through whatever owner map the *loading* engine uses (or merged into a
//     sequential State), which is what makes a checkpoint portable across
//     worker counts and transports.

const checkpointMagic = "RSLPA2\n"

// checkpoint sanity bounds: corruption guards for the decoder, far above
// anything this repo's scales produce, not protocol limits.
const (
	maxCheckpointT      = 1 << 20
	maxCheckpointShards = 1 << 16
	maxCheckpointSpace  = 1 << 32
)

// VertexRecord is one vertex's complete propagation state as stored in a
// checkpoint shard: its adjacency (in exact live order — future picks draw
// an index into it), the label sequence for iterations 1..T (l⁰ is the
// vertex ID itself), and the (src, pos) pick provenance with -1 sentinels
// for fresh slots. Reverse records are NOT stored: they are fully determined
// by the picks (Validate's record-symmetry invariant) and are rebuilt on
// load.
type VertexRecord struct {
	V      uint32
	Nbrs   []uint32
	Labels []uint32 // iterations 1..T (length T)
	Src    []int32  // iterations 1..T; -1 = fresh sentinel
	Pos    []int32  // parallel to Src
}

// CheckpointMeta is the scalar header state of a checkpoint: everything a
// restored detector needs besides the vertex records themselves. Epoch is
// the update-batch counter and doubles as the RNG stream position — every
// random draw is a pure function of (Seed, Epoch, vertex, iteration), so no
// generator state needs saving.
type CheckpointMeta struct {
	T       int
	Seed    uint64
	Epoch   uint64
	IDSpace int
}

// Checkpoint is a decoded checkpoint: the header state plus the vertex
// records grouped by the shard that saved them. The grouping is provenance,
// not an obligation — builders re-partition the records through the loading
// engine's owner map.
type Checkpoint struct {
	CheckpointMeta
	Shards [][]VertexRecord
}

// Records iterates all vertex records across shards in stored order.
func (c *Checkpoint) Records(fn func(rec *VertexRecord)) {
	for _, sh := range c.Shards {
		for i := range sh {
			fn(&sh[i])
		}
	}
}

// shardDigest is the FNV-1a accumulation of one shard's vertex IDs in record
// order; combined across shards (combineDigests) it pins the owner map the
// checkpoint was saved under, so reordered, dropped or cross-wired shard
// blobs are detected before any state is built.
func shardDigest(vertexIDs func(fn func(v uint32))) uint64 {
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	vertexIDs(func(v uint32) {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(v >> shift))
			h *= prime64
		}
	})
	return h
}

// combineDigests folds per-shard digests (with their record counts) into the
// container-level owner-map digest, sensitive to shard order.
func combineDigests(counts []int, digests []uint64) uint64 {
	const offset64, prime64 = 0xcbf29ce484222325, 0x100000001b3
	h := uint64(offset64)
	mix := func(x uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= uint64(byte(x >> shift))
			h *= prime64
		}
	}
	for i := range digests {
		mix(uint64(counts[i]))
		mix(digests[i])
	}
	return h
}

// EncodeShard serializes one shard's vertex records into a self-contained
// blob: [u64 shard digest][u64 vertex count][records...]. It is a pure
// function safe to call concurrently from P workers; the caller passes the
// blobs to WriteCheckpoint. T is the iteration count every record must
// match (len(Labels) == len(Src) == len(Pos) == T).
func EncodeShard(t int, recs []VertexRecord) []byte {
	// Exact size: 16-byte blob header + per record (2 + deg + 3T) words.
	size := 16
	for i := range recs {
		size += 4 * (2 + len(recs[i].Nbrs) + 3*t)
	}
	buf := make([]byte, 0, size)
	digest := shardDigest(func(fn func(v uint32)) {
		for i := range recs {
			fn(recs[i].V)
		}
	})
	buf = binary.LittleEndian.AppendUint64(buf, digest)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(recs)))
	for i := range recs {
		buf = appendVertexRecord(buf, &recs[i])
	}
	return buf
}

// appendVertexRecord appends the wire encoding of one vertex record:
// v, degree, neighbors, labels[1..T], src bit patterns, pos bit patterns.
func appendVertexRecord(buf []byte, rec *VertexRecord) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, rec.V)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rec.Nbrs)))
	for _, u := range rec.Nbrs {
		buf = binary.LittleEndian.AppendUint32(buf, u)
	}
	for _, l := range rec.Labels {
		buf = binary.LittleEndian.AppendUint32(buf, l)
	}
	for _, s := range rec.Src {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(s))
	}
	for _, p := range rec.Pos {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(p))
	}
	return buf
}

// WriteCheckpoint writes the sharded container: header, per-shard byte
// lengths, then the shard blobs verbatim. shards must be EncodeShard
// outputs (their leading digests feed the container's owner-map digest).
func WriteCheckpoint(w io.Writer, meta CheckpointMeta, shards [][]byte) error {
	if meta.T <= 0 {
		return fmt.Errorf("core: save checkpoint: T=%d must be positive", meta.T)
	}
	counts := make([]int, len(shards))
	digests := make([]uint64, len(shards))
	for i, blob := range shards {
		if len(blob) < 16 {
			return fmt.Errorf("core: save checkpoint: shard %d blob truncated (%d bytes)", i, len(blob))
		}
		digests[i] = binary.LittleEndian.Uint64(blob)
		counts[i] = int(binary.LittleEndian.Uint64(blob[8:]))
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return fmt.Errorf("core: save checkpoint: %w", err)
	}
	hdr := []uint64{
		uint64(meta.T), meta.Seed, meta.Epoch, uint64(meta.IDSpace),
		uint64(len(shards)), combineDigests(counts, digests),
	}
	for _, x := range hdr {
		if err := writeU64(bw, x); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
	}
	for _, blob := range shards {
		if err := writeU64(bw, uint64(len(blob))); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
	}
	for _, blob := range shards {
		if _, err := bw.Write(blob); err != nil {
			return fmt.Errorf("core: save checkpoint: %w", err)
		}
	}
	return bw.Flush()
}

// Checkpoint snapshots a sequential State as a single-shard checkpoint with
// records in ascending vertex order. The State is unchanged; record slices
// alias the State's internal arrays, so encode before mutating it further.
func (s *State) Checkpoint() *Checkpoint {
	recs := make([]VertexRecord, 0, s.g.NumVertices())
	s.g.ForEachVertex(func(v uint32) {
		recs = append(recs, VertexRecord{
			V:      v,
			Nbrs:   s.g.Neighbors(v),
			Labels: s.labels[v][1:],
			Src:    s.src[v][1:],
			Pos:    s.pos[v][1:],
		})
	})
	return &Checkpoint{
		CheckpointMeta: CheckpointMeta{T: s.cfg.T, Seed: s.cfg.Seed, Epoch: s.epoch, IDSpace: len(s.labels)},
		Shards:         [][]VertexRecord{recs},
	}
}

// SaveCheckpoint writes the State to w in the sharded container format
// (version 2, single shard). Unlike the legacy Save stream, a version-2
// checkpoint can be loaded into a detector of ANY worker count.
func (s *State) SaveCheckpoint(w io.Writer) error {
	c := s.Checkpoint()
	return WriteCheckpoint(w, c.CheckpointMeta, [][]byte{EncodeShard(c.T, c.Shards[0])})
}

// ReadCheckpoint decodes a checkpoint stream in either format version:
// "RSLPA2\n" sharded containers or legacy "RSLPA1\n" single-blob streams
// (parsed as one shard). It performs framing and digest validation only;
// call Verify / BuildState / BuildGraph to cross-check the records and
// materialize state. Any other magic is rejected with a version error.
//
// The decoder is hardened against corrupt input: every claimed count is
// either bounds-checked against a sanity cap or read incrementally, so
// allocation stays proportional to the bytes actually consumed — corrupt
// streams fail with an error, never a panic or an OOM.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	switch string(magic) {
	case checkpointMagic:
		return readCheckpointV2(br)
	case persistMagic:
		return readCheckpointV1(br)
	default:
		return nil, fmt.Errorf("core: load: unsupported checkpoint version (magic %q; want %q or %q)",
			magic, checkpointMagic, persistMagic)
	}
}

// readCheckpointV2 parses the body of a version-2 sharded container.
func readCheckpointV2(br *bufio.Reader) (*Checkpoint, error) {
	var hdr [6]uint64
	for i := range hdr {
		x, err := readU64(br)
		if err != nil {
			return nil, fmt.Errorf("core: load header: %w", err)
		}
		hdr[i] = x
	}
	meta, err := checkMeta(hdr[0], hdr[1], hdr[2], hdr[3])
	if err != nil {
		return nil, err
	}
	shardCount, wantDigest := hdr[4], hdr[5]
	if shardCount > maxCheckpointShards {
		return nil, fmt.Errorf("core: load: implausible shard count %d", shardCount)
	}
	lengths := make([]uint64, shardCount)
	for i := range lengths {
		if lengths[i], err = readU64(br); err != nil {
			return nil, fmt.Errorf("core: load shard lengths: %w", err)
		}
	}

	c := &Checkpoint{CheckpointMeta: meta, Shards: make([][]VertexRecord, shardCount)}
	counts := make([]int, shardCount)
	digests := make([]uint64, shardCount)
	for s := range c.Shards {
		// Each shard must consume exactly its recorded byte length; a
		// LimitReader turns any overrun into a clean EOF error.
		lr := &countingReader{r: io.LimitReader(br, int64(lengths[s]))}
		storedDigest, err := readU64(lr)
		if err != nil {
			return nil, fmt.Errorf("core: load shard %d: %w", s, err)
		}
		count, err := readU64(lr)
		if err != nil {
			return nil, fmt.Errorf("core: load shard %d: %w", s, err)
		}
		if count > uint64(maxCheckpointSpace) {
			return nil, fmt.Errorf("core: load shard %d: implausible vertex count %d", s, count)
		}
		recs := make([]VertexRecord, 0, min(int(count), 4096))
		for i := 0; i < int(count); i++ {
			rec, err := readVertexRecord(lr, meta.T, meta.IDSpace)
			if err != nil {
				return nil, fmt.Errorf("core: load shard %d vertex %d: %w", s, i, err)
			}
			recs = append(recs, rec)
		}
		if lr.n != int64(lengths[s]) {
			return nil, fmt.Errorf("core: load shard %d: consumed %d bytes, recorded length %d", s, lr.n, lengths[s])
		}
		got := shardDigest(func(fn func(v uint32)) {
			for i := range recs {
				fn(recs[i].V)
			}
		})
		if got != storedDigest {
			return nil, fmt.Errorf("core: load shard %d: owner-map digest mismatch (stored %016x, computed %016x)",
				s, storedDigest, got)
		}
		c.Shards[s] = recs
		counts[s], digests[s] = len(recs), got
	}
	if got := combineDigests(counts, digests); got != wantDigest {
		return nil, fmt.Errorf("core: load: owner-map digest mismatch (header %016x, computed %016x)", wantDigest, got)
	}
	return c, nil
}

// readCheckpointV1 parses the body of a legacy single-blob stream into a
// one-shard Checkpoint.
func readCheckpointV1(br *bufio.Reader) (*Checkpoint, error) {
	var hdr [5]uint64
	for i := range hdr {
		x, err := readU64(br)
		if err != nil {
			return nil, fmt.Errorf("core: load header: %w", err)
		}
		hdr[i] = x
	}
	meta, err := checkMeta(hdr[0], hdr[1], hdr[2], hdr[3])
	if err != nil {
		return nil, err
	}
	present := hdr[4]
	if present > uint64(maxCheckpointSpace) {
		return nil, fmt.Errorf("core: load: implausible vertex count %d", present)
	}
	recs := make([]VertexRecord, 0, min(int(present), 4096))
	for i := 0; i < int(present); i++ {
		rec, err := readVertexRecord(br, meta.T, meta.IDSpace)
		if err != nil {
			return nil, fmt.Errorf("core: load vertex %d: %w", i, err)
		}
		recs = append(recs, rec)
	}
	return &Checkpoint{CheckpointMeta: meta, Shards: [][]VertexRecord{recs}}, nil
}

// checkMeta validates the scalar header fields shared by both versions.
func checkMeta(t, seed, epoch, idSpace uint64) (CheckpointMeta, error) {
	if t == 0 || t > maxCheckpointT {
		return CheckpointMeta{}, fmt.Errorf("core: load: implausible T=%d", t)
	}
	if idSpace > maxCheckpointSpace {
		return CheckpointMeta{}, fmt.Errorf("core: load: implausible ID space %d", idSpace)
	}
	return CheckpointMeta{T: int(t), Seed: seed, Epoch: epoch, IDSpace: int(idSpace)}, nil
}

// readVertexRecord reads one vertex record. Slices grow incrementally so a
// corrupt degree claim cannot allocate more than the input actually backs.
func readVertexRecord(r io.Reader, t, idSpace int) (VertexRecord, error) {
	var rec VertexRecord
	v, err := readU32(r)
	if err != nil {
		return rec, err
	}
	if int(v) >= idSpace {
		return rec, fmt.Errorf("vertex %d outside ID space %d", v, idSpace)
	}
	rec.V = v
	deg, err := readU32(r)
	if err != nil {
		return rec, err
	}
	if int(deg) >= idSpace {
		return rec, fmt.Errorf("vertex %d degree %d outside ID space", v, deg)
	}
	rec.Nbrs = make([]uint32, 0, min(int(deg), 4096))
	for j := 0; j < int(deg); j++ {
		u, err := readU32(r)
		if err != nil {
			return rec, err
		}
		rec.Nbrs = append(rec.Nbrs, u)
	}
	rec.Labels = make([]uint32, t)
	for j := range rec.Labels {
		if rec.Labels[j], err = readU32(r); err != nil {
			return rec, err
		}
	}
	rec.Src = make([]int32, t)
	for j := range rec.Src {
		x, err := readU32(r)
		if err != nil {
			return rec, err
		}
		rec.Src[j] = int32(x)
	}
	rec.Pos = make([]int32, t)
	for j := range rec.Pos {
		x, err := readU32(r)
		if err != nil {
			return rec, err
		}
		rec.Pos[j] = int32(x)
	}
	return rec, nil
}

// countingReader tracks bytes consumed, for shard-length framing checks.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// Verify cross-checks the records against each other with the same
// strictness Validate applies to a live State: every vertex appears exactly
// once, every neighbor reference resolves, and every pick is either the
// (-1, -1) fresh sentinel (with the vertex's own label) or names a current
// neighbor — or the vertex itself when isolated — with a position in [0, t)
// and a consistent copied label value. A checkpoint that passes Verify
// therefore builds a State that passes Validate. Adjacency symmetry is
// checked by BuildGraph.
func (c *Checkpoint) Verify() error {
	recOf := make(map[uint32]*VertexRecord)
	dup := false
	var dupV uint32
	c.Records(func(rec *VertexRecord) {
		if recOf[rec.V] != nil {
			dup, dupV = true, rec.V
		}
		recOf[rec.V] = rec
	})
	if dup {
		return fmt.Errorf("core: load: vertex %d recorded twice", dupV)
	}
	// labelAt(u, p) is u's label at position p; position 0 is the vertex ID
	// itself. Callers have already established u is present and p <= T.
	labelAt := func(u uint32, p int32) uint32 {
		if p == 0 {
			return u
		}
		return recOf[u].Labels[p-1]
	}
	var failure error
	c.Records(func(rec *VertexRecord) {
		if failure != nil {
			return
		}
		if len(rec.Labels) != c.T || len(rec.Src) != c.T || len(rec.Pos) != c.T {
			failure = fmt.Errorf("core: load: vertex %d record shape mismatch", rec.V)
			return
		}
		// One set per vertex keeps the per-iteration source check O(1):
		// a linear rescan of Nbrs for each of the T picks would make
		// verification O(T·ΣdegV) on the restart path.
		nbrSet := make(map[uint32]struct{}, len(rec.Nbrs))
		for _, u := range rec.Nbrs {
			if recOf[u] == nil {
				failure = fmt.Errorf("core: load: vertex %d has absent neighbor %d", rec.V, u)
				return
			}
			nbrSet[u] = struct{}{}
		}
		for i := 0; i < c.T; i++ {
			t := i + 1
			sv, pv := rec.Src[i], rec.Pos[i]
			if sv < 0 {
				if pv >= 0 {
					failure = fmt.Errorf("core: load: vertex %d iter %d: sentinel src with pos %d", rec.V, t, pv)
					return
				}
				if rec.Labels[i] != rec.V {
					failure = fmt.Errorf("core: load: vertex %d iter %d: sentinel pick but label %d", rec.V, t, rec.Labels[i])
					return
				}
				continue
			}
			src := uint32(sv)
			srcRec := recOf[src]
			if srcRec == nil {
				failure = fmt.Errorf("core: load: vertex %d iter %d references absent source %d", rec.V, t, sv)
				return
			}
			if pv < 0 || int(pv) >= t {
				failure = fmt.Errorf("core: load: vertex %d iter %d has pos %d", rec.V, t, pv)
				return
			}
			if src == rec.V {
				if len(rec.Nbrs) != 0 {
					failure = fmt.Errorf("core: load: vertex %d iter %d: self-pick but degree %d > 0", rec.V, t, len(rec.Nbrs))
					return
				}
			} else if _, isNbr := nbrSet[src]; !isNbr {
				failure = fmt.Errorf("core: load: vertex %d iter %d: src %d is not a neighbor", rec.V, t, sv)
				return
			}
			if len(srcRec.Labels) != c.T {
				failure = fmt.Errorf("core: load: vertex %d iter %d: source %d record shape mismatch", rec.V, t, sv)
				return
			}
			if got, want := rec.Labels[i], labelAt(src, pv); got != want {
				failure = fmt.Errorf("core: load: vertex %d iter %d: label %d != source %d@%d label %d",
					rec.V, t, got, sv, pv, want)
				return
			}
		}
	})
	return failure
}

// BuildGraph materializes the checkpoint's graph with every neighbor list in
// its exact saved order (see graph.RestoreAdjacency for why order matters).
func (c *Checkpoint) BuildGraph() (*graph.Graph, error) {
	maxID := -1
	count := 0
	c.Records(func(rec *VertexRecord) {
		count++
		if int(rec.V) > maxID {
			maxID = int(rec.V)
		}
	})
	present := make([]uint32, 0, count)
	adj := make([][]uint32, maxID+1)
	c.Records(func(rec *VertexRecord) {
		present = append(present, rec.V)
		adj[rec.V] = rec.Nbrs
	})
	g, err := graph.RestoreAdjacency(present, adj)
	if err != nil {
		return nil, fmt.Errorf("core: load: %w", err)
	}
	return g, nil
}

// BuildState reconstructs a sequential State from the checkpoint, merging
// all shards: graph (exact adjacency order), label matrix, pick provenance,
// epoch, and the reverse records rebuilt from the picks. The result passes
// Validate, and — because adjacency order survives the round trip — evolves
// bit-identically to a detector that never checkpointed.
func (c *Checkpoint) BuildState() (*State, error) {
	if err := c.Verify(); err != nil {
		return nil, err
	}
	g, err := c.BuildGraph()
	if err != nil {
		return nil, err
	}
	space := g.MaxVertexID()
	s := &State{cfg: Config{T: c.T, Seed: c.Seed}, epoch: c.Epoch, g: g}
	s.labels = make([][]uint32, space)
	s.src = make([][]int32, space)
	s.pos = make([][]int32, space)
	s.recv = make([][]Record, space)
	c.Records(func(rec *VertexRecord) {
		v, t := rec.V, c.T
		labels := make([]uint32, t+1)
		srcs := make([]int32, t+1)
		poss := make([]int32, t+1)
		labels[0], srcs[0], poss[0] = v, -1, -1
		copy(labels[1:], rec.Labels)
		copy(srcs[1:], rec.Src)
		copy(poss[1:], rec.Pos)
		s.labels[v], s.src[v], s.pos[v] = labels, srcs, poss
	})
	// Rebuild the reverse records from the picks (record-symmetry
	// invariant); Verify has already vetted every reference.
	c.Records(func(rec *VertexRecord) {
		for i := 0; i < c.T; i++ {
			if sv := rec.Src[i]; sv >= 0 {
				s.recv[sv] = append(s.recv[sv], Record{Pos: rec.Pos[i], Tar: rec.V, Iter: int32(i + 1)})
			}
		}
	})
	return s, nil
}
