package core

import (
	"testing"

	"rslpa/internal/graph"
)

func TestRunParallelMatchesRun(t *testing.T) {
	g := randomGraph(300, 900, 41)
	cfg := Config{T: 30, Seed: 13}
	seq := mustRun(t, g, cfg)
	for _, workers := range []int{1, 2, 3, 8} {
		par, err := RunParallel(g, cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !seq.EqualLabels(par) {
			t.Fatalf("workers=%d: parallel result differs from sequential", workers)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

func TestRunParallelDefaults(t *testing.T) {
	g := ring(20)
	par, err := RunParallel(g, Config{T: 10, Seed: 1}, 0) // 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelRejectsBadConfig(t *testing.T) {
	if _, err := RunParallel(ring(4), Config{T: 0}, 2); err == nil {
		t.Fatal("T=0 accepted")
	}
}

func TestRunParallelEmptyGraph(t *testing.T) {
	par, err := RunParallel(graph.New(), Config{T: 5, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if par.Graph().NumVertices() != 0 {
		t.Fatal("vertices appeared from nowhere")
	}
}

func TestRunParallelUpdatable(t *testing.T) {
	g := randomGraph(100, 250, 3)
	par, err := RunParallel(g, Config{T: 20, Seed: 9}, 4)
	if err != nil {
		t.Fatal(err)
	}
	par.Update([]graph.Edit{{Op: graph.Insert, U: 0, V: 99}})
	if err := par.Validate(); err != nil {
		t.Fatal(err)
	}
}
