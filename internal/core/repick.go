package core

import (
	"rslpa/internal/rng"
)

// This file isolates the two random decision rules of the paper as pure
// functions of (Config, epoch, vertex, iteration): the Algorithm 1 pick and
// the Section IV-A repick categories. The sequential State and the
// distributed driver in internal/dist both call these, which is what makes
// their label matrices bit-identical — neither side owns a private copy of
// the randomness.

// InitialPick draws vertex v's Algorithm 1 pick for iteration t from its
// effective neighbor set (nbrs when non-empty, else {v}). The draw is a
// pure function of (cfg.Seed, v, t) and the order of nbrs.
func InitialPick(cfg Config, v uint32, t int, nbrs []uint32) (src uint32, pos int32) {
	stream := rng.StreamOf(cfg.Seed, 0, uint64(v), uint64(t))
	if len(nbrs) == 0 {
		src = v // effective neighbor set {v}
	} else {
		src = nbrs[stream.Intn(len(nbrs))]
	}
	pos = int32(stream.Intn(t))
	return src, pos
}

// RepickPlan captures the Section IV-A neighborhood-change analysis for one
// affected vertex of an update batch. Build one with NewRepickPlan, then ask
// Slot for every label slot.
type RepickPlan struct {
	v        uint32
	delta    DeltaList
	newNbrs  []uint32
	oldDeg   int
	newDeg   int
	nu       int      // |oldEff ∩ newEff| (Theorem 5's n_u)
	arrivals []uint32 // newEff \ oldEff, in the order Category 3 indexes them
	buf      []uint32 // the (possibly grown) caller buffer, for recycling
	active   bool
}

// NewRepickPlan classifies vertex v's neighborhood change. delta is the net
// neighbor change (+1 added, -1 removed, sorted ascending, with exact
// cancellations already dropped); newNbrs is the post-update adjacency in
// live (graph-owned) order, which the category draws index into. buf is a
// reusable scratch slice for the arrival list (may be nil); the possibly
// grown buffer is kept in the plan so callers can recycle it via Buf.
func NewRepickPlan(v uint32, delta DeltaList, newNbrs []uint32, buf []uint32) RepickPlan {
	p := RepickPlan{v: v, delta: delta, newNbrs: newNbrs, newDeg: len(newNbrs), buf: buf[:0]}
	removedCount := 0
	for _, e := range delta {
		if e.D > 0 {
			p.buf = append(p.buf, e.Nbr) // ascending: delta is sorted
		} else {
			removedCount++
		}
	}
	added := p.buf
	p.oldDeg = p.newDeg - len(added) + removedCount

	// Effective-set bookkeeping (N_eff = {v} when the vertex is isolated).
	switch {
	case p.oldDeg > 0 && p.newDeg > 0:
		p.nu = p.newDeg - len(added)
		p.arrivals = added
	case p.oldDeg == 0 && p.newDeg > 0:
		p.nu = 0
		p.arrivals = p.newNbrs // oldEff was {v}; every current neighbor is new
	case p.oldDeg > 0 && p.newDeg == 0:
		p.nu = 0
		p.buf = append(p.buf[:0], v) // newEff is {v}
		p.arrivals = p.buf
	default:
		return p // {v} -> {v}: nothing changed
	}
	p.active = true
	return p
}

// Buf returns the plan's scratch buffer (length zero) for reuse by the next
// plan. It never aliases graph-owned adjacency.
func (p *RepickPlan) Buf() []uint32 { return p.buf[:0] }

// Active reports whether any slot of the vertex can need repicking.
func (p *RepickPlan) Active() bool { return p.active }

// Slot applies the Category 1/2/3 rules to label slot t given its current
// source (oldSrc < 0 is the fresh-vertex sentinel). repicked is false when
// the old pick survives (Category 1, or a kept Category 3 pick per
// Theorem 4).
func (p *RepickPlan) Slot(cfg Config, epoch uint64, t int32, oldSrc int32) (newSrc uint32, newPos int32, repicked bool) {
	removed := oldSrc < 0 || // fresh-vertex sentinel: must draw now
		p.oldDeg == 0 || // src was the {v} placeholder, eff set replaced
		p.newDeg == 0 || // all real neighbors gone
		p.delta.Of(uint32(oldSrc)) < 0 // picked through a deleted edge

	switch {
	case removed:
		// Category 2 (deleted source) or a fresh slot: pick a new label
		// uniformly from all current effective neighbors.
		stream := rng.StreamOf(cfg.Seed, epoch, uint64(p.v), uint64(t))
		if p.newDeg == 0 {
			newSrc = p.v
			newPos = int32(stream.Intn(int(t)))
		} else {
			newSrc = p.newNbrs[stream.Intn(p.newDeg)]
			newPos = int32(stream.Intn(int(t)))
		}
		return newSrc, newPos, true
	case len(p.arrivals) > 0:
		// Category 3 (Theorem 5): keep the pick with probability
		// nu/(nu+na); otherwise pick uniformly among the arrivals. A single
		// uniform draw over nu+na outcomes realizes both branches exactly.
		stream := rng.StreamOf(cfg.Seed, epoch, uint64(p.v), uint64(t))
		r := stream.Intn(p.nu + len(p.arrivals))
		if r < p.nu {
			return 0, 0, false // kept unchanged (Theorem 4 applies)
		}
		newSrc = p.arrivals[r-p.nu]
		newPos = int32(stream.Intn(int(t)))
		return newSrc, newPos, true
	default:
		return 0, 0, false // Category 1: nothing relevant changed
	}
}
