package core

import "fmt"

// Validate checks every internal invariant of the State:
//
//  1. consistency: labels[v][t] == labels[src[v][t]][pos[v][t]] with
//     pos[v][t] < t, for every vertex and iteration;
//  2. legality: src[v][t] is a current neighbor of v (or v itself when v is
//     isolated, or the -1 sentinel on a still-fresh slot whose label must
//     then be v's own);
//  3. record symmetry: vertex tar has pick (src=s, pos=p) at iteration t if
//     and only if s's record list contains exactly one {p, tar, t} entry.
//
// Together these state that the label matrix could have been produced by
// Algorithm 1 on the *current* graph with some series of random draws —
// the correctness contract of Correction Propagation. O((|V|+|E|)·T); for
// tests.
func (s *State) Validate() error {
	T := s.cfg.T
	type recKey struct {
		src uint32
		rec Record
	}
	want := make(map[recKey]int)

	var failure error
	s.g.ForEachVertex(func(v uint32) {
		if failure != nil {
			return
		}
		if int(v) >= len(s.labels) || s.labels[v] == nil {
			failure = fmt.Errorf("core: vertex %d in graph but has no label state", v)
			return
		}
		if got := s.labels[v][0]; got != v {
			failure = fmt.Errorf("core: vertex %d initial label is %d", v, got)
			return
		}
		nbrs := s.g.Neighbors(v)
		for t := 1; t <= T; t++ {
			sv, pv := s.src[v][t], s.pos[v][t]
			if sv < 0 {
				// Fresh sentinel: only legal while the sequence is the
				// vertex's own label (isolated since creation).
				if s.labels[v][t] != v {
					failure = fmt.Errorf("core: vertex %d iter %d: sentinel pick but label %d != %d", v, t, s.labels[v][t], v)
					return
				}
				continue
			}
			if pv < 0 || int(pv) >= t {
				failure = fmt.Errorf("core: vertex %d iter %d: pos %d out of [0,%d)", v, t, pv, t)
				return
			}
			su := uint32(sv)
			if su == v {
				if len(nbrs) != 0 {
					failure = fmt.Errorf("core: vertex %d iter %d: self-pick but degree %d > 0", v, t, len(nbrs))
					return
				}
			} else if !s.g.HasEdge(v, su) {
				failure = fmt.Errorf("core: vertex %d iter %d: src %d is not a neighbor", v, t, su)
				return
			}
			if s.labels[v][t] != s.labels[su][pv] {
				failure = fmt.Errorf("core: vertex %d iter %d: label %d != source %d@%d label %d",
					v, t, s.labels[v][t], su, pv, s.labels[su][pv])
				return
			}
			want[recKey{su, Record{Pos: pv, Tar: v, Iter: int32(t)}}]++
		}
	})
	if failure != nil {
		return failure
	}

	// Record symmetry: the stored records must match the picks exactly.
	total := 0
	for v := range s.recv {
		for _, rec := range s.recv[v] {
			k := recKey{uint32(v), rec}
			if want[k] == 0 {
				return fmt.Errorf("core: stale record at %d: %+v", v, rec)
			}
			want[k]--
			total++
		}
	}
	expected := 0
	for _, n := range want {
		expected += n
	}
	if expected != 0 {
		return fmt.Errorf("core: %d picks missing their reverse record", expected)
	}
	_ = total
	return nil
}

// EqualLabels reports whether two States hold identical label matrices and
// picks over the same vertex set (record order is ignored; it is the only
// part of a State that legitimately differs between the sequential and
// distributed drivers).
func (s *State) EqualLabels(o *State) bool {
	if s.cfg.T != o.cfg.T || !s.g.Equal(o.g) {
		return false
	}
	equal := true
	s.g.ForEachVertex(func(v uint32) {
		if !equal {
			return
		}
		a, b := s.labels[v], o.labels[v]
		if len(a) != len(b) {
			equal = false
			return
		}
		for t := range a {
			if a[t] != b[t] || s.src[v][t] != o.src[v][t] || s.pos[v][t] != o.pos[v][t] {
				equal = false
				return
			}
		}
	})
	return equal
}
