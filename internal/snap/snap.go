// Package snap loads SNAP (snap.stanford.edu) community-detection
// datasets: whitespace-separated undirected edge lists with '#' comment
// headers (com-*.ungraph.txt) and the matching ground-truth community
// files (com-*.top5000.cmty.txt, one community per line, tab-separated
// member IDs). Files ending in .gz are decompressed transparently.
//
// SNAP node IDs are arbitrary sparse integers, so the loader remaps them
// to compact uint32 IDs in first-seen edge order; the ground truth is
// mapped through the same table, which keeps every downstream structure
// (graphs, covers, metric computations) dense without the caller ever
// seeing the original IDs.
package snap

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"rslpa/internal/cover"
	"rslpa/internal/graph"
)

// Dataset is a loaded SNAP graph with optional ground truth.
type Dataset struct {
	// Edges are the deduplicated undirected edges in file order, over
	// compact vertex IDs 0..N-1 (self-loops and duplicates dropped).
	Edges [][2]uint32
	// N is the number of distinct vertices in the edge list.
	N int
	// Truth holds the ground-truth communities over the same compact IDs,
	// nil when no truth file was given. Members absent from the edge list
	// are dropped (trimmed samples cut some), as are communities left with
	// fewer than two present members.
	Truth *cover.Cover
	// TruthDropped counts ground-truth communities dropped for having
	// fewer than two present members.
	TruthDropped int

	ids map[uint64]uint32 // original SNAP node ID -> compact ID
}

// Load reads an edge list and, when truthPath is non-empty, its ground
// truth. Either path may point to a gzip-compressed file (.gz suffix).
func Load(edgePath, truthPath string) (*Dataset, error) {
	d, err := LoadEdges(edgePath)
	if err != nil {
		return nil, err
	}
	if truthPath == "" {
		return d, nil
	}
	if err := d.loadTruth(truthPath); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadEdges reads just the edge list.
func LoadEdges(path string) (*Dataset, error) {
	r, err := open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()

	d := &Dataset{}
	d.ids = make(map[uint64]uint32)
	seen := make(map[uint64]struct{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("snap: %s:%d: want two node IDs, got %q", path, line, text)
		}
		a, err := strconv.ParseUint(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: %s:%d: bad node ID %q", path, line, fields[0])
		}
		b, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("snap: %s:%d: bad node ID %q", path, line, fields[1])
		}
		if a == b {
			continue // self-loop
		}
		u, v := d.mapID(a), d.mapID(b)
		lo, hi := u, v
		if lo > hi {
			lo, hi = hi, lo
		}
		key := uint64(lo)<<32 | uint64(hi)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		d.Edges = append(d.Edges, [2]uint32{u, v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("snap: reading %s: %w", path, err)
	}
	d.N = len(d.ids)
	return d, nil
}

// mapID assigns compact IDs in first-seen order; loadTruth shares the
// table so truth and edges agree on the mapping.
func (d *Dataset) mapID(orig uint64) uint32 {
	if id, ok := d.ids[orig]; ok {
		return id
	}
	id := uint32(len(d.ids))
	d.ids[orig] = id
	return id
}

func (d *Dataset) loadTruth(path string) error {
	r, err := open(path)
	if err != nil {
		return err
	}
	defer r.Close()

	d.Truth = cover.New(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<22), 1<<22) // community lines can be long
	line := 0
	var members []uint32
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		members = members[:0]
		for _, f := range strings.Fields(text) {
			orig, err := strconv.ParseUint(f, 10, 64)
			if err != nil {
				return fmt.Errorf("snap: %s:%d: bad member ID %q", path, line, f)
			}
			if id, ok := d.ids[orig]; ok {
				members = append(members, id)
			}
		}
		if len(members) < 2 {
			d.TruthDropped++
			continue
		}
		d.Truth.Add(members)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("snap: reading %s: %w", path, err)
	}
	return nil
}

// Graph builds a graph.Graph containing all of the dataset's edges.
func (d *Dataset) Graph() *graph.Graph {
	g := graph.New()
	for _, e := range d.Edges {
		g.AddEdge(e[0], e[1])
	}
	return g
}

// open opens path, transparently decompressing .gz files.
func open(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snap: %w", err)
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("snap: gunzip %s: %w", path, err)
	}
	return &gzipFile{zr: zr, f: f}, nil
}

// gzipFile closes both the gzip stream and the underlying file.
type gzipFile struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipFile) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipFile) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}
