package snap

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"
)

// write puts content at dir/name, gzip-compressing when name ends in .gz.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if filepath.Ext(name) == ".gz" {
		zw := gzip.NewWriter(f)
		if _, err := zw.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	return path
}

const edgeList = `# Undirected graph: test
# Nodes: 5 Edges: 4
# FromNodeId	ToNodeId
1000	2000
2000	1000
1000	1000
2000	3000
77	1000
3000	77
`

const truthList = `1000	2000	3000
77	1000
999999	1000
42
`

func TestLoadEdges(t *testing.T) {
	dir := t.TempDir()
	path := write(t, dir, "test.ungraph.txt", edgeList)
	d, err := LoadEdges(path)
	if err != nil {
		t.Fatal(err)
	}
	// 1000->0, 2000->1, 3000->2, 77->3 in first-seen order; the reversed
	// duplicate and the self-loop are dropped.
	want := [][2]uint32{{0, 1}, {1, 2}, {3, 0}, {2, 3}}
	if d.N != 4 {
		t.Fatalf("N = %d, want 4", d.N)
	}
	if len(d.Edges) != len(want) {
		t.Fatalf("Edges = %v, want %v", d.Edges, want)
	}
	for i, e := range want {
		if d.Edges[i] != e {
			t.Fatalf("Edges[%d] = %v, want %v", i, d.Edges[i], e)
		}
	}
	g := d.Graph()
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("Graph: %d vertices %d edges, want 4/4", g.NumVertices(), g.NumEdges())
	}
}

func TestLoadTruthSharedMapping(t *testing.T) {
	dir := t.TempDir()
	ep := write(t, dir, "test.ungraph.txt", edgeList)
	tp := write(t, dir, "test.top5000.cmty.txt", truthList)
	d, err := Load(ep, tp)
	if err != nil {
		t.Fatal(err)
	}
	// Line 3 keeps only the mapped member 1000 (999999 is absent), so it
	// is dropped along with the singleton line 4.
	if d.Truth.Len() != 2 {
		t.Fatalf("Truth.Len() = %d, want 2", d.Truth.Len())
	}
	if d.TruthDropped != 2 {
		t.Fatalf("TruthDropped = %d, want 2", d.TruthDropped)
	}
	// Cover.Add sorts members; community 0 is {1000,2000,3000} -> {0,1,2}.
	c0 := d.Truth.Community(0)
	if len(c0) != 3 || c0[0] != 0 || c0[1] != 1 || c0[2] != 2 {
		t.Fatalf("Community(0) = %v, want [0 1 2]", c0)
	}
	c1 := d.Truth.Community(1)
	if len(c1) != 2 || c1[0] != 0 || c1[1] != 3 {
		t.Fatalf("Community(1) = %v, want [0 3]", c1)
	}
}

func TestLoadGzip(t *testing.T) {
	dir := t.TempDir()
	ep := write(t, dir, "test.ungraph.txt.gz", edgeList)
	tp := write(t, dir, "test.top5000.cmty.txt.gz", truthList)
	d, err := Load(ep, tp)
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 4 || len(d.Edges) != 4 || d.Truth.Len() != 2 {
		t.Fatalf("gzip load: N=%d edges=%d truth=%d, want 4/4/2", d.N, len(d.Edges), d.Truth.Len())
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadEdges(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("want error for missing file")
	}
	bad := write(t, dir, "bad.ungraph.txt", "1 notanumber\n")
	if _, err := LoadEdges(bad); err == nil {
		t.Fatal("want error for malformed node ID")
	}
	short := write(t, dir, "short.ungraph.txt", "42\n")
	if _, err := LoadEdges(short); err == nil {
		t.Fatal("want error for one-field line")
	}
}

// TestFixtures pins the committed CI fixtures: both load, have truth, and
// every truth member appears in the graph (nothing was trimmed away).
func TestFixtures(t *testing.T) {
	root := "../../testdata/snap"
	for _, name := range []string{"com-amazon.sample", "com-dblp.sample"} {
		d, err := Load(
			filepath.Join(root, name+".ungraph.txt"),
			filepath.Join(root, name+".top5000.cmty.txt"),
		)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.N == 0 || len(d.Edges) == 0 || d.Truth.Len() == 0 {
			t.Fatalf("%s: empty dataset (N=%d edges=%d truth=%d)", name, d.N, len(d.Edges), d.Truth.Len())
		}
		if d.TruthDropped != 0 {
			t.Fatalf("%s: %d truth communities dropped; fixtures must be self-contained", name, d.TruthDropped)
		}
		g := d.Graph()
		for i := 0; i < d.Truth.Len(); i++ {
			for _, v := range d.Truth.Community(i) {
				if !g.HasVertex(v) {
					t.Fatalf("%s: truth member %d not in graph", name, v)
				}
			}
		}
	}
}
