package replica

import (
	"net/http/httptest"
	"slices"
	"sync"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/lfr"
	"rslpa/internal/metrics"
	"rslpa/internal/stream"
)

// BenchmarkReplicaServe is the read-tier speed pin: a follower bootstraps
// cold from the writer's checkpoint, catches up over the feed, and then
// serves 4 concurrent readers while it keeps tailing a live writer. It
// reports
//
//	catchup-ms    — cold bootstrap + feed replay until epoch parity
//	p50-query-ns  — snapshot query latency on the follower under load
//	p99-query-ns  — nearest-rank, via metrics.Quantile
//	queries       — total follower queries timed
func BenchmarkReplicaServe(b *testing.B) {
	p := lfr.Default(1000)
	p.Seed = 41
	res, err := lfr.Generate(p)
	if err != nil {
		b.Fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: 30, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	maxID := uint32(res.Graph.MaxVertexID())

	// CheckpointEvery 64 keeps the in-memory checkpoint deliberately stale
	// relative to the journal head, so the follower's bootstrap has a real
	// feed backlog to replay — that backlog is what catchup-ms measures.
	w := newWriter(b, st, stream.Options{
		MaxBatch: 1 << 20, FlushInterval: time.Hour,
		JournalDepth: 1 << 14, CheckpointEvery: 64,
	})
	srv := newBenchServer(b, w)
	evolving := res.Graph.Clone()
	prologue, err := dynamic.Stream(evolving, 100, 32, 5)
	if err != nil {
		b.Fatal(err)
	}
	applyStream(b, w, prologue)

	b.ResetTimer()
	var catchup time.Duration
	var all []time.Duration
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		f, err := New(Options{
			WriterURL: srv, PollInterval: time.Millisecond,
			RetryMin: time.Millisecond, RetryMax: 50 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		target := w.Stats().Epoch
		waitFollowerEpoch(b, f, target)
		catchup = time.Since(t0)

		// Live tail + concurrent reads: a producer keeps the writer (and
		// therefore the follower) churning while 4 readers time follower
		// snapshot queries.
		tail, err := dynamic.Stream(evolving, 100, 8, uint64(100+i))
		if err != nil {
			b.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			applyStream(b, w, tail)
		}()

		const readers, queriesPer = 4, 500
		lat := make([][]time.Duration, readers)
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, queriesPer)
				for q := 0; q < queriesPer; q++ {
					v := uint32(r*queriesPer+q) % maxID
					q0 := time.Now()
					sn := f.Snapshot()
					sn.Labels(v)
					if _, err := sn.Membership(v); err != nil {
						b.Error(err)
						return
					}
					lats = append(lats, time.Since(q0))
				}
				lat[r] = lats
			}(r)
		}
		wg.Wait()
		<-done
		waitFollowerEpoch(b, f, w.Stats().Epoch)
		f.Close()
		all = all[:0]
		for _, l := range lat {
			all = append(all, l...)
		}
	}
	b.StopTimer()
	slices.Sort(all)
	b.ReportMetric(float64(catchup.Milliseconds()), "catchup-ms")
	if len(all) > 0 {
		b.ReportMetric(float64(metrics.Quantile(all, 0.50).Nanoseconds()), "p50-query-ns")
		b.ReportMetric(float64(metrics.Quantile(all, 0.99).Nanoseconds()), "p99-query-ns")
		b.ReportMetric(float64(len(all)), "queries")
	}
}

// newBenchServer serves the writer's handler for the benchmark's
// lifetime and returns its base URL.
func newBenchServer(b *testing.B, w *stream.Service) string {
	b.Helper()
	srv := httptest.NewServer(w.Handler())
	b.Cleanup(srv.Close)
	return srv.URL
}
