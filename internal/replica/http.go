package replica

import (
	"encoding/json"
	"net/http"
)

// HTTP front end of a follower: the read half of the writer's API plus
// replication-lag observability. Notably absent: POST /edits — a replica
// is read-only; writes belong to the writer.
//
//	GET /communities   the current local snapshot's cover with its epoch
//	                   (?epoch=E historical reads with EvolutionDepth > 0)
//	GET /vertex/{v}    membership and degree of one vertex
//	GET /events        community evolution events after ?from=E
//	                   (EvolutionDepth > 0; byte-compatible with the
//	                   writer's stream because the same diffs are replayed)
//	GET /community/{id}/history  one lineage's retained life-cycle
//	GET /stats         inner service counters plus follower_epoch,
//	                   writer_epoch, lag_batches, catchup_total,
//	                   rebootstraps and replication_error
//	GET /healthz       200 while the tail loop runs, 503 after Close
//	GET /metrics       Prometheus text exposition (Options.Obs set):
//	                   the follower's rslpa_replica_* families plus the
//	                   inner read service's rslpa_stream_* families
//	GET /debug/batches per-replayed-batch pipeline traces
//	                   (Options.Trace set)
//	GET /version       build identity, start time and uptime
//
// /communities and /vertex/{v} delegate to the inner read service's own
// handler, so responses are byte-compatible with the writer's — a load
// balancer can mix writer and followers for reads.

// Handler returns the follower's HTTP front end.
func (f *Follower) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /communities", f.delegate)
	mux.HandleFunc("GET /vertex/{v}", f.delegate)
	mux.HandleFunc("GET /events", f.delegate)
	mux.HandleFunc("GET /community/{id}/history", f.delegate)
	mux.HandleFunc("GET /stats", f.handleStats)
	mux.HandleFunc("GET /healthz", f.handleHealthz)
	// The registry and trace ring are shared with the inner service, and
	// its handler already mounts them (plus /version) — delegate, so the
	// observability surface is route-compatible with the writer's.
	mux.HandleFunc("GET /metrics", f.delegate)
	mux.HandleFunc("GET /debug/batches", f.delegate)
	mux.HandleFunc("GET /version", f.delegate)
	return mux
}

// delegate serves a read endpoint from the current replay generation.
func (f *Follower) delegate(w http.ResponseWriter, r *http.Request) {
	f.cur.Load().h.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (f *Follower) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.Stats())
}

func (f *Follower) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-f.quit:
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": ErrClosed.Error()})
		return
	default:
	}
	st := f.Stats()
	body := map[string]any{
		"follower_epoch": st.FollowerEpoch,
		"writer_epoch":   st.WriterEpoch,
		"lag_batches":    st.LagBatches,
	}
	if st.ReplicationError != "" {
		// Liveness stays 200 — local snapshots keep serving — but a stuck
		// tail loop must be visible to operators.
		body["replication_error"] = st.ReplicationError
	}
	writeJSON(w, http.StatusOK, body)
}
