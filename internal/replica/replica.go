// Package replica implements the read tier of the streaming service: a
// read-only Follower that bootstraps from a writer's checkpoint, tails its
// replication feed, and replays the writer's exact canonical batches
// through its own detector, publishing local copy-on-write snapshots for
// GET /communities, /vertex/{v} and /stats. Because the detector is
// deterministic — the same canonical batch applied at the same epoch
// produces the same label matrix bit for bit — a follower's snapshot at
// epoch E hash-matches the writer's epoch-E snapshot, so any number of
// followers scale query throughput horizontally while the single writer
// keeps ingesting.
//
// The protocol (served by internal/stream when Options.JournalDepth > 0):
//
//	GET /checkpoint         bootstrap: the writer's detector at epoch C
//	GET /feed?from=E&max=N  the canonical batches with epochs (E, E+N]
//
// The feed's journal horizon is bounded; a follower that falls behind it
// gets 410 Gone and re-bootstraps from the latest checkpoint. The tail
// loop retries with exponential backoff across writer outages and
// restarts, and re-bootstraps if the writer's epoch regressed below the
// follower's (a crash-restarted writer that lost batches past its last
// checkpoint — epoch numbers would otherwise be reused for different
// batches and the replica would silently diverge).
package replica

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/obs"
	"rslpa/internal/postprocess"
	"rslpa/internal/stream"
)

// Options configures a Follower. WriterURL is required; the zero value of
// everything else selects defaults.
type Options struct {
	// WriterURL is the base URL of the writer's HTTP handler, e.g.
	// "http://writer:8080".
	WriterURL string
	// PollInterval is how often the tail loop polls the feed while caught
	// up. Default 50ms.
	PollInterval time.Duration
	// RetryMin/RetryMax bound the exponential backoff after a failed feed
	// or bootstrap request. Defaults 100ms and 5s.
	RetryMin, RetryMax time.Duration
	// FeedMax is the number of batches requested per feed poll.
	// Default 64.
	FeedMax int
	// EvolutionDepth, when > 0, enables the evolution tier on the replayed
	// service (GET /events, /community/{id}/history, /communities?epoch=E).
	// The bootstrap additionally fetches the writer's GET /evolution/state
	// so lineage IDs — which are content-derived from the epoch a lineage
	// was born at — match the writer's, and the replayed diffs emit the
	// byte-identical event stream. Should match the writer's depth so the
	// two journals cover the same window.
	EvolutionDepth int
	// Extraction configures snapshot community extraction. It should match
	// the writer's so GET /communities answers agree (label matrices agree
	// regardless — determinism pins them to the feed, not to this).
	Extraction postprocess.Config
	// Client is the HTTP client used against the writer. Defaults to a
	// client with a 30s timeout.
	Client *http.Client
	// Obs, when non-nil, registers the follower's metric families (poll
	// latency, catch-up batches, re-bootstraps by reason, lag gauges) plus
	// the inner read service's rslpa_stream_* families in the registry,
	// served at GET /metrics. Registration survives re-bootstraps: each
	// replay generation re-registers get-or-create, keeping owned
	// histograms cumulative.
	Obs *obs.Registry
	// Trace, when non-nil, records the inner service's per-batch pipeline
	// traces (one per replayed feed batch), served at GET /debug/batches.
	Trace *obs.TraceRing
	// Logger, when non-nil, receives structured operational events
	// (bootstrap, re-bootstrap, replication error transitions). Nil
	// discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.PollInterval <= 0 {
		o.PollInterval = 50 * time.Millisecond
	}
	if o.RetryMin <= 0 {
		o.RetryMin = 100 * time.Millisecond
	}
	if o.RetryMax <= 0 {
		o.RetryMax = 5 * time.Second
	}
	if o.RetryMax < o.RetryMin {
		o.RetryMax = o.RetryMin
	}
	if o.FeedMax <= 0 {
		o.FeedMax = 64
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return o
}

// Stats is a point-in-time reading of a follower's counters: the inner
// read service's counters plus the replication-lag gauges.
type Stats struct {
	stream.Stats
	// FollowerEpoch is the epoch of the currently published snapshot.
	FollowerEpoch uint64 `json:"follower_epoch"`
	// WriterEpoch is the writer's epoch as of the last successful feed
	// poll (0 until the first poll completes).
	WriterEpoch uint64 `json:"writer_epoch"`
	// LagBatches is WriterEpoch − FollowerEpoch, clamped at 0: how many
	// applied writer batches this follower has not replayed yet.
	LagBatches uint64 `json:"lag_batches"`
	// CatchupTotal counts every batch replayed from the feed since the
	// follower started (across re-bootstraps).
	CatchupTotal uint64 `json:"catchup_total"`
	// Rebootstraps counts checkpoint re-bootstraps after the initial one
	// (journal horizon overruns, writer epoch regressions, replay
	// divergence).
	Rebootstraps uint64 `json:"rebootstraps"`
	// ReplicationError is the last tail-loop error, cleared by the next
	// successful poll.
	ReplicationError string `json:"replication_error,omitempty"`
}

// replayState is one bootstrapped generation of the follower: the inner
// read-only service over the replayed detector, and its HTTP front end
// (built once; serving delegates to it). A re-bootstrap swaps in a whole
// new generation; snapshots held from the old one stay valid.
type replayState struct {
	svc *stream.Service
	h   http.Handler
}

// Follower tails a writer and serves read queries from local snapshots.
// Create one with New; always Close it.
type Follower struct {
	opts Options

	cur  atomic.Pointer[replayState]
	quit chan struct{}
	done chan struct{}

	closeOnce sync.Once

	met *replicaMetrics
	log *slog.Logger

	writerEpoch  atomic.Uint64
	catchupTotal atomic.Uint64
	rebootstraps atomic.Uint64

	mu      sync.Mutex
	lastErr error
}

// seqDetector adapts core.State to stream.Detector for replay. The feed
// carries the writer's canonical batches; replaying one against the
// bit-identical follower graph re-canonicalizes to itself, so the inner
// service's coalescer is a fixed point and every feed batch advances the
// state by exactly one epoch.
type seqDetector struct{ st *core.State }

func (d seqDetector) Update(b []graph.Edit) (core.UpdateStats, error) { return d.st.Update(b), nil }
func (d seqDetector) Labels(v uint32) []uint32                        { return d.st.Labels(v) }
func (d seqDetector) Graph() *graph.Graph                             { return d.st.Graph() }
func (d seqDetector) Save(w io.Writer) error                          { return d.st.SaveCheckpoint(w) }

// New bootstraps a follower from the writer's current checkpoint and
// starts the tail loop. The initial bootstrap is synchronous — an
// unreachable or journal-less writer fails fast — while later outages are
// retried with backoff inside the loop.
func New(opts Options) (*Follower, error) {
	if opts.WriterURL == "" {
		return nil, fmt.Errorf("replica: WriterURL is required")
	}
	f := &Follower{
		opts: opts.withDefaults(),
		quit: make(chan struct{}),
		done: make(chan struct{}),
		log:  opts.Logger,
	}
	if f.log == nil {
		f.log = slog.New(slog.DiscardHandler)
	}
	rs, err := f.bootstrap()
	if err != nil {
		return nil, fmt.Errorf("replica: bootstrap: %w", err)
	}
	f.cur.Store(rs)
	// Register the follower's own families only after the first generation
	// is published: the gauge closures read f.cur at scrape time.
	f.met = newReplicaMetrics(f.opts.Obs, f)
	f.log.Info("replica: follower started",
		"writer_url", f.opts.WriterURL,
		"epoch", rs.svc.Snapshot().Epoch(),
		"poll_interval", f.opts.PollInterval)
	go f.loop()
	return f, nil
}

// bootstrap fetches the writer's checkpoint (and, with EvolutionDepth
// set, its evolution state) and builds a fresh replay generation at its
// epoch. The two GETs are not atomic on the writer — a checkpoint refresh
// can land between them — so epoch-mismatch attempts are retried a few
// times before giving up.
func (f *Follower) bootstrap() (*replayState, error) {
	const attempts = 3
	var err error
	for i := 0; i < attempts; i++ {
		var rs *replayState
		var retry bool
		rs, retry, err = f.bootstrapOnce()
		if err == nil {
			return rs, nil
		}
		if !retry {
			return nil, err
		}
		f.log.Warn("replica: bootstrap raced a checkpoint refresh, retrying", "error", err)
	}
	return nil, fmt.Errorf("after %d attempts: %w", attempts, err)
}

// bootstrapOnce performs one bootstrap attempt. retry reports that the
// failure is a benign race between the checkpoint and evolution-state
// fetches (the writer refreshed in between) and the caller should try
// again.
func (f *Follower) bootstrapOnce() (rs *replayState, retry bool, err error) {
	resp, err := f.opts.Client.Get(f.opts.WriterURL + "/checkpoint")
	if err != nil {
		return nil, false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("GET /checkpoint: %s: %s", resp.Status, bodyText(body))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(stream.CheckpointEpochHeader), 10, 64)
	if err != nil {
		return nil, false, fmt.Errorf("checkpoint epoch header: %w", err)
	}
	var evoState []byte
	if f.opts.EvolutionDepth > 0 {
		evoState, retry, err = f.fetchEvolutionState(epoch)
		if err != nil {
			return nil, retry, err
		}
	}
	ck, err := core.ReadCheckpoint(bytes.NewReader(body))
	if err != nil {
		return nil, false, err
	}
	st, err := ck.BuildState()
	if err != nil {
		return nil, false, err
	}
	if st.Epoch() != epoch {
		return nil, false, fmt.Errorf("checkpoint epoch %d does not match header %d", st.Epoch(), epoch)
	}
	// The inner service never flushes on its own — MaxBatch and
	// FlushInterval are effectively infinite — so the tail loop's
	// Submit+Drain per feed batch maps one feed batch to exactly one
	// epoch, keeping follower epochs aligned with the writer's.
	svc, err := stream.New(seqDetector{st}, stream.Options{
		MaxBatch:       1 << 30,
		FlushInterval:  24 * time.Hour,
		Extraction:     f.opts.Extraction,
		BaseEpoch:      st.Epoch(),
		EvolutionDepth: f.opts.EvolutionDepth,
		EvolutionState: evoState,
		Obs:            f.opts.Obs,
		Trace:          f.opts.Trace,
		Logger:         f.opts.Logger,
	})
	if err != nil {
		return nil, false, err
	}
	return &replayState{svc: svc, h: svc.Handler()}, false, nil
}

// fetchEvolutionState fetches the writer's serialized evolution tracker
// so replayed lineage IDs match the writer's. A 404 is tolerated — the
// writer may not track evolution, or may not journal — and the local
// tracker rebases fresh (lineage IDs then diverge from the writer's;
// events and windows still work). retry reports an epoch mismatch with
// the checkpoint just fetched: a refresh raced between the two GETs.
func (f *Follower) fetchEvolutionState(ckptEpoch uint64) (state []byte, retry bool, err error) {
	resp, err := f.opts.Client.Get(f.opts.WriterURL + "/evolution/state")
	if err != nil {
		return nil, false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		f.log.Warn("replica: writer does not serve /evolution/state; starting fresh lineage tracking")
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("GET /evolution/state: %s: %s", resp.Status, bodyText(body))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(stream.CheckpointEpochHeader), 10, 64)
	if err != nil {
		return nil, false, fmt.Errorf("evolution state epoch header: %w", err)
	}
	if epoch != ckptEpoch {
		return nil, true, fmt.Errorf("evolution state at epoch %d, checkpoint at %d", epoch, ckptEpoch)
	}
	return body, false, nil
}

// bodyText renders an HTTP error body for diagnostics, bounded.
func bodyText(b []byte) string {
	const max = 256
	if len(b) > max {
		b = b[:max]
	}
	return string(bytes.TrimSpace(b))
}

// loop is the tail loop: poll the feed, replay, and keep lag low. Only
// this goroutine mutates f.cur after New.
func (f *Follower) loop() {
	defer close(f.done)
	defer func() {
		if rs := f.cur.Load(); rs != nil {
			rs.svc.Close()
		}
	}()
	backoff := f.opts.RetryMin
	for {
		behind, err := f.poll()
		wait := f.opts.PollInterval
		switch {
		case err != nil:
			f.setErr(err)
			wait, backoff = backoff, min(backoff*2, f.opts.RetryMax)
		case behind:
			// More batches are probably waiting: poll again immediately.
			f.setErr(nil)
			backoff = f.opts.RetryMin
			wait = 0
		default:
			f.setErr(nil)
			backoff = f.opts.RetryMin
		}
		select {
		case <-f.quit:
			return
		case <-time.After(wait):
		}
	}
}

// poll performs one feed round-trip and replays whatever it returned.
// behind reports that a full page arrived (more batches likely pending).
func (f *Follower) poll() (behind bool, err error) {
	if f.met != nil {
		t0 := time.Now()
		defer func() { f.met.pollSeconds.Observe(time.Since(t0).Seconds()) }()
	}
	rs := f.cur.Load()
	from := rs.svc.Snapshot().Epoch()
	url := fmt.Sprintf("%s/feed?from=%d&max=%d", f.opts.WriterURL, from, f.opts.FeedMax)
	resp, err := f.opts.Client.Get(url)
	if err != nil {
		return false, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		// Behind the journal horizon: the writer has forgotten the batches
		// we need. Start over from its latest checkpoint.
		return true, f.rebootstrap(reasonHorizon, "behind journal horizon")
	default:
		return false, fmt.Errorf("GET /feed: %s: %s", resp.Status, bodyText(body))
	}
	var feed stream.FeedResponse
	if err := json.Unmarshal(body, &feed); err != nil {
		return false, fmt.Errorf("decode feed: %w", err)
	}
	f.writerEpoch.Store(feed.WriterEpoch)
	if feed.WriterEpoch < from {
		// The writer restarted from a checkpoint older than our replay
		// position: the epochs we already applied will be reassigned to
		// different batches. Rewind to the writer's truth.
		return true, f.rebootstrap(reasonEpochRegression,
			fmt.Sprintf("writer epoch regressed to %d (follower at %d)", feed.WriterEpoch, from))
	}
	if f.met != nil {
		f.met.catchupBatches.Observe(float64(len(feed.Batches)))
	}
	for _, entry := range feed.Batches {
		batch, err := entry.GraphEdits()
		if err != nil {
			return false, err
		}
		if err := rs.svc.Submit(batch...); err != nil {
			return false, err
		}
		if err := rs.svc.Drain(); err != nil {
			return false, err
		}
		got := rs.svc.Snapshot().Epoch()
		if got != entry.Epoch {
			// Replay divergence (a batch coalesced to nothing, or skipped
			// an epoch): the replica can no longer trust its state.
			return true, f.rebootstrap(reasonDivergence,
				fmt.Sprintf("replayed feed batch %d landed at epoch %d", entry.Epoch, got))
		}
		f.catchupTotal.Add(1)
	}
	return len(feed.Batches) >= f.opts.FeedMax, nil
}

// rebootstrap replaces the replay generation with a fresh one built from
// the writer's latest checkpoint. key is the stable reason label for the
// rebootstraps counter (reasonHorizon / reasonEpochRegression /
// reasonDivergence); detail is recorded as the replication error until
// the next healthy poll.
func (f *Follower) rebootstrap(key, detail string) error {
	f.log.Warn("replica: re-bootstrapping from writer checkpoint",
		"reason", key, "detail", detail)
	rs, err := f.bootstrap()
	if err != nil {
		return fmt.Errorf("re-bootstrap (%s): %w", detail, err)
	}
	// Count before publishing the new generation: an observer that sees
	// the post-bootstrap epoch must also see the counter tick.
	f.rebootstraps.Add(1)
	if f.met != nil {
		f.met.rebootstraps.With(key).Inc()
	}
	old := f.cur.Swap(rs)
	if old != nil {
		old.svc.Close()
	}
	f.log.Info("replica: re-bootstrapped",
		"reason", key, "epoch", rs.svc.Snapshot().Epoch())
	return fmt.Errorf("re-bootstrapped from checkpoint at epoch %d (%s)", rs.svc.Snapshot().Epoch(), detail)
}

// setErr records the tail loop's health and logs the transitions: one
// Warn when replication starts failing, one Info when it recovers — not
// one line per failed poll.
func (f *Follower) setErr(err error) {
	f.mu.Lock()
	prev := f.lastErr
	f.lastErr = err
	f.mu.Unlock()
	switch {
	case err != nil && prev == nil:
		f.log.Warn("replica: replication failing", "error", err)
	case err == nil && prev != nil:
		f.log.Info("replica: replication recovered",
			"epoch", f.cur.Load().svc.Snapshot().Epoch())
	}
}

func (f *Follower) replicationErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// Snapshot returns the current immutable snapshot of the replayed state.
// Held snapshots survive re-bootstraps and Close.
func (f *Follower) Snapshot() *stream.Snapshot { return f.cur.Load().svc.Snapshot() }

// Stats returns the follower's counters.
func (f *Follower) Stats() Stats {
	rs := f.cur.Load()
	st := Stats{
		Stats:        rs.svc.Stats(),
		WriterEpoch:  f.writerEpoch.Load(),
		CatchupTotal: f.catchupTotal.Load(),
		Rebootstraps: f.rebootstraps.Load(),
	}
	st.FollowerEpoch = st.Epoch
	if st.WriterEpoch > st.FollowerEpoch {
		st.LagBatches = st.WriterEpoch - st.FollowerEpoch
	}
	if err := f.replicationErr(); err != nil {
		st.ReplicationError = err.Error()
	}
	return st
}

// ErrClosed is returned by operations on a closed follower.
var ErrClosed = errors.New("replica: follower is closed")

// Close stops the tail loop and the inner read service. Queries against
// held snapshots keep working.
func (f *Follower) Close() error {
	f.closeOnce.Do(func() {
		close(f.quit)
		<-f.done
	})
	return nil
}
