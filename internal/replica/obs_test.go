package replica

import (
	"bytes"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rslpa/internal/dynamic"
	"rslpa/internal/obs"
	"rslpa/internal/stream"
)

// syncBuf is a mutex-guarded log sink: the follower's tail loop keeps
// logging (error/recovery transitions) after the test's wait conditions
// are met, so reading an unsynchronized bytes.Buffer would race.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// A follower's /metrics exposition lints clean across a re-bootstrap: its
// own rslpa_replica_* families, the inner read service's rslpa_stream_*
// families (re-registered get-or-create by each replay generation), and
// the horizon re-bootstrap counted under its stable reason label.
func TestFollowerMetricsAcrossRebootstrap(t *testing.T) {
	g, st := testFixture(t)
	w := newWriter(t, st, stream.Options{
		MaxBatch: 1 << 20, FlushInterval: time.Hour,
		JournalDepth: 2, CheckpointEvery: 2,
	})
	inner := w.Handler()
	var blockFeed atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if blockFeed.Load() && r.URL.Path == "/feed" {
			http.Error(rw, "partitioned", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer front.Close()

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, 40, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, w, batches[:1])

	var logBuf syncBuf
	reg := obs.NewRegistry()
	f, err := New(Options{
		WriterURL: front.URL, PollInterval: 2 * time.Millisecond,
		RetryMin: time.Millisecond, RetryMax: 10 * time.Millisecond,
		Obs:    reg,
		Trace:  obs.NewTraceRing(8, 2),
		Logger: slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerEpoch(t, f, 1)

	// Partition the feed past the 2-deep journal horizon to force a
	// re-bootstrap, then let the follower catch up.
	blockFeed.Store(true)
	applyStream(t, w, batches[1:])
	blockFeed.Store(false)
	waitFollowerEpoch(t, f, 8)

	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()
	resp, err := http.Get(fsrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not lint after re-bootstrap: %v", err)
	}
	for _, name := range []string{
		"rslpa_replica_poll_seconds", "rslpa_replica_catchup_batches",
		"rslpa_replica_rebootstraps_total", "rslpa_replica_lag_batches",
		"rslpa_replica_writer_epoch", "rslpa_replica_follower_epoch",
		"rslpa_replica_catchup_total",
		"rslpa_stream_epoch", "rslpa_stream_update_seconds",
	} {
		if fams[name] == nil {
			t.Errorf("family %q missing from follower exposition", name)
		}
	}
	if v := fams["rslpa_replica_rebootstraps_total"].Samples[`rslpa_replica_rebootstraps_total{reason="horizon"}`]; v < 1 {
		t.Errorf("rebootstraps_total{reason=horizon} = %g, want >= 1", v)
	}
	if c := fams["rslpa_replica_poll_seconds"].Samples["rslpa_replica_poll_seconds_count"]; c == 0 {
		t.Error("poll_seconds never observed")
	}
	if v := fams["rslpa_replica_follower_epoch"].Samples["rslpa_replica_follower_epoch"]; v < 8 {
		t.Errorf("follower_epoch gauge = %g, want >= 8", v)
	}

	logs := logBuf.String()
	for _, want := range []string{"replica: follower started", "replica: re-bootstrapping", "reason", "horizon"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q in:\n%s", want, logs)
		}
	}
}
