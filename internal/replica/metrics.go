package replica

import (
	"rslpa/internal/obs"
)

// Stable rebootstrap reason keys, used as the label values of
// rslpa_replica_rebootstraps_total so dashboards can tell a follower that
// keeps falling behind the journal horizon from one chasing a crash-
// looping writer.
const (
	reasonHorizon         = "horizon"          // 410 Gone: behind the journal horizon
	reasonEpochRegression = "epoch_regression" // writer restarted below our replay position
	reasonDivergence      = "divergence"       // replayed batch landed at the wrong epoch
)

// replicaMetrics holds the follower's own instruments. The inner read
// service's families (rslpa_stream_*) are registered in the same registry
// by each replay generation — registration is get-or-create, so the owned
// histograms stay cumulative across re-bootstraps and the read-through
// closures repoint at the live generation. Nil (Options.Obs unset)
// disables instrumentation.
type replicaMetrics struct {
	pollSeconds    *obs.Histogram
	catchupBatches *obs.Histogram
	rebootstraps   *obs.CounterVec
}

func newReplicaMetrics(r *obs.Registry, f *Follower) *replicaMetrics {
	if r == nil {
		return nil
	}
	m := &replicaMetrics{
		pollSeconds: r.Histogram("rslpa_replica_poll_seconds",
			"Feed poll round-trip latency, including replay of the returned batches.",
			obs.LatencyBuckets),
		catchupBatches: r.Histogram("rslpa_replica_catchup_batches",
			"Batches replayed per feed poll (0 while caught up).",
			obs.CountBuckets),
		rebootstraps: r.CounterVec("rslpa_replica_rebootstraps_total",
			"Checkpoint re-bootstraps after the initial one, by reason.",
			"reason"),
	}
	r.GaugeFunc("rslpa_replica_lag_batches",
		"Writer batches not yet replayed (writer_epoch - follower_epoch, clamped at 0).",
		func() float64 { return float64(f.Stats().LagBatches) })
	r.GaugeFunc("rslpa_replica_writer_epoch",
		"Writer epoch as of the last successful feed poll.",
		func() float64 { return float64(f.writerEpoch.Load()) })
	r.GaugeFunc("rslpa_replica_follower_epoch",
		"Epoch of the currently published local snapshot.",
		func() float64 { return float64(f.Snapshot().Epoch()) })
	r.CounterFunc("rslpa_replica_catchup_total",
		"Batches replayed from the feed since the follower started.",
		func() float64 { return float64(f.catchupTotal.Load()) })
	return m
}
