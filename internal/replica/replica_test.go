package replica

import (
	"encoding/json"
	"hash/fnv"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/stream"
)

// labelHash folds a label matrix (plus the edge count) into one word; two
// states hash equal iff their detection state is bit-identical over
// [0, maxID).
func labelHash(maxID uint32, edges int, labels func(uint32) []uint32) uint64 {
	h := fnv.New64a()
	word := func(x uint32) {
		h.Write([]byte{byte(x), byte(x >> 8), byte(x >> 16), byte(x >> 24)})
	}
	word(uint32(edges))
	for v := uint32(0); v < maxID; v++ {
		seq := labels(v)
		word(uint32(len(seq)))
		for _, l := range seq {
			word(l)
		}
	}
	return h.Sum64()
}

func snapshotHash(maxID uint32, sn *stream.Snapshot) uint64 {
	return labelHash(maxID, sn.NumEdges(), sn.Labels)
}

// testFixture builds a 150-vertex LFR graph and a detector state over it.
func testFixture(t testing.TB) (*graph.Graph, *core.State) {
	t.Helper()
	p := lfr.Default(150)
	p.Seed = 23
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph, st
}

// newWriter starts a journaling writer service over st.
func newWriter(t testing.TB, st *core.State, opts stream.Options) *stream.Service {
	t.Helper()
	svc, err := stream.New(seqDetector{st}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc
}

// applyStream drains each batch through the writer, one epoch per batch.
func applyStream(t testing.TB, w *stream.Service, batches [][]graph.Edit) {
	t.Helper()
	for _, batch := range batches {
		if err := w.Submit(batch...); err != nil {
			t.Fatal(err)
		}
		if err := w.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

// waitFollowerEpoch blocks until the follower's published epoch reaches
// want.
func waitFollowerEpoch(t testing.TB, f *Follower, want uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if st := f.Stats(); st.FollowerEpoch >= want {
			return
		}
		if time.Now().After(deadline) {
			st := f.Stats()
			t.Fatalf("follower stuck at epoch %d (want %d): %+v", st.FollowerEpoch, want, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerTailsWriter(t *testing.T) {
	g, st := testFixture(t)
	maxID := uint32(g.MaxVertexID())
	w := newWriter(t, st, stream.Options{
		MaxBatch: 1 << 20, FlushInterval: time.Hour, JournalDepth: 1024,
	})
	srv := httptest.NewServer(w.Handler())
	defer srv.Close()

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, 40, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, w, batches[:3])

	f, err := New(Options{
		WriterURL: srv.URL, PollInterval: 2 * time.Millisecond,
		RetryMin: time.Millisecond, RetryMax: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	waitFollowerEpoch(t, f, 3)
	if got, want := snapshotHash(maxID, f.Snapshot()), snapshotHash(maxID, w.Snapshot()); got != want {
		t.Fatalf("follower diverged after catch-up: %x vs %x", got, want)
	}

	// Keep streaming: the follower tails the live feed.
	applyStream(t, w, batches[3:])
	waitFollowerEpoch(t, f, 6)
	if got, want := snapshotHash(maxID, f.Snapshot()), snapshotHash(maxID, w.Snapshot()); got != want {
		t.Fatalf("follower diverged while tailing: %x vs %x", got, want)
	}

	st2 := f.Stats()
	if st2.FollowerEpoch != 6 || st2.WriterEpoch != 6 || st2.LagBatches != 0 {
		t.Fatalf("lag counters: %+v", st2)
	}
	if st2.CatchupTotal == 0 {
		t.Fatalf("catchup_total not counted: %+v", st2)
	}
	if st2.Rebootstraps != 0 {
		t.Fatalf("unexpected re-bootstraps: %+v", st2)
	}
}

func TestFollowerHTTPReadTier(t *testing.T) {
	g, st := testFixture(t)
	_ = g
	w := newWriter(t, st, stream.Options{
		MaxBatch: 1 << 20, FlushInterval: time.Hour, JournalDepth: 1024,
	})
	wsrv := httptest.NewServer(w.Handler())
	defer wsrv.Close()

	f, err := New(Options{WriterURL: wsrv.URL, PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fsrv := httptest.NewServer(f.Handler())
	defer fsrv.Close()

	var comm struct {
		Epoch       uint64  `json:"epoch"`
		Vertices    int     `json:"vertices"`
		Communities [][]int `json:"communities"`
	}
	if code := getJSON(t, fsrv.URL+"/communities", &comm); code != http.StatusOK {
		t.Fatalf("GET /communities: %d", code)
	}
	if comm.Vertices == 0 || len(comm.Communities) == 0 {
		t.Fatalf("empty communities response: %+v", comm)
	}

	var vert map[string]any
	if code := getJSON(t, fsrv.URL+"/vertex/3", &vert); code != http.StatusOK {
		t.Fatalf("GET /vertex/3: %d", code)
	}
	if present, _ := vert["present"].(bool); !present {
		t.Fatalf("vertex 3 missing: %v", vert)
	}

	var stats Stats
	if code := getJSON(t, fsrv.URL+"/stats", &stats); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if stats.CatchupTotal != 0 && stats.FollowerEpoch == 0 {
		t.Fatalf("inconsistent stats: %+v", stats)
	}

	var h map[string]any
	if code := getJSON(t, fsrv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	for _, k := range []string{"follower_epoch", "writer_epoch", "lag_batches"} {
		if _, ok := h[k]; !ok {
			t.Fatalf("healthz missing %q: %v", k, h)
		}
	}

	// A replica is read-only: the write endpoint does not exist here.
	resp, err := http.Post(fsrv.URL+"/edits", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		t.Fatal("follower accepted a write")
	}

	f.Close()
	if code := getJSON(t, fsrv.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d", code)
	}
}

// getJSON fetches a URL and decodes the JSON body.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(body, out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestFollowerRebootstrapsBehindHorizon pins the recovery path: a
// follower cut off from the feed while the writer's bounded journal rolls
// past it gets 410 Gone on reconnect, re-bootstraps from the writer's
// latest checkpoint, and converges to hash-equality.
func TestFollowerRebootstrapsBehindHorizon(t *testing.T) {
	g, st := testFixture(t)
	maxID := uint32(g.MaxVertexID())
	w := newWriter(t, st, stream.Options{
		MaxBatch: 1 << 20, FlushInterval: time.Hour,
		JournalDepth: 2, CheckpointEvery: 2,
	})
	inner := w.Handler()

	// Front door that can black-hole the feed: while blocked, the
	// follower's polls fail and back off, and the writer's journal rolls
	// past the follower's position.
	var blockFeed atomic.Bool
	front := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if blockFeed.Load() && r.URL.Path == "/feed" {
			http.Error(rw, "partitioned", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(rw, r)
	}))
	defer front.Close()

	evolving := g.Clone()
	batches, err := dynamic.Stream(evolving, 40, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	applyStream(t, w, batches[:1])

	f, err := New(Options{
		WriterURL: front.URL, PollInterval: 2 * time.Millisecond,
		RetryMin: time.Millisecond, RetryMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	waitFollowerEpoch(t, f, 1)

	// Partition the feed and stream 7 more batches: with a 2-deep journal
	// the follower's position (epoch 1) falls behind the horizon.
	blockFeed.Store(true)
	applyStream(t, w, batches[1:])
	blockFeed.Store(false)

	waitFollowerEpoch(t, f, 8)
	if got, want := snapshotHash(maxID, f.Snapshot()), snapshotHash(maxID, w.Snapshot()); got != want {
		t.Fatalf("follower diverged after re-bootstrap: %x vs %x", got, want)
	}
	if st := f.Stats(); st.Rebootstraps == 0 {
		t.Fatalf("horizon overrun did not re-bootstrap: %+v", st)
	}
}
