package stream

import (
	"sync"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/postprocess"
)

// Snapshot is an immutable, epoch-versioned view of the detection state:
// a frozen copy of the graph and the full label matrix taken atomically
// between batches. Everything a query can ask — labels, communities,
// membership — is answered from the frozen copies, so a snapshot stays
// internally consistent no matter how far the live detector advances, and
// readers on one snapshot share a single memoized extraction.
type Snapshot struct {
	epoch uint64
	g     *graph.Graph
	// labels[v] is a private copy of vertex v's label sequence; nil for
	// absent vertex IDs.
	labels [][]uint32
	pcfg   postprocess.Config
	last   core.UpdateStats // the batch that produced this epoch

	once   sync.Once
	res    *postprocess.Result
	member map[uint32][]int
	err    error
}

// newSnapshot freezes det's current state. It must only be called from the
// maintenance goroutine (or before the service starts), between batches.
func newSnapshot(epoch uint64, det Detector, pcfg postprocess.Config, last core.UpdateStats) *Snapshot {
	g := det.Graph().Clone()
	labels := make([][]uint32, g.MaxVertexID())
	g.ForEachVertex(func(v uint32) {
		labels[v] = append([]uint32(nil), det.Labels(v)...)
	})
	return &Snapshot{epoch: epoch, g: g, labels: labels, pcfg: pcfg, last: last}
}

// Epoch returns the number of batches applied before this snapshot was
// taken. Epoch 0 is the state the service started from.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// NumVertices reports the snapshot graph's vertex count.
func (sn *Snapshot) NumVertices() int { return sn.g.NumVertices() }

// NumEdges reports the snapshot graph's edge count.
func (sn *Snapshot) NumEdges() int { return sn.g.NumEdges() }

// HasVertex reports whether v is present in the snapshot.
func (sn *Snapshot) HasVertex(v uint32) bool { return sn.g.HasVertex(v) }

// Degree returns v's degree in the snapshot (0 if absent).
func (sn *Snapshot) Degree(v uint32) int { return sn.g.Degree(v) }

// UpdateStats returns the detector work of the batch that produced this
// epoch (zero for epoch 0).
func (sn *Snapshot) UpdateStats() core.UpdateStats { return sn.last }

// Labels returns v's frozen label sequence (length T+1), or nil for
// absent vertices. The slice is owned by the snapshot; do not mutate it.
func (sn *Snapshot) Labels(v uint32) []uint32 {
	if int(v) >= len(sn.labels) || !sn.g.HasVertex(v) {
		return nil
	}
	return sn.labels[v]
}

// Communities extracts the snapshot's overlapping communities. The first
// caller pays for extraction; every later call on the same snapshot —
// including Membership — returns the memoized result. Extraction runs on
// the frozen copies, entirely on the reader side: it never blocks the
// maintenance goroutine and, for a distributed detector, never touches the
// cluster engine (the sequential extraction is bit-identical to the
// distributed one by the postprocessing equivalence tests).
func (sn *Snapshot) Communities() (*postprocess.Result, error) {
	sn.extract()
	return sn.res, sn.err
}

// Membership returns the indices (into Communities().Cover) of the
// communities containing v; nil for uncovered or absent vertices.
func (sn *Snapshot) Membership(v uint32) ([]int, error) {
	sn.extract()
	if sn.err != nil {
		return nil, sn.err
	}
	return sn.member[v], nil
}

func (sn *Snapshot) extract() {
	sn.once.Do(func() {
		sn.res, sn.err = postprocess.Extract(sn.g, sn.Labels, sn.pcfg)
		if sn.err == nil {
			sn.member = sn.res.Cover.Membership()
		}
	})
}
