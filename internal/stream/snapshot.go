package stream

import (
	"sync"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/postprocess"
)

// snapShard is one immutable shard of a snapshot: the frozen adjacency of
// the vertices in its ID range plus their frozen label rows, indexed by
// the same local offset. Shards are never mutated after construction, so
// consecutive snapshots share every shard the intervening batch did not
// dirty.
type snapShard struct {
	adj    *graph.AdjShard
	labels [][]uint32 // labels[v-base]; nil for absent vertex IDs
}

// cloneShard freezes snapshot shard idx of det's current state: the
// adjacency via graph.CloneShard and a private copy of every present
// vertex's label sequence.
func cloneShard(det Detector, g *graph.Graph, idx int) *snapShard {
	a := g.CloneShard(idx)
	sh := &snapShard{adj: a, labels: make([][]uint32, len(a.Exists))}
	for off, ok := range a.Exists {
		if ok {
			sh.labels[off] = append([]uint32(nil), det.Labels(a.Base+uint32(off))...)
		}
	}
	return sh
}

// Snapshot is an immutable, epoch-versioned view of the detection state,
// published copy-on-write: the dense vertex ID space is cut into
// fixed-size shards (graph.ShardSize IDs each) and a snapshot is an epoch
// plus an immutable slice of shard pointers. Publishing epoch N+1 clones
// only the shards covering the batch's dirty vertices
// (core.UpdateStats.Dirty — effective-edit endpoints plus everything
// correction propagation touched); every clean shard is shared
// structurally with epoch N. Everything a query can ask — labels,
// communities, membership — is answered from the frozen shards, so a
// snapshot stays internally consistent no matter how far the live
// detector advances, and readers on one snapshot share a single memoized
// extraction.
type Snapshot struct {
	epoch  uint64
	shards []*snapShard
	nv, ne int // vertex/edge totals, summed from the shards at publish
	pcfg   postprocess.Config
	last   core.UpdateStats // the batch that produced this epoch

	republished int // shards cloned to publish this snapshot

	// scratch, when non-nil, is the service-owned pool of extraction
	// scratches shared by every epoch's memoized extraction, so the
	// per-vertex tables are reused between epochs instead of reallocated.
	scratch *sync.Pool

	once   sync.Once
	res    *postprocess.Result
	member map[uint32][]int
	err    error
}

// newSnapshot freezes det's current state in full (every shard cloned):
// the epoch-0 bootstrap and the fallback when no dirty set is available.
// It must only be called from the maintenance goroutine (or before the
// service starts), between batches.
func newSnapshot(epoch uint64, det Detector, pcfg postprocess.Config, last core.UpdateStats) *Snapshot {
	g := det.Graph()
	sn := &Snapshot{
		epoch:  epoch,
		shards: make([]*snapShard, graph.NumShards(g.MaxVertexID())),
		pcfg:   pcfg,
		last:   last,
	}
	for i := range sn.shards {
		sn.shards[i] = cloneShard(det, g, i)
	}
	sn.republished = len(sn.shards)
	sn.total()
	return sn
}

// nextSnapshot publishes det's state after one applied batch as a
// copy-on-write successor of prev: only the shards covering dirty
// vertices (plus any shards the ID space grew into) are recloned, the
// rest are shared with prev. The caller guarantees dirty covers every
// vertex whose adjacency or labels changed — for the library detectors
// that is UpdateStats.Dirty, pinned by the epoch-hash-equivalence tests.
func nextSnapshot(prev *Snapshot, det Detector, dirty []uint32, last core.UpdateStats) *Snapshot {
	g := det.Graph()
	sn := &Snapshot{
		epoch:   prev.epoch + 1,
		shards:  make([]*snapShard, graph.NumShards(g.MaxVertexID())),
		pcfg:    prev.pcfg,
		last:    last,
		scratch: prev.scratch,
	}
	copy(sn.shards, prev.shards) // ID space never shrinks
	reclone := make(map[int]struct{})
	for _, v := range dirty {
		reclone[graph.ShardOf(v)] = struct{}{}
	}
	// Shards beyond prev's coverage are new; their vertices are dirty by
	// construction (they were just created), but be explicit.
	for i := len(prev.shards); i < len(sn.shards); i++ {
		reclone[i] = struct{}{}
	}
	for i := range reclone {
		sn.shards[i] = cloneShard(det, g, i)
	}
	sn.republished = len(reclone)
	sn.total()
	return sn
}

// total sums the per-shard tallies into the snapshot's vertex and edge
// counts: O(#shards), not O(n). Each undirected edge contributes one
// half-edge at each endpoint's shard (endpoints always go dirty
// together, so the halves stay symmetric across republishes).
func (sn *Snapshot) total() {
	half := 0
	for _, sh := range sn.shards {
		sn.nv += sh.adj.Present
		half += sh.adj.HalfEdges
	}
	sn.ne = half / 2
}

// shardFor returns the shard covering v, or nil when v is beyond the
// snapshot's ID space.
func (sn *Snapshot) shardFor(v uint32) *snapShard {
	if i := graph.ShardOf(v); i < len(sn.shards) {
		return sn.shards[i]
	}
	return nil
}

// Epoch returns the number of batches applied before this snapshot was
// taken. Epoch 0 is the state the service started from.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// NumVertices reports the snapshot graph's vertex count.
func (sn *Snapshot) NumVertices() int { return sn.nv }

// NumEdges reports the snapshot graph's edge count.
func (sn *Snapshot) NumEdges() int { return sn.ne }

// NumShards reports how many fixed-size shards cover the snapshot's
// vertex ID space.
func (sn *Snapshot) NumShards() int { return len(sn.shards) }

// ShardsRepublished reports how many shards were cloned (rather than
// shared with the previous epoch) to publish this snapshot — the
// publication cost of its batch, in units of graph.ShardSize ID ranges.
func (sn *Snapshot) ShardsRepublished() int { return sn.republished }

// HasVertex reports whether v is present in the snapshot.
func (sn *Snapshot) HasVertex(v uint32) bool {
	sh := sn.shardFor(v)
	return sh != nil && sh.adj.Has(v)
}

// Degree returns v's degree in the snapshot (0 if absent).
func (sn *Snapshot) Degree(v uint32) int {
	if sh := sn.shardFor(v); sh != nil {
		return sh.adj.Degree(v)
	}
	return 0
}

// UpdateStats returns the detector work of the batch that produced this
// epoch (zero for epoch 0).
func (sn *Snapshot) UpdateStats() core.UpdateStats { return sn.last }

// Labels returns v's frozen label sequence (length T+1), or nil for
// absent vertices. The slice is owned by the snapshot; do not mutate it.
func (sn *Snapshot) Labels(v uint32) []uint32 {
	sh := sn.shardFor(v)
	if sh == nil || !sh.adj.Has(v) {
		return nil
	}
	return sh.labels[v-sh.adj.Base]
}

// Vertices returns the present vertex IDs in ascending order
// (postprocess.GraphView).
func (sn *Snapshot) Vertices() []uint32 {
	vs := make([]uint32, 0, sn.nv)
	for _, sh := range sn.shards {
		for off, ok := range sh.adj.Exists {
			if ok {
				vs = append(vs, sh.adj.Base+uint32(off))
			}
		}
	}
	return vs
}

// ForEachEdge calls fn once per undirected edge with the exact iteration
// order of graph.Graph.ForEachEdge on the underlying graph (ascending u,
// frozen adjacency order, u < v filter) — the property that keeps
// snapshot extraction bit-identical to extraction on a full graph clone
// (postprocess.GraphView).
func (sn *Snapshot) ForEachEdge(fn func(u, v uint32)) {
	for _, sh := range sn.shards {
		for off, ok := range sh.adj.Exists {
			if !ok {
				continue
			}
			u := sh.adj.Base + uint32(off)
			for _, v := range sh.adj.Adj[off] {
				if u < v {
					fn(u, v)
				}
			}
		}
	}
}

// Communities extracts the snapshot's overlapping communities. The first
// caller pays for extraction; every later call on the same snapshot —
// including Membership — returns the memoized result. Extraction runs on
// the frozen shards, entirely on the reader side: it never blocks the
// maintenance goroutine and, for a distributed detector, never touches the
// cluster engine (the sequential extraction is bit-identical to the
// distributed one by the postprocessing equivalence tests).
func (sn *Snapshot) Communities() (*postprocess.Result, error) {
	sn.extract()
	return sn.res, sn.err
}

// Membership returns the indices (into Communities().Cover) of the
// communities containing v; nil for uncovered or absent vertices.
func (sn *Snapshot) Membership(v uint32) ([]int, error) {
	sn.extract()
	if sn.err != nil {
		return nil, sn.err
	}
	return sn.member[v], nil
}

func (sn *Snapshot) extract() {
	sn.once.Do(func() {
		if sn.scratch != nil {
			// Results never alias scratch memory, so the scratch goes
			// straight back to the pool for the next epoch (or a
			// concurrent extraction of a different snapshot).
			sc := sn.scratch.Get().(*postprocess.ExtractScratch)
			sn.res, sn.err = sc.Extract(sn, sn.Labels, sn.pcfg)
			sn.scratch.Put(sc)
		} else {
			sn.res, sn.err = postprocess.Extract(sn, sn.Labels, sn.pcfg)
		}
		if sn.err == nil {
			sn.member = sn.res.Cover.Membership()
		}
	})
}
