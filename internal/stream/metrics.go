package stream

import (
	"time"

	"rslpa/internal/obs"
)

// streamMetrics holds the service's hot-path instruments (histograms fed
// by the maintenance goroutine and the query path). Everything already
// counted in Stats is exposed as read-through Func metrics instead, so
// the counters live in one place and the scrape reads them on demand. A
// nil *streamMetrics (Options.Obs unset) disables instrumentation; the
// individual obs types are nil-safe on top of that.
type streamMetrics struct {
	updateSeconds     *obs.Histogram
	publishSeconds    *obs.Histogram
	queueWaitSeconds  *obs.Histogram
	checkpointSeconds *obs.Histogram
	querySeconds      *obs.Histogram
	batchEdits        *obs.Histogram
}

// newStreamMetrics registers the service's metric families in r. The
// read-through closures call s.Stats(), which takes the service mutex —
// scrape-time cost only, never on the batch path. Registration is
// get-or-create, so a follower re-registering across replay generations
// keeps the owned histograms cumulative and repoints the closures at the
// live generation.
func newStreamMetrics(r *obs.Registry, s *Service) *streamMetrics {
	if r == nil {
		return nil
	}
	m := &streamMetrics{
		updateSeconds: r.Histogram("rslpa_stream_update_seconds",
			"Detector Update latency per applied batch.", obs.LatencyBuckets),
		publishSeconds: r.Histogram("rslpa_stream_publish_seconds",
			"Copy-on-write snapshot publish latency per batch.", obs.LatencyBuckets),
		queueWaitSeconds: r.Histogram("rslpa_stream_queue_wait_seconds",
			"Time from a batch's first edit entering the coalescer to its Update starting.", obs.LatencyBuckets),
		checkpointSeconds: r.Histogram("rslpa_stream_checkpoint_seconds",
			"Durable checkpoint write latency.", obs.LatencyBuckets),
		querySeconds: r.Histogram("rslpa_stream_query_seconds",
			"HTTP read-endpoint latency (/communities, /vertex).", obs.LatencyBuckets),
		batchEdits: r.Histogram("rslpa_stream_batch_edits",
			"Canonical net edits per applied batch.", obs.CountBuckets),
	}

	stat := func(get func(Stats) float64) func() float64 {
		return func() float64 { return get(s.Stats()) }
	}
	r.GaugeFunc("rslpa_stream_queue_depth",
		"Edits waiting in the bounded ingest queue.",
		stat(func(st Stats) float64 { return float64(st.QueueDepth) }))
	r.GaugeFunc("rslpa_stream_queue_capacity",
		"Capacity of the ingest queue; Submit blocks when depth reaches it.",
		stat(func(st Stats) float64 { return float64(st.QueueCapacity) }))
	r.GaugeFunc("rslpa_stream_epoch",
		"Epoch of the currently published snapshot (batches applied).",
		stat(func(st Stats) float64 { return float64(st.Epoch) }))
	r.GaugeFunc("rslpa_stream_snapshot_vertices",
		"Vertices in the current snapshot's graph.",
		stat(func(st Stats) float64 { return float64(st.Vertices) }))
	r.GaugeFunc("rslpa_stream_snapshot_edges",
		"Edges in the current snapshot's graph.",
		stat(func(st Stats) float64 { return float64(st.Edges) }))
	r.GaugeFunc("rslpa_stream_snapshot_shards",
		"Shards covering the current snapshot's vertex ID space.",
		stat(func(st Stats) float64 { return float64(st.SnapshotShards) }))
	r.GaugeFunc("rslpa_stream_start_time_seconds",
		"Unix time the service started.",
		func() float64 { return float64(s.start.UnixNano()) / float64(time.Second) })

	r.CounterFunc("rslpa_stream_submitted_edits_total",
		"Edits accepted by Submit.",
		stat(func(st Stats) float64 { return float64(st.SubmittedEdits) }))
	r.CounterFunc("rslpa_stream_applied_edits_total",
		"Canonical edits that survived coalescing and reached Update.",
		stat(func(st Stats) float64 { return float64(st.AppliedEdits) }))
	r.CounterFunc("rslpa_stream_coalesced_edits_total",
		"Submitted edits absorbed by batch canonicalization.",
		stat(func(st Stats) float64 { return float64(st.CoalescedEdits) }))
	r.CounterFunc("rslpa_stream_batches_total",
		"Update batches applied.",
		stat(func(st Stats) float64 { return float64(st.Batches) }))
	r.CounterFunc("rslpa_stream_checkpoints_total",
		"Durable checkpoint files written.",
		stat(func(st Stats) float64 { return float64(st.Checkpoints) }))
	r.CounterFunc("rslpa_stream_queries_total",
		"Snapshot loads served.",
		stat(func(st Stats) float64 { return float64(st.Queries) }))
	r.CounterFunc("rslpa_stream_flush_errors_total",
		"Flushes that failed (detector update or checkpoint write).",
		stat(func(st Stats) float64 { return float64(st.FlushErrors) }))
	r.CounterFunc("rslpa_stream_shards_republished_total",
		"Snapshot shards recloned (rather than shared) across all publishes.",
		stat(func(st Stats) float64 { return float64(st.ShardsRepublished) }))
	r.CounterFunc("rslpa_stream_repicked_total",
		"Picks re-drawn or switched by correction propagation.",
		stat(func(st Stats) float64 { return float64(st.Repicked) }))
	r.CounterFunc("rslpa_stream_touched_total",
		"Label slots visited by correction propagation (the paper's eta).",
		stat(func(st Stats) float64 { return float64(st.Touched) }))
	r.CounterFunc("rslpa_stream_levels_skipped_total",
		"Idle correction levels collapsed to zero rounds by the sparse schedule.",
		stat(func(st Stats) float64 { return float64(st.LevelsSkipped) }))
	r.CounterFunc("rslpa_stream_rounds_run_total",
		"Correction rounds actually executed.",
		stat(func(st Stats) float64 { return float64(st.RoundsRun) }))

	// BSP engine wire traffic, present only when the detector runs on the
	// cluster engine (Workers > 1) and reports it.
	if s.engine != nil {
		r.CounterFunc("rslpa_engine_rounds_total",
			"BSP engine supersteps executed (cumulative, including initial propagation).",
			stat(func(st Stats) float64 { return float64(st.EngineRounds) }))
		r.CounterFunc("rslpa_engine_messages_total",
			"BSP engine messages exchanged.",
			stat(func(st Stats) float64 { return float64(st.EngineMessages) }))
		r.CounterFunc("rslpa_engine_wire_bytes_total",
			"BSP engine wire bytes moved.",
			stat(func(st Stats) float64 { return float64(st.EngineBytes) }))
	}
	return m
}
