package stream

import (
	"fmt"
	"net/http"
	"strconv"

	"rslpa/internal/graph"
)

// Replication feed: the writer-side half of the follower protocol.
//
//	GET /feed?from=E&max=N  journaled canonical batches with epochs in
//	                        (E, E+N], in epoch order — 200 with a
//	                        FeedResponse; 410 Gone when E is behind the
//	                        journal horizon (re-bootstrap from the
//	                        checkpoint); 404 when journaling is disabled
//	GET /checkpoint         the in-memory detector checkpoint as
//	                        application/octet-stream, its epoch in the
//	                        X-Rslpa-Epoch header; 404 when disabled
//
// Both exist only when Options.JournalDepth > 0. A follower bootstraps
// from GET /checkpoint (epoch C), then polls GET /feed?from=C applying
// each batch in order; because JournalDepth is clamped to at least
// CheckpointEvery and the in-memory checkpoint refreshes every
// CheckpointEvery batches, the checkpoint's epoch always sits inside the
// journal horizon — a fresh bootstrap never immediately 410s.

// CheckpointEpochHeader carries the epoch of the serialized checkpoint
// returned by GET /checkpoint.
const CheckpointEpochHeader = "X-Rslpa-Epoch"

// FeedResponse is the wire form of GET /feed.
type FeedResponse struct {
	// WriterEpoch is the newest journaled epoch — the epoch a fully
	// caught-up follower would be at.
	WriterEpoch uint64 `json:"writer_epoch"`
	// OldestEpoch is the oldest epoch still in the journal (meaningful
	// only when the journal is non-empty; 0 otherwise).
	OldestEpoch uint64      `json:"oldest_epoch"`
	Batches     []FeedEntry `json:"batches"`
}

// FeedEntry is one journaled canonical batch: applying Edits to a
// detector at epoch Epoch−1 advances it to exactly Epoch.
type FeedEntry struct {
	Epoch uint64     `json:"epoch"`
	Edits []editJSON `json:"edits"`
}

// GraphEdits converts the entry's wire edits back to graph form, in
// order — the writer's exact canonical batch, ready for replay.
func (e FeedEntry) GraphEdits() ([]graph.Edit, error) {
	out := make([]graph.Edit, len(e.Edits))
	for i, we := range e.Edits {
		ed, err := we.edit()
		if err != nil {
			return nil, fmt.Errorf("feed batch %d edit %d: %w", e.Epoch, i, err)
		}
		out[i] = ed
	}
	return out, nil
}

// feedMaxDefault and feedMaxLimit bound how many batches one GET /feed
// response carries (each batch holds up to MaxBatch edits).
const (
	feedMaxDefault = 64
	feedMaxLimit   = 1024
)

// feedStatus classifies a feed request against the journal.
type feedStatus int

const (
	feedOK       feedStatus = iota
	feedGone                // from is behind the journal horizon
	feedDisabled            // JournalDepth == 0
)

// feed collects the journaled batches with epochs in (from, from+max] into
// wire form. Journal epochs are contiguous and ascending (one entry per
// applied batch), so the window is a slice of the ring.
func (s *Service) feed(from uint64, max int) (FeedResponse, feedStatus) {
	if s.opts.JournalDepth <= 0 {
		return FeedResponse{}, feedDisabled
	}
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	resp := FeedResponse{WriterEpoch: s.journalEpoch}
	if len(s.journal) > 0 {
		resp.OldestEpoch = s.journal[0].epoch
	}
	if from >= s.journalEpoch {
		// Caught up (or ahead, which the follower detects by comparing
		// its epoch against WriterEpoch): nothing to send.
		return resp, feedOK
	}
	if len(s.journal) == 0 || s.journal[0].epoch > from+1 {
		return resp, feedGone
	}
	start := int(from + 1 - s.journal[0].epoch)
	for i := start; i < len(s.journal) && i-start < max; i++ {
		fb := s.journal[i]
		entry := FeedEntry{Epoch: fb.epoch, Edits: make([]editJSON, len(fb.edits))}
		for j, e := range fb.edits {
			entry.Edits[j] = wireEdit(e)
		}
		resp.Batches = append(resp.Batches, entry)
	}
	return resp, feedOK
}

// checkpointBytes returns the in-memory checkpoint and its epoch. The
// returned slice is immutable: refreshMemCheckpoint swaps in a fresh
// buffer rather than rewriting the old one.
func (s *Service) checkpointBytes() (data []byte, epoch uint64, ok bool) {
	if s.opts.JournalDepth <= 0 {
		return nil, 0, false
	}
	s.jmu.RLock()
	defer s.jmu.RUnlock()
	return s.ckptData, s.ckptEpoch, true
}

func (s *Service) handleFeed(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("feed: from: %w", err))
		return
	}
	max := feedMaxDefault
	if ms := q.Get("max"); ms != "" {
		m, err := strconv.Atoi(ms)
		if err != nil || m <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("feed: max=%q must be a positive integer", ms))
			return
		}
		max = min(m, feedMaxLimit)
	}
	resp, status := s.feed(from, max)
	switch status {
	case feedDisabled:
		writeError(w, http.StatusNotFound, fmt.Errorf("feed: journaling disabled (Options.JournalDepth == 0)"))
	case feedGone:
		// The follower's epoch fell behind the journal horizon; it must
		// re-bootstrap from GET /checkpoint. 410 carries the same envelope
		// so the client learns how far behind it was.
		writeJSON(w, http.StatusGone, resp)
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

func (s *Service) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	data, epoch, ok := s.checkpointBytes()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("checkpoint: journaling disabled (Options.JournalDepth == 0)"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(CheckpointEpochHeader, strconv.FormatUint(epoch, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}
