package stream

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"rslpa/internal/graph"
	"rslpa/internal/obs"
)

// maxEditBody bounds a single POST /edits body (16 MiB ≈ one million
// edits), protecting the service from unbounded request buffering.
const maxEditBody = 16 << 20

// HTTP front end. All bodies are JSON.
//
//	POST /edits        {"edits":[{"op":"insert","u":1,"v":2}, ...]}
//	                   (a bare array of edits is also accepted; append
//	                   ?wait=1 to drain before replying — read-your-writes)
//	GET  /communities  the current snapshot's cover with its epoch
//	GET  /vertex/{v}   membership and degree of one vertex
//	                   (?labels=1 includes the raw label sequence)
//	GET  /stats        operational counters (see Stats), including the
//	                   COW publication meters last_publish_micros,
//	                   shards_republished and snapshot_shards
//	GET  /healthz      200 while the service accepts edits, 503 after Close
//	                   or a latched detector failure; the body surfaces a
//	                   degraded checkpoint_error while durability suffers
//	GET  /readyz       like /healthz but strict: 503 also while the last
//	                   checkpoint write failed (traffic should drain away
//	                   from a writer that is losing durability)
//	GET  /feed         replication feed for followers (see feed.go)
//	GET  /checkpoint   bootstrap checkpoint for followers (see feed.go)
//	GET  /events       community evolution events after ?from=E
//	                   (see evolution.go; EvolutionDepth > 0)
//	GET  /community/{id}/history  one lineage's retained life-cycle
//	GET  /evolution/state  serialized evolution baseline for followers
//	GET  /metrics      Prometheus text exposition (Options.Obs set)
//	GET  /debug/batches  recent + slowest per-batch pipeline traces
//	                   (Options.Trace set)
//	GET  /version      build identity, start time and uptime
//
// Failure semantics of POST /edits: after a detector failure the service
// latches — Submit still accepts edits (202 without ?wait), but batches
// are no longer applied and a ?wait=1 drain reports the latched error
// with 503. The edits were nonetheless swallowed by the latched queue,
// so the 503 body carries the "accepted" count alongside the error
// detail; a client must not infer from the status alone that nothing was
// consumed. Oversized bodies (> 16 MiB) are rejected with 413.

// editJSON is the wire form of one edge edit.
type editJSON struct {
	Op string `json:"op"` // "insert" or "delete"
	U  uint32 `json:"u"`
	V  uint32 `json:"v"`
}

func (e editJSON) edit() (graph.Edit, error) {
	switch e.Op {
	case "insert":
		return graph.Edit{Op: graph.Insert, U: e.U, V: e.V}, nil
	case "delete":
		return graph.Edit{Op: graph.Delete, U: e.U, V: e.V}, nil
	default:
		return graph.Edit{}, fmt.Errorf("unknown op %q (want \"insert\" or \"delete\")", e.Op)
	}
}

// wireEdit is the inverse of editJSON.edit, used by the replication feed.
func wireEdit(e graph.Edit) editJSON {
	op := "insert"
	if e.Op == graph.Delete {
		op = "delete"
	}
	return editJSON{Op: op, U: e.U, V: e.V}
}

// Handler returns the service's HTTP front end.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /edits", s.handleEdits)
	mux.HandleFunc("GET /communities", s.observed(s.handleCommunities))
	mux.HandleFunc("GET /vertex/{v}", s.observed(s.handleVertex))
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /feed", s.handleFeed)
	mux.HandleFunc("GET /checkpoint", s.handleCheckpoint)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /community/{id}/history", s.observed(s.handleCommunityHistory))
	mux.HandleFunc("GET /evolution/state", s.handleEvolutionState)
	if s.opts.Obs != nil {
		mux.Handle("GET /metrics", s.opts.Obs.Handler())
	}
	if s.trace != nil {
		mux.Handle("GET /debug/batches", s.trace.Handler())
	}
	mux.HandleFunc("GET /version", obs.HandleVersion)
	return mux
}

// observed wraps a read endpoint with the query-latency histogram. With
// instrumentation off it returns the handler untouched — zero overhead.
func (s *Service) observed(h http.HandlerFunc) http.HandlerFunc {
	if s.met == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		s.met.querySeconds.Observe(time.Since(t0).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Service) handleEdits(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxEditBody))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("read body: %w", err))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	var wire []editJSON
	trimmed := bytes.TrimLeft(body, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		err = json.Unmarshal(trimmed, &wire)
	} else {
		var envelope struct {
			Edits []editJSON `json:"edits"`
		}
		err = json.Unmarshal(trimmed, &envelope)
		wire = envelope.Edits
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode edits: %w", err))
		return
	}
	edits := make([]graph.Edit, len(wire))
	for i, e := range wire {
		ed, err := e.edit()
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("edit %d: %w", i, err))
			return
		}
		edits[i] = ed
	}
	if err := s.Submit(edits...); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	resp := map[string]any{"accepted": len(edits), "queue_depth": len(s.in)}
	if r.URL.Query().Get("wait") != "" {
		if err := s.Drain(); err != nil {
			// The edits were accepted before the drain failed (the
			// service latches; see the comment block above), so the
			// error body must still carry the accepted count next to
			// the failure detail.
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error":    err.Error(),
				"accepted": len(edits),
			})
			return
		}
		resp["epoch"] = s.snap.Load().Epoch()
	}
	writeJSON(w, http.StatusAccepted, resp)
}

func (s *Service) handleCommunities(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	if es := r.URL.Query().Get("epoch"); es != "" {
		// Historical read over the evolution tier's retained snapshot
		// window: behind the window is 410 Gone (like /feed and /events),
		// ahead of the head is 404.
		if s.evo == nil {
			writeError(w, http.StatusNotFound, errors.New("?epoch requires evolution tracking (EvolutionDepth > 0)"))
			return
		}
		epoch, err := strconv.ParseUint(es, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("epoch: %w", err))
			return
		}
		hist, oldest, newest := s.evo.snapshotAt(epoch)
		switch {
		case hist != nil:
			sn = hist
		case epoch < oldest:
			writeJSON(w, http.StatusGone, map[string]any{
				"error":        fmt.Sprintf("epoch %d is behind the retained snapshot window", epoch),
				"oldest_epoch": oldest,
				"writer_epoch": newest,
			})
			return
		default:
			writeError(w, http.StatusNotFound, fmt.Errorf("epoch %d not published yet (head is %d)", epoch, newest))
			return
		}
	}
	res, err := sn.Communities()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":       sn.Epoch(),
		"vertices":    sn.NumVertices(),
		"edges":       sn.NumEdges(),
		"tau1":        res.Tau1,
		"tau2":        res.Tau2,
		"entropy":     res.Entropy,
		"strong":      res.Strong,
		"weak":        res.Weak,
		"communities": res.Cover.Communities(),
	})
}

func (s *Service) handleVertex(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("v"), 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("vertex id: %w", err))
		return
	}
	v := uint32(id)
	sn := s.Snapshot()
	resp := map[string]any{
		"epoch":   sn.Epoch(),
		"vertex":  v,
		"present": sn.HasVertex(v),
		"degree":  sn.Degree(v),
	}
	if sn.HasVertex(v) {
		member, err := sn.Membership(v)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if member == nil {
			member = []int{}
		}
		resp["communities"] = member
		if r.URL.Query().Get("labels") != "" {
			resp["labels"] = sn.Labels(v)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.quit:
		writeError(w, http.StatusServiceUnavailable, ErrClosed)
	default:
		if err := s.failureErr(); err != nil {
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		body := map[string]any{"epoch": s.snap.Load().Epoch()}
		if err := s.checkpointFailure(); err != nil {
			// Liveness stays 200 — detection state is healthy and queries
			// are served — but the degraded durability must be visible, not
			// swallowed: deployments alert on this field (or on /readyz,
			// which turns it into a non-200).
			body["checkpoint_error"] = err.Error()
		}
		writeJSON(w, http.StatusOK, body)
	}
}

// handleReadyz is the strict readiness probe: unlike /healthz it also
// fails while the most recent checkpoint write failed, so a load balancer
// drains traffic from a writer that is losing durability even though it
// still answers queries.
func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-s.quit:
		writeError(w, http.StatusServiceUnavailable, ErrClosed)
		return
	default:
	}
	if err := s.failureErr(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	if err := s.checkpointFailure(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": s.snap.Load().Epoch()})
}
