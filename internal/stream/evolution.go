package stream

// Temporal evolution tier: with Options.EvolutionDepth > 0 the service
// diffs every published snapshot's community set against the previous
// epoch's through an evolution.Tracker (stable Jaccard matching,
// deterministic tie-breaks, content-derived lineage IDs) and serves the
// classified transition events over HTTP:
//
//	GET /events?from=E             the event journal after epoch E, with
//	                               /feed-style 410-behind-the-horizon
//	                               cursor semantics
//	GET /community/{id}/history    one lineage's retained life-cycle
//	GET /communities?epoch=E       a retained historical snapshot's cover
//	GET /evolution/state           the serialized matcher baseline at the
//	                               in-memory checkpoint's epoch, so a
//	                               follower bootstraps with the writer's
//	                               exact lineage assignments
//
// The diff runs synchronously on the maintenance goroutine right after
// the snapshot swap: epochs stay contiguous (the tracker refuses gaps),
// the journal never reorders, and because extraction is memoized on the
// snapshot the first reader reuses the work. Determinism end to end —
// canonical batches, bit-identical updates, order-stable extraction,
// exact-rational matching — is what lets a follower replaying the feed
// emit a byte-identical /events stream without any event replication.

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"rslpa/internal/evolution"
	"rslpa/internal/obs"
)

// evolutionSidecarSuffix names the durable sidecar next to the detector
// checkpoint that persists the tracker baseline across writer restarts.
const evolutionSidecarSuffix = ".evolution"

// eventsMaxDefault and eventsMaxLimit bound GET /events paging, in whole
// epochs per response (mirroring /feed's batch paging).
const (
	eventsMaxDefault = 64
	eventsMaxLimit   = 1024
)

// evoTier owns the tracker, the retained snapshot window, and the
// evolution metric instruments. The mutex covers tracker and window
// state: the maintenance goroutine writes under Lock, HTTP readers read
// under RLock.
type evoTier struct {
	depth int

	mu     sync.RWMutex
	tr     *evolution.Tracker
	snaps  []*Snapshot // retained window, contiguous ascending epochs
	failed error       // latched diff/extraction failure; /events turns 503

	events      *obs.CounterVec
	diffSeconds *obs.Histogram
}

// initEvolution builds the tier at service start: restore the tracker
// baseline from an explicit state image (follower bootstrap — strict) or
// the checkpoint sidecar (writer restart — lenient), else rebase on the
// initial snapshot's communities.
func (s *Service) initEvolution(sn0 *Snapshot) error {
	e := &evoTier{
		depth: s.opts.EvolutionDepth,
		tr:    evolution.New(evolution.Config{Depth: s.opts.EvolutionDepth}),
	}
	restored := false
	if st := s.opts.EvolutionState; st != nil {
		if err := e.tr.Restore(st); err != nil {
			return fmt.Errorf("stream: evolution state: %w", err)
		}
		if got := e.tr.Epoch(); got != s.opts.BaseEpoch {
			return fmt.Errorf("stream: evolution state is at epoch %d, detector at %d", got, s.opts.BaseEpoch)
		}
		restored = true
	} else if s.opts.CheckpointPath != "" {
		sidecar := s.opts.CheckpointPath + evolutionSidecarSuffix
		sweepCheckpointTemps(sidecar)
		if data, err := os.ReadFile(sidecar); err == nil {
			switch err := e.tr.Restore(data); {
			case err != nil:
				s.log.Warn("stream: evolution sidecar unreadable; rebasing lineages", "path", sidecar, "error", err)
			case e.tr.Epoch() != s.opts.BaseEpoch:
				s.log.Warn("stream: evolution sidecar epoch mismatch; rebasing lineages",
					"path", sidecar, "sidecar_epoch", e.tr.Epoch(), "detector_epoch", s.opts.BaseEpoch)
			default:
				restored = true
			}
		} else if !errors.Is(err, os.ErrNotExist) {
			s.log.Warn("stream: evolution sidecar unreadable; rebasing lineages", "path", sidecar, "error", err)
		}
	}
	if !restored {
		res, err := sn0.Communities()
		if err != nil {
			return fmt.Errorf("stream: evolution baseline extraction: %w", err)
		}
		e.tr.Rebase(sn0.Epoch(), res.Cover.Communities())
	}
	e.snaps = []*Snapshot{sn0}

	if r := s.opts.Obs; r != nil {
		e.events = r.CounterVec("rslpa_evolution_events_total",
			"Community evolution events emitted, by transition kind.", "kind")
		for _, k := range evolution.Kinds {
			e.events.With(string(k)) // pre-create every kind: scrapes show zeros, not absences
		}
		e.diffSeconds = r.Histogram("rslpa_evolution_diff_seconds",
			"Evolution diff latency per published snapshot (extraction + matching; extraction is memoized for readers).",
			obs.LatencyBuckets)
		r.GaugeFunc("rslpa_evolution_lineages",
			"Community lineages alive at the current epoch.",
			func() float64 {
				e.mu.RLock()
				defer e.mu.RUnlock()
				return float64(e.tr.LiveLineages())
			})
	}
	s.evo = e
	return nil
}

// advanceEvolution diffs the freshly published snapshot against the
// tracker baseline. Called only by the maintenance goroutine, right after
// the snapshot swap and before the journal/checkpoint capture (so the
// serialized evolution state is always at the checkpoint's epoch). A
// failure latches the tier — detection keeps running, /events turns 503.
func (s *Service) advanceEvolution(next *Snapshot) time.Duration {
	e := s.evo
	e.mu.RLock()
	failed := e.failed
	e.mu.RUnlock()
	if failed != nil {
		return 0
	}
	t0 := time.Now()
	res, err := next.Communities()
	if err != nil {
		e.fail(fmt.Errorf("stream: evolution extraction: %w", err))
		s.log.Error("stream: evolution diff failed; evolution tier latched", "error", err)
		return time.Since(t0)
	}
	e.mu.Lock()
	evs, err := e.tr.Advance(next.Epoch(), res.Cover.Communities())
	if err == nil {
		e.snaps = append(e.snaps, next)
		// Window: the current snapshot plus up to depth historical ones.
		if over := len(e.snaps) - (e.depth + 1); over > 0 {
			e.snaps = e.snaps[over:]
		}
	} else {
		e.failed = fmt.Errorf("stream: evolution diff: %w", err)
	}
	e.mu.Unlock()
	dur := time.Since(t0)
	if err != nil {
		s.log.Error("stream: evolution diff failed; evolution tier latched", "error", err)
		return dur
	}
	for _, ev := range evs {
		e.events.With(string(ev.Kind)).Inc()
	}
	e.diffSeconds.Observe(dur.Seconds())
	return dur
}

func (e *evoTier) fail(err error) {
	e.mu.Lock()
	if e.failed == nil {
		e.failed = err
	}
	e.mu.Unlock()
}

func (e *evoTier) failure() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.failed
}

// saveState serializes the tracker baseline. Called by the maintenance
// goroutine after advanceEvolution, so the image is at the snapshot's
// epoch.
func (e *evoTier) saveState() ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.failed != nil {
		return nil, e.failed
	}
	return e.tr.Save()
}

// eventsResponse is the GET /events envelope. Field order and content are
// deterministic, so writer and follower responses for the same epochs are
// byte-identical.
type eventsResponse struct {
	WriterEpoch uint64            `json:"writer_epoch"`
	OldestEpoch uint64            `json:"oldest_epoch"`
	Events      []evolution.Event `json:"events"`
}

// handleEvents serves the evolution event journal with /feed-style cursor
// semantics: ?from=E returns the events of epochs (E, E+max]; a cursor
// behind the retained horizon gets 410 Gone and must restart from the
// current epoch (or a fresh /evolution/state).
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	e := s.evo
	if e == nil {
		writeError(w, http.StatusNotFound, errors.New("evolution tracking disabled (EvolutionDepth = 0)"))
		return
	}
	if err := e.failure(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("from: %w", err))
		return
	}
	maxEpochs := eventsMaxDefault
	if ms := q.Get("max"); ms != "" {
		m, err := strconv.Atoi(ms)
		if err != nil || m < 1 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("max: want a positive integer, got %q", ms))
			return
		}
		maxEpochs = min(m, eventsMaxLimit)
	}
	e.mu.RLock()
	oldest, newest := e.tr.Window()
	evs, status := e.tr.Events(from, maxEpochs)
	e.mu.RUnlock()
	if status == evolution.FeedGone {
		writeJSON(w, http.StatusGone, map[string]any{
			"error":        fmt.Sprintf("cursor %d is behind the retained event horizon", from),
			"oldest_epoch": oldest,
			"writer_epoch": newest,
		})
		return
	}
	writeJSON(w, http.StatusOK, eventsResponse{WriterEpoch: newest, OldestEpoch: oldest, Events: evs})
}

// handleCommunityHistory serves one lineage's retained life-cycle.
func (s *Service) handleCommunityHistory(w http.ResponseWriter, r *http.Request) {
	e := s.evo
	if e == nil {
		writeError(w, http.StatusNotFound, errors.New("evolution tracking disabled (EvolutionDepth = 0)"))
		return
	}
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("lineage id: %w", err))
		return
	}
	e.mu.RLock()
	h, ok := e.tr.History(id)
	epoch := e.tr.Epoch()
	e.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("lineage %d unknown (never seen, or dead behind the horizon)", id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   epoch,
		"lineage": h.Lineage,
		"born":    h.Born,
		"alive":   h.Alive,
		"size":    h.Size,
		"events":  h.Events,
	})
}

// snapshotAt returns the retained snapshot of the given epoch, or the
// window bounds when it is outside.
func (e *evoTier) snapshotAt(epoch uint64) (sn *Snapshot, oldest, newest uint64) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	oldest = e.snaps[0].Epoch()
	newest = e.snaps[len(e.snaps)-1].Epoch()
	if epoch >= oldest && epoch <= newest {
		sn = e.snaps[epoch-oldest]
	}
	return sn, oldest, newest
}

// handleEvolutionState serves the serialized tracker baseline captured
// with the in-memory checkpoint (same epoch, stamped in the
// X-Rslpa-Epoch header), so a follower that bootstraps from
// GET /checkpoint can adopt the writer's exact lineage assignments.
func (s *Service) handleEvolutionState(w http.ResponseWriter, r *http.Request) {
	e := s.evo
	if e == nil || s.opts.JournalDepth <= 0 {
		writeError(w, http.StatusNotFound, errors.New("evolution state unavailable (needs EvolutionDepth and JournalDepth > 0)"))
		return
	}
	if err := e.failure(); err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	s.jmu.RLock()
	data, epoch := s.evoCkptData, s.ckptEpoch
	s.jmu.RUnlock()
	if data == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("evolution state not yet captured"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(CheckpointEpochHeader, strconv.FormatUint(epoch, 10))
	w.Write(data)
}

// writeEvolutionSidecar persists the current in-memory evolution state
// next to the detector checkpoint, with the same atomic tmp + fsync +
// rename discipline, so a restarted writer resumes lineage assignment
// where it left off.
func (s *Service) writeEvolutionSidecar() error {
	path := s.opts.CheckpointPath + evolutionSidecarSuffix
	data, err := s.evo.saveState()
	if err != nil {
		// The tier is latched: drop any stale sidecar (best effort) so a
		// restart rebases fresh instead of resuming an older baseline, and
		// leave the detector checkpoint's success intact.
		os.Remove(path)
		return nil
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}
