package stream

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// newFeedService starts a journaling service over the two-triangle graph
// behind an httptest server.
func newFeedService(t *testing.T, opts Options) (*Service, *httptest.Server, *core.State) {
	t.Helper()
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, opts)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv, st
}

// applyBatches drains n single-edit batches through the service, touching
// a fresh vertex pair each time so every batch survives coalescing.
func applyBatches(t *testing.T, s *Service, n int, base uint32) {
	t.Helper()
	for i := 0; i < n; i++ {
		v := base + uint32(i)
		if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: v}); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFeedServesJournaledBatches(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, JournalDepth: 64})
	applyBatches(t, s, 3, 10)

	var feed FeedResponse
	if code := getJSON(t, srv.URL+"/feed?from=0", &feed); code != http.StatusOK {
		t.Fatalf("GET /feed?from=0: %d", code)
	}
	if feed.WriterEpoch != 3 || feed.OldestEpoch != 1 || len(feed.Batches) != 3 {
		t.Fatalf("feed: %+v", feed)
	}
	for i, b := range feed.Batches {
		if b.Epoch != uint64(i+1) {
			t.Fatalf("batch %d epoch %d", i, b.Epoch)
		}
		if len(b.Edits) != 1 {
			t.Fatalf("batch %d carries %d edits", i, len(b.Edits))
		}
	}

	// Replaying the feed into a twin reproduces the writer bit-for-bit:
	// the journaled batches are the writer's exact canonical batches.
	twin, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range feed.Batches {
		batch := make([]graph.Edit, len(b.Edits))
		for j, we := range b.Edits {
			if batch[j], err = we.edit(); err != nil {
				t.Fatal(err)
			}
		}
		twin.Update(batch)
	}
	if twin.Epoch() != feed.WriterEpoch {
		t.Fatalf("twin epoch %d, writer %d", twin.Epoch(), feed.WriterEpoch)
	}
	sn := s.Snapshot()
	twin.Graph().ForEachVertex(func(v uint32) {
		a, b := sn.Labels(v), twin.Labels(v)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("vertex %d label %d: writer %d twin %d", v, i, a[i], b[i])
			}
		}
	})

	// A caught-up follower gets an empty page, not an error.
	if code := getJSON(t, srv.URL+"/feed?from=3", &feed); code != http.StatusOK {
		t.Fatalf("caught-up feed: %d", code)
	}
	if len(feed.Batches) != 0 {
		t.Fatalf("caught-up feed returned %d batches", len(feed.Batches))
	}

	// Pagination: max=1 yields exactly the next epoch.
	if code := getJSON(t, srv.URL+"/feed?from=1&max=1", &feed); code != http.StatusOK {
		t.Fatalf("paginated feed: %d", code)
	}
	if len(feed.Batches) != 1 || feed.Batches[0].Epoch != 2 {
		t.Fatalf("paginated feed: %+v", feed)
	}
}

func TestFeedBehindHorizonRebootstrapsFromCheckpoint(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{
		FlushInterval: time.Hour, JournalDepth: 2, CheckpointEvery: 2,
	})
	applyBatches(t, s, 7, 10)

	// Epoch 0 fell off the 2-deep journal long ago: 410 Gone, with the
	// envelope telling the follower how far behind it is.
	var feed FeedResponse
	if code := getJSON(t, srv.URL+"/feed?from=0", &feed); code != http.StatusGone {
		t.Fatalf("behind-horizon feed: %d", code)
	}
	if feed.WriterEpoch != 7 || feed.OldestEpoch != 6 {
		t.Fatalf("410 envelope: %+v", feed)
	}

	// Re-bootstrap: the checkpoint's epoch always sits inside the journal
	// horizon (it refreshes every CheckpointEvery ≤ JournalDepth batches),
	// so the follower can resume the feed from it without a second 410.
	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /checkpoint: %d %v", resp.StatusCode, err)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(CheckpointEpochHeader), 10, 64)
	if err != nil {
		t.Fatalf("checkpoint epoch header: %v", err)
	}
	ck, err := core.ReadCheckpoint(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := ck.Verify(); err != nil {
		t.Fatal(err)
	}
	follower, err := ck.BuildState()
	if err != nil {
		t.Fatal(err)
	}
	if follower.Epoch() != epoch || epoch != 6 {
		t.Fatalf("checkpoint epoch: header %d, state %d, want 6", epoch, follower.Epoch())
	}

	if code := getJSON(t, srv.URL+"/feed?from="+strconv.FormatUint(epoch, 10), &feed); code != http.StatusOK {
		t.Fatalf("feed from checkpoint epoch: %d", code)
	}
	for _, b := range feed.Batches {
		batch := make([]graph.Edit, len(b.Edits))
		for j, we := range b.Edits {
			if batch[j], err = we.edit(); err != nil {
				t.Fatal(err)
			}
		}
		follower.Update(batch)
	}
	sn := s.Snapshot()
	if follower.Epoch() != sn.Epoch() {
		t.Fatalf("follower epoch %d, writer %d", follower.Epoch(), sn.Epoch())
	}
	follower.Graph().ForEachVertex(func(v uint32) {
		a, b := sn.Labels(v), follower.Labels(v)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("vertex %d label %d: writer %d follower %d", v, i, a[i], b[i])
			}
		}
	})
}

func TestFeedDisabledIs404(t *testing.T) {
	_, srv := newHTTPService(t) // no JournalDepth
	var e map[string]any
	if code := getJSON(t, srv.URL+"/feed?from=0", &e); code != http.StatusNotFound {
		t.Fatalf("GET /feed without journaling: %d", code)
	}
	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /checkpoint without journaling: %d", resp.StatusCode)
	}
}

func TestFeedBadParams(t *testing.T) {
	_, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, JournalDepth: 8})
	var e map[string]any
	if code := getJSON(t, srv.URL+"/feed", &e); code != http.StatusBadRequest {
		t.Fatalf("feed without from: %d", code)
	}
	if code := getJSON(t, srv.URL+"/feed?from=0&max=-1", &e); code != http.StatusBadRequest {
		t.Fatalf("feed with negative max: %d", code)
	}
}

// TestCheckpointReadBackAlwaysLoadable pins the durability contract: after
// every drain that rolled a checkpoint, the file on disk parses, verifies,
// and rebuilds into a State at the recorded epoch — never truncated or
// half-renamed.
func TestCheckpointReadBackAlwaysLoadable(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "service.ckpt")
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, Options{
		FlushInterval: time.Hour, CheckpointPath: ckpt, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 10 + uint32(i)}); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(ckpt)
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		ck, err := core.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			t.Fatalf("drain %d: checkpoint unreadable: %v", i, err)
		}
		if err := ck.Verify(); err != nil {
			t.Fatalf("drain %d: checkpoint inconsistent: %v", i, err)
		}
		restored, err := ck.BuildState()
		if err != nil {
			t.Fatalf("drain %d: %v", i, err)
		}
		if restored.Epoch() != uint64(i+1) {
			t.Fatalf("drain %d: restored epoch %d", i, restored.Epoch())
		}
	}
}

// TestReadyzReflectsCheckpointHealth pins the degraded-durability
// surfacing: /healthz stays 200 (liveness: queries are served) but carries
// checkpoint_error, /readyz goes 503, and Stats counts the failed flush —
// all cleared again by the next successful checkpoint.
func TestReadyzReflectsCheckpointHealth(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "service.ckpt")
	if err := os.Mkdir(ckpt, 0o755); err != nil { // rename target blocked
		t.Fatal(err)
	}
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, Options{
		FlushInterval: time.Hour, CheckpointPath: ckpt, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer func() { srv.Close(); s.Close() }()

	var h map[string]any
	if code := getJSON(t, srv.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("initial readyz: %d", code)
	}

	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil {
		t.Fatal("blocked checkpoint not reported by drain")
	}
	if code := getJSON(t, srv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthz while degraded: %d (must stay live)", code)
	}
	if _, ok := h["checkpoint_error"]; !ok {
		t.Fatalf("healthz body hides the checkpoint failure: %v", h)
	}
	if code := getJSON(t, srv.URL+"/readyz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: %d", code)
	}
	if st := s.Stats(); st.FlushErrors == 0 {
		t.Fatalf("flush_errors not counted: %+v", st)
	}

	// Recovery: unblock the target; the next checkpoint clears everything.
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 1, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if code := getJSON(t, srv.URL+"/readyz", &h); code != http.StatusOK {
		t.Fatalf("readyz after recovery: %d", code)
	}
	// Fresh map: Unmarshal into a reused one would keep the stale key.
	var h2 map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &h2); code != http.StatusOK {
		t.Fatalf("healthz after recovery: %d", code)
	}
	if _, ok := h2["checkpoint_error"]; ok {
		t.Fatalf("stale checkpoint_error after recovery: %v", h2)
	}
}
