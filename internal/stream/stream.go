// Package stream runs an incremental community detector as an always-on
// service: the shape the paper's motivating scenario (a social network
// whose graph changes continuously under live query traffic) actually
// needs, and the missing layer between the blocking Detector call-chain
// and a deployed system.
//
// Three roles meet in a Service:
//
//   - Producers call Submit from any number of goroutines. Edits flow
//     through a bounded queue; when it is full Submit blocks, which is the
//     backpressure signal.
//   - A single maintenance goroutine drains the queue, coalesces edits
//     into canonical batches (graph.Coalescer: orient, dedupe, cancel
//     insert+delete pairs) and applies them through the detector's
//     incremental Update when the pending batch reaches Options.MaxBatch
//     net edits or Options.FlushInterval elapses. Because only this
//     goroutine ever touches the detector, any single-goroutine Detector
//     implementation works unchanged — sequential, in-process parallel,
//     or distributed.
//   - Readers call Snapshot (or the HTTP handler's GET endpoints) and are
//     served lock-free from an immutable, epoch-versioned snapshot that
//     the maintenance goroutine swaps in atomically after every applied
//     batch. Readers never block the writer, never see a partially
//     applied batch, and a held snapshot stays consistent forever.
//
// # Copy-on-write publication
//
// Snapshots are published per-shard copy-on-write rather than by cloning
// the world: the dense vertex ID space is cut into fixed shards of
// graph.ShardSize IDs, a Snapshot is an epoch plus an immutable slice of
// shard pointers, and publishing epoch N+1 reclones only the dirty
// shards — those covering the batch's effective-edit endpoints and every
// vertex correction propagation touched (core.UpdateStats.Dirty, the
// dirty-shard rule) — while sharing every clean shard with epoch N. A
// small batch on a large graph therefore republishes kilobytes instead
// of the O(n·T) full label matrix; the last_publish_micros and
// shards_republished counters in Stats meter exactly that. Correctness
// is pinned by the epoch-hash-equivalence suite: every published COW
// snapshot hashes identical to a full clone at the same epoch.
//
// The service optionally checkpoints the detector every few batches
// through its Save method (atomic tmp+rename+fsync), so a restarted
// process can resume maintenance bit-identically via the library's
// LoadDetector path. Temp files orphaned by a crash mid-checkpoint are
// swept at startup.
//
// # Replication feed
//
// With Options.JournalDepth > 0 the service additionally keeps the last
// JournalDepth applied canonical batches (each stamped with the epoch it
// produced) plus an in-memory detector checkpoint, and the HTTP handler
// serves them as GET /feed?from=<epoch> and GET /checkpoint. A read-only
// follower (internal/replica) bootstraps from the checkpoint and tails
// the feed, replaying the writer's exact canonical batches through its
// own detector — determinism makes the follower's snapshot at epoch E
// bit-identical to the writer's, so GET /communities and /vertex/{v}
// scale horizontally across replicas while the single writer ingests. A
// follower that falls behind the bounded journal horizon gets 410 Gone
// and re-bootstraps from the latest checkpoint.
package stream

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/obs"
	"rslpa/internal/postprocess"
)

// Detector is the maintenance interface the service drives. It is
// satisfied by the library's *rslpa.Detector in every execution mode; any
// detector that is safe for single-goroutine use works.
type Detector interface {
	// Update applies a batch of edge edits and incrementally repairs the
	// detection state. The returned UpdateStats.Dirty must cover every
	// vertex whose adjacency or label sequence changed — it drives the
	// copy-on-write snapshot publication (only the shards covering Dirty
	// vertices are recloned). A nil Dirty is treated as "unknown" and
	// forces a full-clone publish, which is always safe.
	Update(batch []graph.Edit) (core.UpdateStats, error)
	// Labels returns a vertex's label sequence (nil for absent vertices).
	Labels(v uint32) []uint32
	// Graph returns the detector's current graph (read-only).
	Graph() *graph.Graph
	// Save checkpoints the detector state.
	Save(w io.Writer) error
}

// EngineStatsProvider is optionally implemented by detectors that run on
// the BSP cluster engine: EngineStats reports the engine's cumulative
// wire traffic (supersteps, messages, bytes — cluster.Stats). ok is false
// for sequential detectors, whose wire traffic is definitionally zero.
// When the service's detector implements it, the cumulative values are
// surfaced in Stats (engine_rounds / engine_messages / engine_bytes in
// /stats) and per-batch deltas are attached to the Update span of the
// pipeline trace.
type EngineStatsProvider interface {
	EngineStats() (rounds, messages, bytes int64, ok bool)
}

// Options configures a Service. The zero value selects the defaults.
type Options struct {
	// QueueCapacity bounds the ingest queue, in edits; Submit blocks while
	// it is full (backpressure). Default 4096.
	QueueCapacity int
	// MaxBatch flushes the pending batch once it holds this many net
	// edits. Default 512.
	MaxBatch int
	// FlushInterval flushes partial batches at least this often.
	// Default 100ms.
	FlushInterval time.Duration
	// Extraction configures snapshot community extraction (thresholds,
	// metric); the zero value selects them automatically.
	Extraction postprocess.Config
	// CheckpointPath, when non-empty, makes the service checkpoint the
	// detector to this file — written atomically via a temporary file and
	// rename — every CheckpointEvery batches and once more on Close.
	CheckpointPath string
	// CheckpointEvery is the number of applied batches between
	// checkpoints. Default 16 (when CheckpointPath is set).
	CheckpointEvery int
	// BaseEpoch is the epoch of the initial snapshot (default 0). A caller
	// whose detector resumed from a checkpoint passes the detector's own
	// batch counter here so the service's snapshot epochs equal the
	// detector's epochs globally — across restarts, and between a writer
	// and the followers that replay its feed.
	BaseEpoch uint64
	// JournalDepth, when positive, makes the service retain the last
	// JournalDepth applied canonical batches (with their epochs) and an
	// in-memory checkpoint of the detector, which the HTTP handler serves
	// as GET /feed and GET /checkpoint for follower replicas. It is
	// clamped to at least CheckpointEvery so a follower that bootstraps
	// from the latest checkpoint always starts inside the journal horizon.
	// Zero disables journaling (the feed endpoints answer 404).
	JournalDepth int
	// EvolutionDepth, when positive, enables the temporal evolution tier:
	// after every published snapshot the service diffs its community set
	// against the previous epoch's (stable Jaccard matching with
	// deterministic tie-breaks and content-derived lineage IDs), retains
	// the last EvolutionDepth epochs of classified transition events and
	// historical snapshots, and serves them as GET /events,
	// GET /community/{id}/history and GET /communities?epoch=E. Zero
	// disables the tier (the evolution routes answer 404).
	EvolutionDepth int
	// EvolutionState, when non-nil, resumes the evolution tracker from a
	// serialized baseline (GET /evolution/state) captured at exactly
	// BaseEpoch — how a follower adopts its writer's lineage assignments.
	// When nil and CheckpointPath is set, the checkpoint's .evolution
	// sidecar is loaded instead (writer restart); a missing or mismatched
	// sidecar rebases lineages fresh.
	EvolutionState []byte
	// Obs, when non-nil, registers the service's metric families in the
	// registry (latency histograms on the batch path, read-through
	// counters over Stats) and serves it at GET /metrics. Nil disables
	// instrumentation entirely — the uninstrumented hot path is unchanged.
	Obs *obs.Registry
	// Trace, when non-nil, records one pipeline trace per flushed batch —
	// a span tree covering coalesce, Update, publish, journal and
	// checkpoint — into the ring, served at GET /debug/batches.
	Trace *obs.TraceRing
	// Logger, when non-nil, receives structured operational events
	// (startup, flush and checkpoint failures, shutdown). Nil discards.
	Logger *slog.Logger
}

func (o Options) withDefaults() Options {
	if o.QueueCapacity <= 0 {
		o.QueueCapacity = 4096
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 512
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 100 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 16
	}
	if o.JournalDepth > 0 && o.JournalDepth < o.CheckpointEvery {
		o.JournalDepth = o.CheckpointEvery
	}
	return o
}

// ErrClosed is returned by Submit, Drain, and the HTTP handler after the
// service has been closed.
var ErrClosed = errors.New("stream: service is closed")

// Stats is a point-in-time reading of the service's operational counters,
// the yardstick the ROADMAP uses for update-path optimizations.
type Stats struct {
	Epoch         uint64 `json:"epoch"`          // batches applied so far
	Vertices      int    `json:"vertices"`       // current snapshot's graph
	Edges         int    `json:"edges"`          //
	QueueDepth    int    `json:"queue_depth"`    // edits waiting in the ingest queue
	QueueCapacity int    `json:"queue_capacity"` //

	SubmittedEdits uint64 `json:"submitted_edits"` // accepted by Submit
	AppliedEdits   uint64 `json:"applied_edits"`   // survived coalescing, reached Update
	CoalescedEdits uint64 `json:"coalesced_edits"` // absorbed by canonicalization
	Batches        uint64 `json:"batches"`         // Update calls
	Checkpoints    uint64 `json:"checkpoints"`     // checkpoint files written
	Queries        uint64 `json:"queries"`         // Snapshot loads
	// FlushErrors counts flushes that failed (detector update or checkpoint
	// write) — including the ones on the ticker and MaxBatch paths, which
	// have no caller to return an error to. A nonzero count with a healthy
	// LastError means an earlier transient checkpoint failure; a growing
	// count means flushes keep failing.
	FlushErrors uint64 `json:"flush_errors"`

	LastBatchEdits    int   `json:"last_batch_edits"`
	LastUpdateMicros  int64 `json:"last_update_micros"`
	TotalUpdateMicros int64 `json:"total_update_micros"`

	// Copy-on-write publication counters: how long the last snapshot
	// publish took, how many shards it recloned (versus sharing with the
	// previous epoch), the cumulative reclone count, and how many shards
	// cover the current snapshot — together the yardstick for the
	// publication path (a small batch should republish a handful of
	// shards, not SnapshotShards of them).
	LastPublishMicros     int64  `json:"last_publish_micros"`
	TotalPublishMicros    int64  `json:"total_publish_micros"`
	ShardsRepublished     uint64 `json:"shards_republished"`
	LastShardsRepublished int    `json:"last_shards_republished"`
	SnapshotShards        int    `json:"snapshot_shards"`

	// Cumulative detector work across all batches (core.UpdateStats).
	Inserted uint64 `json:"inserted"`
	Deleted  uint64 `json:"deleted"`
	Repicked uint64 `json:"repicked"`
	Touched  uint64 `json:"touched"`
	Changed  uint64 `json:"changed"`

	// Sparse correction-schedule counters (core.UpdateStats.LevelsSkipped /
	// RoundsRun): cumulative idle levels collapsed to zero rounds, the
	// correction rounds actually run, and the last batch's share of each —
	// together with last_update_micros, the yardstick for the Update-path
	// ingest rate.
	LevelsSkipped     uint64 `json:"levels_skipped"`
	RoundsRun         uint64 `json:"rounds_run"`
	LastLevelsSkipped int    `json:"last_levels_skipped"`
	LastRoundsRun     int    `json:"last_rounds_run"`

	// Temporal evolution diff latency (EvolutionDepth > 0): the wall time
	// the last batch spent diffing the published snapshot's communities
	// against the previous epoch's, and the cumulative total — the
	// yardstick for the "<10% of steady-state publish latency" budget.
	// Omitted as zero when the tier is off.
	LastEvolutionMicros  int64 `json:"last_evolution_micros,omitempty"`
	TotalEvolutionMicros int64 `json:"total_evolution_micros,omitempty"`

	// Cumulative BSP engine wire traffic (cluster.Stats, including the
	// initial propagation), present when the detector runs on the cluster
	// engine (Workers > 1) and implements EngineStatsProvider; omitted as
	// zero for sequential detectors.
	EngineRounds   int64 `json:"engine_rounds,omitempty"`
	EngineMessages int64 `json:"engine_messages,omitempty"`
	EngineBytes    int64 `json:"engine_bytes,omitempty"`

	// StartTime is when the service started; UptimeSeconds is how long
	// ago that was as of this reading.
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`

	LastError string `json:"last_error,omitempty"`
}

// Service is a running detection service. Create one with New; always
// Close it.
type Service struct {
	det  Detector
	opts Options

	in   chan graph.Edit
	ctl  chan chan error // Drain requests
	quit chan struct{}   // closed by Close
	done chan struct{}   // closed when the maintenance goroutine exits

	// Observability: met is nil when Options.Obs is unset (the individual
	// obs types are additionally nil-safe); trace is nil when tracing is
	// off; log always points at a logger (a discarding one by default);
	// engine is the detector's EngineStatsProvider view, nil when absent.
	met    *streamMetrics
	trace  *obs.TraceRing
	log    *slog.Logger
	start  time.Time
	engine EngineStatsProvider

	// Maintenance-goroutine-private batch bookkeeping: when the pending
	// batch's first edit arrived, how much time coalescing it has cost,
	// and the previous engine wire reading (for per-batch trace deltas).
	pendSince    time.Time
	pendCoalesce time.Duration
	prevEng      [3]int64

	closeOnce sync.Once
	closeErr  error

	snap atomic.Pointer[Snapshot]

	// Hot-path counters, touched by producer/reader goroutines.
	submitted atomic.Uint64
	queries   atomic.Uint64
	coalesced atomic.Uint64

	// sendMu makes Submit-versus-Close deterministic: Submit enqueues
	// under the read lock, Close flips closed under the write lock before
	// the maintenance goroutine's final drain — so an edit a nil-returning
	// Submit accepted is always applied, never stranded in the queue.
	sendMu sync.RWMutex
	closed bool

	// Remaining counters are written only by the maintenance goroutine,
	// under mu so Stats can read a consistent set.
	mu      sync.Mutex
	st      Stats
	lastErr error // detector failure (latching)
	ckptErr error // most recent checkpoint failure (cleared by success)
	failed  bool  // a detector Update failed; the service stops applying

	// Replication journal (JournalDepth > 0): the last JournalDepth applied
	// canonical batches plus an in-memory checkpoint, written only by the
	// maintenance goroutine and read by the feed/checkpoint HTTP handlers.
	// sinceMemCkpt is maintenance-goroutine-private. evoCkptData is the
	// serialized evolution baseline captured at ckptEpoch (nil without the
	// evolution tier), guarded by jmu so GET /checkpoint and
	// GET /evolution/state always serve images of one epoch.
	jmu          sync.RWMutex
	journal      []feedBatch
	journalEpoch uint64 // epoch of the newest journaled batch (BaseEpoch when empty)
	ckptData     []byte // serialized detector at ckptEpoch
	ckptEpoch    uint64
	evoCkptData  []byte
	sinceMemCkpt int

	// Temporal evolution tier (EvolutionDepth > 0); nil when disabled.
	evo *evoTier
}

// feedBatch is one journaled canonical batch: the edits that advanced the
// detector from epoch-1 to epoch. The edits slice is the coalescer's own
// freshly allocated flush output and is never mutated after journaling.
type feedBatch struct {
	epoch uint64
	edits []graph.Edit
}

// New starts a service over det. The detector must not be used by the
// caller while the service is running — the service owns its mutation and
// its reads (queries go through snapshots instead).
func New(det Detector, opts Options) (*Service, error) {
	if det == nil {
		return nil, fmt.Errorf("stream: nil detector")
	}
	opts = opts.withDefaults()
	s := &Service{
		det:   det,
		opts:  opts,
		in:    make(chan graph.Edit, opts.QueueCapacity),
		ctl:   make(chan chan error),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
		trace: opts.Trace,
		log:   opts.Logger,
		start: time.Now(),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if p, ok := det.(EngineStatsProvider); ok {
		if r, m, by, on := p.EngineStats(); on {
			s.engine = p
			// Baseline for per-batch deltas; the cumulative totals in
			// Stats still include the initial propagation.
			s.prevEng = [3]int64{r, m, by}
		}
	}
	s.met = newStreamMetrics(opts.Obs, s)
	if opts.CheckpointPath != "" {
		// A crash between CreateTemp and Rename in writeCheckpoint leaves
		// a <base>.tmp* orphan behind; sweep them before we start writing
		// our own.
		sweepCheckpointTemps(opts.CheckpointPath)
	}
	// Epoch BaseEpoch (default 0): the detector's state as handed in, so
	// queries are served from the first instant. Snapshots share one pool
	// of extraction scratches for the service's lifetime, so the per-vertex
	// tables are reused between epochs instead of reallocated per
	// extraction.
	sn0 := newSnapshot(opts.BaseEpoch, det, opts.Extraction, core.UpdateStats{})
	sn0.scratch = &sync.Pool{New: func() any { return new(postprocess.ExtractScratch) }}
	s.snap.Store(sn0)
	s.st.Epoch = sn0.Epoch()
	s.st.Vertices = sn0.NumVertices()
	s.st.Edges = sn0.NumEdges()
	s.st.SnapshotShards = sn0.NumShards()
	if opts.EvolutionDepth > 0 {
		if err := s.initEvolution(sn0); err != nil {
			return nil, err
		}
	}
	if opts.JournalDepth > 0 {
		// Followers bootstrap from the in-memory checkpoint, so it must
		// exist before the first feed request can arrive.
		s.journalEpoch = opts.BaseEpoch
		if err := s.refreshMemCheckpoint(opts.BaseEpoch); err != nil {
			return nil, fmt.Errorf("stream: initial journal checkpoint: %w", err)
		}
	}
	if s.engine != nil {
		// Seed the cumulative engine counters so /stats shows the initial
		// propagation's traffic before the first batch lands.
		s.st.EngineRounds = s.prevEng[0]
		s.st.EngineMessages = s.prevEng[1]
		s.st.EngineBytes = s.prevEng[2]
	}
	s.log.Info("stream: service started",
		"epoch", sn0.Epoch(),
		"vertices", sn0.NumVertices(),
		"edges", sn0.NumEdges(),
		"queue_capacity", opts.QueueCapacity,
		"max_batch", opts.MaxBatch,
		"flush_interval", opts.FlushInterval,
		"checkpoint_path", opts.CheckpointPath,
		"journal_depth", opts.JournalDepth)
	go s.loop()
	return s, nil
}

// refreshMemCheckpoint serializes the detector (currently at the given
// epoch) into the in-memory checkpoint the feed tier bootstraps from.
// Called only from New and the maintenance goroutine.
func (s *Service) refreshMemCheckpoint(epoch uint64) error {
	var buf bytes.Buffer
	if err := s.det.Save(&buf); err != nil {
		return err
	}
	// Capture the evolution baseline in the same refresh so the two
	// bootstrap images (GET /checkpoint, GET /evolution/state) always
	// share an epoch; nil when the tier is off or latched.
	var evoData []byte
	if s.evo != nil {
		if data, err := s.evo.saveState(); err == nil {
			evoData = data
		}
	}
	s.jmu.Lock()
	s.ckptData = buf.Bytes()
	s.ckptEpoch = epoch
	s.evoCkptData = evoData
	s.jmu.Unlock()
	return nil
}

// sweepCheckpointTemps removes stale temporary checkpoint files (the
// <base>.tmp* pattern writeCheckpoint hands os.CreateTemp) left in the
// checkpoint directory by an earlier crash mid-write. Best effort: a
// sweep failure only means the orphan survives until the next start.
func sweepCheckpointTemps(path string) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), base+".tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

// Submit enqueues edits for application. It blocks while the ingest queue
// is full (backpressure) and returns ErrClosed — wrapped with how many of
// the edits were accepted — once the service is closed. After a detector
// failure the service latches: Submit still accepts, but batches are no
// longer applied and Drain reports the failure.
func (s *Service) Submit(edits ...graph.Edit) error {
	for i, e := range edits {
		s.sendMu.RLock()
		if s.closed {
			s.sendMu.RUnlock()
			return fmt.Errorf("%w (%d of %d edits accepted)", ErrClosed, i, len(edits))
		}
		// The send may block on a full queue (backpressure). Holding the
		// read lock here is safe: Close cannot take the write lock — and
		// therefore cannot stop the maintenance loop that is draining
		// this queue — until the send completes.
		s.in <- e
		s.submitted.Add(1)
		s.sendMu.RUnlock()
	}
	return nil
}

// Snapshot returns the current immutable snapshot. The caller may hold it
// for any length of time; it never changes and never blocks maintenance.
func (s *Service) Snapshot() *Snapshot {
	s.queries.Add(1)
	return s.snap.Load()
}

// Drain flushes every edit enqueued before the call and returns once the
// resulting batch has been applied and published (read-your-writes for a
// producer that has stopped submitting). It returns the flush error, or
// ErrClosed if the service is closed before the drain completes.
func (s *Service) Drain() error {
	reply := make(chan error, 1)
	select {
	case s.ctl <- reply:
	case <-s.done:
		return s.drainErr()
	}
	select {
	case err := <-reply:
		return err
	case <-s.done:
		return s.drainErr()
	}
}

func (s *Service) drainErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastErr != nil {
		return s.lastErr
	}
	if s.ckptErr != nil {
		return s.ckptErr
	}
	return ErrClosed
}

// checkpointFailure returns the most recent checkpoint failure, if any
// (cleared by the next successful checkpoint).
func (s *Service) checkpointFailure() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckptErr
}

// failureErr returns the latched detector failure, if any.
func (s *Service) failureErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed {
		return s.lastErr
	}
	return nil
}

// Stats returns the service's operational counters. The maintenance-
// goroutine counters — Epoch included — are read in one critical
// section, so a reading is never torn: Epoch always equals Batches, even
// while a flush is publishing (the flush records the new epoch and bumps
// the batch counters under the same lock).
func (s *Service) Stats() Stats {
	s.mu.Lock()
	st := s.st
	lastErr := s.lastErr
	if lastErr == nil {
		lastErr = s.ckptErr
	}
	s.mu.Unlock()
	st.SubmittedEdits = s.submitted.Load()
	st.CoalescedEdits = s.coalesced.Load()
	st.Queries = s.queries.Load()
	st.QueueDepth = len(s.in)
	st.QueueCapacity = s.opts.QueueCapacity
	st.StartTime = s.start
	st.UptimeSeconds = time.Since(s.start).Seconds()
	if lastErr != nil {
		st.LastError = lastErr.Error()
	}
	return st
}

// Close drains the queue, applies the final batch, writes a final
// checkpoint (when configured), and stops the maintenance goroutine. It is
// idempotent and safe to call concurrently; every call returns the same
// error. Queries keep working after Close — the last snapshot remains
// served — but Submit and Drain fail.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		// Flip closed before signalling the loop: once the write lock is
		// held, every in-flight Submit has finished its enqueue and every
		// later Submit fails fast, so the loop's final drain sees the
		// complete accepted stream.
		s.sendMu.Lock()
		s.closed = true
		s.sendMu.Unlock()
		close(s.quit)
		<-s.done
		s.mu.Lock()
		s.closeErr = s.lastErr
		if s.closeErr == nil {
			s.closeErr = s.ckptErr
		}
		batches := s.st.Batches
		epoch := s.st.Epoch
		s.mu.Unlock()
		s.log.Info("stream: service closed",
			"epoch", epoch, "batches", batches, "error", s.closeErr)
	})
	return s.closeErr
}

// loop is the maintenance goroutine: the only code that touches the
// detector after New returns.
func (s *Service) loop() {
	defer close(s.done)
	co := graph.NewCoalescer(s.det.Graph())
	tick := time.NewTicker(s.opts.FlushInterval)
	defer tick.Stop()
	sinceCkpt := 0
	for {
		select {
		case e := <-s.in:
			s.ingest(co, e)
			if co.Len() >= s.opts.MaxBatch {
				s.flush(co, &sinceCkpt)
			}
		case <-tick.C:
			s.flush(co, &sinceCkpt)
		case reply := <-s.ctl:
			err := s.drainQueue(co, &sinceCkpt)
			if ferr := s.flush(co, &sinceCkpt); err == nil {
				err = ferr
			}
			reply <- err
		case <-s.quit:
			s.drainQueue(co, &sinceCkpt)
			s.flush(co, &sinceCkpt)
			if s.opts.CheckpointPath != "" && !s.isFailed() {
				s.writeCheckpoint()
			}
			return
		}
	}
}

// ingest folds one edit into the pending batch, metering how many
// submitted edits canonicalization absorbs (a cancellation absorbs both
// the pending edit and this one). When instrumented it also stamps the
// pending batch's first-arrival time (for the queue-wait histogram) and
// accumulates the coalescing cost (for the trace's coalesce span).
func (s *Service) ingest(co *graph.Coalescer, e graph.Edit) {
	if s.met != nil || s.trace != nil {
		if s.pendSince.IsZero() {
			s.pendSince = time.Now()
		}
		t0 := time.Now()
		r := co.Add(e)
		s.pendCoalesce += time.Since(t0)
		switch r {
		case 0:
			s.coalesced.Add(1)
		case -1:
			s.coalesced.Add(2)
		}
		return
	}
	switch co.Add(e) {
	case 0:
		s.coalesced.Add(1)
	case -1:
		s.coalesced.Add(2)
	}
}

// drainQueue moves everything currently buffered in the ingest queue into
// the coalescer without blocking, and returns the first flush error it
// hits. MaxBatch stays an invariant here too — a drain of a deep queue
// applies several MaxBatch-sized batches rather than one giant one, so
// batch boundaries do not depend on whether edits were ingested one by
// one or found buffered.
func (s *Service) drainQueue(co *graph.Coalescer, sinceCkpt *int) error {
	var first error
	for {
		select {
		case e := <-s.in:
			s.ingest(co, e)
			if co.Len() >= s.opts.MaxBatch {
				if err := s.flush(co, sinceCkpt); err != nil && first == nil {
					first = err
				}
			}
		default:
			return first
		}
	}
}

func (s *Service) isFailed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failed
}

// flush applies the pending canonical batch (if any) through the detector,
// builds the next snapshot, and publishes it. After a detector failure the
// service latches: the stale-but-consistent snapshot keeps serving, and
// further flushes are dropped.
func (s *Service) flush(co *graph.Coalescer, sinceCkpt *int) error {
	if err := s.failureErr(); err != nil {
		co.Flush() // discard: a latched detector will never apply them
		return err
	}
	batch := co.Flush()
	// The pending-batch stamps belong to the batch being flushed; reset
	// them before the next one starts accumulating (also when the batch
	// coalesced away to nothing).
	pendWait, coalesceDur := time.Duration(0), s.pendCoalesce
	if !s.pendSince.IsZero() {
		pendWait = time.Since(s.pendSince)
	}
	s.pendSince, s.pendCoalesce = time.Time{}, 0
	if len(batch) == 0 {
		return nil
	}
	flushStart := time.Now()
	t0 := flushStart
	stats, err := s.det.Update(batch)
	if err != nil {
		s.mu.Lock()
		s.failed = true
		s.lastErr = fmt.Errorf("stream: detector update failed: %w", err)
		err = s.lastErr
		s.st.FlushErrors++
		s.mu.Unlock()
		s.log.Error("stream: detector update failed; service latched",
			"error", err, "batch_edits", len(batch))
		return err
	}
	dur := time.Since(t0)

	// Per-batch engine wire delta (distributed detectors only), for the
	// Update trace span; cumulative totals go to Stats below.
	var engCum, engDelta [3]int64
	if s.engine != nil {
		if r, m, by, ok := s.engine.EngineStats(); ok {
			engCum = [3]int64{r, m, by}
			engDelta = [3]int64{r - s.prevEng[0], m - s.prevEng[1], by - s.prevEng[2]}
			s.prevEng = engCum
		}
	}

	// Publish copy-on-write: reclone only the shards the batch dirtied,
	// share the rest with the previous snapshot. A detector that reports
	// no dirty set (nil Dirty on a batch that did work) gets the safe
	// full clone.
	prev := s.snap.Load()
	p0 := time.Now()
	var next *Snapshot
	if stats.Dirty == nil && stats.Inserted+stats.Deleted+stats.Repicked+stats.Changed > 0 {
		next = newSnapshot(prev.Epoch()+1, s.det, s.opts.Extraction, stats)
		next.scratch = prev.scratch
	} else {
		next = nextSnapshot(prev, s.det, stats.Dirty, stats)
	}
	pub := time.Since(p0)
	s.snap.Store(next)

	// Temporal evolution: diff the just-published snapshot's communities
	// against the previous epoch's, synchronously, so the event journal
	// stays epoch-contiguous and the checkpoint capture below sees the
	// tracker at exactly this epoch.
	var evoDur time.Duration
	if s.evo != nil {
		evoDur = s.advanceEvolution(next)
	}

	s.mu.Lock()
	// The epoch is recorded under the same critical section as the batch
	// counters so Stats never reports a torn Epoch/Batches pair.
	s.st.Epoch = next.Epoch()
	s.st.Vertices = next.NumVertices()
	s.st.Edges = next.NumEdges()
	s.st.SnapshotShards = next.NumShards()
	s.st.LastPublishMicros = pub.Microseconds()
	s.st.TotalPublishMicros += pub.Microseconds()
	s.st.ShardsRepublished += uint64(next.ShardsRepublished())
	s.st.LastShardsRepublished = next.ShardsRepublished()
	s.st.AppliedEdits += uint64(len(batch))
	s.st.Batches++
	s.st.LastBatchEdits = len(batch)
	s.st.LastUpdateMicros = dur.Microseconds()
	s.st.TotalUpdateMicros += dur.Microseconds()
	s.st.Inserted += uint64(stats.Inserted)
	s.st.Deleted += uint64(stats.Deleted)
	s.st.Repicked += uint64(stats.Repicked)
	s.st.Touched += uint64(stats.Touched)
	s.st.Changed += uint64(stats.Changed)
	s.st.LevelsSkipped += uint64(stats.LevelsSkipped)
	s.st.RoundsRun += uint64(stats.RoundsRun)
	s.st.LastLevelsSkipped = stats.LevelsSkipped
	s.st.LastRoundsRun = stats.RoundsRun
	if s.evo != nil {
		s.st.LastEvolutionMicros = evoDur.Microseconds()
		s.st.TotalEvolutionMicros += evoDur.Microseconds()
	}
	if s.engine != nil {
		s.st.EngineRounds = engCum[0]
		s.st.EngineMessages = engCum[1]
		s.st.EngineBytes = engCum[2]
	}
	s.mu.Unlock()

	var journalDur time.Duration
	var flushErr error
	if s.opts.JournalDepth > 0 {
		j0 := time.Now()
		// The coalescer's Flush returned a fresh canonical slice, so the
		// journal can retain it without copying. Trim to the horizon.
		s.jmu.Lock()
		s.journal = append(s.journal, feedBatch{epoch: next.Epoch(), edits: batch})
		if over := len(s.journal) - s.opts.JournalDepth; over > 0 {
			s.journal = s.journal[over:]
		}
		s.journalEpoch = next.Epoch()
		s.jmu.Unlock()
		// Refresh the in-memory checkpoint every CheckpointEvery batches so
		// its epoch never trails the journal head by more than
		// CheckpointEvery — which JournalDepth is clamped to cover, keeping
		// checkpoint bootstrap inside the feed horizon.
		if s.sinceMemCkpt++; s.sinceMemCkpt >= s.opts.CheckpointEvery {
			s.sinceMemCkpt = 0
			if err := s.refreshMemCheckpoint(next.Epoch()); err != nil {
				s.mu.Lock()
				s.st.FlushErrors++
				s.mu.Unlock()
				flushErr = s.checkpointErr(err)
			}
		}
		journalDur = time.Since(j0)
	}

	var ckptDur time.Duration
	if flushErr == nil && s.opts.CheckpointPath != "" {
		if *sinceCkpt++; *sinceCkpt >= s.opts.CheckpointEvery {
			*sinceCkpt = 0
			c0 := time.Now()
			err := s.writeCheckpoint()
			ckptDur = time.Since(c0)
			if err != nil {
				s.mu.Lock()
				s.st.FlushErrors++
				s.mu.Unlock()
				flushErr = err
			}
		}
	}

	if s.met != nil {
		s.met.queueWaitSeconds.Observe(pendWait.Seconds())
		s.met.updateSeconds.Observe(dur.Seconds())
		s.met.publishSeconds.Observe(pub.Seconds())
		s.met.batchEdits.Observe(float64(len(batch)))
		if ckptDur > 0 {
			s.met.checkpointSeconds.Observe(ckptDur.Seconds())
		}
	}
	if s.trace != nil {
		s.trace.Record(s.batchTrace(next, flushStart, len(batch), coalesceDur,
			dur, pub, journalDur, ckptDur, evoDur, stats, engDelta))
	}
	return flushErr
}

// batchTrace assembles the pipeline span tree of one flushed batch. The
// root's TotalMicros covers the coalescing the batch accumulated while
// pending plus the flush wall time; the spans are the individually timed
// stages, so they sum to the total up to the untimed residue (stats
// bookkeeping, snapshot pointer swap).
func (s *Service) batchTrace(next *Snapshot, flushStart time.Time, edits int,
	coalesce, update, publish, journal, ckpt, evo time.Duration,
	stats core.UpdateStats, engDelta [3]int64) obs.BatchTrace {
	updAttrs := map[string]int64{
		"rounds_run":     int64(stats.RoundsRun),
		"levels_skipped": int64(stats.LevelsSkipped),
		"touched":        int64(stats.Touched),
		"dirty_vertices": int64(len(stats.Dirty)),
	}
	if s.engine != nil {
		updAttrs["engine_rounds"] = engDelta[0]
		updAttrs["engine_messages"] = engDelta[1]
		updAttrs["engine_wire_bytes"] = engDelta[2]
	}
	spans := []obs.Span{
		{Name: "coalesce", Micros: coalesce.Microseconds()},
		{Name: "update", Micros: update.Microseconds(), Attrs: updAttrs},
		{Name: "publish", Micros: publish.Microseconds(), Attrs: map[string]int64{
			"shards_republished": int64(next.ShardsRepublished()),
			"snapshot_shards":    int64(next.NumShards()),
		}},
	}
	if journal > 0 {
		spans = append(spans, obs.Span{Name: "journal", Micros: journal.Microseconds()})
	}
	if ckpt > 0 {
		spans = append(spans, obs.Span{Name: "checkpoint", Micros: ckpt.Microseconds()})
	}
	if evo > 0 {
		spans = append(spans, obs.Span{Name: "evolution", Micros: evo.Microseconds()})
	}
	return obs.BatchTrace{
		Epoch:       next.Epoch(),
		Start:       flushStart,
		Edits:       edits,
		TotalMicros: (coalesce + time.Since(flushStart)).Microseconds(),
		Spans:       spans,
	}
}

// writeCheckpoint saves the detector to CheckpointPath atomically AND
// durably: the state is written to a temporary file in the same directory
// (so the rename never crosses filesystems), fsynced, renamed over the
// target, and the directory is fsynced so the rename itself survives a
// crash. Without the first fsync a power loss after the rename can publish
// a truncated checkpoint — the rename only orders against the data if the
// data reached the disk first; without the second the old directory entry
// may come back, which is merely stale, never corrupt.
func (s *Service) writeCheckpoint() error {
	dir, base := filepath.Split(s.opts.CheckpointPath)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return s.checkpointErr(err)
	}
	if err := s.det.Save(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return s.checkpointErr(err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return s.checkpointErr(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return s.checkpointErr(err)
	}
	if err := os.Rename(tmp.Name(), s.opts.CheckpointPath); err != nil {
		os.Remove(tmp.Name())
		return s.checkpointErr(err)
	}
	if err := syncDir(dir); err != nil {
		return s.checkpointErr(err)
	}
	// Persist the evolution baseline beside the detector checkpoint (same
	// epoch: both are written by the maintenance goroutine after the
	// epoch's diff), so a restarted writer resumes lineage assignment.
	if s.evo != nil {
		if err := s.writeEvolutionSidecar(); err != nil {
			return s.checkpointErr(fmt.Errorf("evolution sidecar: %w", err))
		}
	}
	s.mu.Lock()
	s.st.Checkpoints++
	s.ckptErr = nil // a good checkpoint supersedes an earlier transient failure
	s.mu.Unlock()
	return nil
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// checkpointErr records a checkpoint failure without latching the service:
// detection state is still healthy, only durability suffered. The next
// successful checkpoint clears it.
func (s *Service) checkpointErr(err error) error {
	err = fmt.Errorf("stream: checkpoint: %w", err)
	s.mu.Lock()
	s.ckptErr = err
	s.mu.Unlock()
	s.log.Warn("stream: checkpoint failed (service still healthy)", "error", err)
	return err
}
