package stream

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/metrics"
	"rslpa/internal/obs"
	"rslpa/internal/postprocess"
)

// BenchmarkStreamServe measures the serving workload end to end: four
// producers push an edit stream through the bounded queue while four
// readers issue snapshot queries, and the run reports ingest throughput
// plus the p50/p99 query latency observed *during* sustained updates —
// the CI smoke emits these as BENCH_stream.json.
func BenchmarkStreamServe(b *testing.B) {
	const (
		producers = 4
		readers   = 4
		nVertices = 500
		editCount = 4000
	)
	params := lfr.Default(nVertices)
	params.AvgDeg, params.MaxDeg = 10, 30
	gen, err := lfr.Generate(params)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		b.StopTimer() // per-iteration setup is not part of the serving cost
		st, err := core.Run(gen.Graph, core.Config{T: 50, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		svc, err := New(seqDet{st}, Options{MaxBatch: 256, FlushInterval: 5 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}

		// Pre-generate the stream so generation cost stays out of the run.
		evolving := gen.Graph.Clone()
		batches, err := dynamic.Stream(evolving, editCount/8, 8, 77)
		if err != nil {
			b.Fatal(err)
		}
		var edits []graph.Edit
		for _, batch := range batches {
			edits = append(edits, batch...)
		}

		var (
			wg        sync.WaitGroup
			stop      = make(chan struct{})
			latencies = make([][]time.Duration, readers)
		)
		for r := range readers {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				lat := make([]time.Duration, 0, 4096)
				v := uint32(r)
				for i := 0; ; i++ {
					select {
					case <-stop:
						latencies[r] = lat
						return
					default:
					}
					t0 := time.Now()
					sn := svc.Snapshot()
					sn.Labels(v % uint32(nVertices))
					if i%64 == 0 {
						sn.Membership(v % uint32(nVertices))
					}
					lat = append(lat, time.Since(t0))
					v += 7
				}
			}(r)
		}

		b.StartTimer()
		start := time.Now()
		var pwg sync.WaitGroup
		per := len(edits) / producers
		for p := range producers {
			lo, hi := p*per, (p+1)*per
			if p == producers-1 {
				hi = len(edits)
			}
			pwg.Add(1)
			go func(chunk []graph.Edit) {
				defer pwg.Done()
				for _, e := range chunk {
					svc.Submit(e)
				}
			}(edits[lo:hi])
		}
		pwg.Wait()
		if err := svc.Drain(); err != nil {
			b.Fatal(err)
		}
		ingest := time.Since(start)
		close(stop)
		wg.Wait()
		b.StopTimer()

		var all []time.Duration
		for _, lat := range latencies {
			all = append(all, lat...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		stats := svc.Stats()
		svc.Close()

		b.ReportMetric(float64(len(edits))/ingest.Seconds(), "ingest-edits/sec")
		if len(all) > 0 {
			b.ReportMetric(float64(metrics.Quantile(all, 0.50).Nanoseconds()), "p50-query-ns")
			b.ReportMetric(float64(metrics.Quantile(all, 0.99).Nanoseconds()), "p99-query-ns")
			b.ReportMetric(float64(len(all)), "queries")
		}
		b.ReportMetric(float64(stats.Batches), "batches")
	}
}

// BenchmarkObsOverhead pins the cost of the observability layer on the
// batch path: the same Submit+Drain workload through an instrumented
// service (metrics registry + trace ring, the `rslpa serve` default) and
// through a bare one. The two sub-benchmark rows land in BENCH_obs.json;
// the instrumented ns/op must stay within a few percent of noop — the
// hot path adds a handful of atomics and one trace Record per batch,
// never per edit.
func BenchmarkObsOverhead(b *testing.B) {
	run := func(b *testing.B, opts Options) {
		st := ringState(b, 10_000, 3)
		svc, err := New(seqDet{st}, opts)
		if err != nil {
			b.Fatal(err)
		}
		defer svc.Close()
		// A small apply batch and its inverse: alternating keeps the graph
		// (and therefore per-iteration work) in steady state.
		apply := []graph.Edit{
			{Op: graph.Insert, U: 10, V: 5010},
			{Op: graph.Insert, U: 2500, V: 7510},
		}
		invert := []graph.Edit{
			{Op: graph.Delete, U: 10, V: 5010},
			{Op: graph.Delete, U: 2500, V: 7510},
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := range b.N {
			batch := apply
			if i%2 == 1 {
				batch = invert
			}
			if err := svc.Submit(batch...); err != nil {
				b.Fatal(err)
			}
			if err := svc.Drain(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(svc.Stats().Batches), "batches")
	}
	b.Run("instrumented", func(b *testing.B) {
		run(b, Options{
			MaxBatch: 256, FlushInterval: time.Hour,
			Obs:   obs.NewRegistry(),
			Trace: obs.NewTraceRing(0, 0),
		})
	})
	b.Run("noop", func(b *testing.B) {
		run(b, Options{MaxBatch: 256, FlushInterval: time.Hour})
	})
}

// BenchmarkSnapshotPublish measures the copy-on-write publication path in
// isolation across graph size × batch size: apply one canonical batch,
// then time republishing the resulting snapshot from its predecessor.
// Reported metrics pin the tentpole economics — shards republished versus
// total shards, and the cost of the full clone the COW path replaces —
// and the CI smoke emits them as BENCH_snapshot.json.
func BenchmarkSnapshotPublish(b *testing.B) {
	for _, n := range []uint32{10_000, 100_000} {
		st := ringState(b, n, 3)
		for _, batchSize := range []int{2, 64, 512} {
			b.Run(fmt.Sprintf("n=%d/batch=%d", n, batchSize), func(b *testing.B) {
				// One batch of inserts spread over the ring: endpoints
				// land in batchSize distinct regions, the worst case for
				// a given batch size.
				work := st.Clone()
				var edits []graph.Edit
				for i := 0; i < batchSize; i++ {
					u := uint32(i) * (n / uint32(batchSize))
					edits = append(edits, graph.Edit{Op: graph.Insert, U: u, V: (u + n/2) % n})
				}
				wdet := seqDet{work}
				prev := newSnapshot(0, wdet, postprocess.Config{}, core.UpdateStats{})
				stats := work.Update(graph.Canonicalize(work.Graph(), edits))

				var sn *Snapshot
				b.ReportAllocs()
				b.ResetTimer()
				for range b.N {
					sn = nextSnapshot(prev, wdet, stats.Dirty, stats)
				}
				b.StopTimer()
				f0 := time.Now()
				newSnapshot(sn.Epoch(), wdet, postprocess.Config{}, stats)
				b.ReportMetric(float64(time.Since(f0).Microseconds()), "fullclone-us")
				b.ReportMetric(float64(sn.ShardsRepublished()), "shards-republished")
				b.ReportMetric(float64(sn.NumShards()), "shards-total")
			})
		}
	}
}
