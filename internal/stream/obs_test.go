package stream

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/obs"
)

// engDet wraps seqDet with a fake BSP engine stats feed, exercising the
// EngineStatsProvider plumbing without a cluster.
type engDet struct {
	seqDet
	rounds, messages, bytes int64
}

func (d *engDet) Update(b []graph.Edit) (core.UpdateStats, error) {
	d.rounds += 2
	d.messages += int64(len(b)) * 10
	d.bytes += int64(len(b)) * 80
	return d.seqDet.Update(b)
}

func (d *engDet) EngineStats() (rounds, messages, bytes int64, ok bool) {
	return d.rounds, d.messages, d.bytes, true
}

// scrapeFamilies fetches and lints the service's /metrics exposition.
func scrapeFamilies(t *testing.T, url string) map[string]*obs.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := obs.ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	return fams
}

// The writer's /metrics exposition lints clean, serves exactly the golden
// family set, and its counters are monotone across scrapes.
func TestMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestService(t, Options{FlushInterval: time.Hour, Obs: reg})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	first := scrapeFamilies(t, srv.URL)

	// Golden family set: catches silent drops or renames of exported
	// series, which dashboards depend on.
	names := make([]string, 0, len(first))
	for name := range first {
		names = append(names, name)
	}
	sort.Strings(names)
	got := strings.Join(names, "\n") + "\n"
	goldenPath := filepath.Join("testdata", "metrics_families.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got != string(want) {
		t.Errorf("metric families diverge from %s:\ngot:\n%swant:\n%s", goldenPath, got, want)
	}

	if v := first["rslpa_stream_batches_total"].Samples["rslpa_stream_batches_total"]; v != 1 {
		t.Errorf("batches_total = %g, want 1", v)
	}
	if v := first["rslpa_stream_update_seconds"].Samples["rslpa_stream_update_seconds_count"]; v != 1 {
		t.Errorf("update_seconds_count = %g, want 1", v)
	}
	if v := first["rslpa_stream_epoch"].Samples["rslpa_stream_epoch"]; v != 1 {
		t.Errorf("epoch gauge = %g, want 1", v)
	}

	// Monotonicity across scrapes with traffic in between.
	if err := s.Submit(graph.Edit{Op: graph.Delete, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	second := scrapeFamilies(t, srv.URL)
	for name, f1 := range first {
		if f1.Type == "gauge" {
			continue
		}
		f2 := second[name]
		if f2 == nil {
			t.Errorf("family %q vanished on rescrape", name)
			continue
		}
		for key, v1 := range f1.Samples {
			if v2, ok := f2.Samples[key]; ok && v2 < v1 {
				t.Errorf("counter %s regressed: %g -> %g", key, v1, v2)
			}
		}
	}
}

// Read queries land in the query-latency histogram.
func TestQueryLatencyObserved(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newTestService(t, Options{FlushInterval: time.Hour, Obs: reg})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, path := range []string{"/communities", "/vertex/0"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	fams := scrapeFamilies(t, srv.URL)
	if v := fams["rslpa_stream_query_seconds"].Samples["rslpa_stream_query_seconds_count"]; v != 2 {
		t.Errorf("query_seconds_count = %g, want 2", v)
	}
}

// A distributed-mode detector's wire traffic surfaces as the engine
// families and in Stats.
func TestEngineStatsSurfaced(t *testing.T) {
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	det := &engDet{seqDet: seqDet{st}}
	reg := obs.NewRegistry()
	s, err := New(det, Options{FlushInterval: time.Hour, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	if stats.EngineRounds != det.rounds || stats.EngineMessages != det.messages || stats.EngineBytes != det.bytes {
		t.Errorf("engine stats = (%d, %d, %d), want (%d, %d, %d)",
			stats.EngineRounds, stats.EngineMessages, stats.EngineBytes,
			det.rounds, det.messages, det.bytes)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rslpa_engine_rounds_total", "rslpa_engine_messages_total", "rslpa_engine_wire_bytes_total"} {
		if fams[name] == nil {
			t.Errorf("engine family %q missing", name)
		}
	}
	if v := fams["rslpa_engine_rounds_total"].Samples["rslpa_engine_rounds_total"]; v != float64(det.rounds) {
		t.Errorf("engine_rounds_total = %g, want %d", v, det.rounds)
	}
}

// Each flushed batch records a span tree whose timed spans sum to the
// batch's total latency within the untimed-residue tolerance, and
// /debug/batches serves it.
func TestBatchTraceSpansSumToTotal(t *testing.T) {
	ring := obs.NewTraceRing(16, 4)
	dir := t.TempDir()
	s, _ := newTestService(t, Options{
		FlushInterval:   time.Hour,
		Trace:           ring,
		CheckpointPath:  filepath.Join(dir, "svc.ckpt"),
		CheckpointEvery: 1, // every batch: exercise the checkpoint span
		JournalDepth:    4, // and the journal span
	})
	for i := 0; i < 3; i++ {
		op := graph.Insert
		if i%2 == 1 {
			op = graph.Delete
		}
		if err := s.Submit(graph.Edit{Op: op, U: 0, V: 4}); err != nil {
			t.Fatal(err)
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ring.Recorded(); got != 3 {
		t.Fatalf("Recorded = %d, want 3", got)
	}
	for _, bt := range ring.Recent() {
		var sum int64
		seen := map[string]bool{}
		for _, sp := range bt.Spans {
			sum += sp.Micros
			seen[sp.Name] = true
		}
		for _, want := range []string{"coalesce", "update", "publish", "journal", "checkpoint"} {
			if !seen[want] {
				t.Errorf("epoch %d: span %q missing (have %v)", bt.Epoch, want, bt.Spans)
			}
		}
		if sum > bt.TotalMicros {
			t.Errorf("epoch %d: spans sum %dµs exceeds total %dµs", bt.Epoch, sum, bt.TotalMicros)
		}
		if residue := bt.TotalMicros - sum; residue > bt.TotalMicros/5+2000 {
			t.Errorf("epoch %d: untimed residue %dµs of %dµs total exceeds tolerance", bt.Epoch, residue, bt.TotalMicros)
		}
		if upd := bt.Spans[1]; upd.Name == "update" && upd.Attrs["rounds_run"] < 0 {
			t.Errorf("epoch %d: negative rounds_run attr", bt.Epoch)
		}
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/batches")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Recorded uint64           `json:"recorded"`
		Recent   []obs.BatchTrace `json:"recent"`
		Slowest  []obs.BatchTrace `json:"slowest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Recorded != 3 || len(body.Recent) != 3 || len(body.Slowest) != 3 {
		t.Fatalf("debug/batches = %d recorded, %d recent, %d slowest; want 3 each",
			body.Recorded, len(body.Recent), len(body.Slowest))
	}
}

// /version serves build identity; /stats carries start_time and uptime.
func TestVersionAndUptime(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var ver struct {
		GoVersion string `json:"go_version"`
	}
	err = json.NewDecoder(resp.Body).Decode(&ver)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ver.GoVersion == "" {
		t.Error("/version missing go_version")
	}

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.StartTime.IsZero() {
		t.Error("/stats start_time is zero")
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("/stats uptime_seconds = %g, want > 0", st.UptimeSeconds)
	}
}

// Uninstrumented services skip the metrics and trace routes entirely.
func TestObsRoutesAbsentWhenDisabled(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/batches"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("GET %s = %d without Obs/Trace, want 404", path, resp.StatusCode)
		}
	}
}

// Structured log events reach the configured handler.
func TestServiceLogsLifecycle(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, _ := newTestService(t, Options{FlushInterval: time.Hour, Logger: logger})
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	logs := buf.String()
	for _, want := range []string{"stream: service started", "stream: service closed"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q in:\n%s", want, logs)
		}
	}
}
