package stream

import (
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/evolution"
	"rslpa/internal/graph"
	"rslpa/internal/obs"
)

// Without EvolutionDepth every evolution route answers 404, mirroring the
// disabled feed.
func TestEvolutionRoutesDisabled(t *testing.T) {
	_, srv := newHTTPService(t)
	for _, path := range []string{
		"/events?from=0",
		"/community/1/history",
		"/evolution/state",
		"/communities?epoch=0",
	} {
		var out map[string]any
		if code := getJSON(t, srv.URL+path, &out); code != http.StatusNotFound {
			t.Errorf("GET %s = %d without EvolutionDepth, want 404", path, code)
		}
	}
}

func TestEventsJournalOverHTTP(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, EvolutionDepth: 8})
	applyBatches(t, s, 3, 10)

	var resp eventsResponse
	if code := getJSON(t, srv.URL+"/events?from=0", &resp); code != http.StatusOK {
		t.Fatalf("GET /events?from=0: %d", code)
	}
	if resp.WriterEpoch != 3 || resp.OldestEpoch != 0 {
		t.Fatalf("envelope = %+v, want writer_epoch 3, oldest_epoch 0", resp)
	}
	if len(resp.Events) == 0 {
		t.Fatal("no events after three epochs")
	}
	for _, ev := range resp.Events {
		if ev.Epoch < 1 || ev.Epoch > 3 {
			t.Errorf("event outside epoch range: %+v", ev)
		}
		if ev.Lineage == 0 {
			t.Errorf("event without lineage: %+v", ev)
		}
	}

	// Whole-epoch paging: max=1 serves exactly epoch 1's events, and the
	// cursor resumes from there.
	var page eventsResponse
	if code := getJSON(t, srv.URL+"/events?from=0&max=1", &page); code != http.StatusOK {
		t.Fatalf("GET /events?from=0&max=1: %d", code)
	}
	for _, ev := range page.Events {
		if ev.Epoch != 1 {
			t.Errorf("max=1 page leaked epoch %d", ev.Epoch)
		}
	}

	// Caught-up cursor: empty events array (never null), 200.
	var tail eventsResponse
	if code := getJSON(t, srv.URL+"/events?from=3", &tail); code != http.StatusOK {
		t.Fatalf("GET /events?from=3: %d", code)
	}
	if tail.Events == nil || len(tail.Events) != 0 {
		t.Errorf("caught-up events = %#v, want empty non-nil", tail.Events)
	}

	// Malformed cursors are 400.
	for _, q := range []string{"", "?from=x", "?from=1&max=0", "?from=1&max=-2"} {
		var out map[string]any
		if code := getJSON(t, srv.URL+"/events"+q, &out); code != http.StatusBadRequest {
			t.Errorf("GET /events%s = %d, want 400", q, code)
		}
	}
}

func TestEventsBehindHorizonGone(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, EvolutionDepth: 2})
	applyBatches(t, s, 5, 10)

	var out struct {
		Error       string `json:"error"`
		OldestEpoch uint64 `json:"oldest_epoch"`
		WriterEpoch uint64 `json:"writer_epoch"`
	}
	if code := getJSON(t, srv.URL+"/events?from=0", &out); code != http.StatusGone {
		t.Fatalf("GET /events?from=0 = %d, want 410", code)
	}
	if out.OldestEpoch != 3 || out.WriterEpoch != 5 {
		t.Fatalf("410 envelope = %+v, want oldest 3, writer 5", out)
	}
	// The advertised oldest cursor is servable.
	var ok eventsResponse
	if code := getJSON(t, srv.URL+"/events?from="+strconv.FormatUint(out.OldestEpoch, 10), &ok); code != http.StatusOK {
		t.Fatalf("GET /events?from=oldest = %d, want 200", code)
	}
}

func TestCommunityHistoryRoute(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, EvolutionDepth: 8})
	applyBatches(t, s, 2, 10)

	var resp eventsResponse
	if code := getJSON(t, srv.URL+"/events?from=0", &resp); code != http.StatusOK {
		t.Fatalf("GET /events: %d", code)
	}
	if len(resp.Events) == 0 {
		t.Fatal("no events")
	}
	id := resp.Events[0].Lineage
	var hist struct {
		Epoch   uint64            `json:"epoch"`
		Lineage uint64            `json:"lineage"`
		Born    uint64            `json:"born"`
		Alive   bool              `json:"alive"`
		Events  []evolution.Event `json:"events"`
	}
	if code := getJSON(t, srv.URL+"/community/"+strconv.FormatUint(id, 10)+"/history", &hist); code != http.StatusOK {
		t.Fatalf("GET /community/{id}/history: %d", code)
	}
	if hist.Lineage != id || hist.Epoch != 2 || len(hist.Events) == 0 {
		t.Fatalf("history = %+v", hist)
	}
	for _, ev := range hist.Events {
		if ev.Lineage != id {
			t.Errorf("history leaked foreign lineage event: %+v", ev)
		}
	}

	var out map[string]any
	if code := getJSON(t, srv.URL+"/community/999999/history", &out); code != http.StatusNotFound {
		t.Errorf("unknown lineage = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/community/xyz/history", &out); code != http.StatusBadRequest {
		t.Errorf("malformed lineage = %d, want 400", code)
	}
}

// /communities?epoch=E serves retained historical snapshots: inside the
// window 200, behind it 410 (like /feed and /events), ahead of it 404.
func TestCommunitiesEpochWindow(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, EvolutionDepth: 2})
	applyBatches(t, s, 4, 10)

	var cur struct {
		Epoch uint64 `json:"epoch"`
	}
	for _, epoch := range []uint64{2, 3, 4} {
		if code := getJSON(t, srv.URL+"/communities?epoch="+strconv.FormatUint(epoch, 10), &cur); code != http.StatusOK {
			t.Fatalf("GET /communities?epoch=%d = %d, want 200", epoch, code)
		}
		if cur.Epoch != epoch {
			t.Errorf("epoch %d served snapshot of epoch %d", epoch, cur.Epoch)
		}
	}
	var out map[string]any
	if code := getJSON(t, srv.URL+"/communities?epoch=1", &out); code != http.StatusGone {
		t.Errorf("behind window = %d, want 410", code)
	}
	if code := getJSON(t, srv.URL+"/communities?epoch=9", &out); code != http.StatusNotFound {
		t.Errorf("future epoch = %d, want 404", code)
	}
	if code := getJSON(t, srv.URL+"/communities?epoch=x", &out); code != http.StatusBadRequest {
		t.Errorf("malformed epoch = %d, want 400", code)
	}
	// Without ?epoch the route still serves the live snapshot.
	if code := getJSON(t, srv.URL+"/communities", &cur); code != http.StatusOK || cur.Epoch != 4 {
		t.Errorf("live /communities = %d (epoch %d), want 200 at epoch 4", code, cur.Epoch)
	}
	_ = s
}

// The evolution metric families register only when the tier is enabled
// (the golden family set of uninstrumented services is pinned elsewhere),
// and the event counter accounts every journaled event.
func TestEvolutionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	s, srv, _ := newFeedService(t, Options{FlushInterval: time.Hour, EvolutionDepth: 8, Obs: reg})
	applyBatches(t, s, 3, 10)

	fams := scrapeFamilies(t, srv.URL)
	for _, name := range []string{"rslpa_evolution_events_total", "rslpa_evolution_diff_seconds", "rslpa_evolution_lineages"} {
		if fams[name] == nil {
			t.Fatalf("family %q missing", name)
		}
	}
	var resp eventsResponse
	if code := getJSON(t, srv.URL+"/events?from=0", &resp); code != http.StatusOK {
		t.Fatal("GET /events failed")
	}
	var counted float64
	for _, v := range fams["rslpa_evolution_events_total"].Samples {
		counted += v
	}
	if counted != float64(len(resp.Events)) {
		t.Errorf("events_total sums to %g, journal holds %d", counted, len(resp.Events))
	}
	if v := fams["rslpa_evolution_diff_seconds"].Samples["rslpa_evolution_diff_seconds_count"]; v != 3 {
		t.Errorf("diff_seconds_count = %g, want 3", v)
	}
	if v := fams["rslpa_evolution_lineages"].Samples["rslpa_evolution_lineages"]; v < 1 {
		t.Errorf("lineages gauge = %g, want >= 1", v)
	}
}

// GET /evolution/state serves the tracker baseline at the in-memory
// checkpoint's epoch; the image restores into a tracker at that epoch.
func TestEvolutionStateEndpoint(t *testing.T) {
	s, srv, _ := newFeedService(t, Options{
		FlushInterval: time.Hour, JournalDepth: 4, CheckpointEvery: 1, EvolutionDepth: 8,
	})
	applyBatches(t, s, 2, 10)

	resp, err := http.Get(srv.URL + "/evolution/state")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /evolution/state = %d", resp.StatusCode)
	}
	epoch, err := strconv.ParseUint(resp.Header.Get(CheckpointEpochHeader), 10, 64)
	if err != nil {
		t.Fatalf("epoch header: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("state epoch = %d, want 2 (CheckpointEvery=1)", epoch)
	}
	data := make([]byte, 1<<20)
	n, _ := resp.Body.Read(data)
	tr := evolution.New(evolution.Config{Depth: 8})
	if err := tr.Restore(data[:n]); err != nil {
		t.Fatalf("state does not restore: %v", err)
	}
	if tr.Epoch() != epoch {
		t.Errorf("restored epoch %d, header %d", tr.Epoch(), epoch)
	}
	if tr.LiveLineages() == 0 {
		t.Error("restored state has no lineages")
	}
}

// Lineage IDs survive a writer restart: the durable checkpoint's
// .evolution sidecar restores the matcher baseline, so communities keep
// their pre-restart lineages instead of being reborn.
func TestLineageStableAcrossCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "svc.ckpt")
	opts := Options{
		FlushInterval: time.Hour, CheckpointPath: ckpt, CheckpointEvery: 1, EvolutionDepth: 8,
	}
	s1, _, _ := newFeedService(t, opts)
	applyBatches(t, s1, 2, 10)
	before := map[uint64]uint64{} // lineage -> born
	s1.evo.mu.RLock()
	for _, c := range s1.evo.tr.Communities() {
		before[c.Lineage] = c.Born
	}
	s1.evo.mu.RUnlock()
	if len(before) == 0 {
		t.Fatal("no lineages before restart")
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt + evolutionSidecarSuffix); err != nil {
		t.Fatalf("evolution sidecar not written: %v", err)
	}

	// Restart: resume the detector from the durable checkpoint; the
	// sidecar restores the lineage baseline automatically.
	f, err := os.Open(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := core.ReadCheckpoint(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	st, err := ck.BuildState()
	if err != nil {
		t.Fatal(err)
	}
	baseEpoch := st.Epoch()
	opts.BaseEpoch = baseEpoch
	s2, err := New(seqDet{st}, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.evo.mu.RLock()
	after := map[uint64]uint64{}
	for _, c := range s2.evo.tr.Communities() {
		after[c.Lineage] = c.Born
	}
	s2.evo.mu.RUnlock()
	if len(after) != len(before) {
		t.Fatalf("lineage count changed across restart: %d -> %d", len(before), len(after))
	}
	for id, born := range before {
		if gotBorn, ok := after[id]; !ok || gotBorn != born {
			t.Errorf("lineage %d (born %d) lost across restart (after: %v)", id, born, after)
		}
	}

	// The next epoch continues the restored lineages — no spurious births.
	if err := s2.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 30}); err != nil {
		t.Fatal(err)
	}
	if err := s2.Drain(); err != nil {
		t.Fatal(err)
	}
	s2.evo.mu.RLock()
	evs, status := s2.evo.tr.Events(baseEpoch, 10)
	s2.evo.mu.RUnlock()
	if status != evolution.FeedOK || len(evs) == 0 {
		t.Fatalf("no post-restart events (status %v)", status)
	}
	for _, ev := range evs {
		if _, ok := before[ev.Lineage]; ok {
			continue // restored lineage continued — the point of the sidecar
		}
		switch ev.Kind {
		case evolution.Birth:
			// A genuinely new community is fine.
		case evolution.Split:
			// A breakaway part is a fresh lineage, but its parent must be
			// one the restart preserved.
			if len(ev.Related) != 1 {
				t.Errorf("split part without parent: %+v", ev)
			} else if _, ok := before[ev.Related[0]]; !ok {
				t.Errorf("split part of unknown parent: %+v", ev)
			}
		default:
			t.Errorf("post-restart event on unknown lineage: %+v", ev)
		}
	}
}

// A sidecar whose epoch does not match the detector checkpoint (e.g. the
// checkpoint was replaced manually) rebases instead of resuming wrong.
func TestEvolutionSidecarMismatchRebases(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "svc.ckpt")
	stale := []byte(`{"v":1,"epoch":99,"communities":[{"lineage":5,"born":98,"members":[1,2]}]}`)
	if err := os.WriteFile(ckpt+evolutionSidecarSuffix, stale, 0o644); err != nil {
		t.Fatal(err)
	}
	s, _ := newTestService(t, Options{
		FlushInterval: time.Hour, CheckpointPath: ckpt, EvolutionDepth: 4,
	})
	s.evo.mu.RLock()
	defer s.evo.mu.RUnlock()
	if s.evo.tr.Epoch() != 0 {
		t.Errorf("tracker adopted mismatched sidecar (epoch %d)", s.evo.tr.Epoch())
	}
	for _, c := range s.evo.tr.Communities() {
		if c.Lineage == 5 {
			t.Error("stale sidecar lineage survived the rebase")
		}
	}
}
