package stream

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// seqDet adapts core.State to the service's Detector interface. The
// service hands Update canonical batches, so no extra normalization is
// needed here.
type seqDet struct{ st *core.State }

func (d seqDet) Update(b []graph.Edit) (core.UpdateStats, error) { return d.st.Update(b), nil }
func (d seqDet) Labels(v uint32) []uint32                        { return d.st.Labels(v) }
func (d seqDet) Graph() *graph.Graph                             { return d.st.Graph() }
func (d seqDet) Save(w io.Writer) error                          { return d.st.SaveCheckpoint(w) }

// testGraph builds two triangles joined by a bridge.
func testGraph() *graph.Graph {
	g := graph.New()
	for _, e := range [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}, {2, 3}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func newTestService(t *testing.T, opts Options) (*Service, *core.State) {
	t.Helper()
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, st
}

func TestServiceDrainAppliesSubmittedEdits(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	if got := s.Snapshot().Epoch(); got != 0 {
		t.Fatalf("initial epoch %d", got)
	}
	if err := s.Submit(
		graph.Edit{Op: graph.Insert, U: 0, V: 5},
		graph.Edit{Op: graph.Delete, U: 2, V: 3},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if sn.Epoch() != 1 {
		t.Fatalf("epoch after drain = %d, want 1", sn.Epoch())
	}
	if sn.Degree(0) != 3 || sn.Degree(2) != 2 {
		t.Fatalf("snapshot graph degrees: deg(0)=%d deg(2)=%d", sn.Degree(0), sn.Degree(2))
	}

	// The applied state matches a twin fed the same canonical batch.
	twin, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	twin.Update(graph.Canonicalize(twin.Graph(), []graph.Edit{
		{Op: graph.Insert, U: 0, V: 5},
		{Op: graph.Delete, U: 2, V: 3},
	}))
	twin.Graph().ForEachVertex(func(v uint32) {
		a, b := sn.Labels(v), twin.Labels(v)
		for i := range b {
			if a[i] != b[i] {
				t.Fatalf("vertex %d label %d: snapshot %d twin %d", v, i, a[i], b[i])
			}
		}
	})
}

func TestServiceMaxBatchTriggersFlush(t *testing.T) {
	s, _ := newTestService(t, Options{MaxBatch: 2, FlushInterval: time.Hour})
	if err := s.Submit(
		graph.Edit{Op: graph.Insert, U: 0, V: 4},
		graph.Edit{Op: graph.Insert, U: 1, V: 5},
	); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("MaxBatch flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.Snapshot().NumEdges(); got != 9 {
		t.Fatalf("edges after flush = %d, want 9", got)
	}
}

func TestServiceFlushIntervalTriggersFlush(t *testing.T) {
	s, _ := newTestService(t, Options{MaxBatch: 1 << 20, FlushInterval: 5 * time.Millisecond})
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 4}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Epoch() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("interval flush never happened")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServiceCoalescesAndMeters(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	err := s.Submit(
		graph.Edit{Op: graph.Insert, U: 0, V: 5}, // survives
		graph.Edit{Op: graph.Insert, U: 5, V: 0}, // duplicate → absorbed
		graph.Edit{Op: graph.Insert, U: 1, V: 4}, // cancelled below
		graph.Edit{Op: graph.Delete, U: 1, V: 4}, // cancels → both absorbed
		graph.Edit{Op: graph.Delete, U: 0, V: 9}, // no-op → absorbed
		graph.Edit{Op: graph.Insert, U: 7, V: 7}, // self-loop → absorbed
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.SubmittedEdits != 6 || st.AppliedEdits != 1 || st.CoalescedEdits != 5 {
		t.Fatalf("stats: submitted=%d applied=%d coalesced=%d", st.SubmittedEdits, st.AppliedEdits, st.CoalescedEdits)
	}
	if st.Batches != 1 || st.LastBatchEdits != 1 || st.Epoch != 1 {
		t.Fatalf("stats: batches=%d lastBatch=%d epoch=%d", st.Batches, st.LastBatchEdits, st.Epoch)
	}
	if st.Inserted != 1 || st.Deleted != 0 {
		t.Fatalf("stats: inserted=%d deleted=%d", st.Inserted, st.Deleted)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	old := s.Snapshot()
	oldLabels := append([]uint32(nil), old.Labels(2)...)
	oldEdges := old.NumEdges()

	if err := s.Submit(graph.Edit{Op: graph.Delete, U: 2, V: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if s.Snapshot().Epoch() != 1 {
		t.Fatal("batch not applied")
	}
	if old.Epoch() != 0 || old.NumEdges() != oldEdges {
		t.Fatal("held snapshot changed shape")
	}
	for i, l := range old.Labels(2) {
		if l != oldLabels[i] {
			t.Fatalf("held snapshot label %d changed", i)
		}
	}
	res, err := old.Communities()
	if err != nil {
		t.Fatal(err)
	}
	again, err := old.Communities()
	if err != nil || res != again {
		t.Fatal("snapshot extraction not memoized")
	}
}

func TestServiceCloseIdempotentAndConcurrent(t *testing.T) {
	s, _ := newTestService(t, Options{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = s.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("Close %d returned %v, Close 0 returned %v", i, err, errs[0])
		}
	}
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v", err)
	}
	if err := s.Drain(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Drain after Close: %v", err)
	}
	// Queries still work against the final snapshot.
	if s.Snapshot() == nil {
		t.Fatal("no snapshot after Close")
	}
}

func TestServiceCloseAppliesPendingEdits(t *testing.T) {
	s, _ := newTestService(t, Options{FlushInterval: time.Hour})
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	sn := s.Snapshot()
	if sn.Epoch() != 1 || sn.Degree(0) != 3 {
		t.Fatalf("pending edit lost at Close: epoch=%d deg(0)=%d", sn.Epoch(), sn.Degree(0))
	}
}

// failDet fails every Update after the first.
type failDet struct {
	seqDet
	calls *int
}

func (d failDet) Update(b []graph.Edit) (core.UpdateStats, error) {
	if *d.calls++; *d.calls > 1 {
		return core.UpdateStats{}, fmt.Errorf("synthetic engine failure")
	}
	return d.st.Update(b), nil
}

func TestServiceLatchesOnDetectorFailure(t *testing.T) {
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s, err := New(failDet{seqDet{st}, &calls}, Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err) // first update succeeds
	}
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 1, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil {
		t.Fatal("drain after failing update returned nil")
	}
	// The pre-failure snapshot keeps serving.
	if sn := s.Snapshot(); sn.Epoch() != 1 {
		t.Fatalf("post-failure snapshot epoch %d, want 1", sn.Epoch())
	}
	if st := s.Stats(); st.LastError == "" {
		t.Fatal("failure not reported in Stats")
	}
	// Later drains report the latched error instead of applying.
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 2, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil {
		t.Fatal("latched service applied a batch")
	}
	// ... even with nothing pending at all.
	if err := s.Drain(); err == nil {
		t.Fatal("empty drain of a latched service reported success")
	}
}

func TestServiceCheckpointsRelativePath(t *testing.T) {
	t.Chdir(t.TempDir())
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// A bare filename exercises the dir=="" split: the temp file must land
	// in the working directory, not os.TempDir (cross-device rename).
	s, err := New(seqDet{st}, Options{
		FlushInterval: time.Hour, CheckpointPath: "service.ckpt", CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat("service.ckpt"); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	if st := s.Stats(); st.Checkpoints != 1 || st.LastError != "" {
		t.Fatalf("stats: checkpoints=%d lastError=%q", st.Checkpoints, st.LastError)
	}
}

func TestServiceCheckpointFailureIsTransient(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "service.ckpt")
	// Block the target with a directory: Save succeeds but the rename
	// fails, a durability-only error that must not latch the service.
	if err := os.Mkdir(ckpt, 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, Options{
		FlushInterval: time.Hour, CheckpointPath: ckpt, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 0, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err == nil {
		t.Fatal("blocked checkpoint not reported")
	}
	if st := s.Stats(); st.LastError == "" || st.Epoch != 1 {
		t.Fatalf("stats after blocked checkpoint: lastError=%q epoch=%d", st.LastError, st.Epoch)
	}

	// Unblock: the next successful checkpoint clears the error.
	if err := os.Remove(ckpt); err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(graph.Edit{Op: graph.Insert, U: 1, V: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatalf("drain after unblocking: %v", err)
	}
	if st := s.Stats(); st.LastError != "" || st.Checkpoints != 1 {
		t.Fatalf("stats after recovery: lastError=%q checkpoints=%d", st.LastError, st.Checkpoints)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("clean Close after recovered checkpoint: %v", err)
	}
}
