package stream

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rslpa/internal/core"
)

func newHTTPService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() { srv.Close(); s.Close() })
	return s, srv
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHTTPEditsAndCommunities(t *testing.T) {
	_, srv := newHTTPService(t)

	// Bare-array form with read-your-writes.
	var post struct {
		Accepted int    `json:"accepted"`
		Epoch    uint64 `json:"epoch"`
	}
	code := postJSON(t, srv.URL+"/edits?wait=1",
		`[{"op":"insert","u":0,"v":5},{"op":"delete","u":2,"v":3}]`, &post)
	if code != http.StatusAccepted || post.Accepted != 2 || post.Epoch != 1 {
		t.Fatalf("POST /edits: code=%d accepted=%d epoch=%d", code, post.Accepted, post.Epoch)
	}

	// Envelope form.
	code = postJSON(t, srv.URL+"/edits?wait=1", `{"edits":[{"op":"insert","u":1,"v":4}]}`, &post)
	if code != http.StatusAccepted || post.Epoch != 2 {
		t.Fatalf("POST envelope: code=%d epoch=%d", code, post.Epoch)
	}

	var comm struct {
		Epoch       uint64     `json:"epoch"`
		Vertices    int        `json:"vertices"`
		Edges       int        `json:"edges"`
		Communities [][]uint32 `json:"communities"`
	}
	if code := getJSON(t, srv.URL+"/communities", &comm); code != http.StatusOK {
		t.Fatalf("GET /communities: %d", code)
	}
	if comm.Epoch != 2 || comm.Vertices != 6 || comm.Edges != 8 {
		t.Fatalf("communities: %+v", comm)
	}
	if len(comm.Communities) == 0 {
		t.Fatal("no communities served")
	}
}

func TestHTTPVertex(t *testing.T) {
	_, srv := newHTTPService(t)
	var got struct {
		Epoch       uint64 `json:"epoch"`
		Present     bool   `json:"present"`
		Degree      int    `json:"degree"`
		Communities []int  `json:"communities"`
		Labels      []int  `json:"labels"`
	}
	if code := getJSON(t, srv.URL+"/vertex/2?labels=1", &got); code != http.StatusOK {
		t.Fatalf("GET /vertex/2: %d", code)
	}
	if !got.Present || got.Degree != 3 || len(got.Labels) != 21 {
		t.Fatalf("vertex 2: %+v", got)
	}
	if got.Communities == nil {
		t.Fatal("membership missing")
	}

	if code := getJSON(t, srv.URL+"/vertex/99", &got); code != http.StatusOK {
		t.Fatalf("GET /vertex/99: %d", code)
	}
	if got.Present {
		t.Fatal("vertex 99 reported present")
	}

	var e map[string]any
	if code := getJSON(t, srv.URL+"/vertex/notanumber", &e); code != http.StatusBadRequest {
		t.Fatalf("bad vertex id: %d", code)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	s, srv := newHTTPService(t)
	var post map[string]any
	postJSON(t, srv.URL+"/edits?wait=1", `[{"op":"insert","u":0,"v":4}]`, &post)

	var st Stats
	if code := getJSON(t, srv.URL+"/stats", &st); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	if st.Epoch != 1 || st.SubmittedEdits != 1 || st.Batches != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.QueueCapacity == 0 {
		t.Fatal("queue capacity missing")
	}
	// The sparse-schedule counters must be surfaced under their wire names.
	var raw map[string]any
	if code := getJSON(t, srv.URL+"/stats", &raw); code != http.StatusOK {
		t.Fatalf("GET /stats: %d", code)
	}
	for _, k := range []string{"levels_skipped", "rounds_run", "last_levels_skipped", "last_rounds_run"} {
		if _, ok := raw[k]; !ok {
			t.Fatalf("/stats missing %q", k)
		}
	}

	var h map[string]any
	if code := getJSON(t, srv.URL+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("GET /healthz: %d", code)
	}
	s.Close()
	if code := getJSON(t, srv.URL+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after close: %d", code)
	}
	var e map[string]any
	if code := postJSON(t, srv.URL+"/edits", `[{"op":"insert","u":0,"v":9}]`, &e); code != http.StatusServiceUnavailable {
		t.Fatalf("POST after close: %d", code)
	}
}

func TestHTTPRejectsMalformedEdits(t *testing.T) {
	_, srv := newHTTPService(t)
	var e map[string]any
	if code := postJSON(t, srv.URL+"/edits", `[{"op":"upsert","u":1,"v":2}]`, &e); code != http.StatusBadRequest {
		t.Fatalf("unknown op: %d", code)
	}
	if code := postJSON(t, srv.URL+"/edits", `{"edits": 12}`, &e); code != http.StatusBadRequest {
		t.Fatalf("malformed envelope: %d", code)
	}
	if code := postJSON(t, srv.URL+"/edits", `not json`, &e); code != http.StatusBadRequest {
		t.Fatalf("non-JSON body: %d", code)
	}
}

func TestHTTPOversizedBodyIs413(t *testing.T) {
	_, srv := newHTTPService(t)
	// One byte past the 16 MiB cap: the read hits MaxBytesReader's limit
	// and the handler must answer 413, not the generic 400. Padding with
	// spaces keeps the body cheap to build and syntactically irrelevant —
	// the size check fires before any JSON is parsed.
	body := strings.Repeat(" ", maxEditBody) + `[]`
	resp, err := http.Post(srv.URL+"/edits", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: code=%d, want 413", resp.StatusCode)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decode 413 body: %v", err)
	}
	if e.Error == "" {
		t.Fatal("413 body has no error detail")
	}
}

func TestHTTPWaitOnLatchedServiceReportsAccepted(t *testing.T) {
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	s, err := New(failDet{seqDet{st}, &calls}, Options{FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() { srv.Close(); s.Close() })

	var post map[string]any
	if code := postJSON(t, srv.URL+"/edits?wait=1", `[{"op":"insert","u":0,"v":5}]`, &post); code != http.StatusAccepted {
		t.Fatalf("first edit: %d", code) // first update succeeds, detector fails after
	}
	var e struct {
		Error    string `json:"error"`
		Accepted *int   `json:"accepted"`
	}
	code := postJSON(t, srv.URL+"/edits?wait=1",
		`[{"op":"insert","u":1,"v":5},{"op":"insert","u":2,"v":5}]`, &e)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("latching edit: code=%d, want 503", code)
	}
	// The edits were swallowed by the latched queue before the drain
	// failed; the error body must say how many, plus the failure detail.
	if e.Accepted == nil || *e.Accepted != 2 {
		t.Fatalf("503 body accepted=%v, want 2", e.Accepted)
	}
	if !strings.Contains(e.Error, "detector update failed") || !strings.Contains(e.Error, "synthetic engine failure") {
		t.Fatalf("503 body error lacks latch detail: %q", e.Error)
	}
}
