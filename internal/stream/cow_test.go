package stream

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/postprocess"
)

// TestStatsNeverTearsEpochFromBatches hammers Stats from several
// goroutines while the maintenance loop flushes one batch per edit.
// Epoch is recorded in the same critical section as Batches, so a
// reading must never show them apart — the torn-read bug this pins had
// Epoch loaded from the snapshot pointer after the batch counters were
// already bumped. Run under -race, this also exercises the lock
// discipline of the whole Stats path.
func TestStatsNeverTearsEpochFromBatches(t *testing.T) {
	s, _ := newTestService(t, Options{MaxBatch: 1, FlushInterval: time.Hour})
	var (
		stop tornFlag
		wg   sync.WaitGroup
	)
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Done() {
				st := s.Stats()
				if st.Epoch != st.Batches {
					stop.Tear(st.Epoch, st.Batches)
					return
				}
			}
		}()
	}
	// Alternate insert/delete of the same edge: every edit survives
	// coalescing, and MaxBatch=1 turns each into its own flush.
	for i := range 200 {
		op := graph.Insert
		if i%2 == 1 {
			op = graph.Delete
		}
		if err := s.Submit(graph.Edit{Op: op, U: 0, V: 5}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	stop.Stop()
	wg.Wait()
	if e, b, torn := stop.Torn(); torn {
		t.Fatalf("Stats tore: Epoch=%d Batches=%d", e, b)
	}
}

// tornFlag is the hammer test's stop flag, doubling as a torn-reading
// report (reader goroutines cannot t.Fatal).
type tornFlag struct {
	done           atomic.Bool
	torn           atomic.Bool
	epoch, batches atomic.Uint64
}

func (f *tornFlag) Done() bool { return f.done.Load() }
func (f *tornFlag) Stop()      { f.done.Store(true) }
func (f *tornFlag) Tear(epoch, batches uint64) {
	f.epoch.Store(epoch)
	f.batches.Store(batches)
	f.torn.Store(true)
	f.done.Store(true)
}
func (f *tornFlag) Torn() (epoch, batches uint64, torn bool) {
	return f.epoch.Load(), f.batches.Load(), f.torn.Load()
}

// TestNewSweepsStaleCheckpointTemps plants an orphan <base>.tmp* file —
// what a crash between CreateTemp and Rename leaves behind — and checks
// New removes it without touching the real checkpoint or unrelated
// files.
func TestNewSweepsStaleCheckpointTemps(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "service.ckpt")
	stale := filepath.Join(dir, "service.ckpt.tmp123456")
	stale2 := filepath.Join(dir, "service.ckpt.tmp7")
	unrelated := filepath.Join(dir, "other.ckpt.tmp1")
	prev := []byte("previous checkpoint")
	for path, data := range map[string][]byte{
		ckpt: prev, stale: []byte("partial"), stale2: []byte("x"), unrelated: []byte("keep"),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(seqDet{st}, Options{FlushInterval: time.Hour, CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, gone := range []string{stale, stale2} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("stale temp %s survived startup (err=%v)", gone, err)
		}
	}
	if _, err := os.Stat(unrelated); err != nil {
		t.Fatalf("unrelated file swept: %v", err)
	}
	if got, err := os.ReadFile(ckpt); err != nil || string(got) != string(prev) {
		t.Fatalf("real checkpoint disturbed: %q, %v", got, err)
	}
}

// TestSnapshotServesVertexDeletedAfterPublish pins the held-snapshot
// contract across vertex deletion: a snapshot taken before RemoveVertex
// keeps serving the vertex's frozen labels and membership, while the
// COW successor reports it absent.
func TestSnapshotServesVertexDeletedAfterPublish(t *testing.T) {
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	det := seqDet{st}
	held := newSnapshot(0, det, postprocess.Config{}, core.UpdateStats{})
	wantLabels := append([]uint32(nil), held.Labels(5)...)
	wantDeg := held.Degree(5)

	stats, ok := st.RemoveVertex(5)
	if !ok {
		t.Fatal("RemoveVertex(5) reported absent")
	}
	next := nextSnapshot(held, det, stats.Dirty, stats)

	// The held snapshot is frozen: vertex 5 is still fully served.
	if !held.HasVertex(5) || held.Degree(5) != wantDeg {
		t.Fatalf("held snapshot lost vertex 5: present=%v deg=%d", held.HasVertex(5), held.Degree(5))
	}
	got := held.Labels(5)
	if len(got) != len(wantLabels) {
		t.Fatalf("held labels length %d, want %d", len(got), len(wantLabels))
	}
	for i := range wantLabels {
		if got[i] != wantLabels[i] {
			t.Fatalf("held label %d changed: %d vs %d", i, got[i], wantLabels[i])
		}
	}
	if _, err := held.Membership(5); err != nil {
		t.Fatalf("held Membership(5): %v", err)
	}

	// The successor reflects the deletion.
	if next.HasVertex(5) || next.Degree(5) != 0 || next.Labels(5) != nil {
		t.Fatalf("deleted vertex still in next snapshot: present=%v deg=%d labels=%v",
			next.HasVertex(5), next.Degree(5), next.Labels(5))
	}
	member, err := next.Membership(5)
	if err != nil {
		t.Fatalf("next Membership(5): %v", err)
	}
	if member != nil {
		t.Fatalf("deleted vertex has membership %v", member)
	}
	if next.NumVertices() != held.NumVertices()-1 {
		t.Fatalf("vertex count %d after deletion, held %d", next.NumVertices(), held.NumVertices())
	}
}

// TestSnapshotDropsIsolatedVertexDeletedAfterPublish is the COW corner
// the Dirty contract used to miss: removing an ISOLATED vertex induces an
// empty edge-deletion batch, so before RemoveVertex carried v in Dirty the
// publish saw a nil dirty set with zero work and reused every shard — the
// successor snapshot kept serving the vertex as present.
func TestSnapshotDropsIsolatedVertexDeletedAfterPublish(t *testing.T) {
	st, err := core.Run(testGraph(), core.Config{T: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	det := seqDet{st}
	if _, ok := st.AddVertex(9); !ok {
		t.Fatal("AddVertex(9) reported existing")
	}
	held := newSnapshot(0, det, postprocess.Config{}, core.UpdateStats{})
	if !held.HasVertex(9) {
		t.Fatal("snapshot missing the isolated vertex")
	}

	stats, ok := st.RemoveVertex(9)
	if !ok {
		t.Fatal("RemoveVertex(9) reported absent")
	}
	if len(stats.Dirty) != 1 || stats.Dirty[0] != 9 {
		t.Fatalf("isolated removal Dirty = %v, want [9]", stats.Dirty)
	}
	next := nextSnapshot(held, det, stats.Dirty, stats)

	if !held.HasVertex(9) {
		t.Fatal("held snapshot lost the frozen vertex")
	}
	if next.HasVertex(9) || next.Labels(9) != nil {
		t.Fatalf("COW successor still serves the deleted isolated vertex: present=%v labels=%v",
			next.HasVertex(9), next.Labels(9))
	}
	if next.NumVertices() != held.NumVertices()-1 {
		t.Fatalf("vertex count %d, held %d", next.NumVertices(), held.NumVertices())
	}
}

// TestSnapshotShardBoundary exercises the vertices straddling the first
// shard boundary (IDs ShardSize-1 and ShardSize) and the COW sharing
// rules around them: an edit confined to one shard republishes exactly
// that shard, a boundary edge dirties both of its endpoint shards.
func TestSnapshotShardBoundary(t *testing.T) {
	const lo, hi = graph.ShardSize - 1, graph.ShardSize
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(lo, hi)
	st, err := core.Run(g, core.Config{T: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	det := seqDet{st}
	sn0 := newSnapshot(0, det, postprocess.Config{}, core.UpdateStats{})
	if sn0.NumShards() != 2 {
		t.Fatalf("NumShards = %d, want 2", sn0.NumShards())
	}
	if sn0.NumVertices() != 4 || sn0.NumEdges() != 2 {
		t.Fatalf("totals: %d vertices %d edges", sn0.NumVertices(), sn0.NumEdges())
	}
	for _, v := range []uint32{lo, hi} {
		if !sn0.HasVertex(v) || sn0.Degree(v) != 1 {
			t.Fatalf("boundary vertex %d: present=%v deg=%d", v, sn0.HasVertex(v), sn0.Degree(v))
		}
		if l := sn0.Labels(v); len(l) != 21 {
			t.Fatalf("boundary vertex %d: %d labels, want T+1=21", v, len(l))
		}
	}
	var edges [][2]uint32
	sn0.ForEachEdge(func(u, v uint32) { edges = append(edges, [2]uint32{u, v}) })
	if len(edges) != 2 || edges[0] != [2]uint32{0, 1} || edges[1] != [2]uint32{lo, hi} {
		t.Fatalf("ForEachEdge = %v", edges)
	}

	// An edit confined to shard 0 republishes shard 0 only; shard 1 is
	// shared pointer-for-pointer with the previous snapshot.
	stats := st.Update(graph.Canonicalize(st.Graph(), []graph.Edit{{Op: graph.Insert, U: 0, V: 2}}))
	sn1 := nextSnapshot(sn0, det, stats.Dirty, stats)
	if sn1.ShardsRepublished() != 1 {
		t.Fatalf("in-shard edit republished %d shards, want 1 (dirty=%v)", sn1.ShardsRepublished(), stats.Dirty)
	}
	if sn1.shards[1] != sn0.shards[1] {
		t.Fatal("clean shard 1 was recloned instead of shared")
	}
	if sn1.shards[0] == sn0.shards[0] {
		t.Fatal("dirty shard 0 was shared instead of recloned")
	}
	if !sn1.HasVertex(2) || sn1.NumVertices() != 5 || sn1.NumEdges() != 3 {
		t.Fatalf("after insert: present(2)=%v %d vertices %d edges", sn1.HasVertex(2), sn1.NumVertices(), sn1.NumEdges())
	}

	// A boundary edge's endpoints live in different shards: deleting it
	// must republish both.
	stats = st.Update(graph.Canonicalize(st.Graph(), []graph.Edit{{Op: graph.Delete, U: lo, V: hi}}))
	sn2 := nextSnapshot(sn1, det, stats.Dirty, stats)
	if sn2.ShardsRepublished() != 2 {
		t.Fatalf("boundary delete republished %d shards, want 2 (dirty=%v)", sn2.ShardsRepublished(), stats.Dirty)
	}
	if sn2.NumEdges() != 2 || sn2.Degree(lo) != 0 || sn2.Degree(hi) != 0 {
		t.Fatalf("after boundary delete: %d edges deg(%d)=%d deg(%d)=%d",
			sn2.NumEdges(), lo, sn2.Degree(lo), hi, sn2.Degree(hi))
	}
}

// ringState builds an n-vertex ring and runs the detector on it.
func ringState(t testing.TB, n uint32, seed uint64) *core.State {
	t.Helper()
	g := graph.New()
	for i := uint32(0); i < n; i++ {
		g.AddEdge(i, (i+1)%n)
	}
	st, err := core.Run(g, core.Config{T: 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCOWPublicationLargeGraph is the acceptance pin for the tentpole: a
// 2-edit batch on a 100k-vertex graph republishes a handful of shards
// out of 25, publication is ≥10x cheaper than a full clone (guarded as
// a ratio, never absolute time), and the COW snapshot is content-
// identical to a full clone of the same state.
func TestCOWPublicationLargeGraph(t *testing.T) {
	const n = 100_000
	st := ringState(t, n, 3)
	det := seqDet{st}
	s, err := New(det, Options{FlushInterval: time.Hour, MaxBatch: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.Submit(
		graph.Edit{Op: graph.Insert, U: 100, V: 200},
		graph.Edit{Op: graph.Delete, U: 300, V: 301},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := s.Stats()
	wantShards := graph.NumShards(st.Graph().MaxVertexID())
	if stats.SnapshotShards != wantShards || wantShards != 25 {
		t.Fatalf("snapshot shards = %d (geometry says %d, want 25)", stats.SnapshotShards, wantShards)
	}
	// Both edits and the whole correction spread live inside shard 0.
	if stats.LastShardsRepublished < 1 || stats.LastShardsRepublished > 2 {
		t.Fatalf("2-edit batch republished %d of %d shards", stats.LastShardsRepublished, stats.SnapshotShards)
	}
	if stats.SnapshotShards < 10*stats.LastShardsRepublished {
		t.Fatalf("publication reduction below 10x: %d of %d shards republished",
			stats.LastShardsRepublished, stats.SnapshotShards)
	}

	if stats.LastPublishMicros > stats.TotalPublishMicros {
		t.Fatalf("publish meters inconsistent: last=%d total=%d", stats.LastPublishMicros, stats.TotalPublishMicros)
	}

	// Timing ratio: publish the same state both ways, interleaved
	// min-of-5 so allocator and GC noise hits both sides alike.
	sn := s.Snapshot()
	last := sn.UpdateStats()
	var cowMin, fullMin int64 = -1, -1
	for i := 0; i < 5; i++ {
		c0 := time.Now()
		nextSnapshot(sn, det, last.Dirty, last)
		if m := time.Since(c0).Microseconds(); cowMin < 0 || m < cowMin {
			cowMin = m
		}
		f0 := time.Now()
		newSnapshot(sn.Epoch()+1, det, postprocess.Config{}, last)
		if m := time.Since(f0).Microseconds(); fullMin < 0 || m < fullMin {
			fullMin = m
		}
	}
	if cowMin < 1 {
		cowMin = 1 // a sub-microsecond COW publish still needs a sane ratio base
	}
	if fullMin < 10*cowMin {
		t.Fatalf("full clone %dµs not ≥10x COW publish %dµs", fullMin, cowMin)
	}

	// Content identity: the COW-published snapshot matches a full clone
	// of the same detector state, vertex for vertex, label for label.
	full := newSnapshot(sn.Epoch(), det, postprocess.Config{}, sn.UpdateStats())
	if sn.NumVertices() != full.NumVertices() || sn.NumEdges() != full.NumEdges() {
		t.Fatalf("totals diverge: COW %d/%d, full %d/%d",
			sn.NumVertices(), sn.NumEdges(), full.NumVertices(), full.NumEdges())
	}
	for v := uint32(0); v < n; v++ {
		a, b := sn.Labels(v), full.Labels(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: label lengths %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d label %d: COW %d, full %d", v, i, a[i], b[i])
			}
		}
		if sn.Degree(v) != full.Degree(v) {
			t.Fatalf("vertex %d: degree %d vs %d", v, sn.Degree(v), full.Degree(v))
		}
	}
}
