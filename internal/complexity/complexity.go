// Package complexity implements the analytic cost model of the Correction
// Propagation algorithm (paper Section IV-D): the probability that a single
// edit batch forces a label to be re-examined, the expected number η̂ of
// labels needing updates (Equation 8), and the best/worst-case bounds
// (Equations 10 and 12). The benchmarks compare these predictions against
// the Touched counter reported by core.State.Update.
package complexity

import "fmt"

// Model captures one update scenario: a graph with V vertices and E edges
// run for T iterations, hit by a batch deleting Md and inserting Ma edges
// chosen uniformly at random.
type Model struct {
	V, E int
	T    int
	Md   int // deleted edges
	Ma   int // inserted edges
}

// Validate checks the scenario for consistency.
func (m Model) Validate() error {
	switch {
	case m.V <= 0 || m.E <= 0 || m.T <= 0:
		return fmt.Errorf("complexity: V=%d E=%d T=%d must be positive", m.V, m.E, m.T)
	case m.Md < 0 || m.Ma < 0:
		return fmt.Errorf("complexity: negative edit counts md=%d ma=%d", m.Md, m.Ma)
	case m.Md > m.E:
		return fmt.Errorf("complexity: md=%d exceeds E=%d", m.Md, m.E)
	}
	return nil
}

// PC is Equation 3: the probability that the edge behind a single label
// pick is invalidated — deleted outright, or (surviving deletion) switched
// to one of the newly inserted edges by the Theorem 5 coin.
//
//	p_c = md/|E| + (1 - md/|E|) · (1 - (|E|-md) / (|E|-md+ma))
//
// (The paper's expression writes the second factor as n_u/(n_u+n_a) with
// n_u = (|E|-md)/|V| and n_a = ma/|V|; the |V| cancels.)
func (m Model) PC() float64 {
	e := float64(m.E)
	md := float64(m.Md)
	ma := float64(m.Ma)
	pDel := md / e
	keep := (e - md) / (e - md + ma)
	return pDel + (1-pDel)*(1-keep)
}

// Q returns Q(t), the probability that a label picked at iteration t needs
// no update (Equation 7):
//
//	Q(t) = Π_{k=1..t} (1 - p_c/k)
func (m Model) Q(t int) float64 {
	pc := m.PC()
	q := 1.0
	for k := 1; k <= t; k++ {
		q *= 1 - pc/float64(k)
	}
	return q
}

// P returns P(t) = 1 - Q(t), the expected probability that a label picked
// at iteration t must be updated.
func (m Model) P(t int) float64 { return 1 - m.Q(t) }

// EtaHat is Equation 8: the expected number of labels needing updates,
//
//	η̂ = T·|V| - |V| · Σ_{t=1..T} Q(t).
func (m Model) EtaHat() float64 {
	pc := m.PC()
	sum := 0.0
	q := 1.0
	for t := 1; t <= m.T; t++ {
		q *= 1 - pc/float64(t)
		sum += q
	}
	return float64(m.T)*float64(m.V) - float64(m.V)*sum
}

// EtaLower is Equation 10, the best case (every pick takes an initial
// label, so every propagation path has length 1):
//
//	η ≥ T·|V|·p_c
func (m Model) EtaLower() float64 {
	return float64(m.T) * float64(m.V) * m.PC()
}

// EtaUpper is Equation 12, the worst case (every pick at iteration t reads
// iteration t-1, so paths have maximal length):
//
//	η ≤ T·|V| - |V| · (1-p_c - (1-p_c)^{T+1}) / p_c
func (m Model) EtaUpper() float64 {
	pc := m.PC()
	if pc == 0 {
		return 0
	}
	geom := (1 - pc - pow(1-pc, m.T+1)) / pc
	return float64(m.T)*float64(m.V) - float64(m.V)*geom
}

func pow(x float64, n int) float64 {
	r := 1.0
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			r *= x
		}
		x *= x
	}
	return r
}

// Speedup estimates the expected advantage of incremental updating over
// recomputation from scratch: the from-scratch run picks T·|V| labels,
// while correction propagation touches η̂.
func (m Model) Speedup() float64 {
	eta := m.EtaHat()
	if eta == 0 {
		return float64(m.T) * float64(m.V)
	}
	return float64(m.T) * float64(m.V) / eta
}
