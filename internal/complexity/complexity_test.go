package complexity

import (
	"math"
	"testing"
	"testing/quick"

	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

func TestValidate(t *testing.T) {
	ok := Model{V: 100, E: 300, T: 50, Md: 10, Ma: 10}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{V: 0, E: 1, T: 1},
		{V: 1, E: 1, T: 0},
		{V: 1, E: 1, T: 1, Md: -1},
		{V: 1, E: 5, T: 1, Md: 6},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestPCNoEdits(t *testing.T) {
	m := Model{V: 100, E: 500, T: 50}
	if pc := m.PC(); pc != 0 {
		t.Fatalf("pc with no edits = %v", pc)
	}
	if eta := m.EtaHat(); eta != 0 {
		t.Fatalf("eta with no edits = %v", eta)
	}
}

func TestPCDeleteAll(t *testing.T) {
	m := Model{V: 100, E: 500, T: 50, Md: 500}
	if pc := m.PC(); math.Abs(pc-1) > 1e-12 {
		t.Fatalf("pc deleting everything = %v", pc)
	}
}

func TestPCEquation3(t *testing.T) {
	// Hand-computed example: E=100, md=10, ma=10:
	// pc = 0.1 + 0.9·(1 - 90/100) = 0.1 + 0.09 = 0.19.
	m := Model{V: 10, E: 100, T: 10, Md: 10, Ma: 10}
	if pc := m.PC(); math.Abs(pc-0.19) > 1e-12 {
		t.Fatalf("pc = %v, want 0.19", pc)
	}
}

func TestQMonotone(t *testing.T) {
	m := Model{V: 100, E: 1000, T: 100, Md: 50, Ma: 50}
	prev := 1.0
	for tt := 1; tt <= m.T; tt++ {
		q := m.Q(tt)
		if q > prev+1e-12 {
			t.Fatalf("Q(%d)=%v > Q(%d)=%v — must be non-increasing", tt, q, tt-1, prev)
		}
		if q < 0 || q > 1 {
			t.Fatalf("Q(%d)=%v outside [0,1]", tt, q)
		}
		prev = q
	}
}

func TestQRecursionEquation6(t *testing.T) {
	m := Model{V: 10, E: 200, T: 20, Md: 8, Ma: 4}
	pc := m.PC()
	for tt := 2; tt <= m.T; tt++ {
		want := (1 - pc/float64(tt)) * m.Q(tt-1)
		if got := m.Q(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Q(%d)=%v violates recursion (want %v)", tt, got, want)
		}
	}
}

func TestBoundsOrdering(t *testing.T) {
	check := func(eRaw, mdRaw, maRaw uint16) bool {
		e := int(eRaw%5000) + 100
		md := int(mdRaw) % (e / 2)
		ma := int(maRaw) % (e / 2)
		m := Model{V: 1000, E: e, T: 100, Md: md, Ma: ma}
		lower, eta, upper := m.EtaLower(), m.EtaHat(), m.EtaUpper()
		return lower <= eta+1e-6 && eta <= upper+1e-6 &&
			lower >= 0 && upper <= float64(m.T)*float64(m.V)+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEtaGrowsWithEdits(t *testing.T) {
	base := Model{V: 1000, E: 10000, T: 100}
	prev := -1.0
	for _, edits := range []int{10, 100, 1000, 5000} {
		m := base
		m.Md, m.Ma = edits/2, edits/2
		eta := m.EtaHat()
		if eta <= prev {
			t.Fatalf("eta(%d)=%v not increasing", edits, eta)
		}
		prev = eta
	}
}

func TestEtaSublinearInBatchSize(t *testing.T) {
	// The paper's Figure 9 claim: doubling the batch should less than
	// double the update volume once batches are non-trivial.
	base := Model{V: 10000, E: 100000, T: 200}
	etaAt := func(edits int) float64 {
		m := base
		m.Md, m.Ma = edits/2, edits/2
		return m.EtaHat()
	}
	if ratio := etaAt(20000) / etaAt(10000); ratio >= 2 {
		t.Fatalf("eta ratio %v not sublinear", ratio)
	}
}

func TestSpeedup(t *testing.T) {
	m := Model{V: 1000, E: 10000, T: 100, Md: 5, Ma: 5}
	s := m.Speedup()
	if s <= 1 {
		t.Fatalf("tiny batch speedup %v should be large", s)
	}
	zero := Model{V: 10, E: 10, T: 10}
	if zero.Speedup() != 100 {
		t.Fatalf("no-edit speedup = %v (total work)", zero.Speedup())
	}
}

// TestModelPredictsMeasured is the empirical validation: the measured
// Touched count from core.Update must land within the analytic bounds and
// near η̂ on a random graph (where the model's degree-uniform assumption
// holds best).
func TestModelPredictsMeasured(t *testing.T) {
	r := rng.New(17)
	g := graph.New()
	const n, e = 2000, 10000
	for i := 0; i < n; i++ {
		g.AddVertex(uint32(i))
	}
	for g.NumEdges() < e {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	const T = 50
	st, err := core.Run(g, core.Config{T: T, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{100, 1000, 4000} {
		clone := st.Clone()
		batch, err := dynamic.Batch(clone.Graph(), size, uint64(size))
		if err != nil {
			t.Fatal(err)
		}
		us := clone.Update(batch)
		m := Model{V: n, E: e, T: T, Md: us.Deleted, Ma: us.Inserted}
		lower, eta, upper := m.EtaLower(), m.EtaHat(), m.EtaUpper()
		got := float64(us.Touched)
		if got < lower*0.9 || got > upper*1.1 {
			t.Fatalf("batch %d: measured %v outside bounds [%v, %v]", size, got, lower, upper)
		}
		if got < eta*0.7 || got > eta*1.3 {
			t.Fatalf("batch %d: measured %v far from expectation %v", size, got, eta)
		}
	}
}
