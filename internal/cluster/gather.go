package cluster

import "fmt"

// Gather is the engine's snapshot-barrier primitive: every worker produces a
// byte blob concurrently (inside the superstep compute phase, so P blobs are
// built in parallel), the blobs cross the transport to worker 0 in chunked
// messages, and the call returns them indexed by worker. It is the building
// block for shard-parallel checkpointing — each worker serializes its
// partition, the master concatenates — but is generic over blob contents.
//
// The two supersteps form a full barrier: when Gather returns, every worker
// has finished produce and all chunks have been exchanged, so callers may
// mutate worker state immediately afterwards. Message and byte costs are
// charged to Stats like any other phase (over TCP the blobs genuinely move
// through the sockets).
func (e *Engine) Gather(produce func(w int) ([]byte, error)) ([][]byte, error) {
	p := e.cfg.Workers
	blobs := make([][]byte, p)
	lengths := make([]int, p)
	chunks := make([][][]uint32, p)
	step := func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		switch round {
		case 0:
			blob, err := produce(w)
			if err != nil {
				return false, err
			}
			emitBlob(emit, 0, uint32(w), blob)
		case 1:
			if w != 0 {
				return false, nil
			}
			for _, m := range inbox {
				from := int(m.A)
				if from >= p {
					return false, fmt.Errorf("gather: chunk from worker %d of %d", from, p)
				}
				switch m.Kind {
				case kindGatherHead:
					lengths[from] = int(m.B)
				case kindGatherChunk:
					idx := int(m.B)
					for idx >= len(chunks[from]) {
						chunks[from] = append(chunks[from], nil)
					}
					chunks[from][idx] = m.Payload
				}
			}
			for from := 0; from < p; from++ {
				words := make([]uint32, 0, (lengths[from]+3)/4)
				for idx, chunk := range chunks[from] {
					if chunk == nil {
						return false, fmt.Errorf("gather: missing chunk %d from worker %d", idx, from)
					}
					words = append(words, chunk...)
				}
				// The packed words and the announced length must agree
				// exactly (up to word padding): a lost trailing chunk or a
				// lost head message must fail here, not surface later as a
				// silently truncated blob.
				if 4*len(words) < lengths[from] || 4*len(words) > lengths[from]+3 {
					return false, fmt.Errorf("gather: worker %d blob has %d payload bytes for announced length %d",
						from, 4*len(words), lengths[from])
				}
				blobs[from] = UnpackBytes(words, lengths[from])
			}
		}
		return false, nil
	}
	if _, err := e.RunRounds(step, 2); err != nil {
		return nil, err
	}
	return blobs, nil
}

// emitBlob chunks a byte blob into payload messages addressed to worker
// `to`: one head message carrying the exact byte length, then the packed
// words split at gatherChunkWords per message (the TCP codec rejects
// payloads over MaxPayloadWords; chunking well below that also keeps any
// single frame allocation modest).
func emitBlob(emit Emitter, to int, from uint32, blob []byte) {
	words := PackBytes(blob)
	emit(to, Message{Kind: kindGatherHead, A: from, B: uint32(len(blob))})
	for idx := 0; len(words) > 0; idx++ {
		n := len(words)
		if n > gatherChunkWords {
			n = gatherChunkWords
		}
		emit(to, Message{Kind: kindGatherChunk, A: from, B: uint32(idx), Payload: words[:n]})
		words = words[n:]
	}
}
