package cluster

import "testing"

// TestAllMinPiggybackAgreement runs the piggybacked all-reduce over a real
// engine round on both transports: every worker ballots a value+flag while
// doing its normal emissions, and in the next round every worker folds the
// same inbox to the same (min, flag) verdict with zero extra supersteps.
func TestAllMinPiggybackAgreement(t *testing.T) {
	const kind = uint8(0x42)
	cases := []struct {
		name     string
		vals     []uint32
		flags    []bool
		wantVal  uint32
		wantFlag bool
	}{
		{"min-wins", []uint32{9, 3, 7}, []bool{false, true, true}, 3, true},
		{"flag-ANDs-at-min", []uint32{5, 5, 8}, []bool{true, false, true}, 5, false},
		{"loser-flag-ignored", []uint32{2, 6, 6}, []bool{true, false, false}, 2, true},
		{"silent-workers", []uint32{AllMinIdle, 4, AllMinIdle}, []bool{false, true, false}, 4, true},
		{"all-idle", []uint32{AllMinIdle, AllMinIdle, AllMinIdle}, []bool{false, false, false}, AllMinIdle, true},
	}
	for _, kindT := range transports(t) {
		for _, tc := range cases {
			t.Run(kindT.String()+"/"+tc.name, func(t *testing.T) {
				e, err := New(Config{Workers: len(tc.vals), Transport: kindT})
				if err != nil {
					t.Fatal(err)
				}
				defer e.Close()
				got := make([]uint32, len(tc.vals))
				gotFlag := make([]bool, len(tc.vals))
				votes := make([]int, len(tc.vals))
				step := func(w, round int, inbox []Message, emit Emitter) (bool, error) {
					if round == 0 {
						if tc.vals[w] != AllMinIdle {
							EmitAllMin(emit, e.Workers(), kind, tc.vals[w], tc.flags[w])
						}
						return true, nil
					}
					got[w], gotFlag[w], votes[w] = ReduceAllMin(inbox, kind)
					return false, nil
				}
				if _, err := e.RunRounds(step, 2); err != nil {
					t.Fatal(err)
				}
				voting := 0
				for _, v := range tc.vals {
					if v != AllMinIdle {
						voting++
					}
				}
				for w := range got {
					if got[w] != tc.wantVal || gotFlag[w] != tc.wantFlag {
						t.Fatalf("worker %d reduced (%d, %v), want (%d, %v)",
							w, got[w], gotFlag[w], tc.wantVal, tc.wantFlag)
					}
					if votes[w] != voting {
						t.Fatalf("worker %d folded %d ballots, want %d", w, votes[w], voting)
					}
				}
			})
		}
	}
}

// TestLastTracePerRoundStats pins the engine's per-round accounting: the
// trace has one entry per executed superstep, entries sum to the run's
// Stats delta, and a terminal (discarded or quiescent) round shows zero.
func TestLastTracePerRoundStats(t *testing.T) {
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Stats()
	// Round 0: worker 0 sends two messages; round 1: worker 1 replies with
	// one; round 2: silence (quiescent termination).
	step := func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		switch {
		case round == 0 && w == 0:
			emit(1, Message{Kind: 1, A: 1})
			emit(1, Message{Kind: 1, A: 2, Payload: []uint32{7}})
		case round == 1 && w == 1:
			emit(0, Message{Kind: 2, A: 3})
		}
		return false, nil
	}
	rounds, err := e.Run(step)
	if err != nil {
		t.Fatal(err)
	}
	trace := e.LastTrace()
	if len(trace) != rounds {
		t.Fatalf("trace length %d, rounds %d", len(trace), rounds)
	}
	delta := e.Stats().Sub(before)
	var msgs, bytes int64
	for _, r := range trace {
		msgs += r.Messages
		bytes += r.Bytes
	}
	if msgs != delta.Messages || bytes != delta.Bytes {
		t.Fatalf("trace sums (%d msgs, %d B) != stats delta (%d msgs, %d B)",
			msgs, bytes, delta.Messages, delta.Bytes)
	}
	if trace[0].Messages != 2 || trace[1].Messages != 1 {
		t.Fatalf("per-round messages %v, want [2 1 0]", trace)
	}
	if last := trace[len(trace)-1]; last != (RoundStat{}) {
		t.Fatalf("terminal round %+v, want zero", last)
	}
}
