package cluster

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func transports(t *testing.T) []TransportKind {
	t.Helper()
	return []TransportKind{Local, TCP}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Fatal("want error for zero workers")
	}
	if _, err := New(Config{Workers: 2, Transport: TransportKind(9)}); err == nil {
		t.Fatal("want error for unknown transport")
	}
}

func TestPartitionerCoversAllWorkers(t *testing.T) {
	p := Partitioner{P: 7}
	seen := make(map[int]int)
	for v := uint32(0); v < 10000; v++ {
		o := p.Owner(v)
		if o < 0 || o >= 7 {
			t.Fatalf("owner %d out of range", o)
		}
		seen[o]++
	}
	for w := 0; w < 7; w++ {
		if seen[w] < 10000/7/2 {
			t.Fatalf("worker %d owns only %d vertices — unbalanced", w, seen[w])
		}
	}
}

// TestRingRelay passes a token around the workers once per round; after P
// rounds it must be back at worker 0 incremented P times.
func TestRingRelay(t *testing.T) {
	for _, kind := range transports(t) {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const p = 4
			e, err := New(Config{Workers: p, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			var final uint32
			_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
				if round == 0 {
					if w == 0 {
						emit(1, Message{Kind: 1, A: 1})
					}
					return false, nil
				}
				for _, m := range inbox {
					if int(m.A) >= 3*p {
						final = m.A
						return false, nil // stop the relay
					}
					emit((w+1)%p, Message{Kind: 1, A: m.A + 1})
				}
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if final != 3*p {
				t.Fatalf("token final value %d, want %d", final, 3*p)
			}
		})
	}
}

// TestAllToAll floods every worker pair with distinct payloads and checks
// exact delivery.
func TestAllToAll(t *testing.T) {
	for _, kind := range transports(t) {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const p = 5
			const perPair = 117
			e, err := New(Config{Workers: p, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			got := make([]map[uint64]int, p)
			for i := range got {
				got[i] = make(map[uint64]int)
			}
			_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
				switch round {
				case 0:
					for to := 0; to < p; to++ {
						for k := 0; k < perPair; k++ {
							emit(to, Message{Kind: 7, A: uint32(w), B: uint32(k), Payload: []uint32{0xabcd, uint32(to)}})
						}
					}
					return false, nil
				default:
					for _, m := range inbox {
						if m.Kind != 7 || len(m.Payload) != 2 || m.Payload[0] != 0xabcd || int(m.Payload[1]) != w {
							return false, fmt.Errorf("worker %d got corrupt message %+v", w, m)
						}
						got[w][uint64(m.A)<<32|uint64(m.B)]++
					}
					return false, nil
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < p; w++ {
				if len(got[w]) != p*perPair {
					t.Fatalf("worker %d received %d distinct messages, want %d", w, len(got[w]), p*perPair)
				}
				for k, n := range got[w] {
					if n != 1 {
						t.Fatalf("worker %d message %x delivered %d times", w, k, n)
					}
				}
			}
			stats := e.Stats()
			if want := int64(p * p * perPair); stats.Messages != want {
				t.Fatalf("stats.Messages = %d, want %d", stats.Messages, want)
			}
			per := int64(Message{Payload: make([]uint32, 2)}.WireSize())
			if stats.Bytes != stats.Messages*per {
				t.Fatalf("stats.Bytes = %d, want %d", stats.Bytes, stats.Messages*per)
			}
		})
	}
}

// TestLargeFrames pushes enough data per round to overflow kernel socket
// buffers, exercising the concurrent read/write paths of the TCP transport.
func TestLargeFrames(t *testing.T) {
	const p = 3
	const perPair = 60000 // ~1 MB per pair per round
	e, err := New(Config{Workers: p, Transport: TCP})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var received [p]int
	_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		received[w] += len(inbox)
		if round < 2 {
			for to := 0; to < p; to++ {
				if to == w {
					continue
				}
				for k := 0; k < perPair; k++ {
					emit(to, Message{Kind: 2, A: uint32(k)})
				}
			}
			return false, nil
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < p; w++ {
		if want := 2 * (p - 1) * perPair; received[w] != want {
			t.Fatalf("worker %d received %d, want %d", w, received[w], want)
		}
	}
}

func TestRunRounds(t *testing.T) {
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	count := 0
	rounds, err := e.RunRounds(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		if w == 0 {
			count++
		}
		emit(1-w, Message{}) // keep traffic flowing; RunRounds must still stop
		return true, nil
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 || count != 5 {
		t.Fatalf("rounds=%d count=%d, want 5", rounds, count)
	}
}

func TestStepErrorPropagates(t *testing.T) {
	e, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	boom := errors.New("boom")
	_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		if w == 2 {
			return false, boom
		}
		return false, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestAllReduceMin(t *testing.T) {
	e, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Stats()
	got := e.AllReduceMin([]float64{3.5, -1.25, 7, 0})
	if got != -1.25 {
		t.Fatalf("min = %v", got)
	}
	d := e.Stats().Sub(before)
	if d.Messages != 8 || d.Rounds != 2 {
		t.Fatalf("allreduce charged %+v", d)
	}
}

// TestAllReduceMinSingleWorker: a P=1 reduce is a local no-op and must not
// charge rounds, messages or bytes.
func TestAllReduceMinSingleWorker(t *testing.T) {
	e, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Stats()
	if got := e.AllReduceMin([]float64{2.5}); got != 2.5 {
		t.Fatalf("min = %v", got)
	}
	if d := e.Stats().Sub(before); d != (Stats{}) {
		t.Fatalf("single-worker allreduce charged %+v", d)
	}
}

// TestRunRoundsDiscardsFinalRoundMessages pins RunRounds' documented
// semantics: messages emitted in the final round never cross the transport
// and are not charged to Stats.Messages or Stats.Bytes.
func TestRunRoundsDiscardsFinalRoundMessages(t *testing.T) {
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var delivered [2]int
	rounds, err := e.RunRounds(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		delivered[w] += len(inbox)
		// Every worker emits one message every round, including the final
		// one, whose emissions must be discarded.
		emit(1-w, Message{Kind: 1, A: uint32(round), Payload: []uint32{9}})
		return true, nil
	}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
	// Rounds 0 and 1 deliver into rounds 1 and 2; round 2's emissions die.
	if got := delivered[0] + delivered[1]; got != 4 {
		t.Fatalf("delivered = %d, want 4", got)
	}
	s := e.Stats()
	if s.Messages != 4 {
		t.Fatalf("Stats.Messages = %d, want 4 (final round discarded)", s.Messages)
	}
	per := int64(Message{Payload: make([]uint32, 1)}.WireSize())
	if s.Bytes != 4*per {
		t.Fatalf("Stats.Bytes = %d, want %d", s.Bytes, 4*per)
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Message{
		{Kind: 250, A: 1, B: 1 << 31},                               // header-only
		{Kind: 3, A: 7, B: 9, Payload: []uint32{}},                  // empty non-nil payload
		{Kind: 1, A: 0xffffffff, B: 42, Payload: []uint32{1, 2, 3}}, // small payload
		{Kind: 9, Payload: make([]uint32, MaxPayloadWords)},         // max-size payload
	}
	cases[3].Payload[0] = 0xdeadbeef
	cases[3].Payload[MaxPayloadWords-1] = 0xfeedface
	for i, m := range cases {
		buf := m.appendTo(nil)
		if len(buf) != m.WireSize() {
			t.Fatalf("case %d: encoded %d bytes, WireSize says %d", i, len(buf), m.WireSize())
		}
		got, err := decodeMessage(bytes.NewReader(buf))
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if got.Kind != m.Kind || got.A != m.A || got.B != m.B || len(got.Payload) != len(m.Payload) {
			t.Fatalf("case %d: round trip %+v != %+v", i, got, m)
		}
		for j := range m.Payload {
			if got.Payload[j] != m.Payload[j] {
				t.Fatalf("case %d: payload word %d: %x != %x", i, j, got.Payload[j], m.Payload[j])
			}
		}
	}
}

// TestDecodeRejectsOversizedPayload: a frame claiming more than
// MaxPayloadWords must fail loudly instead of allocating.
func TestDecodeRejectsOversizedPayload(t *testing.T) {
	m := Message{Kind: 1, A: 2, B: 3, Payload: []uint32{4}}
	buf := m.appendTo(nil)
	binary.LittleEndian.PutUint32(buf[9:], MaxPayloadWords+1)
	if _, err := decodeMessage(bytes.NewReader(buf)); err == nil {
		t.Fatal("oversized payload length accepted")
	}
}

// TestTCPFrameRoundTrip drives the TCP codec directly: a frame of
// mixed-payload messages (empty through max-size) written by writeFrame
// must decode identically through readFrame.
func TestTCPFrameRoundTrip(t *testing.T) {
	ms := []Message{
		{Kind: 1, A: 10, B: 20},
		{Kind: 2, A: 30, B: 40, Payload: []uint32{}},
		{Kind: 3, A: 50, B: 60, Payload: []uint32{7, 8, 9, 0xffffffff}},
		{Kind: 4, Payload: make([]uint32, MaxPayloadWords)},
	}
	ms[3].Payload[MaxPayloadWords-1] = 0xabad1dea
	var raw bytes.Buffer
	bw := bufio.NewWriter(&raw)
	if err := writeFrame(bw, 17, ms); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(bufio.NewReader(&raw), 17)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ms) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(ms))
	}
	for i := range ms {
		if got[i].Kind != ms[i].Kind || got[i].A != ms[i].A || got[i].B != ms[i].B ||
			len(got[i].Payload) != len(ms[i].Payload) {
			t.Fatalf("message %d: %+v != %+v", i, got[i], ms[i])
		}
		for j := range ms[i].Payload {
			if got[i].Payload[j] != ms[i].Payload[j] {
				t.Fatalf("message %d payload word %d differs", i, j)
			}
		}
	}
	// A frame for the wrong round must be rejected.
	bw.Reset(&raw)
	if err := writeFrame(bw, 3, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(bufio.NewReader(&raw), 4); err == nil {
		t.Fatal("round mismatch accepted")
	}
}

// TestTCPVariablePayloads exchanges payload-bearing messages over real
// loopback sockets, with sizes crossing the bufio and chunking boundaries.
func TestTCPVariablePayloads(t *testing.T) {
	const p = 3
	e, err := New(Config{Workers: p, Transport: TCP})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var mu sync.Mutex
	sums := make(map[int]uint64, p)
	_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		var sum uint64
		for _, m := range inbox {
			if int(m.A) != w {
				return false, fmt.Errorf("worker %d got message for %d", w, m.A)
			}
			for _, x := range m.Payload {
				sum += uint64(x)
			}
		}
		if round == 0 {
			for to := 0; to < p; to++ {
				// One empty, one small, one large payload per pair.
				emit(to, Message{Kind: 1, A: uint32(to)})
				emit(to, Message{Kind: 2, A: uint32(to), Payload: []uint32{uint32(w + 1)}})
				big := make([]uint32, 40000)
				for i := range big {
					big[i] = uint32(i % 7)
				}
				emit(to, Message{Kind: 3, A: uint32(to), Payload: big})
			}
			return false, nil
		}
		mu.Lock()
		sums[w] += sum
		mu.Unlock()
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var bigSum uint64
	for i := 0; i < 40000; i++ {
		bigSum += uint64(i % 7)
	}
	want := uint64(1+2+3) + uint64(p)*bigSum
	for w := 0; w < p; w++ {
		if sums[w] != want {
			t.Fatalf("worker %d payload sum %d, want %d", w, sums[w], want)
		}
	}
}

func TestSequentialModeMatchesParallel(t *testing.T) {
	run := func(seq bool) []uint32 {
		e, err := New(Config{Workers: 4, Sequential: seq})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		sums := make([]uint32, 4)
		_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
			for _, m := range inbox {
				sums[w] += m.A
			}
			if round < 3 {
				for to := 0; to < 4; to++ {
					emit(to, Message{A: uint32(w*10 + round)})
				}
				return false, nil
			}
			return false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker %d: sequential %d != parallel %d", i, a[i], b[i])
		}
	}
}

func TestPackBytesRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 255, 1024, 4093} {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(i*131 + 7)
		}
		got := UnpackBytes(PackBytes(b), n)
		if len(got) != n {
			t.Fatalf("n=%d: length %d", n, len(got))
		}
		for i := range b {
			if got[i] != b[i] {
				t.Fatalf("n=%d: byte %d differs", n, i)
			}
		}
	}
	if got := UnpackBytes([]uint32{1}, 100); len(got) != 4 {
		t.Fatalf("overclaimed length not truncated: %d", len(got))
	}
}

func TestGather(t *testing.T) {
	for _, kind := range []TransportKind{Local, TCP} {
		for _, p := range []int{1, 2, 5} {
			e, err := New(Config{Workers: p, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			blobs, err := e.Gather(func(w int) ([]byte, error) {
				// Varied, worker-identifying sizes: worker 2 crosses a word
				// boundary, worker 0 returns an empty blob.
				b := make([]byte, w*1237)
				for i := range b {
					b[i] = byte(w ^ i)
				}
				return b, nil
			})
			if err != nil {
				t.Fatalf("%v P=%d: %v", kind, p, err)
			}
			if len(blobs) != p {
				t.Fatalf("%v P=%d: %d blobs", kind, p, len(blobs))
			}
			for w, b := range blobs {
				if len(b) != w*1237 {
					t.Fatalf("%v P=%d worker %d: %d bytes, want %d", kind, p, w, len(b), w*1237)
				}
				for i := range b {
					if b[i] != byte(w^i) {
						t.Fatalf("%v P=%d worker %d: byte %d corrupted", kind, p, w, i)
					}
				}
			}
			e.Close()
		}
	}
}

func TestGatherLargeBlobChunks(t *testing.T) {
	// A blob larger than one chunk (256 KiB of words) must be split and
	// reassembled in order, including over real TCP frames.
	const n = 5*(4<<16) + 13
	for _, kind := range []TransportKind{Local, TCP} {
		e, err := New(Config{Workers: 2, Transport: kind})
		if err != nil {
			t.Fatal(err)
		}
		blobs, err := e.Gather(func(w int) ([]byte, error) {
			b := make([]byte, n)
			for i := range b {
				b[i] = byte(i>>8) ^ byte(w)
			}
			return b, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 2; w++ {
			if len(blobs[w]) != n {
				t.Fatalf("%v worker %d: %d bytes", kind, w, len(blobs[w]))
			}
			for i, got := range blobs[w] {
				if want := byte(i>>8) ^ byte(w); got != want {
					t.Fatalf("%v worker %d: byte %d = %d, want %d", kind, w, i, got, want)
				}
			}
		}
		e.Close()
	}
}

func TestGatherProduceError(t *testing.T) {
	e, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.Gather(func(w int) ([]byte, error) {
		if w == 1 {
			return nil, fmt.Errorf("boom")
		}
		return []byte{1}, nil
	}); err == nil {
		t.Fatal("produce error swallowed")
	}
}

func TestGatherChargesWireBytes(t *testing.T) {
	e, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Stats()
	if _, err := e.Gather(func(w int) ([]byte, error) { return make([]byte, 1000), nil }); err != nil {
		t.Fatal(err)
	}
	d := e.Stats().Sub(before)
	if d.Bytes < 4000 {
		t.Fatalf("gather of 4x1000 bytes charged only %d wire bytes", d.Bytes)
	}
}
