package cluster

import (
	"errors"
	"fmt"
	"testing"
)

func transports(t *testing.T) []TransportKind {
	t.Helper()
	return []TransportKind{Local, TCP}
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Workers: 0}); err == nil {
		t.Fatal("want error for zero workers")
	}
	if _, err := New(Config{Workers: 2, Transport: TransportKind(9)}); err == nil {
		t.Fatal("want error for unknown transport")
	}
}

func TestPartitionerCoversAllWorkers(t *testing.T) {
	p := Partitioner{P: 7}
	seen := make(map[int]int)
	for v := uint32(0); v < 10000; v++ {
		o := p.Owner(v)
		if o < 0 || o >= 7 {
			t.Fatalf("owner %d out of range", o)
		}
		seen[o]++
	}
	for w := 0; w < 7; w++ {
		if seen[w] < 10000/7/2 {
			t.Fatalf("worker %d owns only %d vertices — unbalanced", w, seen[w])
		}
	}
}

// TestRingRelay passes a token around the workers once per round; after P
// rounds it must be back at worker 0 incremented P times.
func TestRingRelay(t *testing.T) {
	for _, kind := range transports(t) {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const p = 4
			e, err := New(Config{Workers: p, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			var final uint32
			_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
				if round == 0 {
					if w == 0 {
						emit(1, Message{Kind: 1, A: 1})
					}
					return false, nil
				}
				for _, m := range inbox {
					if int(m.A) >= 3*p {
						final = m.A
						return false, nil // stop the relay
					}
					emit((w+1)%p, Message{Kind: 1, A: m.A + 1})
				}
				return false, nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if final != 3*p {
				t.Fatalf("token final value %d, want %d", final, 3*p)
			}
		})
	}
}

// TestAllToAll floods every worker pair with distinct payloads and checks
// exact delivery.
func TestAllToAll(t *testing.T) {
	for _, kind := range transports(t) {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			const p = 5
			const perPair = 117
			e, err := New(Config{Workers: p, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			got := make([]map[uint64]int, p)
			for i := range got {
				got[i] = make(map[uint64]int)
			}
			_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
				switch round {
				case 0:
					for to := 0; to < p; to++ {
						for k := 0; k < perPair; k++ {
							emit(to, Message{Kind: 7, A: uint32(w), B: uint32(k), C: 0xabcd, D: uint32(to)})
						}
					}
					return false, nil
				default:
					for _, m := range inbox {
						if m.Kind != 7 || m.C != 0xabcd || int(m.D) != w {
							return false, fmt.Errorf("worker %d got corrupt message %+v", w, m)
						}
						got[w][uint64(m.A)<<32|uint64(m.B)]++
					}
					return false, nil
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			for w := 0; w < p; w++ {
				if len(got[w]) != p*perPair {
					t.Fatalf("worker %d received %d distinct messages, want %d", w, len(got[w]), p*perPair)
				}
				for k, n := range got[w] {
					if n != 1 {
						t.Fatalf("worker %d message %x delivered %d times", w, k, n)
					}
				}
			}
			stats := e.Stats()
			if want := int64(p * p * perPair); stats.Messages != want {
				t.Fatalf("stats.Messages = %d, want %d", stats.Messages, want)
			}
			if stats.Bytes != stats.Messages*WireSize {
				t.Fatalf("stats.Bytes = %d, want %d", stats.Bytes, stats.Messages*WireSize)
			}
		})
	}
}

// TestLargeFrames pushes enough data per round to overflow kernel socket
// buffers, exercising the concurrent read/write paths of the TCP transport.
func TestLargeFrames(t *testing.T) {
	const p = 3
	const perPair = 60000 // ~1 MB per pair per round
	e, err := New(Config{Workers: p, Transport: TCP})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var received [p]int
	_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		received[w] += len(inbox)
		if round < 2 {
			for to := 0; to < p; to++ {
				if to == w {
					continue
				}
				for k := 0; k < perPair; k++ {
					emit(to, Message{Kind: 2, A: uint32(k)})
				}
			}
			return false, nil
		}
		return false, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < p; w++ {
		if want := 2 * (p - 1) * perPair; received[w] != want {
			t.Fatalf("worker %d received %d, want %d", w, received[w], want)
		}
	}
}

func TestRunRounds(t *testing.T) {
	e, err := New(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	count := 0
	rounds, err := e.RunRounds(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		if w == 0 {
			count++
		}
		emit(1-w, Message{}) // keep traffic flowing; RunRounds must still stop
		return true, nil
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 5 || count != 5 {
		t.Fatalf("rounds=%d count=%d, want 5", rounds, count)
	}
}

func TestStepErrorPropagates(t *testing.T) {
	e, err := New(Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	boom := errors.New("boom")
	_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
		if w == 2 {
			return false, boom
		}
		return false, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want wrapped boom", err)
	}
}

func TestAllReduceMin(t *testing.T) {
	e, err := New(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	before := e.Stats()
	got := e.AllReduceMin([]float64{3.5, -1.25, 7, 0})
	if got != -1.25 {
		t.Fatalf("min = %v", got)
	}
	d := e.Stats().Sub(before)
	if d.Messages != 8 || d.Rounds != 2 {
		t.Fatalf("allreduce charged %+v", d)
	}
}

func TestMessageEncodeDecodeRoundTrip(t *testing.T) {
	m := Message{Kind: 250, A: 1, B: 1 << 31, C: 0xffffffff, D: 42}
	var buf [WireSize]byte
	m.encode(buf[:])
	if got := decodeMessage(buf[:]); got != m {
		t.Fatalf("round trip %+v != %+v", got, m)
	}
}

func TestSequentialModeMatchesParallel(t *testing.T) {
	run := func(seq bool) []uint32 {
		e, err := New(Config{Workers: 4, Sequential: seq})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		sums := make([]uint32, 4)
		_, err = e.Run(func(w, round int, inbox []Message, emit Emitter) (bool, error) {
			for _, m := range inbox {
				sums[w] += m.A
			}
			if round < 3 {
				for to := 0; to < 4; to++ {
					emit(to, Message{A: uint32(w*10 + round)})
				}
				return false, nil
			}
			return false, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	a, b := run(true), run(false)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("worker %d: sequential %d != parallel %d", i, a[i], b[i])
		}
	}
}
