// Package cluster provides the distributed runtime the algorithms run on: a
// BSP (bulk-synchronous parallel) superstep engine over P partition workers
// with pluggable transports.
//
// The paper's evaluation runs on Spark, expressing both algorithms as
// Mapper/Reducer supersteps (Algorithms 1 and 2 are written in that style).
// This engine executes the identical message pattern: in every round each
// worker consumes the messages addressed to it in the previous round,
// mutates its local state, and emits messages for the next round; a barrier
// separates rounds. Two transports are provided:
//
//   - Local: per-worker message queues exchanged in memory — fast, used by
//     benchmarks;
//   - TCP: every worker owns a loopback TCP listener and a full mesh of
//     connections; frames are length-prefixed binary — proving the drivers
//     run over a real network stack with no shared memory between
//     partitions.
//
// The engine meters rounds, messages and wire bytes, which is how the
// benchmarks observe the paper's O(|V|)-vs-O(|E|) communication claim.
//
// # Wire format
//
// A Message is a fixed 13-byte header followed by a variable-length payload
// of 32-bit words, all little-endian:
//
//	offset  size  field
//	0       1     Kind
//	1       4     A
//	5       4     B
//	9       4     payload word count (≤ MaxPayloadWords)
//	13      4·k   payload words
//
// Message.WireSize returns the encoded size of one message; Stats.Bytes is
// the sum of WireSize over every exchanged message, so a payload-packed
// message (say, a run-length-encoded label sequence) is charged its real
// cost rather than a fixed per-message stamp. The TCP transport writes, per
// round and per peer, one frame
//
//	[round uint32][message count uint32][count × encoded Message]
//
// and reads exactly one frame from every peer, so the frame count itself
// forms the end-of-round barrier. The local transport moves Message values
// without copying payloads; emitters must therefore not mutate a payload
// slice after emitting it.
package cluster

import (
	"encoding/binary"
	"fmt"
)

// Message is the unit exchanged between workers: a fixed (Kind, A, B)
// header plus an optional []uint32 payload. The header operands and the
// payload layout are interpreted per Kind by the algorithm drivers in
// internal/dist. Header-only messages keep the propagation hot path cheap
// (13 bytes); payload messages let post-processing pack whole sequences,
// histograms, or forests into a single message with exact byte accounting.
//
// The payload is shared, not copied, on the local transport: once emitted,
// the slice must not be mutated by the sender.
type Message struct {
	Kind    uint8
	A, B    uint32
	Payload []uint32
}

// headerSize is the encoded size of the fixed message header: Kind, A, B
// and the payload word count.
const headerSize = 1 + 4 + 4 + 4

// MaxPayloadWords bounds the payload length a decoder accepts (4 MiB of
// payload). It is a corruption guard for the TCP codec, not a protocol
// limit the drivers approach at this repo's scales; senders with more data
// must chunk across messages.
const MaxPayloadWords = 1 << 20

// WireSize returns the encoded size of m in bytes: the 13-byte header plus
// four bytes per payload word.
func (m Message) WireSize() int { return headerSize + 4*len(m.Payload) }

// appendTo appends the encoding of m to buf and returns the extended slice.
func (m Message) appendTo(buf []byte) []byte {
	var hdr [headerSize]byte
	hdr[0] = m.Kind
	binary.LittleEndian.PutUint32(hdr[1:], m.A)
	binary.LittleEndian.PutUint32(hdr[5:], m.B)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(m.Payload)))
	buf = append(buf, hdr[:]...)
	var w [4]byte
	for _, x := range m.Payload {
		binary.LittleEndian.PutUint32(w[:], x)
		buf = append(buf, w[:]...)
	}
	return buf
}

// decodeMessage reads one encoded message from r.
func decodeMessage(r reader) (Message, error) {
	var hdr [headerSize]byte
	if _, err := readFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	m := Message{
		Kind: hdr[0],
		A:    binary.LittleEndian.Uint32(hdr[1:]),
		B:    binary.LittleEndian.Uint32(hdr[5:]),
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n == 0 {
		return m, nil
	}
	if n > MaxPayloadWords {
		return Message{}, fmt.Errorf("payload of %d words exceeds max %d", n, MaxPayloadWords)
	}
	raw := make([]byte, 4*n)
	if _, err := readFull(r, raw); err != nil {
		return Message{}, err
	}
	m.Payload = make([]uint32, n)
	for i := range m.Payload {
		m.Payload[i] = binary.LittleEndian.Uint32(raw[4*i:])
	}
	return m, nil
}

// Message kinds 0xFE and 0xFF are reserved for the engine's own Gather
// phase; algorithm drivers must allocate their kinds below 0xFE.
const (
	// kindGatherHead announces one worker's blob: A = sender worker,
	// B = exact blob byte length.
	kindGatherHead uint8 = 0xFE
	// kindGatherChunk carries one chunk of a worker's blob: A = sender
	// worker, B = chunk index, payload = packed bytes (see PackBytes).
	kindGatherChunk uint8 = 0xFF
)

// gatherChunkWords is the payload size Gather splits blobs at: 256 KiB per
// message, comfortably under MaxPayloadWords.
const gatherChunkWords = 1 << 16

// PackBytes packs a byte blob into payload words, little-endian, zero-padded
// to a word boundary; UnpackBytes with the original byte length inverts it.
// This is how blob-carrying messages (checkpoint shards) ride the []uint32
// payload of the wire protocol.
func PackBytes(b []byte) []uint32 {
	words := make([]uint32, (len(b)+3)/4)
	for i := range words {
		var w uint32
		for j := 0; j < 4; j++ {
			if k := 4*i + j; k < len(b) {
				w |= uint32(b[k]) << (8 * j)
			}
		}
		words[i] = w
	}
	return words
}

// UnpackBytes is the inverse of PackBytes: it extracts n bytes from packed
// payload words. It errors via truncation if the words cannot hold n bytes —
// callers detect that by comparing len of the result with n.
func UnpackBytes(words []uint32, n int) []byte {
	if max := 4 * len(words); n > max {
		n = max
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(words[i/4] >> (8 * (i % 4)))
	}
	return b
}

// Partitioner assigns vertices to workers. Vertex IDs are dense, so simple
// modulo hashing balances partitions well; a multiplicative mix decorrelates
// ownership from the generators' ID locality.
type Partitioner struct {
	P int
}

// Owner returns the worker that owns vertex v.
func (p Partitioner) Owner(v uint32) int {
	h := uint64(v) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(p.P))
}
