// Package cluster provides the distributed runtime the algorithms run on: a
// BSP (bulk-synchronous parallel) superstep engine over P partition workers
// with pluggable transports.
//
// The paper's evaluation runs on Spark, expressing both algorithms as
// Mapper/Reducer supersteps (Algorithms 1 and 2 are written in that style).
// This engine executes the identical message pattern: in every round each
// worker consumes the messages addressed to it in the previous round,
// mutates its local state, and emits messages for the next round; a barrier
// separates rounds. Two transports are provided:
//
//   - Local: per-worker message queues exchanged in memory — fast, used by
//     benchmarks;
//   - TCP: every worker owns a loopback TCP listener and a full mesh of
//     connections; frames are length-prefixed binary — proving the drivers
//     run over a real network stack with no shared memory between
//     partitions.
//
// The engine meters rounds, messages and wire bytes, which is how the
// benchmarks observe the paper's O(|V|)-vs-O(|E|) communication claim.
package cluster

import "encoding/binary"

// Message is the fixed-shape unit exchanged between workers. The four
// operand fields are interpreted per Kind by the algorithm drivers in
// internal/dist; fixed shape keeps the hot path allocation-free and gives
// every message a well-defined wire size.
type Message struct {
	Kind       uint8
	A, B, C, D uint32
}

// WireSize is the encoded size of one Message in bytes.
const WireSize = 1 + 4*4

// encode writes m into buf (which must have at least WireSize bytes).
func (m Message) encode(buf []byte) {
	buf[0] = m.Kind
	binary.LittleEndian.PutUint32(buf[1:], m.A)
	binary.LittleEndian.PutUint32(buf[5:], m.B)
	binary.LittleEndian.PutUint32(buf[9:], m.C)
	binary.LittleEndian.PutUint32(buf[13:], m.D)
}

// decodeMessage reads a Message from buf.
func decodeMessage(buf []byte) Message {
	return Message{
		Kind: buf[0],
		A:    binary.LittleEndian.Uint32(buf[1:]),
		B:    binary.LittleEndian.Uint32(buf[5:]),
		C:    binary.LittleEndian.Uint32(buf[9:]),
		D:    binary.LittleEndian.Uint32(buf[13:]),
	}
}

// Partitioner assigns vertices to workers. Vertex IDs are dense, so simple
// modulo hashing balances partitions well; a multiplicative mix decorrelates
// ownership from the generators' ID locality.
type Partitioner struct {
	P int
}

// Owner returns the worker that owns vertex v.
func (p Partitioner) Owner(v uint32) int {
	h := uint64(v) * 0x9e3779b97f4a7c15
	return int((h >> 32) % uint64(p.P))
}
