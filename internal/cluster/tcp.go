package cluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
)

// tcpTransport connects P workers in a full mesh over loopback TCP. Each
// ordered worker pair shares one connection (established by the lower-ID
// side dialing the higher). Per round, every worker writes exactly one
// frame to every peer — [round uint32][count uint32][count × Message] — and
// reads exactly one frame from every peer, so no end-of-round marker is
// needed and the frame count itself forms the barrier.
//
// Reads and writes run concurrently per peer; a round's frames fit the
// kernel socket buffers only for small batches, so overlapping the two
// directions is what prevents write-write deadlock on large rounds.
type tcpTransport struct {
	p     int
	conns [][]net.Conn      // conns[w][q] = connection between w and q (nil for w==q)
	rds   [][]*bufio.Reader // buffered reader per connection, per owning worker
	wrs   [][]*bufio.Writer
	round uint32
}

func newTCPTransport(p int) (*tcpTransport, error) {
	t := &tcpTransport{p: p}
	t.conns = make([][]net.Conn, p)
	t.rds = make([][]*bufio.Reader, p)
	t.wrs = make([][]*bufio.Writer, p)
	for w := 0; w < p; w++ {
		t.conns[w] = make([]net.Conn, p)
		t.rds[w] = make([]*bufio.Reader, p)
		t.wrs[w] = make([]*bufio.Writer, p)
	}

	// One listener per worker; worker i dials every j > i and announces
	// itself with a 4-byte hello.
	listeners := make([]net.Listener, p)
	for w := 0; w < p; w++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("cluster: listen for worker %d: %w", w, err)
		}
		listeners[w] = ln
	}
	var wg sync.WaitGroup
	errs := make(chan error, p*p)
	for w := 0; w < p; w++ {
		w := w
		// Accept connections from all lower-numbered workers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < w; k++ {
				conn, err := listeners[w].Accept()
				if err != nil {
					errs <- err
					return
				}
				var hello [4]byte
				if _, err := readFull(conn, hello[:]); err != nil {
					errs <- err
					return
				}
				from := int(binary.LittleEndian.Uint32(hello[:]))
				t.install(w, from, conn)
			}
		}()
		// Dial all higher-numbered workers.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := w + 1; q < p; q++ {
				conn, err := net.Dial("tcp", listeners[q].Addr().String())
				if err != nil {
					errs <- err
					return
				}
				var hello [4]byte
				binary.LittleEndian.PutUint32(hello[:], uint32(w))
				if _, err := conn.Write(hello[:]); err != nil {
					errs <- err
					return
				}
				t.install(w, q, conn)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for w := range listeners {
		listeners[w].Close()
	}
	if err, ok := <-errs; ok && err != nil {
		t.Close()
		return nil, fmt.Errorf("cluster: tcp mesh setup: %w", err)
	}
	return t, nil
}

// install registers the connection endpoint owned by worker w talking to
// peer q.
func (t *tcpTransport) install(w, q int, conn net.Conn) {
	t.conns[w][q] = conn
	t.rds[w][q] = bufio.NewReaderSize(conn, 1<<16)
	t.wrs[w][q] = bufio.NewWriterSize(conn, 1<<16)
}

func (t *tcpTransport) Exchange(out [][][]Message) ([][]Message, error) {
	round := t.round
	t.round++
	in := make([][]Message, t.p)
	errCh := make(chan error, 2*t.p)
	var wg sync.WaitGroup
	for w := 0; w < t.p; w++ {
		w := w
		// Writer side: one frame per peer.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < t.p; q++ {
				if q == w {
					continue
				}
				if err := writeFrame(t.wrs[w][q], round, out[w][q]); err != nil {
					errCh <- fmt.Errorf("cluster: worker %d -> %d: %w", w, q, err)
					return
				}
			}
		}()
		// Reader side: one frame from every peer plus local loopback.
		wg.Add(1)
		go func() {
			defer wg.Done()
			batch := append([]Message(nil), out[w][w]...)
			for q := 0; q < t.p; q++ {
				if q == w {
					continue
				}
				ms, err := readFrame(t.rds[w][q], round)
				if err != nil {
					errCh <- fmt.Errorf("cluster: worker %d <- %d: %w", w, q, err)
					return
				}
				batch = append(batch, ms...)
			}
			in[w] = batch
		}()
	}
	wg.Wait()
	close(errCh)
	if err, ok := <-errCh; ok && err != nil {
		return nil, err
	}
	return in, nil
}

// writeFrame encodes one round's batch for one peer: an 8-byte frame
// header, then each message in the variable-length encoding of Message
// (fixed header plus length-prefixed payload). Encoding goes through a
// per-call scratch buffer flushed in chunks so payload-heavy messages do
// not pay a syscall per word.
func writeFrame(w *bufio.Writer, round uint32, ms []Message) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[:4], round)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(ms)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 1<<12)
	for _, m := range ms {
		buf = m.appendTo(buf)
		if len(buf) >= 1<<12 {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader, round uint32) ([]Message, error) {
	var hdr [8]byte
	if _, err := readFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if got := binary.LittleEndian.Uint32(hdr[:4]); got != round {
		return nil, fmt.Errorf("frame for round %d, want %d", got, round)
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	if count == 0 {
		return nil, nil
	}
	ms := make([]Message, count)
	for i := range ms {
		m, err := decodeMessage(r)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

type reader interface{ Read([]byte) (int, error) }

func readFull(r reader, buf []byte) (int, error) {
	n := 0
	for n < len(buf) {
		k, err := r.Read(buf[n:])
		n += k
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

func (t *tcpTransport) Close() error {
	// Each mesh link is a socket pair: the dialer's conn and the
	// acceptor's conn are distinct descriptors, so every non-nil entry
	// must be closed.
	var first error
	for w := range t.conns {
		for q := range t.conns[w] {
			if c := t.conns[w][q]; c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
				t.conns[w][q] = nil
			}
		}
	}
	return first
}
