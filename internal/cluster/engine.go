package cluster

import (
	"fmt"
	"sync"
)

// Config configures an Engine.
type Config struct {
	// Workers is the number of partitions P (the paper uses a 7-node
	// cluster; any P >= 1 works here).
	Workers int
	// Transport selects Local (default) or TCP.
	Transport TransportKind
	// Sequential forces single-goroutine execution of the compute phase,
	// useful to make data races impossible in debugging; by default all
	// workers compute concurrently.
	Sequential bool
}

// Stats accumulates the communication costs the paper reasons about.
type Stats struct {
	Rounds   int64 // barrier-separated supersteps executed
	Messages int64 // messages exchanged (including worker-local delivery)
	Bytes    int64 // wire bytes: the sum of Message.WireSize over exchanged messages
}

// Sub returns s - o, for measuring a phase delta.
func (s Stats) Sub(o Stats) Stats {
	return Stats{Rounds: s.Rounds - o.Rounds, Messages: s.Messages - o.Messages, Bytes: s.Bytes - o.Bytes}
}

// Emitter queues a message for delivery to worker `to` at the next round.
type Emitter func(to int, m Message)

// StepFunc is one worker's compute for one superstep. inbox holds the
// messages addressed to this worker in the previous round (order
// unspecified). The worker emits next-round messages via emit and returns
// whether it wants another round even without incoming messages.
type StepFunc func(worker, round int, inbox []Message, emit Emitter) (active bool, err error)

// RoundStat is the wire traffic one superstep of the most recent
// Run/RunRounds call moved into its successor round.
type RoundStat struct {
	Messages int64
	Bytes    int64
}

// Engine executes BSP supersteps over P workers. Create with New, run any
// number of phases with Run or RunRounds, inspect Stats, then Close.
type Engine struct {
	cfg       Config
	part      Partitioner
	transport Transport
	stats     Stats
	trace     []RoundStat
}

// New creates an engine with cfg.Workers partitions and the selected
// transport.
func New(cfg Config) (*Engine, error) {
	if cfg.Workers <= 0 {
		return nil, fmt.Errorf("cluster: workers=%d must be positive", cfg.Workers)
	}
	e := &Engine{cfg: cfg, part: Partitioner{P: cfg.Workers}}
	switch cfg.Transport {
	case Local:
		e.transport = newLocalTransport(cfg.Workers)
	case TCP:
		t, err := newTCPTransport(cfg.Workers)
		if err != nil {
			return nil, err
		}
		e.transport = t
	default:
		return nil, fmt.Errorf("cluster: unknown transport %v", cfg.Transport)
	}
	return e, nil
}

// Workers returns the partition count P.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Owner returns the worker owning vertex v.
func (e *Engine) Owner(v uint32) int { return e.part.Owner(v) }

// Stats returns the accumulated communication statistics.
func (e *Engine) Stats() Stats { return e.stats }

// LastTrace returns the per-round wire stats of the most recent Run or
// RunRounds call (index = round number). A run's final round always shows
// zero traffic: its emissions were discarded (fixed-length RunRounds) or
// absent (quiescent termination). The slice is reused by the next run; copy
// it to keep it.
func (e *Engine) LastTrace() []RoundStat { return e.trace }

// Close releases the transport.
func (e *Engine) Close() error { return e.transport.Close() }

// Run executes supersteps until no worker is active and no messages are in
// flight. It returns the number of rounds executed.
func (e *Engine) Run(step StepFunc) (int, error) {
	return e.run(step, -1)
}

// RunRounds executes exactly n supersteps. Messages emitted in the final
// round are DISCARDED: there is no round n+1 to deliver them into, so they
// never cross the transport and are not charged to Stats.Messages or
// Stats.Bytes (Stats meters wire traffic, and a discarded message moves no
// bytes). Phases whose last round must still be heard should run one round
// more and leave that extra round's emit unused.
func (e *Engine) RunRounds(step StepFunc, n int) (int, error) {
	return e.run(step, n)
}

func (e *Engine) run(step StepFunc, maxRounds int) (int, error) {
	p := e.cfg.Workers
	inboxes := make([][]Message, p)
	round := 0
	e.trace = e.trace[:0]
	for {
		if maxRounds >= 0 && round >= maxRounds {
			return round, nil
		}
		out := make([][][]Message, p)
		active := make([]bool, p)
		errs := make([]error, p)
		compute := func(w int) {
			boxes := make([][]Message, p)
			out[w] = boxes
			emit := func(to int, m Message) {
				if to < 0 || to >= p {
					panic(fmt.Sprintf("cluster: emit to worker %d of %d", to, p))
				}
				boxes[to] = append(boxes[to], m)
			}
			active[w], errs[w] = step(w, round, inboxes[w], emit)
		}
		if e.cfg.Sequential || p == 1 {
			for w := 0; w < p; w++ {
				compute(w)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < p; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					compute(w)
				}()
			}
			wg.Wait()
		}
		for w := 0; w < p; w++ {
			if errs[w] != nil {
				return round, fmt.Errorf("cluster: worker %d round %d: %w", w, round, errs[w])
			}
		}

		e.stats.Rounds++
		round++

		// A final RunRounds round has no successor to deliver into: its
		// emissions are discarded before the transport and charged nothing.
		if maxRounds >= 0 && round >= maxRounds {
			e.trace = append(e.trace, RoundStat{})
			return round, nil
		}

		sent, bytes := int64(0), int64(0)
		for w := 0; w < p; w++ {
			for to := 0; to < p; to++ {
				sent += int64(len(out[w][to]))
				for _, m := range out[w][to] {
					bytes += int64(m.WireSize())
				}
			}
		}
		e.stats.Messages += sent
		e.stats.Bytes += bytes
		e.trace = append(e.trace, RoundStat{Messages: sent, Bytes: bytes})

		anyActive := false
		for _, a := range active {
			anyActive = anyActive || a
		}
		if sent == 0 && !anyActive {
			return round, nil
		}

		in, err := e.transport.Exchange(out)
		if err != nil {
			return round, err
		}
		inboxes = in
	}
}

// AllReduceMin performs a global minimum over one float64 per worker,
// modelling the aggregation tree a real cluster would use: every worker
// sends its value to worker 0, which reduces and broadcasts back. The 2P
// messages and 2 rounds are charged to the engine's stats. A single-worker
// "cluster" already holds the answer locally, so P=1 charges nothing.
func (e *Engine) AllReduceMin(vals []float64) float64 {
	p := e.cfg.Workers
	min := vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
	}
	if p > 1 {
		e.stats.Rounds += 2
		e.stats.Messages += int64(2 * p)
		e.stats.Bytes += int64(2*p) * 8
	}
	return min
}
