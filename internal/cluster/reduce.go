package cluster

// Piggybacked all-reduce. AllReduceMin (engine.go) models the classic
// aggregation tree: 2 dedicated rounds and 2P messages per reduction. For
// per-round agreement decisions — "which correction level does the cluster
// process next?" — paying a barrier per decision would erase the win the
// decision buys, so the sparse Update schedule uses this barrier-free
// variant instead: every worker appends one header-only ballot per peer to
// whatever superstep it is already emitting from, and every worker folds
// the P ballots out of its next inbox. The agreement costs zero extra
// rounds and P² header-only messages per reduced round, the right trade at
// the small worker counts BSP rounds are expensive for.

// AllMinIdle is the ballot value meaning "I have no candidate". Workers
// with nothing to contribute simply do not vote — in BSP, silence is as
// reliable as a message — and ReduceAllMin returns AllMinIdle when no
// ballot arrived at all.
const AllMinIdle = ^uint32(0)

// EmitAllMin broadcasts one (val, flag) ballot to all p workers under the
// given message kind, piggybacking on the superstep the caller is already
// running: every worker receives every ballot in the next round's inbox
// and folds them with ReduceAllMin, so all workers reach the same verdict
// without a dedicated barrier.
func EmitAllMin(emit Emitter, p int, kind uint8, val uint32, flag bool) {
	b := uint32(0)
	if flag {
		b = 1
	}
	for to := 0; to < p; to++ {
		emit(to, Message{Kind: kind, A: val, B: b})
	}
}

// ReduceAllMin folds the kind-tagged ballots of one inbox: val is the
// minimum balloted value (AllMinIdle when nobody voted) and flag is the
// AND of the flags attached to the winning value's ballots — "everyone
// who nominated the minimum can also handle it locally". votes counts the
// folded ballots so callers can assert participation.
func ReduceAllMin(inbox []Message, kind uint8) (val uint32, flag bool, votes int) {
	val, flag = AllMinIdle, true
	for _, m := range inbox {
		if m.Kind != kind {
			continue
		}
		votes++
		switch {
		case m.A < val:
			val, flag = m.A, m.B != 0
		case m.A == val && val != AllMinIdle:
			flag = flag && m.B != 0
		}
	}
	return val, flag, votes
}
