package cluster

import "fmt"

// Transport moves one superstep's messages between workers. Exchange is
// called once per round with out[from][to] batches and must return
// in[to] — the concatenation (in any order) of every batch destined to
// worker `to`. Implementations own the synchronization; when Exchange
// returns, the barrier has been passed.
type Transport interface {
	Exchange(out [][][]Message) (in [][]Message, err error)
	Close() error
}

// TransportKind selects a transport implementation.
type TransportKind uint8

const (
	// Local exchanges messages in memory (default).
	Local TransportKind = iota
	// TCP exchanges messages over loopback TCP connections.
	TCP
)

// String names the transport kind.
func (k TransportKind) String() string {
	switch k {
	case Local:
		return "local"
	case TCP:
		return "tcp"
	default:
		return fmt.Sprintf("TransportKind(%d)", k)
	}
}

// localTransport delivers batches by slice regrouping; no copying of
// message payloads.
type localTransport struct {
	p int
}

func newLocalTransport(p int) *localTransport { return &localTransport{p: p} }

func (t *localTransport) Exchange(out [][][]Message) ([][]Message, error) {
	in := make([][]Message, t.p)
	for to := 0; to < t.p; to++ {
		total := 0
		for from := 0; from < t.p; from++ {
			total += len(out[from][to])
		}
		if total == 0 {
			continue
		}
		buf := make([]Message, 0, total)
		for from := 0; from < t.p; from++ {
			buf = append(buf, out[from][to]...)
		}
		in[to] = buf
	}
	return in, nil
}

func (t *localTransport) Close() error { return nil }
