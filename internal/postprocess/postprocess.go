// Package postprocess extracts overlapping communities from rSLPA label
// sequences, implementing Section III-B of the paper.
//
// Because uniform picking keeps label *distributions* rather than a single
// dominant label, communities cannot be read off by per-vertex
// thresholding as in SLPA. Instead:
//
//  1. every edge (i, j) is weighted by the probability that a uniformly
//     drawn label from L_i equals one from L_j (computed by counting common
//     labels: w_ij = Σ_l f(l,i)·f(l,j) / (T+1)²);
//  2. a strong threshold τ₁ keeps high-similarity edges; each connected
//     component with ≥ 2 vertices of the filtered graph is a community.
//     τ₁ is chosen to maximize the information entropy of relative
//     community sizes (Equation 1);
//  3. a weak threshold τ₂ = minᵢ maxⱼ w_ij (Equation 2, the "no isolated
//     vertex" principle) attaches each leftover vertex to the communities
//     of its strong neighbors with w ≥ τ₂ — attachment to several
//     communities is what creates overlap.
//
// The paper enumerates τ₁ candidates on a fixed grid (0.001); this package
// provides that grid search for fidelity plus an exact sweep that inserts
// edges in descending weight order into a union-find while maintaining the
// entropy incrementally, evaluating *every* distinct weight in
// O(|E| log |E|) total.
package postprocess

import (
	"fmt"
	"math"
	"slices"

	"rslpa/internal/cover"
	"rslpa/internal/graph"
)

// LabelSeq returns the label sequence of a vertex; it is how this package
// reads the propagation result without depending on a concrete state type.
type LabelSeq func(v uint32) []uint32

// GraphView is the read-only graph access extraction needs. *graph.Graph
// implements it, and so does the streaming service's copy-on-write
// snapshot view — extraction never mutates the graph, so any frozen view
// with the same deterministic iteration order works. ForEachEdge must
// visit each undirected edge exactly once with the same order for equal
// graphs (ascending u, adjacency order) for results to stay bit-identical
// across views.
type GraphView interface {
	NumVertices() int
	NumEdges() int
	Vertices() []graph.VertexID
	ForEachEdge(fn func(u, v graph.VertexID))
}

// WeightMetric selects how the label-distribution similarity of two
// adjacent vertices is computed. The paper describes the weight as "the
// probability of getting the same label from Li and Lj ... obtained by just
// counting the common labels of two sequences"; the two readings of that
// sentence are both implemented.
type WeightMetric uint8

const (
	// Intersection counts common label occurrences (multiset
	// intersection): w = Σ_l min(f(l,i), f(l,j)) / (T+1). This equals
	// 1 minus the total-variation distance of the two empirical label
	// distributions; it approaches 1 for same-community vertices and is
	// the default (it reproduces the paper's reported NMI; see README.md).
	Intersection WeightMetric = iota
	// SameLabelProbability is the literal collision probability
	// w = Σ_l f(l,i)·f(l,j) / (T+1)², kept for ablation; it compresses
	// the within-community weights to ≈ ||p||² and yields measurably
	// worse extraction.
	SameLabelProbability
)

// WeightedEdge is an edge annotated with the label-distribution similarity
// of its endpoints.
type WeightedEdge struct {
	U, V uint32
	W    float64
}

// Config controls extraction. The zero value requests fully automatic
// thresholds with the exact sweep.
type Config struct {
	// Tau1 fixes the strong threshold; 0 selects it by entropy
	// maximization (Equation 1).
	Tau1 float64
	// Tau2 fixes the weak threshold; 0 selects minᵢ maxⱼ w_ij
	// (Equation 2).
	Tau2 float64
	// GridStep > 0 switches τ₁ selection to the paper's literal grid
	// enumeration with the given step (e.g. 0.001). 0 uses the exact
	// descending-weight sweep.
	GridStep float64
	// Metric selects the edge-weight definition (default Intersection).
	Metric WeightMetric
}

// Result is the outcome of community extraction.
type Result struct {
	Cover   *cover.Cover
	Tau1    float64
	Tau2    float64
	Entropy float64 // entropy of the strong communities at Tau1
	Strong  int     // number of strong communities (components ≥ 2)
	Weak    int     // number of weak (attached) memberships
}

// EncodeRuns sorts a copy of a label sequence and run-length encodes it as
// interleaved (label, count) words — the histogram form every weight
// computation (sequential and distributed) consumes, and the payload the
// distributed driver ships.
func EncodeRuns(seq []uint32) []uint32 {
	runs, _ := appendRuns(make([]uint32, 0, 8), nil, seq)
	return runs
}

// appendRuns is EncodeRuns into caller-owned buffers: dst receives the
// interleaved (label, count) runs, sortBuf is the sorting scratch. Both
// (possibly grown) are returned for reuse.
func appendRuns(dst, sortBuf, seq []uint32) (runs, buf []uint32) {
	sortBuf = append(sortBuf[:0], seq...)
	slices.Sort(sortBuf)
	dst = dst[:0]
	for i := 0; i < len(sortBuf); {
		j := i
		for j < len(sortBuf) && sortBuf[j] == sortBuf[i] {
			j++
		}
		dst = append(dst, sortBuf[i], uint32(j-i))
		i = j
	}
	return dst, sortBuf
}

// CommonRuns merge-joins two interleaved (label, count) run lists into the
// integer numerator of the similarity weight: Σ_l min(f_a, f_b) for
// Intersection, Σ_l f_a·f_b for SameLabelProbability. This single
// implementation is what keeps the distributed weights bit-identical to
// the sequential ones.
func CommonRuns(a, b []uint32, metric WeightMetric) uint64 {
	var common uint64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i += 2
		case a[i] > b[j]:
			j += 2
		default:
			ca, cb := uint64(a[i+1]), uint64(b[j+1])
			if metric == SameLabelProbability {
				common += ca * cb
			} else if ca < cb {
				common += ca
			} else {
				common += cb
			}
			i += 2
			j += 2
		}
	}
	return common
}

// EdgeWeights computes w_ij for every edge of g from the label sequences
// using the given metric. Weights are in [0, 1]. Repeated callers should
// hold an ExtractScratch and use its EdgeWeights method, which reuses the
// per-vertex encoding table instead of rebuilding it.
func EdgeWeights(g GraphView, labels LabelSeq, metric WeightMetric) []WeightedEdge {
	return new(ExtractScratch).EdgeWeights(g, labels, metric)
}

// sumRuns totals the counts of an interleaved run list (the sequence
// length).
func sumRuns(runs []uint32) uint64 {
	var s uint64
	for i := 1; i < len(runs); i += 2 {
		s += uint64(runs[i])
	}
	return s
}

// Tau2Of computes Equation 2: the minimum over vertices (with at least one
// edge) of the maximum incident edge weight. Repeated callers should use
// an ExtractScratch's Tau2Of method, which keeps the per-vertex maxima in
// a reusable dense table instead of a map.
func Tau2Of(edges []WeightedEdge) float64 {
	return new(ExtractScratch).Tau2Of(edges)
}

// Extract runs the full post-processing pipeline on a graph and its label
// sequences. Repeated callers should hold an ExtractScratch and use its
// Extract method, which reuses every intermediate table between calls.
func Extract(g GraphView, labels LabelSeq, cfg Config) (*Result, error) {
	return new(ExtractScratch).Extract(g, labels, cfg)
}

// ExtractFromWeights is Extract for callers that already computed (or
// obtained from the distributed engine) the edge weights.
func ExtractFromWeights(g GraphView, edges []WeightedEdge, cfg Config) (*Result, error) {
	return new(ExtractScratch).ExtractFromWeights(g, edges, cfg)
}

// MaxWeight returns the maximum edge weight of the set (0 when empty) — the
// fallback ceiling the τ₁ selectors use when no edge reaches τ₂.
func MaxWeight(edges []WeightedEdge) float64 {
	max := 0.0
	for _, e := range edges {
		if e.W > max {
			max = e.W
		}
	}
	return max
}

// ExtractFromForest assembles the final Result from a REDUCED edge set: any
// subset of the weighted edges that preserves connectivity at every
// threshold τ ≥ tau2 (ReduceForest produces the minimal such subset), plus
// a separate attachment candidate list that must contain every edge with
// tau2 ≤ w < τ₁ (supersets are fine — strong-strong and sub-τ₂ entries are
// filtered here). tau2 is the already-resolved weak threshold and maxWeight
// the maximum weight over the FULL edge set (the selectors' fallback when
// nothing reaches τ₂). It produces bit-identical results to
// ExtractFromWeights on the full set: the τ₁ entropy sweep only observes
// component structure, which the reduction preserves, and the entropy is
// evaluated canonically (see selectTau1Sweep). This is the master half of
// the distributed post-processing: workers ship forests and candidates, the
// master assembles.
func ExtractFromForest(g GraphView, conn, attach []WeightedEdge, tau2, maxWeight float64, cfg Config) (*Result, error) {
	return new(ExtractScratch).extractFromForest(g, conn, attach, tau2, maxWeight, cfg)
}

func (sc *ExtractScratch) extractFromForest(g GraphView, conn, attach []WeightedEdge, tau2, maxWeight float64, cfg Config) (*Result, error) {
	res := &Result{}
	res.Tau2 = tau2

	// Dense re-indexing of the vertices present in the graph, in the
	// scratch's stamped table.
	ids := g.Vertices()
	index := sc.indexVertices(ids)
	n := len(ids)

	switch {
	case cfg.Tau1 != 0:
		res.Tau1 = cfg.Tau1
	case cfg.GridStep > 0:
		res.Tau1 = selectTau1Grid(conn, index, n, res.Tau2, maxWeight, cfg.GridStep)
	default:
		res.Tau1 = selectTau1Sweep(conn, index, n, res.Tau2, maxWeight)
	}
	if res.Tau1 < res.Tau2 {
		return nil, fmt.Errorf("postprocess: τ1=%.4f < τ2=%.4f", res.Tau1, res.Tau2)
	}

	// Strong communities: components (≥ 2 vertices) of the τ₁-filtered
	// graph.
	uf := NewUnionFind(n)
	for _, e := range conn {
		if e.W >= res.Tau1 {
			uf.Union(int(index(e.U)), int(index(e.V)))
		}
	}
	// Dense community id per vertex, -1 = isolated (reused scratch).
	if cap(sc.commOf) < n {
		sc.commOf = make([]int32, n)
	}
	commOf := sc.commOf[:n]
	for i := range commOf {
		commOf[i] = -1
	}
	nextID := int32(0)
	rootID := make(map[int]int32)
	for i := 0; i < n; i++ {
		if uf.SizeOf(i) < 2 {
			continue
		}
		root := uf.Find(i)
		id, ok := rootID[root]
		if !ok {
			id = nextID
			nextID++
			rootID[root] = id
		}
		commOf[i] = id
	}
	res.Strong = int(nextID)
	members := make([][]uint32, nextID)
	for i := 0; i < n; i++ {
		if id := commOf[i]; id >= 0 {
			members[id] = append(members[id], ids[i])
		}
	}
	res.Entropy = entropyOfSizes(members, n)

	// Weak attachment: isolated vertices join the communities of their
	// non-isolated neighbors with w ≥ τ₂ (possibly several — overlap).
	// Duplicate candidates are harmless: membership is deduplicated per
	// (vertex, community) pair.
	joins := make(map[int32][]int32) // dense vertex -> community ids
	for _, e := range attach {
		if e.W < res.Tau2 {
			continue
		}
		du, dv := index(e.U), index(e.V)
		cu, cv := commOf[du], commOf[dv]
		if cu < 0 && cv >= 0 {
			joins[du] = appendUnique(joins[du], cv)
		}
		if cv < 0 && cu >= 0 {
			joins[dv] = appendUnique(joins[dv], cu)
		}
	}
	for dv, comms := range joins {
		for _, id := range comms {
			members[id] = append(members[id], ids[dv])
			res.Weak++
		}
	}

	res.Cover = cover.New(len(members))
	for _, m := range members {
		res.Cover.Add(m)
	}
	return res, nil
}

func appendUnique(s []int32, x int32) []int32 {
	for _, v := range s {
		if v == x {
			return s
		}
	}
	return append(s, x)
}

func entropyOfSizes(members [][]uint32, n int) float64 {
	h := 0.0
	for _, m := range members {
		if len(m) < 2 {
			continue
		}
		p := float64(len(m)) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// SelectTau1 chooses the strong threshold τ₁ ∈ [τ₂, max w] maximizing the
// community-size entropy (Equation 1) using the exact descending-weight
// sweep. vertexCount is |V| of the full graph (the entropy denominator).
// It is exported for the distributed driver, whose master performs this
// selection on gathered weights.
func SelectTau1(edges []WeightedEdge, vertexCount int, tau2 float64) float64 {
	return ChooseTau1(edges, vertexCount, tau2, MaxWeight(edges), Config{})
}

// ChooseTau1 resolves the strong threshold for an already-reduced edge set:
// cfg.Tau1 when fixed, the grid enumeration when cfg.GridStep > 0, the
// exact sweep otherwise. n is |V| of the full graph, maxWeight the maximum
// over the FULL (unreduced) edge set. Because the entropy evaluation is
// canonical, the result does not depend on vertex indexing or edge order —
// the distributed master uses this on the tree-reduced forest to pick the
// identical τ₁ the sequential sweep picks on all edges.
func ChooseTau1(edges []WeightedEdge, n int, tau2, maxWeight float64, cfg Config) float64 {
	if cfg.Tau1 != 0 {
		return cfg.Tau1
	}
	indexMap := make(map[uint32]int32)
	next := int32(0)
	for _, e := range edges {
		if _, ok := indexMap[e.U]; !ok {
			indexMap[e.U] = next
			next++
		}
		if _, ok := indexMap[e.V]; !ok {
			indexMap[e.V] = next
			next++
		}
	}
	index := func(v uint32) int32 { return indexMap[v] }
	if cfg.GridStep > 0 {
		return selectTau1Grid(edges, index, n, tau2, maxWeight, cfg.GridStep)
	}
	return selectTau1Sweep(edges, index, n, tau2, maxWeight)
}

// sizeHist tracks the multiset of component sizes during an incremental
// union sweep and evaluates the size entropy canonically: summing −p·ln p
// over distinct sizes in ascending order makes the float result a pure
// function of the partition, independent of the merge history, the edge
// order, and the vertex indexing. That independence is what lets the
// distributed sweep (which sees a connectivity-preserving subset of the
// edges in a different order) select a bit-identical τ₁.
type sizeHist struct {
	count   map[int32]int32
	scratch []int32
}

func newSizeHist(n int) *sizeHist {
	return &sizeHist{count: map[int32]int32{1: int32(n)}}
}

// merge records that components of sizes a and b fused.
func (h *sizeHist) merge(a, b int32) {
	if h.count[a]--; h.count[a] == 0 {
		delete(h.count, a)
	}
	if h.count[b]--; h.count[b] == 0 {
		delete(h.count, b)
	}
	h.count[a+b]++
}

// entropy evaluates Equation 1 over the current partition of n vertices.
func (h *sizeHist) entropy(n float64) float64 {
	h.scratch = h.scratch[:0]
	for s := range h.count {
		if s >= 2 {
			h.scratch = append(h.scratch, s)
		}
	}
	slices.Sort(h.scratch)
	e := 0.0
	for _, s := range h.scratch {
		p := float64(s) / n
		e -= float64(h.count[s]) * p * math.Log(p)
	}
	return e
}

// entropyOfPartition evaluates the canonical size entropy of a completed
// union-find over n dense vertices (used by the grid enumeration).
func entropyOfPartition(uf *UnionFind, n int) float64 {
	sizes := make([]int32, 0, 16)
	counted := make(map[int]bool)
	for i := 0; i < n; i++ {
		root := uf.Find(i)
		if counted[root] {
			continue
		}
		counted[root] = true
		if s := uf.SizeOf(i); s >= 2 {
			sizes = append(sizes, int32(s))
		}
	}
	slices.Sort(sizes)
	h, fn := 0.0, float64(n)
	for _, s := range sizes {
		p := float64(s) / fn
		h -= p * math.Log(p)
	}
	return h
}

// selectTau1Sweep evaluates the community entropy at every distinct edge
// weight ≥ τ₂ by inserting edges in descending weight order into a
// union-find, maintaining the component-size multiset incrementally, and
// returns the weight maximizing the entropy (the largest such weight on
// ties). maxWeight is the maximum over the full edge set — the fallback
// when no edge reaches τ₂.
func selectTau1Sweep(edges []WeightedEdge, index func(uint32) int32, n int, tau2, maxWeight float64) float64 {
	sorted := make([]WeightedEdge, 0, len(edges))
	for _, e := range edges {
		if e.W >= tau2 {
			sorted = append(sorted, e)
		}
	}
	if len(sorted) == 0 {
		return math.Max(tau2, maxWeight)
	}
	// Tie order within a weight is irrelevant: the entropy is evaluated
	// once per distinct weight, after the whole group is inserted.
	slices.SortFunc(sorted, func(a, b WeightedEdge) int {
		switch {
		case a.W > b.W:
			return -1
		case a.W < b.W:
			return 1
		}
		return 0
	})

	uf := NewUnionFind(n)
	hist := newSizeHist(n)
	fn := float64(n)
	bestTau, bestH := sorted[0].W, math.Inf(-1)
	i := 0
	for i < len(sorted) {
		w := sorted[i].W
		for i < len(sorted) && sorted[i].W == w {
			e := sorted[i]
			a, b := int(index(e.U)), int(index(e.V))
			ra, rb := uf.Find(a), uf.Find(b)
			if ra != rb {
				hist.merge(int32(uf.SizeOf(ra)), int32(uf.SizeOf(rb)))
				uf.Union(ra, rb)
			}
			i++
		}
		// All edges with weight >= w inserted: entropy is H(τ₁ = w).
		if h := hist.entropy(fn); h > bestH {
			bestH, bestTau = h, w
		}
	}
	return bestTau
}

// selectTau1Grid is the paper's literal enumeration: τ₁ candidates from τ₂
// to max(w) in fixed steps, running connected components at each step.
func selectTau1Grid(edges []WeightedEdge, index func(uint32) int32, n int, tau2, maxWeight, step float64) float64 {
	maxW := math.Max(tau2, maxWeight)
	bestTau, bestH := maxW, math.Inf(-1)
	for tau := tau2; tau <= maxW+step/2; tau += step {
		uf := NewUnionFind(n)
		for _, e := range edges {
			if e.W >= tau {
				uf.Union(int(index(e.U)), int(index(e.V)))
			}
		}
		if h := entropyOfPartition(uf, n); h > bestH {
			bestH, bestTau = h, tau
		}
	}
	return bestTau
}
