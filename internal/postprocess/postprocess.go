// Package postprocess extracts overlapping communities from rSLPA label
// sequences, implementing Section III-B of the paper.
//
// Because uniform picking keeps label *distributions* rather than a single
// dominant label, communities cannot be read off by per-vertex
// thresholding as in SLPA. Instead:
//
//  1. every edge (i, j) is weighted by the probability that a uniformly
//     drawn label from L_i equals one from L_j (computed by counting common
//     labels: w_ij = Σ_l f(l,i)·f(l,j) / (T+1)²);
//  2. a strong threshold τ₁ keeps high-similarity edges; each connected
//     component with ≥ 2 vertices of the filtered graph is a community.
//     τ₁ is chosen to maximize the information entropy of relative
//     community sizes (Equation 1);
//  3. a weak threshold τ₂ = minᵢ maxⱼ w_ij (Equation 2, the "no isolated
//     vertex" principle) attaches each leftover vertex to the communities
//     of its strong neighbors with w ≥ τ₂ — attachment to several
//     communities is what creates overlap.
//
// The paper enumerates τ₁ candidates on a fixed grid (0.001); this package
// provides that grid search for fidelity plus an exact sweep that inserts
// edges in descending weight order into a union-find while maintaining the
// entropy incrementally, evaluating *every* distinct weight in
// O(|E| log |E|) total.
package postprocess

import (
	"fmt"
	"math"
	"sort"

	"rslpa/internal/cover"
	"rslpa/internal/graph"
)

// LabelSeq returns the label sequence of a vertex; it is how this package
// reads the propagation result without depending on a concrete state type.
type LabelSeq func(v uint32) []uint32

// WeightMetric selects how the label-distribution similarity of two
// adjacent vertices is computed. The paper describes the weight as "the
// probability of getting the same label from Li and Lj ... obtained by just
// counting the common labels of two sequences"; the two readings of that
// sentence are both implemented.
type WeightMetric uint8

const (
	// Intersection counts common label occurrences (multiset
	// intersection): w = Σ_l min(f(l,i), f(l,j)) / (T+1). This equals
	// 1 minus the total-variation distance of the two empirical label
	// distributions; it approaches 1 for same-community vertices and is
	// the default (it reproduces the paper's reported NMI; see DESIGN.md).
	Intersection WeightMetric = iota
	// SameLabelProbability is the literal collision probability
	// w = Σ_l f(l,i)·f(l,j) / (T+1)², kept for ablation; it compresses
	// the within-community weights to ≈ ||p||² and yields measurably
	// worse extraction.
	SameLabelProbability
)

// WeightedEdge is an edge annotated with the label-distribution similarity
// of its endpoints.
type WeightedEdge struct {
	U, V uint32
	W    float64
}

// Config controls extraction. The zero value requests fully automatic
// thresholds with the exact sweep.
type Config struct {
	// Tau1 fixes the strong threshold; 0 selects it by entropy
	// maximization (Equation 1).
	Tau1 float64
	// Tau2 fixes the weak threshold; 0 selects minᵢ maxⱼ w_ij
	// (Equation 2).
	Tau2 float64
	// GridStep > 0 switches τ₁ selection to the paper's literal grid
	// enumeration with the given step (e.g. 0.001). 0 uses the exact
	// descending-weight sweep.
	GridStep float64
	// Metric selects the edge-weight definition (default Intersection).
	Metric WeightMetric
}

// Result is the outcome of community extraction.
type Result struct {
	Cover   *cover.Cover
	Tau1    float64
	Tau2    float64
	Entropy float64 // entropy of the strong communities at Tau1
	Strong  int     // number of strong communities (components ≥ 2)
	Weak    int     // number of weak (attached) memberships
}

// EdgeWeights computes w_ij for every edge of g from the label sequences
// using the given metric. Weights are in [0, 1].
func EdgeWeights(g *graph.Graph, labels LabelSeq, metric WeightMetric) []WeightedEdge {
	// Run-length encode each vertex's sorted label sequence once.
	type runs struct {
		label []uint32
		count []uint32
	}
	encoded := make(map[uint32]*runs, g.NumVertices())
	encode := func(v uint32) *runs {
		if r, ok := encoded[v]; ok {
			return r
		}
		seq := labels(v)
		sorted := append([]uint32(nil), seq...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		r := &runs{}
		for i := 0; i < len(sorted); {
			j := i
			for j < len(sorted) && sorted[j] == sorted[i] {
				j++
			}
			r.label = append(r.label, sorted[i])
			r.count = append(r.count, uint32(j-i))
			i = j
		}
		encoded[v] = r
		return r
	}

	edges := make([]WeightedEdge, 0, g.NumEdges())
	g.ForEachEdge(func(u, v uint32) {
		ru, rv := encode(u), encode(v)
		var common uint64
		i, j := 0, 0
		for i < len(ru.label) && j < len(rv.label) {
			switch {
			case ru.label[i] < rv.label[j]:
				i++
			case ru.label[i] > rv.label[j]:
				j++
			default:
				if metric == Intersection {
					common += uint64(min32(ru.count[i], rv.count[j]))
				} else {
					common += uint64(ru.count[i]) * uint64(rv.count[j])
				}
				i++
				j++
			}
		}
		lu := float64(sum(ru.count))
		lv := float64(sum(rv.count))
		w := float64(common) / lu
		if metric == SameLabelProbability {
			w = float64(common) / (lu * lv)
		}
		edges = append(edges, WeightedEdge{U: u, V: v, W: w})
	})
	return edges
}

func min32(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func sum(xs []uint32) uint64 {
	var s uint64
	for _, x := range xs {
		s += uint64(x)
	}
	return s
}

// Tau2Of computes Equation 2: the minimum over vertices (with at least one
// edge) of the maximum incident edge weight.
func Tau2Of(edges []WeightedEdge) float64 {
	maxW := make(map[uint32]float64)
	for _, e := range edges {
		if w, ok := maxW[e.U]; !ok || e.W > w {
			maxW[e.U] = e.W
		}
		if w, ok := maxW[e.V]; !ok || e.W > w {
			maxW[e.V] = e.W
		}
	}
	tau2 := math.Inf(1)
	for _, w := range maxW {
		if w < tau2 {
			tau2 = w
		}
	}
	if math.IsInf(tau2, 1) {
		return 0
	}
	return tau2
}

// Extract runs the full post-processing pipeline on a graph and its label
// sequences.
func Extract(g *graph.Graph, labels LabelSeq, cfg Config) (*Result, error) {
	if g.NumVertices() == 0 {
		return &Result{Cover: cover.New(0)}, nil
	}
	edges := EdgeWeights(g, labels, cfg.Metric)
	return ExtractFromWeights(g, edges, cfg)
}

// ExtractFromWeights is Extract for callers that already computed (or
// obtained from the distributed engine) the edge weights.
func ExtractFromWeights(g *graph.Graph, edges []WeightedEdge, cfg Config) (*Result, error) {
	res := &Result{}
	res.Tau2 = cfg.Tau2
	if res.Tau2 == 0 {
		res.Tau2 = Tau2Of(edges)
	}

	// Dense re-indexing of the vertices present in the graph.
	ids := g.Vertices()
	index := make(map[uint32]int32, len(ids))
	for i, v := range ids {
		index[v] = int32(i)
	}
	n := len(ids)

	switch {
	case cfg.Tau1 != 0:
		res.Tau1 = cfg.Tau1
	case cfg.GridStep > 0:
		res.Tau1 = selectTau1Grid(edges, index, n, res.Tau2, cfg.GridStep)
	default:
		res.Tau1 = selectTau1Sweep(edges, index, n, res.Tau2)
	}
	if res.Tau1 < res.Tau2 {
		return nil, fmt.Errorf("postprocess: τ1=%.4f < τ2=%.4f", res.Tau1, res.Tau2)
	}

	// Strong communities: components (≥ 2 vertices) of the τ₁-filtered
	// graph.
	uf := NewUnionFind(n)
	for _, e := range edges {
		if e.W >= res.Tau1 {
			uf.Union(int(index[e.U]), int(index[e.V]))
		}
	}
	commOf := make([]int32, n) // dense community id per vertex, -1 = isolated
	for i := range commOf {
		commOf[i] = -1
	}
	nextID := int32(0)
	rootID := make(map[int]int32)
	for i := 0; i < n; i++ {
		if uf.SizeOf(i) < 2 {
			continue
		}
		root := uf.Find(i)
		id, ok := rootID[root]
		if !ok {
			id = nextID
			nextID++
			rootID[root] = id
		}
		commOf[i] = id
	}
	res.Strong = int(nextID)
	members := make([][]uint32, nextID)
	for i := 0; i < n; i++ {
		if id := commOf[i]; id >= 0 {
			members[id] = append(members[id], ids[i])
		}
	}
	res.Entropy = entropyOfSizes(members, n)

	// Weak attachment: isolated vertices join the communities of their
	// non-isolated neighbors with w ≥ τ₂ (possibly several — overlap).
	attach := make(map[int32][]int32) // dense vertex -> community ids
	for _, e := range edges {
		if e.W < res.Tau2 {
			continue
		}
		du, dv := index[e.U], index[e.V]
		cu, cv := commOf[du], commOf[dv]
		if cu < 0 && cv >= 0 {
			attach[du] = appendUnique(attach[du], cv)
		}
		if cv < 0 && cu >= 0 {
			attach[dv] = appendUnique(attach[dv], cu)
		}
	}
	for dv, comms := range attach {
		for _, id := range comms {
			members[id] = append(members[id], ids[dv])
			res.Weak++
		}
	}

	res.Cover = cover.New(len(members))
	for _, m := range members {
		res.Cover.Add(m)
	}
	return res, nil
}

func appendUnique(s []int32, x int32) []int32 {
	for _, v := range s {
		if v == x {
			return s
		}
	}
	return append(s, x)
}

func entropyOfSizes(members [][]uint32, n int) float64 {
	h := 0.0
	for _, m := range members {
		if len(m) < 2 {
			continue
		}
		p := float64(len(m)) / float64(n)
		h -= p * math.Log(p)
	}
	return h
}

// SelectTau1 chooses the strong threshold τ₁ ∈ [τ₂, max w] maximizing the
// community-size entropy (Equation 1) using the exact descending-weight
// sweep. vertexCount is |V| of the full graph (the entropy denominator).
// It is exported for the distributed driver, whose master performs this
// selection on gathered weights.
func SelectTau1(edges []WeightedEdge, vertexCount int, tau2 float64) float64 {
	index := make(map[uint32]int32)
	next := int32(0)
	for _, e := range edges {
		if _, ok := index[e.U]; !ok {
			index[e.U] = next
			next++
		}
		if _, ok := index[e.V]; !ok {
			index[e.V] = next
			next++
		}
	}
	return selectTau1Sweep(edges, index, vertexCount, tau2)
}

// selectTau1Sweep evaluates the community entropy at every distinct edge
// weight ≥ τ₂ by inserting edges in descending weight order into a
// union-find, maintaining the entropy term-by-term, and returns the weight
// maximizing it (the largest such weight on ties).
func selectTau1Sweep(edges []WeightedEdge, index map[uint32]int32, n int, tau2 float64) float64 {
	sorted := make([]WeightedEdge, 0, len(edges))
	maxW := tau2
	for _, e := range edges {
		if e.W >= tau2 {
			sorted = append(sorted, e)
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	if len(sorted) == 0 {
		return maxW
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].W > sorted[j].W })

	uf := NewUnionFind(n)
	fn := float64(n)
	term := func(size int) float64 {
		if size < 2 {
			return 0
		}
		p := float64(size) / fn
		return -p * math.Log(p)
	}
	entropy := 0.0
	bestTau, bestH := sorted[0].W, math.Inf(-1)
	i := 0
	for i < len(sorted) {
		w := sorted[i].W
		for i < len(sorted) && sorted[i].W == w {
			e := sorted[i]
			a, b := int(index[e.U]), int(index[e.V])
			ra, rb := uf.Find(a), uf.Find(b)
			if ra != rb {
				entropy -= term(uf.SizeOf(ra)) + term(uf.SizeOf(rb))
				root, _ := uf.Union(ra, rb)
				entropy += term(uf.SizeOf(root))
			}
			i++
		}
		// All edges with weight >= w inserted: entropy is H(τ₁ = w).
		if entropy > bestH {
			bestH, bestTau = entropy, w
		}
	}
	return bestTau
}

// selectTau1Grid is the paper's literal enumeration: τ₁ candidates from τ₂
// to max(w) in fixed steps, running connected components at each step.
func selectTau1Grid(edges []WeightedEdge, index map[uint32]int32, n int, tau2, step float64) float64 {
	maxW := tau2
	for _, e := range edges {
		if e.W > maxW {
			maxW = e.W
		}
	}
	bestTau, bestH := maxW, math.Inf(-1)
	for tau := tau2; tau <= maxW+step/2; tau += step {
		uf := NewUnionFind(n)
		for _, e := range edges {
			if e.W >= tau {
				uf.Union(int(index[e.U]), int(index[e.V]))
			}
		}
		h := 0.0
		fn := float64(n)
		counted := make(map[int]bool)
		for i := 0; i < n; i++ {
			root := uf.Find(i)
			if counted[root] {
				continue
			}
			counted[root] = true
			if s := uf.SizeOf(i); s >= 2 {
				p := float64(s) / fn
				h -= p * math.Log(p)
			}
		}
		if h > bestH {
			bestH, bestTau = h, tau
		}
	}
	return bestTau
}
