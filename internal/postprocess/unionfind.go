package postprocess

// UnionFind is a disjoint-set forest with union by size and path halving,
// used both by the threshold sweep (incremental edge insertion in
// descending weight order) and as the sequential reference for the
// distributed hash-to-min connected components.
type UnionFind struct {
	parent []int32
	size   []int32
}

// NewUnionFind returns a forest of n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int32, n), size: make([]int32, n)}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	p := int32(x)
	for uf.parent[p] != p {
		uf.parent[p] = uf.parent[uf.parent[p]] // path halving
		p = uf.parent[p]
	}
	return int(p)
}

// Union merges the sets of a and b; it returns the surviving root and
// whether a merge actually happened.
func (uf *UnionFind) Union(a, b int) (root int, merged bool) {
	ra, rb := uf.Find(a), uf.Find(b)
	if ra == rb {
		return ra, false
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = int32(ra)
	uf.size[ra] += uf.size[rb]
	return ra, true
}

// SizeOf returns the size of x's set.
func (uf *UnionFind) SizeOf(x int) int {
	return int(uf.size[uf.Find(x)])
}

// Components groups the members [0,n) by representative and returns the
// groups (unsorted). Only callers that need full component lists use this;
// the sweep tracks sizes incrementally instead.
func (uf *UnionFind) Components() map[int][]int {
	comps := make(map[int][]int)
	for i := range uf.parent {
		comps[uf.Find(i)] = append(comps[uf.Find(i)], i)
	}
	return comps
}
