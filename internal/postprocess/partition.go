package postprocess

import (
	"slices"
)

// This file is the partition-aware half of the extraction pipeline: the
// pieces that let P workers each hold a share of the weighted edges and
// still produce a Result bit-identical to ExtractFromWeights on the union.
//
// The enabling observation is the classic spanning-forest reduction from
// distributed MST: a maximum-weight spanning forest of any edge subset
// preserves connectivity at EVERY threshold τ. If an edge (u,v,w) is
// dropped by the forest, its endpoints are connected by kept edges of
// weight ≥ w, so filtering at any τ ≤ w leaves u and v connected either
// way. Since the τ₁ entropy sweep, the strong components, and the entropy
// value all depend only on the component structure per threshold, each
// worker can reduce its O(|E|/P) edges to an O(|V|) forest, forests can be
// re-reduced pairwise up an aggregation tree, and the master's selection on
// the final forest matches the sequential selection on all edges exactly.

// ReduceForestBy is the Kruskal kernel shared by ReduceForest and the
// distributed driver's integer-count variant: keep the edges that merge
// two components when processed heaviest-first. include filters the
// candidates, heavier orders them descending (ties broken by endpoints for
// a canonical result), endpoints names an edge's vertices. An edge is
// dropped iff it is the lightest edge of a cycle among edges at least as
// heavy, so the kept forest preserves connectivity at every threshold the
// filter admits.
func ReduceForestBy[E any](edges []E, include func(E) bool, heavier func(a, b E) bool, endpoints func(E) (uint32, uint32)) []E {
	cand := make([]E, 0, len(edges))
	for _, e := range edges {
		if include(e) {
			cand = append(cand, e)
		}
	}
	slices.SortFunc(cand, func(a, b E) int {
		if heavier(a, b) {
			return -1
		}
		if heavier(b, a) {
			return 1
		}
		return 0
	})
	index := make(map[uint32]int32, 2*len(cand))
	dense := func(v uint32) int {
		if i, ok := index[v]; ok {
			return int(i)
		}
		i := int32(len(index))
		index[v] = i
		return int(i)
	}
	uf := NewUnionFind(2 * len(cand))
	kept := cand[:0]
	for _, e := range cand {
		u, v := endpoints(e)
		if _, merged := uf.Union(dense(u), dense(v)); merged {
			kept = append(kept, e)
		}
	}
	return kept
}

// ReduceForest returns a maximum-weight spanning forest of the edges with
// W ≥ tau2: the minimal subset preserving connectivity at every threshold
// τ ≥ tau2. Output is canonical — sorted by weight descending, ties by
// (U, V) ascending — so the reduction is deterministic for a given edge
// multiset regardless of input order. Reduction composes: reducing the
// concatenation of already-reduced parts is again connectivity-preserving,
// which is how the distributed gather re-reduces at every tree level.
func ReduceForest(edges []WeightedEdge, tau2 float64) []WeightedEdge {
	return ReduceForestBy(edges,
		func(e WeightedEdge) bool { return e.W >= tau2 },
		func(a, b WeightedEdge) bool {
			if a.W != b.W {
				return a.W > b.W
			}
			if a.U != b.U {
				return a.U < b.U
			}
			return a.V < b.V
		},
		func(e WeightedEdge) (uint32, uint32) { return e.U, e.V })
}

// Tau2OfParts is Tau2Of over partitioned edges. The min-of-max reduction is
// partition-oblivious, so delegating on the flattened parts keeps a single
// implementation of Equation 2.
func Tau2OfParts(parts [][]WeightedEdge) float64 {
	var all []WeightedEdge
	for _, part := range parts {
		all = append(all, part...)
	}
	return Tau2Of(all)
}

// ExtractPartitioned is ExtractFromWeights for edge sets split across P
// parts, structured exactly like the distributed post-processing: resolve
// τ₂ from per-part vertex maxima, reduce each part to its spanning forest,
// re-reduce the merged forests, and assemble from the forest plus per-part
// attachment candidates. It returns bit-identical Results to
// ExtractFromWeights on the concatenation of the parts, which the tests
// pin; internal/dist runs the same plan over the wire.
func ExtractPartitioned(g GraphView, parts [][]WeightedEdge, cfg Config) (*Result, error) {
	return new(ExtractScratch).ExtractPartitioned(g, parts, cfg)
}
