package postprocess

import (
	"math"
	"testing"
	"testing/quick"

	"rslpa/internal/core"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/rng"
)

// fixedLabels builds a LabelSeq from a map.
func fixedLabels(m map[uint32][]uint32) LabelSeq {
	return func(v uint32) []uint32 { return m[v] }
}

func TestEdgeWeightsIntersection(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	labels := fixedLabels(map[uint32][]uint32{
		1: {7, 7, 8, 9},
		2: {7, 8, 8, 5},
	})
	edges := EdgeWeights(g, labels, Intersection)
	if len(edges) != 1 {
		t.Fatalf("edges: %v", edges)
	}
	// min(2,1) for 7 + min(1,2) for 8 = 2; / 4 = 0.5
	if math.Abs(edges[0].W-0.5) > 1e-12 {
		t.Fatalf("weight = %v, want 0.5", edges[0].W)
	}
}

func TestEdgeWeightsSameLabelProbability(t *testing.T) {
	g := graph.New()
	g.AddEdge(1, 2)
	labels := fixedLabels(map[uint32][]uint32{
		1: {7, 7, 8, 9},
		2: {7, 8, 8, 5},
	})
	edges := EdgeWeights(g, labels, SameLabelProbability)
	// (2*1 + 1*2) / 16 = 0.25
	if math.Abs(edges[0].W-0.25) > 1e-12 {
		t.Fatalf("weight = %v, want 0.25", edges[0].W)
	}
}

func TestEdgeWeightsIdenticalSequencesScoreOne(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	labels := fixedLabels(map[uint32][]uint32{
		0: {3, 3, 4, 5, 5},
		1: {3, 3, 4, 5, 5},
	})
	edges := EdgeWeights(g, labels, Intersection)
	if math.Abs(edges[0].W-1) > 1e-12 {
		t.Fatalf("identical sequences: w = %v", edges[0].W)
	}
}

func TestEdgeWeightsSymmetricAndBounded(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		g := graph.New()
		m := make(map[uint32][]uint32)
		for v := uint32(0); v < 10; v++ {
			seq := make([]uint32, 11)
			for i := range seq {
				seq[i] = uint32(r.Intn(6))
			}
			m[v] = seq
		}
		for i := 0; i < 15; i++ {
			g.AddEdge(uint32(r.Intn(10)), uint32(r.Intn(10)))
		}
		for _, metric := range []WeightMetric{Intersection, SameLabelProbability} {
			for _, e := range EdgeWeights(g, fixedLabels(m), metric) {
				if e.W < 0 || e.W > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTau2OfMinMaxRule(t *testing.T) {
	edges := []WeightedEdge{
		{U: 1, V: 2, W: 0.9},
		{U: 2, V: 3, W: 0.4},
		{U: 3, V: 4, W: 0.7},
	}
	// max per vertex: 1:0.9, 2:0.9, 3:0.7, 4:0.7 -> min = 0.7
	if got := Tau2Of(edges); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("tau2 = %v", got)
	}
	if Tau2Of(nil) != 0 {
		t.Fatal("tau2 of empty edge set")
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if _, merged := uf.Union(0, 1); !merged {
		t.Fatal("first union")
	}
	if _, merged := uf.Union(1, 0); merged {
		t.Fatal("re-union reported merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Find(2) != uf.Find(1) {
		t.Fatal("transitive union broken")
	}
	if uf.SizeOf(0) != 4 {
		t.Fatalf("size = %d", uf.SizeOf(0))
	}
	if uf.Find(4) == uf.Find(0) {
		t.Fatal("separate sets merged")
	}
	comps := uf.Components()
	if len(comps) != 3 { // {0,1,2,3}, {4}, {5}
		t.Fatalf("components: %v", comps)
	}
}

func TestUnionFindMatchesNaive(t *testing.T) {
	check := func(pairs []uint16) bool {
		const n = 24
		uf := NewUnionFind(n)
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
		}
		for _, p := range pairs {
			a, b := int(p%n), int((p/n)%n)
			uf.Union(a, b)
			adj[a][b], adj[b][a] = true, true
		}
		// Naive reachability via BFS.
		comp := make([]int, n)
		for i := range comp {
			comp[i] = -1
		}
		next := 0
		for s := 0; s < n; s++ {
			if comp[s] >= 0 {
				continue
			}
			queue := []int{s}
			comp[s] = next
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for v := 0; v < n; v++ {
					if adj[u][v] && comp[v] < 0 {
						comp[v] = next
						queue = append(queue, v)
					}
				}
			}
			next++
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if (comp[a] == comp[b]) != (uf.Find(a) == uf.Find(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// twoCliques returns a graph of two 4-cliques joined by one bridge, with
// hand-made label sequences that make intra-clique weights high.
func twoCliques() (*graph.Graph, LabelSeq) {
	g := graph.New()
	cl := func(vs ...uint32) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				g.AddEdge(vs[i], vs[j])
			}
		}
	}
	cl(0, 1, 2, 3)
	cl(4, 5, 6, 7)
	g.AddEdge(3, 4)
	m := make(map[uint32][]uint32)
	for v := uint32(0); v < 4; v++ {
		m[v] = []uint32{1, 1, 1, 2}
	}
	for v := uint32(4); v < 8; v++ {
		m[v] = []uint32{5, 5, 5, 6}
	}
	return g, fixedLabels(m)
}

func TestExtractTwoCliques(t *testing.T) {
	g, labels := twoCliques()
	res, err := Extract(g, labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Strong != 2 {
		t.Fatalf("strong = %d (tau1=%.3f tau2=%.3f)", res.Strong, res.Tau1, res.Tau2)
	}
	canon := res.Cover.Canonical()
	if len(canon[0]) != 4 || len(canon[1]) != 4 {
		t.Fatalf("communities: %v", canon)
	}
}

func TestExtractFixedThresholds(t *testing.T) {
	g, labels := twoCliques()
	res, err := Extract(g, labels, Config{Tau1: 0.9, Tau2: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tau1 != 0.9 || res.Tau2 != 0.5 {
		t.Fatal("fixed thresholds ignored")
	}
	if res.Strong != 2 {
		t.Fatalf("strong = %d", res.Strong)
	}
}

func TestExtractRejectsInvertedThresholds(t *testing.T) {
	g, labels := twoCliques()
	if _, err := Extract(g, labels, Config{Tau1: 0.1, Tau2: 0.5}); err == nil {
		t.Fatal("tau1 < tau2 accepted")
	}
}

func TestExtractEmptyGraph(t *testing.T) {
	res, err := Extract(graph.New(), fixedLabels(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() != 0 {
		t.Fatal("empty graph produced communities")
	}
}

func TestWeakAttachmentCreatesOverlap(t *testing.T) {
	// Star of two triangles plus a middle vertex weakly similar to both.
	g := graph.New()
	cl := func(vs ...uint32) {
		for i := range vs {
			for j := i + 1; j < len(vs); j++ {
				g.AddEdge(vs[i], vs[j])
			}
		}
	}
	cl(0, 1, 2)
	cl(4, 5, 6)
	g.AddEdge(3, 0)
	g.AddEdge(3, 4)
	m := map[uint32][]uint32{
		0: {1, 1, 1, 9}, 1: {1, 1, 1, 9}, 2: {1, 1, 1, 9},
		4: {5, 5, 5, 9}, 5: {5, 5, 5, 9}, 6: {5, 5, 5, 9},
		3: {1, 5, 9, 9}, // half-similar to both sides
	}
	res, err := Extract(g, fixedLabels(m), Config{Tau1: 0.9, Tau2: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	member := res.Cover.Membership()
	if len(member[3]) != 2 {
		t.Fatalf("bridge memberships: %v (cover %v)", member[3], res.Cover.Canonical())
	}
	if res.Weak != 2 {
		t.Fatalf("weak = %d", res.Weak)
	}
}

// TestSweepMatchesGrid: the exact sweep must find a threshold whose entropy
// is >= the grid's on real label data.
func TestSweepMatchesGrid(t *testing.T) {
	p := lfr.Default(400)
	p.AvgDeg, p.MaxDeg, p.On = 10, 25, 40
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	edges := EdgeWeights(st.Graph(), st.Labels, Intersection)
	exact, err := ExtractFromWeights(st.Graph(), edges, Config{})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := ExtractFromWeights(st.Graph(), edges, Config{GridStep: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if exact.Entropy < grid.Entropy-1e-9 {
		t.Fatalf("exact sweep entropy %.6f below grid %.6f", exact.Entropy, grid.Entropy)
	}
	// Near-tied entropy peaks can put the two argmaxes at different
	// weights, but the grid cannot be more than one step better anywhere,
	// so the achieved entropies must be close.
	if grid.Entropy < exact.Entropy-0.2 {
		t.Fatalf("grid entropy %.4f far below exact %.4f", grid.Entropy, exact.Entropy)
	}
}

// TestEndToEndLFRQuality: the complete pipeline must recover planted
// communities with high NMI (this is the paper's central quality claim at
// small scale).
func TestEndToEndLFRQuality(t *testing.T) {
	p := lfr.Default(1000)
	p.AvgDeg, p.MaxDeg, p.On = 12, 36, 100
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: 150, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pp, err := Extract(st.Graph(), st.Labels, Config{})
	if err != nil {
		t.Fatal(err)
	}
	score := nmi.Compare(pp.Cover, res.Truth, p.N)
	if score < 0.6 {
		t.Fatalf("end-to-end NMI %.3f below 0.6 (tau1=%.3f strong=%d)", score, pp.Tau1, pp.Strong)
	}
}

// TestReduceForestPreservesThresholdConnectivity is the invariant the
// distributed gather rests on: for any threshold τ ≥ τ₂, filtering the
// forest at τ yields exactly the components of filtering the full edge set
// at τ.
func TestReduceForestPreservesThresholdConnectivity(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		const n = 30
		edges := make([]WeightedEdge, 0, 60)
		for i := 0; i < 60; i++ {
			u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
			if u == v {
				continue
			}
			// Coarse weights force plenty of ties.
			edges = append(edges, WeightedEdge{U: u, V: v, W: float64(r.Intn(8)) / 8})
		}
		tau2 := float64(r.Intn(4)) / 8
		forest := ReduceForest(edges, tau2)
		if len(forest) >= n {
			return false // a forest of ≤ n vertices has < n edges
		}
		for _, e := range forest {
			if e.W < tau2 {
				return false
			}
		}
		components := func(set []WeightedEdge, tau float64) *UnionFind {
			uf := NewUnionFind(n)
			for _, e := range set {
				if e.W >= tau {
					uf.Union(int(e.U), int(e.V))
				}
			}
			return uf
		}
		for _, tau := range []float64{tau2, tau2 + 0.125, 0.5, 0.75, 1} {
			if tau < tau2 {
				continue
			}
			full, red := components(edges, tau), components(forest, tau)
			for a := 0; a < n; a++ {
				for b := a + 1; b < n; b++ {
					if (full.Find(a) == full.Find(b)) != (red.Find(a) == red.Find(b)) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// partitionEdges deals edges across k parts deterministically but
// non-contiguously, mimicking worker ownership.
func partitionEdges(edges []WeightedEdge, k int) [][]WeightedEdge {
	parts := make([][]WeightedEdge, k)
	for i, e := range edges {
		w := (i*2654435761 + int(e.U)) % k
		parts[w] = append(parts[w], e)
	}
	return parts
}

// TestExtractPartitionedMatchesSequential pins the partitioned entry point
// against ExtractFromWeights on real propagated labels: identical
// thresholds, entropy, counts, and the exact same communities for every
// part count, selection mode, and metric.
func TestExtractPartitionedMatchesSequential(t *testing.T) {
	p := lfr.Default(400)
	p.AvgDeg, p.MaxDeg, p.On = 10, 25, 40
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := core.Run(res.Graph, core.Config{T: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{},
		{GridStep: 0.01},
		{Tau1: 0.5, Tau2: 0.05},
		{Metric: SameLabelProbability},
	} {
		edges := EdgeWeights(st.Graph(), st.Labels, cfg.Metric)
		want, err := ExtractFromWeights(st.Graph(), edges, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{1, 2, 3, 7} {
			got, err := ExtractPartitioned(st.Graph(), partitionEdges(edges, k), cfg)
			if err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			if got.Tau1 != want.Tau1 || got.Tau2 != want.Tau2 || got.Entropy != want.Entropy ||
				got.Strong != want.Strong || got.Weak != want.Weak {
				t.Fatalf("cfg=%+v k=%d: partitioned %+v, sequential %+v", cfg, k, got, want)
			}
			if !got.Cover.Equal(want.Cover) {
				t.Fatalf("cfg=%+v k=%d: covers differ", cfg, k)
			}
		}
	}
}

// TestExtractPartitionedEmptyAndEdgeless covers the degenerate shapes.
func TestExtractPartitionedEmptyAndEdgeless(t *testing.T) {
	empty, err := ExtractPartitioned(graph.New(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if empty.Cover.Len() != 0 {
		t.Fatal("empty graph produced communities")
	}
	g := graph.New()
	g.AddVertex(3)
	g.AddVertex(9)
	got, err := ExtractPartitioned(g, [][]WeightedEdge{nil, nil}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ExtractFromWeights(g, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Tau1 != want.Tau1 || got.Tau2 != want.Tau2 || got.Strong != want.Strong {
		t.Fatalf("edgeless: partitioned %+v, sequential %+v", got, want)
	}
}

func TestSelectTau1Exported(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 1, W: 0.9}, {U: 1, V: 2, W: 0.9},
		{U: 3, V: 4, W: 0.8}, {U: 4, V: 5, W: 0.8},
		{U: 2, V: 3, W: 0.1}, // bridge
	}
	tau1 := SelectTau1(edges, 6, 0.05)
	// Entropy at 0.8: both halves together... at 0.9: one 3-community; at
	// 0.8: 6-vertex; at 0.1: everything one comp. Max entropy keeps the
	// two triples separate.
	if tau1 != 0.8 && tau1 != 0.9 {
		t.Fatalf("tau1 = %v", tau1)
	}
	uf := NewUnionFind(6)
	for _, e := range edges {
		if e.W >= tau1 {
			uf.Union(int(e.U), int(e.V))
		}
	}
	if uf.Find(0) == uf.Find(5) {
		t.Fatal("selected threshold merges the two communities")
	}
}
