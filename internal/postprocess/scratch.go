package postprocess

import (
	"math"

	"rslpa/internal/cover"
)

// ExtractScratch owns the reusable buffers of the extraction pipeline: the
// RLE label histograms, the per-vertex incident-weight maxima, the compact
// vertex index, and the weighted-edge buffer — everything EdgeWeights,
// Tau2Of and the Extract* assembly used to reallocate (as maps) on every
// call. A caller that extracts repeatedly against an evolving graph (the
// streaming service's per-epoch extraction) keeps one scratch and passes it
// through the method forms; the package-level functions allocate a private
// scratch per call, so their behavior is unchanged.
//
// The per-vertex tables are dense slices keyed by raw vertex ID and
// validated by a generation stamp: a pass bumps the generation instead of
// clearing, entries from earlier passes are invisible, and the tables grow
// monotonically with the ID space. Results never alias scratch memory
// (covers copy their member lists), so a scratch may be pooled and reused
// for a different graph immediately after a call returns — but the edge
// slice returned by the EdgeWeights method is scratch-owned and only valid
// until the next use.
//
// A scratch must not be used concurrently; pool one per extraction.
type ExtractScratch struct {
	gen uint32 // current pass generation (0 = never used)

	idxGen []uint32
	idx    []int32 // compact index: position in the pass's vertex list

	encGen  []uint32
	encoded [][]uint32 // RLE (label, count) runs per vertex, buffers reused

	maxGen     []uint32
	maxW       []float64 // max incident edge weight per vertex
	maxTouched []uint32  // vertices with a valid maxW entry this pass

	sortBuf []uint32       // EncodeRuns sorting scratch
	edges   []WeightedEdge // EdgeWeights output buffer
	commOf  []int32        // strong-community id per compact vertex
}

// bump starts a new pass over one of the stamped tables. On the
// once-in-4-billion uint32 wraparound every stamp table is hard-cleared so
// a stale stamp can never alias a live one.
func (sc *ExtractScratch) bump() uint32 {
	sc.gen++
	if sc.gen == 0 {
		clear(sc.idxGen)
		clear(sc.encGen)
		clear(sc.maxGen)
		sc.gen = 1
	}
	return sc.gen
}

// growTo extends s with zero values to cover n entries.
func growTo[T any](s []T, n int) []T {
	if n > len(s) {
		s = append(s, make([]T, n-len(s))...)
	}
	return s
}

// EdgeWeights is the scratch-backed form of the package-level EdgeWeights:
// identical weights, but the RLE histograms live in the scratch's reusable
// per-vertex table and the returned slice is scratch-owned (valid until the
// scratch's next use).
func (sc *ExtractScratch) EdgeWeights(g GraphView, labels LabelSeq, metric WeightMetric) []WeightedEdge {
	gen := sc.bump()
	n := g.NumVertices() // lower bound; encode grows past it as needed
	sc.encGen = growTo(sc.encGen, n)
	sc.encoded = growTo(sc.encoded, n)
	sc.edges = sc.edges[:0]
	g.ForEachEdge(func(u, v uint32) {
		ru, rv := sc.encode(u, labels, gen), sc.encode(v, labels, gen)
		common := CommonRuns(ru, rv, metric)
		lu := float64(sumRuns(ru))
		w := float64(common) / lu
		if metric == SameLabelProbability {
			w = float64(common) / (lu * float64(sumRuns(rv)))
		}
		sc.edges = append(sc.edges, WeightedEdge{U: u, V: v, W: w})
	})
	return sc.edges
}

// encode RLE-encodes v's label sequence into its reusable table slot,
// memoized per pass.
func (sc *ExtractScratch) encode(v uint32, labels LabelSeq, gen uint32) []uint32 {
	sc.encGen = growTo(sc.encGen, int(v)+1)
	sc.encoded = growTo(sc.encoded, int(v)+1)
	if sc.encGen[v] == gen {
		return sc.encoded[v]
	}
	sc.encoded[v], sc.sortBuf = appendRuns(sc.encoded[v][:0], sc.sortBuf, labels(v))
	sc.encGen[v] = gen
	return sc.encoded[v]
}

// Tau2Of is the scratch-backed form of the package-level Tau2Of (Equation
// 2): the per-vertex maxima live in the scratch's dense table instead of a
// map.
func (sc *ExtractScratch) Tau2Of(edges []WeightedEdge) float64 {
	return sc.tau2OfEdges(edges)
}

func (sc *ExtractScratch) tau2OfEdges(parts ...[]WeightedEdge) float64 {
	gen := sc.bump()
	sc.maxTouched = sc.maxTouched[:0]
	for _, part := range parts {
		for _, e := range part {
			sc.seeMax(e.U, e.W, gen)
			sc.seeMax(e.V, e.W, gen)
		}
	}
	tau2 := math.Inf(1)
	for _, v := range sc.maxTouched {
		if sc.maxW[v] < tau2 {
			tau2 = sc.maxW[v]
		}
	}
	if math.IsInf(tau2, 1) {
		return 0
	}
	return tau2
}

func (sc *ExtractScratch) seeMax(v uint32, w float64, gen uint32) {
	sc.maxGen = growTo(sc.maxGen, int(v)+1)
	sc.maxW = growTo(sc.maxW, int(v)+1)
	if sc.maxGen[v] != gen {
		sc.maxGen[v] = gen
		sc.maxW[v] = w
		sc.maxTouched = append(sc.maxTouched, v)
		return
	}
	if w > sc.maxW[v] {
		sc.maxW[v] = w
	}
}

// indexVertices builds the pass's compact vertex index (ids[i] <-> i) in
// the scratch's stamped table and returns a lookup closure for it.
func (sc *ExtractScratch) indexVertices(ids []uint32) func(uint32) int32 {
	gen := sc.bump()
	maxID := 0
	for _, v := range ids {
		if int(v) >= maxID {
			maxID = int(v) + 1
		}
	}
	sc.idxGen = growTo(sc.idxGen, maxID)
	sc.idx = growTo(sc.idx, maxID)
	for i, v := range ids {
		sc.idxGen[v] = gen
		sc.idx[v] = int32(i)
	}
	return func(v uint32) int32 { return sc.idx[v] }
}

// Extract is the scratch-backed form of the package-level Extract: the full
// pipeline with every intermediate table reused from the scratch.
func (sc *ExtractScratch) Extract(g GraphView, labels LabelSeq, cfg Config) (*Result, error) {
	if g.NumVertices() == 0 {
		return &Result{Cover: cover.New(0)}, nil
	}
	edges := sc.EdgeWeights(g, labels, cfg.Metric)
	return sc.ExtractFromWeights(g, edges, cfg)
}

// ExtractFromWeights is the scratch-backed form of the package-level
// ExtractFromWeights.
func (sc *ExtractScratch) ExtractFromWeights(g GraphView, edges []WeightedEdge, cfg Config) (*Result, error) {
	tau2 := cfg.Tau2
	if tau2 == 0 {
		tau2 = sc.Tau2Of(edges)
	}
	return sc.extractFromForest(g, edges, edges, tau2, MaxWeight(edges), cfg)
}

// ExtractPartitioned is the scratch-backed form of the package-level
// ExtractPartitioned: τ₂ is resolved over the parts without flattening
// them, and the assembly shares the scratch's tables.
func (sc *ExtractScratch) ExtractPartitioned(g GraphView, parts [][]WeightedEdge, cfg Config) (*Result, error) {
	if g.NumVertices() == 0 {
		return &Result{Cover: cover.New(0)}, nil
	}
	tau2 := cfg.Tau2
	if tau2 == 0 {
		tau2 = sc.tau2OfEdges(parts...)
	}
	maxWeight := 0.0
	var forest, attach []WeightedEdge
	for _, part := range parts {
		forest = append(forest, ReduceForest(part, tau2)...)
		for _, e := range part {
			if e.W >= tau2 {
				attach = append(attach, e)
			}
			if e.W > maxWeight {
				maxWeight = e.W
			}
		}
	}
	forest = ReduceForest(forest, tau2)
	return sc.extractFromForest(g, forest, attach, tau2, maxWeight, cfg)
}
