// Package nmi implements the Normalized Mutual Information for overlapping
// community covers, the evaluation metric of the paper's Section V-A.2.
//
// The variant implemented is the one defined alongside the LFR benchmark by
// Lancichinetti, Fortunato and Kertész ("Detecting the overlapping and
// hierarchical community structure in complex networks", New J. Phys. 2009,
// appendix B), often called NMI_LFK. Each community is viewed as a binary
// random variable over the vertex set; the normalized conditional entropy
// between the two covers is averaged in both directions:
//
//	NMI(X, Y) = 1 - [ H(X|Y)_norm + H(Y|X)_norm ] / 2
//
// The score is in [0, 1]; 1 means identical covers.
package nmi

import (
	"math"

	"rslpa/internal/cover"
)

// h is the entropy contribution -p*log(p) with h(0) = 0.
func h(p float64) float64 {
	if p <= 0 {
		return 0
	}
	return -p * math.Log(p)
}

// binaryEntropy is the entropy of a community of size s in a universe of n
// vertices, treating membership as a Bernoulli variable.
func binaryEntropy(s, n int) float64 {
	p := float64(s) / float64(n)
	return h(p) + h(1-p)
}

// Compare computes NMI_LFK between two covers over a universe of n vertices.
// n must be at least the number of distinct vertices appearing in either
// cover; the LFR ground truth and the detectors both know |V|, so callers
// pass the graph's vertex count. Comparing two empty covers yields 1 (they
// are identical); comparing an empty cover with a non-empty one yields 0.
func Compare(x, y *cover.Cover, n int) float64 {
	switch {
	case x.Len() == 0 && y.Len() == 0:
		return 1
	case x.Len() == 0 || y.Len() == 0:
		return 0
	}
	hxy := normalizedConditional(x, y, n)
	hyx := normalizedConditional(y, x, n)
	score := 1 - (hxy+hyx)/2
	// Guard against floating-point drift at the boundaries.
	if score < 0 {
		return 0
	}
	if score > 1 {
		return 1
	}
	return score
}

// normalizedConditional computes H(X|Y)_norm = (1/|X|) Σ_i H(X_i|Y)/H(X_i).
func normalizedConditional(x, y *cover.Cover, n int) float64 {
	// Index Y by vertex so that for each X_i we only examine communities
	// of Y sharing at least one vertex. Disjoint pairs cannot pass the
	// LFK eligibility constraint (with P11 = 0 the constraint becomes
	// h(P00) >= h(P10) + h(P01), which fails for any two non-empty,
	// non-universe communities), so skipping them is exact, not an
	// approximation.
	yOf := make(map[uint32][]int)
	for j, members := range y.Communities() {
		for _, v := range members {
			yOf[v] = append(yOf[v], j)
		}
	}
	ySizes := y.Sizes()

	total := 0.0
	terms := 0
	for _, xi := range x.Communities() {
		hxi := binaryEntropy(len(xi), n)
		if hxi == 0 {
			// Degenerate community (empty or the whole universe);
			// it carries no information, so it contributes nothing.
			continue
		}
		terms++

		// Count overlaps |X_i ∩ Y_j| for candidate js.
		overlap := make(map[int]int)
		for _, v := range xi {
			for _, j := range yOf[v] {
				overlap[j]++
			}
		}

		best := hxi // unconstrained fallback: H(X_i|Y_j) = H(X_i)
		for j, common := range overlap {
			cond, ok := conditionalEntropy(len(xi), ySizes[j], common, n)
			if ok && cond < best {
				best = cond
			}
		}
		total += best / hxi
	}
	if terms == 0 {
		return 0
	}
	return total / float64(terms)
}

// conditionalEntropy returns H(X_i|Y_j) for communities of sizes sx and sy
// with `common` shared vertices in a universe of n. The boolean result is
// false when the pair fails the LFK eligibility constraint
// h(P11)+h(P00) >= h(P01)+h(P10), in which case the pair must not be used
// as a match (it would reward complementary rather than similar sets).
func conditionalEntropy(sx, sy, common, n int) (float64, bool) {
	fn := float64(n)
	p11 := float64(common) / fn
	p10 := float64(sx-common) / fn
	p01 := float64(sy-common) / fn
	p00 := 1 - p11 - p10 - p01
	if p00 < 0 {
		p00 = 0
	}
	if h(p11)+h(p00) < h(p01)+h(p10) {
		return 0, false
	}
	joint := h(p11) + h(p10) + h(p01) + h(p00)
	hy := binaryEntropy(sy, n)
	return joint - hy, true
}
