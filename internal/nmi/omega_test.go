package nmi

import (
	"math"
	"testing"

	"rslpa/internal/cover"
	"rslpa/internal/rng"
)

func TestOmegaIdentical(t *testing.T) {
	a := mk([]uint32{0, 1, 2}, []uint32{3, 4, 5}, []uint32{2, 3})
	if got := Omega(a, a, 6); math.Abs(got-1) > 1e-9 {
		t.Fatalf("self-omega = %v", got)
	}
}

func TestOmegaSmallUniverse(t *testing.T) {
	a := mk([]uint32{0})
	if Omega(a, a, 1) != 1 {
		t.Fatal("n=1 omega")
	}
}

func TestOmegaChanceLevel(t *testing.T) {
	// Large random covers agree at chance: omega should be near 0,
	// far from 1.
	r := rng.New(3)
	build := func() *cover.Cover {
		c := cover.New(10)
		for k := 0; k < 10; k++ {
			var m []uint32
			for v := uint32(0); v < 200; v++ {
				if r.Intn(10) == 0 {
					m = append(m, v)
				}
			}
			if len(m) > 1 {
				c.Add(m)
			}
		}
		return c
	}
	got := Omega(build(), build(), 200)
	if got > 0.15 || got < -0.15 {
		t.Fatalf("random covers omega = %v, want ~0", got)
	}
}

func TestOmegaDetectsOverlapCount(t *testing.T) {
	// Same communities, but in b one pair is double-covered: omega < 1
	// even though every community matches — this is what NMI misses and
	// omega is for.
	a := mk([]uint32{0, 1, 2}, []uint32{2, 3, 4})
	b := mk([]uint32{0, 1, 2}, []uint32{2, 3, 4}, []uint32{0, 1})
	x, y := Omega(a, a, 5), Omega(a, b, 5)
	if y >= x {
		t.Fatalf("extra duplicate membership not penalized: %v >= %v", y, x)
	}
}

func TestOmegaSymmetric(t *testing.T) {
	a := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6})
	b := mk([]uint32{0, 1, 4}, []uint32{2, 3, 5, 6})
	if x, y := Omega(a, b, 7), Omega(b, a, 7); math.Abs(x-y) > 1e-12 {
		t.Fatalf("asymmetric omega: %v vs %v", x, y)
	}
}

func TestAverageF1Identical(t *testing.T) {
	a := mk([]uint32{0, 1, 2}, []uint32{3, 4})
	if got := AverageF1(a, a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self-F1 = %v", got)
	}
}

func TestAverageF1Empty(t *testing.T) {
	e := cover.New(0)
	a := mk([]uint32{0, 1})
	if AverageF1(e, e) != 1 || AverageF1(a, e) != 0 || AverageF1(e, a) != 0 {
		t.Fatal("empty-cover conventions")
	}
}

func TestAverageF1PartialMatch(t *testing.T) {
	truth := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6, 7})
	half := mk([]uint32{0, 1}, []uint32{4, 5, 6, 7})
	got := AverageF1(truth, half)
	if got <= 0.5 || got >= 1 {
		t.Fatalf("partial F1 = %v, want in (0.5, 1)", got)
	}
	// F1 of {0,1} vs {0,1,2,3}: p=1, r=0.5 → 2/3; other side exact → 1.
	want := ((2.0/3+1)/2 + (2.0/3+1)/2) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("F1 = %v, want %v", got, want)
	}
}

func TestAverageF1DisjointIsZero(t *testing.T) {
	a := mk([]uint32{0, 1})
	b := mk([]uint32{2, 3})
	if got := AverageF1(a, b); got != 0 {
		t.Fatalf("disjoint F1 = %v", got)
	}
}

func TestMetricsAgreeOnOrdering(t *testing.T) {
	// All three metrics must agree that a slightly-perturbed cover beats
	// a heavily-perturbed one.
	truth := mk(
		[]uint32{0, 1, 2, 3, 4},
		[]uint32{5, 6, 7, 8, 9},
		[]uint32{10, 11, 12, 13, 14},
	)
	slight := mk(
		[]uint32{0, 1, 2, 3},
		[]uint32{4, 5, 6, 7, 8, 9},
		[]uint32{10, 11, 12, 13, 14},
	)
	heavy := mk(
		[]uint32{0, 5, 10, 1, 6},
		[]uint32{11, 2, 7, 12, 3},
		[]uint32{8, 13, 4, 9, 14},
	)
	n := 15
	if !(Compare(truth, slight, n) > Compare(truth, heavy, n)) {
		t.Fatal("NMI ordering violated")
	}
	if !(Omega(truth, slight, n) > Omega(truth, heavy, n)) {
		t.Fatal("Omega ordering violated")
	}
	if !(AverageF1(truth, slight) > AverageF1(truth, heavy)) {
		t.Fatal("F1 ordering violated")
	}
}
