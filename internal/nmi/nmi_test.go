package nmi

import (
	"math"
	"testing"
	"testing/quick"

	"rslpa/internal/cover"
	"rslpa/internal/rng"
)

func mk(comms ...[]uint32) *cover.Cover { return cover.FromCommunities(comms) }

func TestIdenticalCoversScoreOne(t *testing.T) {
	a := mk([]uint32{0, 1, 2}, []uint32{3, 4, 5}, []uint32{5, 6})
	b := mk([]uint32{5, 6}, []uint32{0, 1, 2}, []uint32{3, 4, 5})
	if got := Compare(a, b, 7); math.Abs(got-1) > 1e-9 {
		t.Fatalf("identical covers: NMI = %v", got)
	}
}

func TestEmptyCovers(t *testing.T) {
	if Compare(cover.New(0), cover.New(0), 5) != 1 {
		t.Fatal("two empty covers should score 1")
	}
	a := mk([]uint32{1, 2})
	if Compare(a, cover.New(0), 5) != 0 || Compare(cover.New(0), a, 5) != 0 {
		t.Fatal("empty vs non-empty should score 0")
	}
}

func TestSymmetry(t *testing.T) {
	a := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6})
	b := mk([]uint32{0, 1, 2}, []uint32{3, 4, 5, 6}, []uint32{2, 3})
	if x, y := Compare(a, b, 7), Compare(b, a, 7); math.Abs(x-y) > 1e-12 {
		t.Fatalf("asymmetric: %v vs %v", x, y)
	}
}

func TestRangeBounds(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		build := func() *cover.Cover {
			c := cover.New(3)
			for i := 0; i < 2+r.Intn(3); i++ {
				var members []uint32
				for v := uint32(0); v < 30; v++ {
					if r.Bool() {
						members = append(members, v)
					}
				}
				if len(members) > 0 {
					c.Add(members)
				}
			}
			return c
		}
		a, b := build(), build()
		s := Compare(a, b, 30)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDisjointPartitionsScoreLow(t *testing.T) {
	// A 4-community partition vs a completely different reshuffling of
	// the same vertices into 4 groups: far from identical, score must be
	// well below 1.
	a := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6, 7}, []uint32{8, 9, 10, 11}, []uint32{12, 13, 14, 15})
	b := mk([]uint32{0, 4, 8, 12}, []uint32{1, 5, 9, 13}, []uint32{2, 6, 10, 14}, []uint32{3, 7, 11, 15})
	if got := Compare(a, b, 16); got > 0.2 {
		t.Fatalf("orthogonal partitions: NMI = %v, want near 0", got)
	}
}

func TestPartialAgreement(t *testing.T) {
	// b merges a's two communities into one: intermediate score,
	// strictly between the orthogonal and identical cases.
	a := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6, 7})
	b := mk([]uint32{0, 1, 2, 3, 4, 5, 6, 7})
	got := Compare(a, b, 8)
	if got <= 0.05 || got >= 0.95 {
		t.Fatalf("merged cover: NMI = %v, want intermediate", got)
	}
}

func TestRefinementOrdering(t *testing.T) {
	// Moving one vertex should hurt less than moving three.
	truth := mk([]uint32{0, 1, 2, 3, 4}, []uint32{5, 6, 7, 8, 9})
	oneOff := mk([]uint32{0, 1, 2, 3}, []uint32{4, 5, 6, 7, 8, 9})
	threeOff := mk([]uint32{0, 1}, []uint32{2, 3, 4, 5, 6, 7, 8, 9})
	x, y := Compare(truth, oneOff, 10), Compare(truth, threeOff, 10)
	if x <= y {
		t.Fatalf("one-vertex error %v should beat three-vertex error %v", x, y)
	}
}

func TestOverlapSensitivity(t *testing.T) {
	// Detecting the overlap exactly must beat missing it.
	truth := mk([]uint32{0, 1, 2, 3, 4}, []uint32{4, 5, 6, 7, 8})
	exact := mk([]uint32{0, 1, 2, 3, 4}, []uint32{4, 5, 6, 7, 8})
	missed := mk([]uint32{0, 1, 2, 3, 4}, []uint32{5, 6, 7, 8})
	if x, y := Compare(truth, exact, 9), Compare(truth, missed, 9); x <= y {
		t.Fatalf("exact overlap %v should beat missed overlap %v", x, y)
	}
}

func TestUniverseCommunityCarriesNoInformation(t *testing.T) {
	// A community equal to the whole universe has zero entropy and must
	// not blow up the computation.
	a := mk([]uint32{0, 1, 2, 3})
	b := mk([]uint32{0, 1, 2, 3}, []uint32{1, 2})
	got := Compare(a, b, 4)
	if math.IsNaN(got) || got < 0 || got > 1 {
		t.Fatalf("degenerate community: NMI = %v", got)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := binaryEntropy(0, 10); got != 0 {
		t.Fatalf("h(0) = %v", got)
	}
	if got := binaryEntropy(10, 10); got != 0 {
		t.Fatalf("h(n) = %v", got)
	}
	want := -0.5*math.Log(0.5) - 0.5*math.Log(0.5)
	if got := binaryEntropy(5, 10); math.Abs(got-want) > 1e-12 {
		t.Fatalf("h(n/2) = %v want %v", got, want)
	}
}

func TestConditionalEntropyConstraint(t *testing.T) {
	// Disjoint communities must be rejected by the eligibility
	// constraint.
	if _, ok := conditionalEntropy(10, 10, 0, 1000); ok {
		t.Fatal("disjoint pair passed the constraint")
	}
	// A perfectly matching pair must pass with conditional entropy 0.
	cond, ok := conditionalEntropy(10, 10, 10, 1000)
	if !ok || math.Abs(cond) > 1e-12 {
		t.Fatalf("perfect match: cond=%v ok=%v", cond, ok)
	}
}

func TestNoisePerturbationMonotone(t *testing.T) {
	// Score must decay as more vertices are randomly reassigned.
	r := rng.New(7)
	const n = 200
	var truth [][]uint32
	for c := 0; c < 10; c++ {
		var m []uint32
		for v := 0; v < 20; v++ {
			m = append(m, uint32(c*20+v))
		}
		truth = append(truth, m)
	}
	perturb := func(swaps int) *cover.Cover {
		comms := make([][]uint32, len(truth))
		for i := range truth {
			comms[i] = append([]uint32(nil), truth[i]...)
		}
		for s := 0; s < swaps; s++ {
			a, b := r.Intn(10), r.Intn(10)
			if a == b || len(comms[a]) < 3 {
				continue
			}
			comms[b] = append(comms[b], comms[a][len(comms[a])-1])
			comms[a] = comms[a][:len(comms[a])-1]
		}
		return cover.FromCommunities(comms)
	}
	base := cover.FromCommunities(truth)
	s0 := Compare(base, perturb(0), n)
	s20 := Compare(base, perturb(20), n)
	s100 := Compare(base, perturb(100), n)
	if !(s0 >= s20 && s20 > s100) {
		t.Fatalf("scores not monotone under noise: %v %v %v", s0, s20, s100)
	}
}
