package nmi

import (
	"rslpa/internal/cover"
)

// Omega computes the Omega index (Collins & Dent 1988; the overlapping
// generalization of the Adjusted Rand Index) between two covers over n
// vertices. It compares, for every vertex pair, the *number* of communities
// the pair shares in each cover, correcting for chance agreement:
//
//	ω = (obs - exp) / (1 - exp)
//
// where obs is the fraction of pairs sharing the same count in both covers
// and exp its expectation under independence. 1 means identical structure;
// 0 means chance-level agreement; negative values mean worse than chance.
//
// The evaluation in the paper uses NMI only; Omega is provided as a second
// opinion because NMI_LFK is known to saturate on covers with many small
// communities. O(n² in the worst case) over vertices appearing in either
// cover — intended for benchmark-sized graphs.
func Omega(x, y *cover.Cover, n int) float64 {
	if n < 2 {
		return 1
	}
	// pairCounts maps vertex pairs to the number of shared communities.
	countX := pairCounts(x)
	countY := pairCounts(y)

	total := float64(n) * float64(n-1) / 2

	// Observed agreement: pairs with equal share-counts. Pairs absent
	// from both maps share 0 communities in both covers and agree.
	obs := 0.0
	for k, cx := range countX {
		if countY[k] == cx {
			obs++
		}
	}
	// Pairs in X only disagree unless Y has them too (handled above);
	// pairs in Y only always disagree (X count is 0 < Y count).
	inEither := float64(len(countX))
	for k := range countY {
		if _, ok := countX[k]; !ok {
			inEither++
		}
	}
	obs += total - inEither // pairs in neither map agree at count 0
	obs /= total

	// Expected agreement: Σ_j P(count_X = j)·P(count_Y = j).
	histX := countHistogram(countX, total)
	histY := countHistogram(countY, total)
	exp := 0.0
	for j, px := range histX {
		if py, ok := histY[j]; ok {
			exp += px * py
		}
	}
	if exp >= 1 {
		return 1 // both covers are constant: identical by definition
	}
	return (obs - exp) / (1 - exp)
}

// pairCounts returns, for each unordered vertex pair co-appearing in at
// least one community, the number of communities containing both.
func pairCounts(c *cover.Cover) map[uint64]int {
	counts := make(map[uint64]int)
	for _, members := range c.Communities() {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				counts[uint64(members[i])<<32|uint64(members[j])]++
			}
		}
	}
	return counts
}

// countHistogram converts pair share-counts into a distribution over the
// count values (including the implicit zero-count mass).
func countHistogram(counts map[uint64]int, total float64) map[int]float64 {
	hist := make(map[int]float64)
	for _, c := range counts {
		hist[c]++
	}
	zero := total
	for _, v := range hist {
		zero -= v
	}
	for k := range hist {
		hist[k] /= total
	}
	hist[0] += zero / total
	return hist
}

// AverageF1 computes the symmetric average-F1 score between two covers
// (Yang & Leskovec 2013): each community is matched with its best-F1
// counterpart in the other cover, averaged in both directions. 1 means a
// perfect one-to-one match.
func AverageF1(x, y *cover.Cover) float64 {
	if x.Len() == 0 && y.Len() == 0 {
		return 1
	}
	if x.Len() == 0 || y.Len() == 0 {
		return 0
	}
	return (bestF1(x, y) + bestF1(y, x)) / 2
}

func bestF1(x, y *cover.Cover) float64 {
	yOf := make(map[uint32][]int)
	for j, members := range y.Communities() {
		for _, v := range members {
			yOf[v] = append(yOf[v], j)
		}
	}
	ySizes := y.Sizes()
	total := 0.0
	for _, xi := range x.Communities() {
		overlap := make(map[int]int)
		for _, v := range xi {
			for _, j := range yOf[v] {
				overlap[j]++
			}
		}
		best := 0.0
		for j, common := range overlap {
			precision := float64(common) / float64(ySizes[j])
			recall := float64(common) / float64(len(xi))
			f1 := 2 * precision * recall / (precision + recall)
			if f1 > best {
				best = f1
			}
		}
		total += best
	}
	return total / float64(x.Len())
}
