// Package slpa implements the Speaker-Listener Label Propagation Algorithm
// (Xie & Szymanski, PAKDD 2012), the baseline the paper compares rSLPA
// against (Section II-B).
//
// Each vertex keeps a growing memory of labels, initialized to its own ID.
// In every iteration each neighbor ("speaker") sends one label drawn
// uniformly from its memory, and the vertex ("listener") appends the most
// frequent received label, breaking ties uniformly at random — the
// plurality *voting* step whose discontinuous behaviour (paper Example 1,
// Figure 2) is exactly what rSLPA's uniform picking smooths away. After T
// iterations, labels whose frequency in a vertex's memory falls below the
// threshold τ are dropped, and each surviving label names a community.
//
// The implementation is the synchronous variant of Kuzmin et al.'s parallel
// SLPA (the one the paper ports to Spark): all speakers speak from their
// memories as of the previous iteration, so the result is independent of
// vertex processing order — a property the distributed driver relies on.
package slpa

import (
	"fmt"
	"sort"

	"rslpa/internal/cover"
	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// Config configures an SLPA run.
type Config struct {
	// T is the number of iterations; the original paper and this one use
	// T = 100.
	T int
	// Tau is the post-processing frequency threshold; the paper's
	// experiments use τ = 0.2 (≈ 1/om).
	Tau float64
	// Seed drives all randomness.
	Seed uint64
	// RemoveSubsets additionally drops communities fully contained in
	// another, the cleanup step of the reference implementation.
	RemoveSubsets bool
}

// DefaultT is the iteration count used by the paper for SLPA.
const DefaultT = 100

// DefaultTau is the membership threshold used by the paper.
const DefaultTau = 0.2

// Result carries the raw memories and the extracted cover.
type Result struct {
	// Memories[v] is vertex v's label memory (length T+1); nil for IDs
	// not present in the graph.
	Memories [][]uint32
	Cover    *cover.Cover
}

// Run executes SLPA on g and extracts communities by τ-thresholding.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	mem, err := Propagate(g, cfg)
	if err != nil {
		return nil, err
	}
	c := ExtractCover(g, mem, cfg)
	return &Result{Memories: mem, Cover: c}, nil
}

// Propagate runs only the label propagation stage and returns the memories.
func Propagate(g *graph.Graph, cfg Config) ([][]uint32, error) {
	if cfg.T <= 0 {
		return nil, fmt.Errorf("slpa: config T=%d must be positive", cfg.T)
	}
	n := g.MaxVertexID()
	mem := make([][]uint32, n)
	g.ForEachVertex(func(v uint32) {
		m := make([]uint32, 1, cfg.T+1)
		m[0] = v
		mem[v] = m
	})

	for t := 1; t <= cfg.T; t++ {
		// Synchronous super-step: every listener gathers one label per
		// neighbor, drawn from the speaker's memory of length t.
		picked := make([]uint32, 0, n)
		order := make([]uint32, 0, n)
		g.ForEachVertex(func(v uint32) {
			label, ok := listen(g, mem, v, t, cfg.Seed)
			if !ok {
				label = v // isolated vertex hears only itself
			}
			order = append(order, v)
			picked = append(picked, label)
		})
		for i, v := range order {
			mem[v] = append(mem[v], picked[i])
		}
	}
	return mem, nil
}

// listen performs one listener step for vertex v at iteration t: collect
// one uniformly drawn label from each neighbor's memory and return the most
// frequent, tie-broken uniformly.
func listen(g *graph.Graph, mem [][]uint32, v uint32, t int, seed uint64) (uint32, bool) {
	nbrs := g.Neighbors(v)
	if len(nbrs) == 0 {
		return 0, false
	}
	counts := make(map[uint32]int, len(nbrs))
	best := 0
	for _, u := range nbrs {
		// The speaker's pick is a pure function of (seed, t, speaker,
		// listener) so the distributed driver reproduces it exactly.
		s := rng.StreamOf(seed, uint64(t), uint64(u), uint64(v))
		label := mem[u][s.Intn(t)]
		counts[label]++
		if counts[label] > best {
			best = counts[label]
		}
	}
	// Uniform tie-break over the most frequent labels (paper Figure 1).
	tied := make([]uint32, 0, 4)
	for label, c := range counts {
		if c == best {
			tied = append(tied, label)
		}
	}
	if len(tied) == 1 {
		return tied[0], true
	}
	sort.Slice(tied, func(i, j int) bool { return tied[i] < tied[j] }) // map order is random; sort for determinism
	s := rng.StreamOf(seed, uint64(t), uint64(v), 0xdecade)
	return tied[s.Intn(len(tied))], true
}

// ExtractCover applies the τ-thresholding stage: every label occupying at
// least τ of a vertex's memory names a community containing that vertex.
func ExtractCover(g *graph.Graph, mem [][]uint32, cfg Config) *cover.Cover {
	byLabel := make(map[uint32][]uint32)
	g.ForEachVertex(func(v uint32) {
		m := mem[v]
		if len(m) == 0 {
			return
		}
		counts := make(map[uint32]int, 8)
		for _, l := range m {
			counts[l]++
		}
		minCount := cfg.Tau * float64(len(m))
		for l, c := range counts {
			if float64(c) >= minCount {
				byLabel[l] = append(byLabel[l], v)
			}
		}
	})
	labels := make([]uint32, 0, len(byLabel))
	for l := range byLabel {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	c := cover.New(len(labels))
	for _, l := range labels {
		if len(byLabel[l]) >= 2 { // single-vertex label groups are noise
			c.Add(byLabel[l])
		}
	}
	if cfg.RemoveSubsets {
		c = c.RemoveSubsets()
	}
	return c
}
