package slpa

import (
	"testing"

	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/rng"
)

func ring(n int) *graph.Graph {
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddEdge(uint32(i), uint32((i+1)%n))
	}
	return g
}

func TestRejectsBadConfig(t *testing.T) {
	if _, err := Run(ring(5), Config{T: 0}); err == nil {
		t.Fatal("T=0 accepted")
	}
}

func TestMemoriesShape(t *testing.T) {
	const T = 9
	mem, err := Propagate(ring(6), Config{T: T, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 6; v++ {
		if len(mem[v]) != T+1 {
			t.Fatalf("vertex %d memory length %d", v, len(mem[v]))
		}
		if mem[v][0] != v {
			t.Fatalf("vertex %d initial label %d", v, mem[v][0])
		}
	}
}

func TestDeterministic(t *testing.T) {
	g := ring(10)
	a, err := Propagate(g, Config{T: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Propagate(g, Config{T: 15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		for i := range a[v] {
			if a[v][i] != b[v][i] {
				t.Fatal("same seed diverged")
			}
		}
	}
}

func TestIsolatedVertexKeepsOwnLabel(t *testing.T) {
	g := graph.New()
	g.AddVertex(3)
	g.AddEdge(0, 1)
	mem, err := Propagate(g, Config{T: 8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range mem[3] {
		if l != 3 {
			t.Fatalf("isolated vertex learned label %d", l)
		}
	}
}

func TestLabelsComeFromNeighborMemories(t *testing.T) {
	// On a path 0-1-2, vertex 0 can only ever hear labels that existed in
	// vertex 1's memory, which over time is drawn from {0,1,2}.
	g := graph.New()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	mem, err := Propagate(g, Config{T: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for v := uint32(0); v < 3; v++ {
		for _, l := range mem[v] {
			if l > 2 {
				t.Fatalf("label %d cannot exist on this graph", l)
			}
		}
	}
}

func TestCliqueConverges(t *testing.T) {
	// A clique should agree on a handful of labels; the threshold cover
	// must be a single community containing everyone.
	g := graph.New()
	for i := uint32(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.AddEdge(i, j)
		}
	}
	res, err := Run(g, Config{T: 100, Tau: 0.2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cover.Len() == 0 {
		t.Fatal("no communities on a clique")
	}
	largest := 0
	for _, c := range res.Cover.Communities() {
		if len(c) > largest {
			largest = len(c)
		}
	}
	if largest < 7 {
		t.Fatalf("largest community %d, want near 8", largest)
	}
}

func TestExtractCoverThreshold(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	mem := [][]uint32{
		{7, 7, 7, 9}, // 7: 75%, 9: 25%
		{7, 7, 7, 7},
	}
	c := ExtractCover(g, mem, Config{Tau: 0.5})
	if c.Len() != 1 {
		t.Fatalf("cover: %v", c.Canonical())
	}
	c2 := ExtractCover(g, mem, Config{Tau: 0.2})
	// With τ=0.2 label 9 qualifies for vertex 0 but forms a singleton
	// group, which is dropped.
	if c2.Len() != 1 {
		t.Fatalf("cover: %v", c2.Canonical())
	}
}

func TestRemoveSubsetsOption(t *testing.T) {
	p := lfr.Default(300)
	p.AvgDeg, p.MaxDeg, p.On = 8, 20, 30
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Run(res.Graph, Config{T: 60, Tau: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := Run(res.Graph, Config{T: 60, Tau: 0.2, Seed: 1, RemoveSubsets: true})
	if err != nil {
		t.Fatal(err)
	}
	if nested.Cover.Len() > plain.Cover.Len() {
		t.Fatalf("subset removal grew the cover: %d > %d", nested.Cover.Len(), plain.Cover.Len())
	}
}

// TestLFRQuality is the baseline's accuracy check: SLPA should recover LFR
// communities well at the paper's settings.
func TestLFRQuality(t *testing.T) {
	p := lfr.Default(1000)
	p.AvgDeg, p.MaxDeg, p.On = 12, 36, 100
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := Run(res.Graph, Config{T: 100, Tau: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	score := nmi.Compare(sr.Cover, res.Truth, p.N)
	if score < 0.7 {
		t.Fatalf("SLPA NMI %.3f below 0.7", score)
	}
}

// TestPluralityBeatsUniformInTies exercises the tie-break path
// statistically: on a 2-regular graph every received pair ties, so the
// winner must be uniform between the two neighbors' labels.
func TestTieBreakUniform(t *testing.T) {
	counts := map[uint32]int{}
	for seed := uint64(0); seed < 2000; seed++ {
		g := graph.New()
		g.AddEdge(0, 1)
		g.AddEdge(0, 2)
		mem, err := Propagate(g, Config{T: 1, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		counts[mem[0][1]]++
	}
	// Vertex 0 hears labels 1 and 2 (each neighbor's only label), always
	// tied: expect ≈ 1000 each.
	if counts[1] < 850 || counts[2] < 850 {
		t.Fatalf("tie-break skewed: %v", counts)
	}
	_ = rng.Mix64 // keep the import honest if the assertion set shrinks
}
