package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	time.Sleep(2 * time.Millisecond)
	d1 := tm.Mark("first")
	d2 := tm.Mark("second")
	if d1 < 2*time.Millisecond {
		t.Fatalf("first phase %v too short", d1)
	}
	if len(tm.Phases()) != 2 {
		t.Fatalf("phases: %v", tm.Phases())
	}
	if tm.Get("first") != d1 || tm.Get("second") != d2 {
		t.Fatal("Get mismatch")
	}
	if tm.Get("absent") != 0 {
		t.Fatal("absent phase nonzero")
	}
	if tm.Total() < d1+d2 {
		t.Fatal("total below phase sum")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{4.5})
	if s.N != 1 || s.Mean != 4.5 || s.Std != 0 || s.Median != 4.5 || s.Min != 4.5 || s.Max != 4.5 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileNearestRank(t *testing.T) {
	xs := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		q    float64
		want int64
	}{
		{0, 10},      // clamped to the first rank
		{0.05, 10},   // ceil(0.5)−1 = 0
		{0.10, 10},   // ceil(1)−1 = 0
		{0.50, 50},   // ceil(5)−1 = 4: the classic nearest-rank median
		{0.55, 60},   // ceil(5.5)−1 = 5
		{0.99, 100},  // ceil(9.9)−1 = 9
		{0.901, 100}, // anything past rank 9 lands on the last element
		{0.90, 90},   // ceil(9)−1 = 8 — NOT the max, unlike xs[n*99/100]
		{1.0, 100},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(q=%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileSmallSamples(t *testing.T) {
	if got := Quantile([]int64(nil), 0.99); got != 0 {
		t.Fatalf("empty sample: %d", got)
	}
	if got := Quantile([]float64{7.5}, 0.99); got != 7.5 {
		t.Fatalf("singleton: %v", got)
	}
	// The bug this helper replaces: idx = n*99/100 is n−1 (the max) for
	// every n < 100. Nearest-rank p50 of [1,2] must be 1, not 2.
	if got := Quantile([]int{1, 2}, 0.5); got != 1 {
		t.Fatalf("p50 of two elements: %d", got)
	}
	if got := Quantile([]int{1, 2}, 0.99); got != 2 {
		t.Fatalf("p99 of two elements: %d", got)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2.0000") {
		t.Fatalf("String: %q", out)
	}
}
