package metrics

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	time.Sleep(2 * time.Millisecond)
	d1 := tm.Mark("first")
	d2 := tm.Mark("second")
	if d1 < 2*time.Millisecond {
		t.Fatalf("first phase %v too short", d1)
	}
	if len(tm.Phases()) != 2 {
		t.Fatalf("phases: %v", tm.Phases())
	}
	if tm.Get("first") != d1 || tm.Get("second") != d2 {
		t.Fatal("Get mismatch")
	}
	if tm.Get("absent") != 0 {
		t.Fatal("absent phase nonzero")
	}
	if tm.Total() < d1+d2 {
		t.Fatal("total below phase sum")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{4.5})
	if s.N != 1 || s.Mean != 4.5 || s.Std != 0 || s.Median != 4.5 || s.Min != 4.5 || s.Max != 4.5 {
		t.Fatalf("single summary: %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std %v want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max %v/%v", s.Min, s.Max)
	}
	if s.Median != 4.5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeOddMedian(t *testing.T) {
	s := Summarize([]float64{9, 1, 5})
	if s.Median != 5 {
		t.Fatalf("median %v", s.Median)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "mean=2.0000") {
		t.Fatalf("String: %q", out)
	}
}
