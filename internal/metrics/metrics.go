// Package metrics provides the small measurement helpers the experiment
// harness uses: phase timers and summary statistics over repeated runs.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Timer measures named phases of an experiment run.
type Timer struct {
	start  time.Time
	last   time.Time
	phases []Phase
}

// Phase is one named measured interval.
type Phase struct {
	Name     string
	Duration time.Duration
}

// NewTimer starts a timer.
func NewTimer() *Timer {
	now := time.Now()
	return &Timer{start: now, last: now}
}

// Mark closes the current phase under the given name and starts the next.
func (t *Timer) Mark(name string) time.Duration {
	now := time.Now()
	d := now.Sub(t.last)
	t.phases = append(t.phases, Phase{Name: name, Duration: d})
	t.last = now
	return d
}

// Total returns the time since the timer started.
func (t *Timer) Total() time.Duration { return time.Since(t.start) }

// Phases returns the recorded phases in order.
func (t *Timer) Phases() []Phase { return t.phases }

// Get returns the duration of the named phase (0 if absent).
func (t *Timer) Get(name string) time.Duration {
	for _, p := range t.phases {
		if p.Name == name {
			return p.Duration
		}
	}
	return 0
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		s.Median = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f med=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.Max)
}

// Quantile returns the nearest-rank q-quantile of an ascending-sorted
// sample: the element at index ⌈q·n⌉−1, clamped to [0, n−1]. Nearest-rank
// always returns an observed value (no interpolation) and, unlike the naive
// xs[n*q] index (which degenerates to the max for every n < 1/(1−q)), its
// median of [1,2] is 1 and its p90 of ten elements is the 9th, not the 10th.
// The zero value of E is returned for an empty sample; sorted order is the
// caller's responsibility.
func Quantile[E ~int | ~int64 | ~float64](sorted []E, q float64) E {
	n := len(sorted)
	if n == 0 {
		var zero E
		return zero
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return sorted[idx]
}
