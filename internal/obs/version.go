package obs

import (
	"encoding/json"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// BuildInfo identifies the running binary: module version, VCS revision,
// and toolchain, read once from debug.ReadBuildInfo.
type BuildInfo struct {
	Version   string `json:"version"`              // module version ("(devel)" for local builds)
	GoVersion string `json:"go_version"`           // toolchain that built the binary
	Revision  string `json:"revision,omitempty"`   // VCS commit hash, when stamped
	BuildTime string `json:"build_time,omitempty"` // VCS commit time, when stamped
	Modified  bool   `json:"modified,omitempty"`   // VCS working tree was dirty
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build returns the binary's build information.
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "(unknown)", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			buildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				buildInfo.Revision = s.Value
			case "vcs.time":
				buildInfo.BuildTime = s.Value
			case "vcs.modified":
				buildInfo.Modified = s.Value == "true"
			}
		}
	})
	return buildInfo
}

// versionResponse is the GET /version body: build identity plus process
// start time and uptime.
type versionResponse struct {
	BuildInfo
	StartTime     time.Time `json:"start_time"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// processStart approximates process start: the first time this package is
// initialized (good enough for uptime reporting).
var processStart = time.Now()

// HandleVersion serves GET /version.
func HandleVersion(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(versionResponse{
		BuildInfo:     Build(),
		StartTime:     processStart,
		UptimeSeconds: time.Since(processStart).Seconds(),
	})
}
