package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugMux builds the debug server mounted behind `rslpa serve
// -debug-addr`: the net/http/pprof endpoints (CPU, heap, mutex, block,
// goroutine profiles — one `go tool pprof` away), plus /metrics and
// /debug/batches when a registry or trace ring is supplied, and /version.
// It is kept off the service's main listener so profiling traffic and
// operator tooling never contend with (or get exposed alongside) the
// public API.
func DebugMux(reg *Registry, ring *TraceRing) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	if ring != nil {
		mux.Handle("GET /debug/batches", ring.Handler())
	}
	mux.HandleFunc("GET /version", HandleVersion)
	return mux
}
