package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Family is one parsed exposition family: its declared type and the
// sample values keyed by the full sample name + label string.
type Family struct {
	Name    string
	Type    string // counter | gauge | histogram
	Help    string
	Samples map[string]float64
}

// ParseExposition parses Prometheus text-format output and lints it:
// every sample must belong to a family that declared HELP and TYPE
// first, names and the structure of histogram families must be valid,
// and histogram bucket counts must be cumulative with the +Inf bucket
// equal to _count. It returns the families by name. It is the shared
// validator behind the /metrics exposition tests.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	fams := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur *Family
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "# HELP ") {
			rest := strings.TrimPrefix(text, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !validName(name) {
				return nil, fmt.Errorf("line %d: malformed HELP %q", line, text)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %q", line, name)
			}
			cur = &Family{Name: name, Help: help, Samples: make(map[string]float64)}
			fams[name] = cur
			continue
		}
		if strings.HasPrefix(text, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(text, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE %q", line, text)
			}
			name, typ := fields[0], fields[1]
			if cur == nil || cur.Name != name {
				return nil, fmt.Errorf("line %d: TYPE %q without preceding HELP", line, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("line %d: unknown TYPE %q for %q", line, typ, name)
			}
			cur.Type = typ
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // other comments are legal
		}
		// Sample line: name[{labels}] value
		i := strings.IndexAny(text, "{ ")
		if i < 0 {
			return nil, fmt.Errorf("line %d: malformed sample %q", line, text)
		}
		sname := text[:i]
		if !validName(sname) {
			return nil, fmt.Errorf("line %d: invalid sample name %q", line, sname)
		}
		key := sname
		rest := text[i:]
		if rest[0] == '{' {
			end := strings.Index(rest, "} ")
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated labels in %q", line, text)
			}
			key = sname + rest[:end+1]
			rest = rest[end+1:]
		}
		val, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value in %q: %v", line, text, err)
		}
		fam := familyOf(fams, sname)
		if fam == nil || fam.Type == "" {
			return nil, fmt.Errorf("line %d: sample %q without HELP/TYPE", line, sname)
		}
		if fam.Type == "counter" && val < 0 {
			return nil, fmt.Errorf("line %d: counter %q is negative", line, key)
		}
		if _, dup := fam.Samples[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate sample %q", line, key)
		}
		fam.Samples[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, fam := range fams {
		if fam.Type == "" {
			return nil, fmt.Errorf("family %q has HELP but no TYPE", name)
		}
		if len(fam.Samples) == 0 {
			return nil, fmt.Errorf("family %q has no samples", name)
		}
		if fam.Type == "histogram" {
			if err := lintHistogram(name, fam); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyOf resolves a sample name to its family, stripping the histogram
// suffixes _bucket/_sum/_count when the base name is a histogram.
func familyOf(fams map[string]*Family, sname string) *Family {
	if f, ok := fams[sname]; ok {
		return f
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(sname, suffix)
		if !ok {
			continue
		}
		if f, ok := fams[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

// lintHistogram checks bucket counts are cumulative in le order and that
// the +Inf bucket equals _count.
func lintHistogram(name string, fam *Family) error {
	type bucket struct {
		le    float64
		count float64
	}
	var buckets []bucket
	var count float64
	haveCount := false
	for key, val := range fam.Samples {
		switch {
		case key == name+"_count":
			count, haveCount = val, true
		case strings.HasPrefix(key, name+`_bucket{le="`):
			leStr := strings.TrimSuffix(strings.TrimPrefix(key, name+`_bucket{le="`), `"}`)
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					return fmt.Errorf("histogram %q: bad le %q", name, leStr)
				}
			}
			buckets = append(buckets, bucket{le, val})
		}
	}
	if !haveCount {
		return fmt.Errorf("histogram %q: missing _count", name)
	}
	if len(buckets) == 0 {
		return fmt.Errorf("histogram %q: no buckets", name)
	}
	for i := 0; i < len(buckets); i++ {
		for j := i + 1; j < len(buckets); j++ {
			if buckets[j].le < buckets[i].le {
				buckets[i], buckets[j] = buckets[j], buckets[i]
			}
		}
	}
	last := buckets[len(buckets)-1]
	if !math.IsInf(last.le, 1) {
		return fmt.Errorf("histogram %q: missing +Inf bucket", name)
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i].count < buckets[i-1].count {
			return fmt.Errorf("histogram %q: bucket counts not cumulative at le=%g", name, buckets[i].le)
		}
	}
	if last.count != count {
		return fmt.Errorf("histogram %q: +Inf bucket %g != count %g", name, last.count, count)
	}
	return nil
}
