package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("test_depth", "depth")
	g.Set(3.5)
	if got := g.Value(); got != 3.5 {
		t.Fatalf("gauge = %g, want 3.5", got)
	}
}

// Registration is get-or-create: the same name returns the same metric, so
// a follower re-registering across replay generations keeps its counters
// cumulative.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_total", "t")
	a.Add(7)
	b := r.Counter("test_total", "t")
	if a != b {
		t.Fatalf("re-registering returned a different counter")
	}
	if b.Value() != 7 {
		t.Fatalf("re-registered counter = %d, want 7", b.Value())
	}
	h1 := r.Histogram("test_seconds", "s", LatencyBuckets)
	h1.Observe(0.01)
	h2 := r.Histogram("test_seconds", "s", LatencyBuckets)
	if h1 != h2 || h2.Count() != 1 {
		t.Fatalf("histogram not cumulative across re-registration")
	}
}

// Func metrics replace their closure on re-registration — the live replay
// generation wins.
func TestFuncReplacement(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_epoch", "e", func() float64 { return 1 })
	r.GaugeFunc("test_epoch", "e", func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "test_epoch 2") {
		t.Fatalf("closure not replaced:\n%s", sb.String())
	}
}

// A nil registry and the nil metrics it hands out are valid no-op sinks.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x_total", "x").Inc()
	r.Gauge("x", "x").Set(1)
	r.Histogram("x_seconds", "x", nil).Observe(1)
	r.CounterVec("x_by_reason_total", "x", "reason").With("a").Inc()
	r.CounterFunc("x_f_total", "x", func() float64 { return 1 })
	r.GaugeFunc("x_g", "x", func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var ring *TraceRing
	ring.Record(BatchTrace{})
	if ring.Recent() != nil || ring.Slowest() != nil || ring.Recorded() != 0 {
		t.Fatal("nil ring not empty")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter did not panic")
		}
	}()
	r.Gauge("test_total", "t")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name did not panic")
		}
	}()
	r.Counter("0bad-name", "t")
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_lat_seconds", "t", CountBuckets)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	// Nearest-rank over 1..100: p50 = 50th value, p95 = 95th, p99 = 99th.
	for _, tc := range []struct{ q, want float64 }{{0.5, 50}, {0.95, 95}, {0.99, 99}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
}

// The quantile window is bounded: once more than sampleWindow observations
// arrive, only the most recent window feeds the quantiles.
func TestHistogramQuantileWindow(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_win_seconds", "t", CountBuckets)
	for i := 0; i < sampleWindow; i++ {
		h.Observe(1)
	}
	for i := 0; i < sampleWindow; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("median after window rollover = %g, want 100", got)
	}
}

// The exposition of a registry exercising every metric kind parses and
// lints clean: HELP/TYPE present, names valid, histogram buckets
// cumulative with +Inf == _count.
func TestExpositionLints(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_ops_total", "operations").Add(3)
	r.Gauge("app_depth", "queue depth").Set(2)
	h := r.Histogram("app_latency_seconds", "latency", LatencyBuckets)
	h.Observe(0.0001)
	h.Observe(0.004)
	h.Observe(10) // beyond the last bound: lands in +Inf only
	v := r.CounterVec("app_restarts_total", "restarts by reason", "reason")
	v.With("horizon").Inc()
	v.With(`we"ird\value`).Add(2)
	r.CounterFunc("app_seen_total", "seen", func() float64 { return 12 })
	r.GaugeFunc("app_temp", "temp", func() float64 { return -3.5 })

	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	fams, err := ParseExposition(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not lint: %v", err)
	}
	for _, name := range []string{
		"app_ops_total", "app_depth", "app_latency_seconds",
		"app_restarts_total", "app_seen_total", "app_temp",
	} {
		if fams[name] == nil {
			t.Errorf("family %q missing", name)
		}
	}
	if got := fams["app_ops_total"].Samples["app_ops_total"]; got != 3 {
		t.Errorf("app_ops_total = %g, want 3", got)
	}
	if got := fams["app_latency_seconds"].Samples["app_latency_seconds_count"]; got != 3 {
		t.Errorf("histogram count = %g, want 3", got)
	}
	if got := fams["app_restarts_total"].Samples[`app_restarts_total{reason="horizon"}`]; got != 1 {
		t.Errorf("labeled counter = %g, want 1", got)
	}
}

// Counters must be monotone between scrapes of the same registry.
func TestCountersMonotoneAcrossScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("app_ops_total", "ops")
	h := r.Histogram("app_lat_seconds", "lat", LatencyBuckets)
	c.Add(1)
	h.Observe(0.001)
	scrape := func() map[string]*Family {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		fams, err := ParseExposition(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		return fams
	}
	first := scrape()
	c.Add(5)
	h.Observe(0.002)
	second := scrape()
	for fam, f1 := range first {
		if f1.Type == "gauge" {
			continue
		}
		f2 := second[fam]
		for key, v1 := range f1.Samples {
			if strings.HasSuffix(key, "_sum") {
				continue // float sum, monotone too but checked via count
			}
			if v2 := f2.Samples[key]; v2 < v1 {
				t.Errorf("%s regressed: %g -> %g", key, v1, v2)
			}
		}
	}
}
