package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Span is one timed stage of a batch's journey through the pipeline. The
// batch itself is the root of the span tree; Spans nest further through
// Children. Attrs carries stage-specific integers (correction rounds run,
// shards republished, engine wire bytes, ...).
type Span struct {
	Name     string           `json:"name"`
	Micros   int64            `json:"micros"`
	Attrs    map[string]int64 `json:"attrs,omitempty"`
	Children []Span           `json:"children,omitempty"`
}

// BatchTrace is the span tree of one flushed batch: coalesce, detector
// Update, snapshot publish, journal append, checkpoint write. TotalMicros
// is the wall time from the flush's start (plus the coalescing time the
// batch accumulated while pending), so the spans sum to it up to the
// untimed residue (stats bookkeeping, lock handoff).
type BatchTrace struct {
	Epoch       uint64    `json:"epoch"`
	Start       time.Time `json:"start"`
	Edits       int       `json:"edits"`
	TotalMicros int64     `json:"total_micros"`
	Spans       []Span    `json:"spans"`
}

// TraceRing retains the last depth batch traces in a ring plus the
// slowest slowN (by TotalMicros) seen since start, separately — a latency
// spike older than depth batches stays inspectable. Record is called by
// the service's maintenance goroutine; Recent/Slowest/Handler may be
// called concurrently from scrapers. All methods are nil-safe.
type TraceRing struct {
	mu    sync.Mutex
	ring  []BatchTrace
	n     uint64 // traces ever recorded
	slow  []BatchTrace
	slowN int
}

// Default ring geometry: how many recent traces are kept, and how many
// slowest-ever are pinned beside them.
const (
	DefaultTraceDepth   = 64
	DefaultTraceSlowest = 8
)

// NewTraceRing returns a ring retaining the last depth traces and the
// slowest slowest (non-positive values select the defaults).
func NewTraceRing(depth, slowest int) *TraceRing {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	if slowest <= 0 {
		slowest = DefaultTraceSlowest
	}
	return &TraceRing{ring: make([]BatchTrace, depth), slowN: slowest}
}

// Record stores one batch trace.
func (t *TraceRing) Record(bt BatchTrace) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring[t.n%uint64(len(t.ring))] = bt
	t.n++
	// Keep t.slow sorted descending by TotalMicros, bounded at slowN.
	i := len(t.slow)
	for i > 0 && t.slow[i-1].TotalMicros < bt.TotalMicros {
		i--
	}
	if i < t.slowN {
		t.slow = append(t.slow, BatchTrace{})
		copy(t.slow[i+1:], t.slow[i:])
		t.slow[i] = bt
		if len(t.slow) > t.slowN {
			t.slow = t.slow[:t.slowN]
		}
	}
	t.mu.Unlock()
}

// Recorded returns how many traces have ever been recorded.
func (t *TraceRing) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Recent returns the retained traces, newest first.
func (t *TraceRing) Recent() []BatchTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	k := min(t.n, uint64(len(t.ring)))
	out := make([]BatchTrace, 0, k)
	for i := uint64(1); i <= k; i++ {
		out = append(out, t.ring[(t.n-i)%uint64(len(t.ring))])
	}
	return out
}

// Slowest returns the slowest retained traces, slowest first.
func (t *TraceRing) Slowest() []BatchTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]BatchTrace(nil), t.slow...)
}

// Handler serves the ring as GET /debug/batches:
//
//	{"recorded": N, "recent": [newest..], "slowest": [slowest..]}
func (t *TraceRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"recorded": t.Recorded(),
			"recent":   t.Recent(),
			"slowest":  t.Slowest(),
		})
	})
}
