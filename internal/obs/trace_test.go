package obs

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
)

func trace(epoch uint64, micros int64) BatchTrace {
	return BatchTrace{Epoch: epoch, TotalMicros: micros,
		Spans: []Span{{Name: "update", Micros: micros}}}
}

// The ring is bounded: recording more than depth traces keeps only the
// newest depth, returned newest first.
func TestTraceRingBounded(t *testing.T) {
	ring := NewTraceRing(16, 4)
	for i := 1; i <= 100; i++ {
		ring.Record(trace(uint64(i), int64(i)))
	}
	if got := ring.Recorded(); got != 100 {
		t.Fatalf("Recorded = %d, want 100", got)
	}
	recent := ring.Recent()
	if len(recent) != 16 {
		t.Fatalf("len(Recent) = %d, want 16", len(recent))
	}
	for i, bt := range recent {
		if want := uint64(100 - i); bt.Epoch != want {
			t.Fatalf("Recent[%d].Epoch = %d, want %d (newest first)", i, bt.Epoch, want)
		}
	}
}

// The slowest list survives the ring's horizon: a spike recorded long ago
// stays pinned, ordered slowest first.
func TestTraceRingSlowest(t *testing.T) {
	ring := NewTraceRing(4, 3)
	ring.Record(trace(1, 9_000_000)) // the spike, far older than depth=4
	for i := 2; i <= 50; i++ {
		ring.Record(trace(uint64(i), int64(i)))
	}
	slow := ring.Slowest()
	if len(slow) != 3 {
		t.Fatalf("len(Slowest) = %d, want 3", len(slow))
	}
	if slow[0].Epoch != 1 || slow[0].TotalMicros != 9_000_000 {
		t.Fatalf("Slowest[0] = epoch %d (%dµs), want the old spike", slow[0].Epoch, slow[0].TotalMicros)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].TotalMicros > slow[i-1].TotalMicros {
			t.Fatalf("Slowest not descending at %d: %d > %d", i, slow[i].TotalMicros, slow[i-1].TotalMicros)
		}
	}
}

func TestTraceRingDefaults(t *testing.T) {
	ring := NewTraceRing(0, 0)
	for i := 1; i <= DefaultTraceDepth+10; i++ {
		ring.Record(trace(uint64(i), int64(i)))
	}
	if got := len(ring.Recent()); got != DefaultTraceDepth {
		t.Fatalf("default depth = %d, want %d", got, DefaultTraceDepth)
	}
	if got := len(ring.Slowest()); got != DefaultTraceSlowest {
		t.Fatalf("default slowest = %d, want %d", got, DefaultTraceSlowest)
	}
}

// One writer records while scrapers read — the pattern the maintenance
// goroutine and /debug/batches produce. Run under -race.
func TestTraceRingConcurrentScrape(t *testing.T) {
	ring := NewTraceRing(32, 4)
	srv := httptest.NewServer(ring.Handler())
	defer srv.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= 500; i++ {
			ring.Record(trace(uint64(i), int64(i%97)))
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				resp, err := srv.Client().Get(srv.URL)
				if err != nil {
					t.Error(err)
					return
				}
				var body struct {
					Recorded uint64       `json:"recorded"`
					Recent   []BatchTrace `json:"recent"`
					Slowest  []BatchTrace `json:"slowest"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
					t.Error(err)
				}
				resp.Body.Close()
				if len(body.Recent) > 32 || len(body.Slowest) > 4 {
					t.Errorf("bounds exceeded: %d recent, %d slowest", len(body.Recent), len(body.Slowest))
				}
			}
		}()
	}
	wg.Wait()
	if got := ring.Recorded(); got != 500 {
		t.Fatalf("Recorded = %d, want 500", got)
	}
}

func TestVersionHandler(t *testing.T) {
	srv := httptest.NewServer(DebugMux(nil, nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Version       string  `json:"version"`
		GoVersion     string  `json:"go_version"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Version == "" || body.GoVersion == "" {
		t.Fatalf("missing build identity: %+v", body)
	}
	if body.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %g", body.UptimeSeconds)
	}
}

// The debug mux mounts pprof, the registry and the trace ring.
func TestDebugMuxRoutes(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dbg_ops_total", "ops").Inc()
	ring := NewTraceRing(4, 2)
	ring.Record(trace(1, 10))
	srv := httptest.NewServer(DebugMux(reg, ring))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/batches", "/version", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s = %d, want 200", path, resp.StatusCode)
		}
	}
}
