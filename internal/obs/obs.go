// Package obs is the service's observability layer: a dependency-free,
// lock-cheap metrics registry with Prometheus text-format exposition, a
// bounded ring of per-batch pipeline traces, and the pprof/version debug
// plumbing the serve command mounts behind -debug-addr.
//
// # Registry
//
// A Registry holds named metrics and renders them in the Prometheus text
// exposition format (version 0.0.4) via WritePrometheus or Handler. Four
// metric kinds cover the service's needs:
//
//   - Counter: a monotone atomic uint64 (Inc/Add).
//   - Gauge: an instantaneous float64 (Set).
//   - Histogram: fixed cumulative buckets over float64 observations, plus
//     a bounded ring of recent raw samples from which Quantile computes
//     nearest-rank p50/p95/p99 (via metrics.Quantile) without the bucket
//     resolution loss.
//   - CounterVec: a family of counters keyed by one label value (e.g.
//     re-bootstrap reasons).
//
// CounterFunc and GaugeFunc register read-through metrics whose value is
// produced by a closure at scrape time — the idiom for counters the
// service already maintains elsewhere (stream.Stats fields), avoiding
// double bookkeeping on the hot path.
//
// All metric constructors are get-or-create by name: registering a name
// twice returns the existing metric (func variants replace the closure),
// which is what lets a follower's replay generations re-register their
// metrics across re-bootstraps while counters stay cumulative. Every
// mutating method is safe on a nil receiver and on metrics obtained from
// a nil *Registry, so an uninstrumented caller pays a nil check and
// nothing else.
//
// # Hot-path cost
//
// Counter.Add is one atomic add; Histogram.Observe is a short bounds scan
// plus three atomics and a CAS loop on the sum. Neither allocates. The
// scrape path takes the registry lock, but scrapes are rare and never
// block a writer for more than the duration of a buffer append.
package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"rslpa/internal/metrics"
)

// LatencyBuckets is the default histogram bucket layout for durations in
// seconds: 50µs to 2.5s, roughly logarithmic — wide enough for a batch
// Update on a large graph and fine enough for a snapshot pointer load.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5,
}

// CountBuckets is the default bucket layout for small cardinalities
// (edits per batch, batches per catch-up poll).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// sampleWindow is how many recent raw observations a Histogram retains
// for nearest-rank quantiles.
const sampleWindow = 512

// metric is one registered family: it renders its HELP/TYPE header and
// sample lines into the exposition buffer.
type metric interface {
	metricName() string
	write(b *bytes.Buffer)
}

// Registry is a named collection of metrics with Prometheus exposition.
// The zero value is not usable; create one with NewRegistry. A nil
// *Registry is a valid no-op sink: every constructor returns nil and
// every nil metric's methods do nothing.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
	order  []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// validName reports whether name matches the Prometheus metric/label name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register returns the existing metric under name (get-or-create), or
// stores and returns the one built by mk. Name collisions across kinds
// and invalid names are programmer errors and panic.
func (r *Registry) register(name string, mk func() metric) metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := mk()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the registry's monotone counter under name, creating it
// on first use. Counter names should end in _total by convention.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a different kind", name))
	}
	return c
}

// Gauge returns the registry's gauge under name, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a different kind", name))
	}
	return g
}

// CounterFunc registers a read-through counter whose value fn produces at
// scrape time. Re-registering the same name replaces the closure — the
// re-bootstrap idiom: a follower's fresh replay generation points the
// family at its own live counters.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "counter", fn)
}

// GaugeFunc registers a read-through gauge; see CounterFunc.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.registerFunc(name, help, "gauge", fn)
}

func (r *Registry) registerFunc(name, help, typ string, fn func() float64) {
	if r == nil {
		return
	}
	m := r.register(name, func() metric { return &funcMetric{name: name, help: help, typ: typ} })
	f, ok := m.(*funcMetric)
	if !ok || f.typ != typ {
		panic(fmt.Sprintf("obs: %q already registered as a different kind", name))
	}
	f.fmu.Lock()
	f.fn = fn
	f.fmu.Unlock()
}

// Histogram returns the registry's histogram under name with the given
// bucket upper bounds (ascending, +Inf implicit; nil selects
// LatencyBuckets), creating it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = LatencyBuckets
	}
	m := r.register(name, func() metric {
		h := &Histogram{name: name, help: help, bounds: slices.Clone(buckets)}
		h.counts = make([]atomic.Uint64, len(h.bounds)+1)
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a different kind", name))
	}
	return h
}

// CounterVec returns the registry's labeled counter family under name,
// creating it on first use. label is the single label key.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	if !validName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	m := r.register(name, func() metric {
		return &CounterVec{name: name, help: help, label: label, kids: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a different kind", name))
	}
	return v
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format, in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b bytes.Buffer
	r.mu.Lock()
	for _, m := range r.order {
		m.write(&b)
	}
	r.mu.Unlock()
	_, err := w.Write(b.Bytes())
	return err
}

// Handler serves the registry as GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func writeHeader(b *bytes.Buffer, name, help, typ string) {
	b.WriteString("# HELP ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(help)
	b.WriteString("\n# TYPE ")
	b.WriteString(name)
	b.WriteByte(' ')
	b.WriteString(typ)
	b.WriteByte('\n')
}

func writeFloat(b *bytes.Buffer, v float64) {
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// Counter is a monotone counter. All methods are nil-safe.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(b *bytes.Buffer) {
	writeHeader(b, c.name, c.help, "counter")
	b.WriteString(c.name)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Gauge is an instantaneous float64 value. All methods are nil-safe.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(b *bytes.Buffer) {
	writeHeader(b, g.name, g.help, "gauge")
	b.WriteString(g.name)
	b.WriteByte(' ')
	writeFloat(b, g.Value())
	b.WriteByte('\n')
}

// funcMetric is a read-through counter or gauge: the value comes from a
// closure at scrape time.
type funcMetric struct {
	name, help, typ string
	fmu             sync.Mutex
	fn              func() float64
}

func (f *funcMetric) metricName() string { return f.name }

func (f *funcMetric) write(b *bytes.Buffer) {
	f.fmu.Lock()
	fn := f.fn
	f.fmu.Unlock()
	writeHeader(b, f.name, f.help, f.typ)
	b.WriteString(f.name)
	b.WriteByte(' ')
	writeFloat(b, fn())
	b.WriteByte('\n')
}

// Histogram is a fixed-bucket histogram over float64 observations, with a
// bounded ring of recent raw samples for nearest-rank quantiles. Observe
// is allocation-free and safe for concurrent use; all methods are
// nil-safe.
type Histogram struct {
	name, help string
	bounds     []float64       // ascending upper bounds; +Inf implicit
	counts     []atomic.Uint64 // per-bucket (non-cumulative), len(bounds)+1
	sumBits    atomic.Uint64   // float64 bits of the running sum
	ring       [sampleWindow]atomic.Uint64
	n          atomic.Uint64 // total observations ever
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	idx := h.n.Add(1) - 1
	h.ring[idx%sampleWindow].Store(math.Float64bits(v))
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Quantile returns the nearest-rank q-quantile over the retained sample
// window (the last sampleWindow observations), 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := min(h.n.Load(), sampleWindow)
	if n == 0 {
		return 0
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Float64frombits(h.ring[i].Load())
	}
	sort.Float64s(xs)
	return metrics.Quantile(xs, q)
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(b *bytes.Buffer) {
	writeHeader(b, h.name, h.help, "histogram")
	// Count is derived from the bucket reads so the rendered +Inf bucket
	// always equals the rendered count even mid-scrape.
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(h.name)
		b.WriteString(`_bucket{le="`)
		writeFloat(b, bound)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(h.name)
	b.WriteString(`_bucket{le="+Inf"} `)
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
	b.WriteString(h.name)
	b.WriteString("_sum ")
	writeFloat(b, math.Float64frombits(h.sumBits.Load()))
	b.WriteByte('\n')
	b.WriteString(h.name)
	b.WriteString("_count ")
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')
}

// CounterVec is a family of counters keyed by one label value. All
// methods are nil-safe.
type CounterVec struct {
	name, help, label string
	vmu               sync.Mutex
	kids              map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use (nil on a nil family).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.vmu.Lock()
	defer v.vmu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{}
		v.kids[value] = c
	}
	return c
}

func (v *CounterVec) metricName() string { return v.name }

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	var b bytes.Buffer
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func (v *CounterVec) write(b *bytes.Buffer) {
	writeHeader(b, v.name, v.help, "counter")
	v.vmu.Lock()
	values := make([]string, 0, len(v.kids))
	for val := range v.kids {
		values = append(values, val)
	}
	sort.Strings(values)
	for _, val := range values {
		b.WriteString(v.name)
		b.WriteByte('{')
		b.WriteString(v.label)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(val))
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(v.kids[val].Value(), 10))
		b.WriteByte('\n')
	}
	v.vmu.Unlock()
}
