package evolution

import (
	"bytes"
	"reflect"
	"testing"
)

func r(lo, hi uint32) []uint32 {
	m := make([]uint32, 0, hi-lo)
	for v := lo; v < hi; v++ {
		m = append(m, v)
	}
	return m
}

// kindsOf maps lineage -> kind for one Advance result.
func kindsOf(t *testing.T, evs []Event) map[uint64]Kind {
	t.Helper()
	out := make(map[uint64]Kind, len(evs))
	for _, ev := range evs {
		if _, dup := out[ev.Lineage]; dup {
			t.Fatalf("lineage %d got two events in one epoch: %v", ev.Lineage, evs)
		}
		out[ev.Lineage] = ev.Kind
	}
	return out
}

func countKinds(evs []Event) map[Kind]int {
	out := map[Kind]int{}
	for _, ev := range evs {
		out[ev.Kind]++
	}
	return out
}

func mustAdvance(t *testing.T, tr *Tracker, epoch uint64, comms [][]uint32) []Event {
	t.Helper()
	evs, err := tr.Advance(epoch, comms)
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestBasicLifecycle(t *testing.T) {
	tr := New(Config{Depth: 16})
	tr.Rebase(0, [][]uint32{r(0, 6), r(10, 16)})
	l0 := tr.Communities()[0].Lineage
	l1 := tr.Communities()[1].Lineage
	if l0 == l1 {
		t.Fatal("distinct communities share a lineage")
	}

	// Epoch 1: c0 grows, c1 continues, a third is born.
	evs := mustAdvance(t, tr, 1, [][]uint32{r(0, 8), r(10, 16), r(20, 25)})
	kinds := kindsOf(t, evs)
	if kinds[l0] != Grow {
		t.Errorf("l0 kind = %q, want grow", kinds[l0])
	}
	if kinds[l1] != Continue {
		t.Errorf("l1 kind = %q, want continue", kinds[l1])
	}
	if n := countKinds(evs)[Birth]; n != 1 {
		t.Errorf("births = %d, want 1", n)
	}
	l2 := tr.Communities()[2].Lineage
	if tr.Communities()[2].Born != 1 {
		t.Errorf("born epoch = %d, want 1", tr.Communities()[2].Born)
	}

	// Epoch 2: c0 shrinks, c2 dies.
	evs = mustAdvance(t, tr, 2, [][]uint32{r(0, 6), r(10, 16)})
	kinds = kindsOf(t, evs)
	if kinds[l0] != Shrink {
		t.Errorf("l0 kind = %q, want shrink", kinds[l0])
	}
	if kinds[l2] != Death {
		t.Errorf("l2 kind = %q, want death", kinds[l2])
	}
	if got := tr.Communities()[0].Lineage; got != l0 {
		t.Errorf("lineage drifted across epochs: %d != %d", got, l0)
	}
	if tr.LiveLineages() != 2 {
		t.Errorf("live lineages = %d, want 2", tr.LiveLineages())
	}
}

func TestMergeTwoIntoOne(t *testing.T) {
	tr := New(Config{Depth: 16})
	tr.Rebase(0, [][]uint32{r(0, 4), r(4, 8)})
	l0 := tr.Communities()[0].Lineage
	l1 := tr.Communities()[1].Lineage

	evs := mustAdvance(t, tr, 1, [][]uint32{r(0, 8)})
	if len(evs) != 2 {
		t.Fatalf("events = %v, want survivor + absorbed", evs)
	}
	// Equal overlap: the lower previous index survives.
	if got := tr.Communities()[0].Lineage; got != l0 {
		t.Errorf("survivor lineage = %d, want %d (lower index wins ties)", got, l0)
	}
	surv, abs := evs[0], evs[1]
	if surv.Kind != Merge || surv.Lineage != l0 || !reflect.DeepEqual(surv.Related, []uint64{l1}) {
		t.Errorf("survivor event = %+v", surv)
	}
	if abs.Kind != Merge || abs.Lineage != l1 || !reflect.DeepEqual(abs.Related, []uint64{l0}) || abs.Size != 0 {
		t.Errorf("absorbed event = %+v", abs)
	}
	if surv.Overlap != 0.5 {
		t.Errorf("survivor overlap = %g, want 0.5", surv.Overlap)
	}
}

func TestSplitOneIntoTwo(t *testing.T) {
	tr := New(Config{Depth: 16})
	tr.Rebase(0, [][]uint32{r(0, 8)})
	l0 := tr.Communities()[0].Lineage

	evs := mustAdvance(t, tr, 1, [][]uint32{r(0, 4), r(4, 8)})
	if len(evs) != 2 {
		t.Fatalf("events = %v, want keeper + part", evs)
	}
	keeper, part := evs[0], evs[1]
	lPart := tr.Communities()[1].Lineage
	if keeper.Kind != Split || keeper.Lineage != l0 || !reflect.DeepEqual(keeper.Related, []uint64{lPart}) {
		t.Errorf("keeper event = %+v", keeper)
	}
	if part.Kind != Split || part.Lineage == l0 || !reflect.DeepEqual(part.Related, []uint64{l0}) || part.PrevSize != 0 {
		t.Errorf("part event = %+v", part)
	}
	// The first part (lower new index) keeps the lineage on equal overlap.
	if got := tr.Communities()[0].Lineage; got != l0 {
		t.Errorf("keeper lineage = %d, want %d", got, l0)
	}
}

// A merge and a split of unrelated lineages classify independently within
// one epoch, each lineage receiving exactly one event.
func TestSimultaneousMergeAndSplit(t *testing.T) {
	tr := New(Config{Depth: 16})
	tr.Rebase(0, [][]uint32{r(0, 4), r(4, 8), r(10, 18)})
	l0 := tr.Communities()[0].Lineage
	l1 := tr.Communities()[1].Lineage
	l2 := tr.Communities()[2].Lineage

	evs := mustAdvance(t, tr, 1, [][]uint32{r(0, 8), r(10, 14), r(14, 18)})
	kinds := kindsOf(t, evs)
	if kinds[l0] != Merge || kinds[l1] != Merge || kinds[l2] != Split {
		t.Fatalf("kinds = %v (l0=%d l1=%d l2=%d)", kinds, l0, l1, l2)
	}
	if got := countKinds(evs); got[Merge] != 2 || got[Split] != 2 || len(evs) != 4 {
		t.Fatalf("kind counts = %v, events = %v", got, evs)
	}
	cur := tr.Communities()
	if cur[0].Lineage != l0 || cur[1].Lineage != l2 {
		t.Errorf("surviving lineages = %d, %d; want %d, %d", cur[0].Lineage, cur[1].Lineage, l0, l2)
	}
}

// Identical overlap against two predecessors resolves to the lower
// previous index, every run.
func TestIdenticalOverlapTieDeterministic(t *testing.T) {
	for run := 0; run < 20; run++ {
		tr := New(Config{Depth: 16})
		tr.Rebase(0, [][]uint32{r(0, 4), r(4, 8)})
		l0 := tr.Communities()[0].Lineage
		// {0,1,4,5} overlaps both predecessors at exactly 2/6.
		mustAdvance(t, tr, 1, [][]uint32{{0, 1, 4, 5}})
		if got := tr.Communities()[0].Lineage; got != l0 {
			t.Fatalf("run %d: tie resolved to %d, want %d (lower previous index)", run, got, l0)
		}
	}
}

// Overlap below MinJaccard is no match: the old community dies and the
// new one is born, rather than continuing the lineage.
func TestMinJaccardFilter(t *testing.T) {
	tr := New(Config{Depth: 16, MinJaccard: 0.5})
	tr.Rebase(0, [][]uint32{r(0, 10)})
	evs := mustAdvance(t, tr, 1, [][]uint32{append(r(0, 3), r(20, 27)...)}) // Jaccard 3/17
	got := countKinds(evs)
	if got[Birth] != 1 || got[Death] != 1 || len(evs) != 2 {
		t.Errorf("kinds = %v, want one birth + one death", got)
	}
}

func TestAdvanceRejectsEpochGap(t *testing.T) {
	tr := New(Config{Depth: 4})
	tr.Rebase(5, nil)
	if _, err := tr.Advance(7, nil); err == nil {
		t.Error("Advance(7) from epoch 5 succeeded, want error")
	}
	if _, err := tr.Advance(5, nil); err == nil {
		t.Error("Advance(5) from epoch 5 succeeded, want error")
	}
}

func TestJournalHorizonAndPaging(t *testing.T) {
	tr := New(Config{Depth: 3})
	tr.Rebase(0, [][]uint32{r(0, 4)})
	for e := uint64(1); e <= 6; e++ {
		comms := [][]uint32{r(0, 4)}
		if e%2 == 0 {
			comms = [][]uint32{r(0, 5)}
		}
		mustAdvance(t, tr, e, comms)
	}
	oldest, newest := tr.Window()
	if oldest != 3 || newest != 6 {
		t.Fatalf("window = (%d, %d), want (3, 6)", oldest, newest)
	}
	if _, st := tr.Events(2, 10); st != FeedGone {
		t.Error("cursor behind horizon not reported gone")
	}
	evs, st := tr.Events(3, 10)
	if st != FeedOK || len(evs) != 3 {
		t.Errorf("Events(3) = %v (%d events), want 3", evs, len(evs))
	}
	// Paging: one epoch at a time.
	evs, st = tr.Events(3, 1)
	if st != FeedOK || len(evs) != 1 || evs[0].Epoch != 4 {
		t.Errorf("Events(3, max 1) = %v", evs)
	}
	// Caught-up cursor: empty, not gone.
	evs, st = tr.Events(6, 10)
	if st != FeedOK || len(evs) != 0 {
		t.Errorf("Events(6) = %v, %v; want empty ok", evs, st)
	}
}

func TestHistoryBoundingAndEviction(t *testing.T) {
	tr := New(Config{Depth: 2, HistoryDepth: 3})
	tr.Rebase(0, [][]uint32{r(0, 4), r(10, 14)})
	l0 := tr.Communities()[0].Lineage
	l1 := tr.Communities()[1].Lineage

	// l1 dies at epoch 1; l0 keeps evolving.
	mustAdvance(t, tr, 1, [][]uint32{r(0, 5)})
	for e := uint64(2); e <= 6; e++ {
		size := uint32(4 + e%3)
		mustAdvance(t, tr, e, [][]uint32{r(0, size)})
	}
	h, ok := tr.History(l0)
	if !ok || !h.Alive {
		t.Fatalf("live lineage history missing: %+v", h)
	}
	if len(h.Events) != 3 {
		t.Errorf("history length = %d, want bounded to 3", len(h.Events))
	}
	if h.Born != 0 {
		t.Errorf("born = %d, want 0", h.Born)
	}
	if h.Events[len(h.Events)-1].Epoch != 6 {
		t.Errorf("last history event epoch = %d, want 6", h.Events[len(h.Events)-1].Epoch)
	}
	// l1 died at epoch 1, far behind the Depth=2 horizon: evicted.
	if _, ok := tr.History(l1); ok {
		t.Error("dead lineage behind the horizon still resolvable")
	}
}

// Save/Restore round-trips the matcher baseline: a restored tracker
// replaying the same community stream emits byte-identical events and
// states.
func TestSaveRestoreEquivalence(t *testing.T) {
	a := New(Config{Depth: 8})
	a.Rebase(0, [][]uint32{r(0, 6), r(10, 16)})
	mustAdvance(t, a, 1, [][]uint32{r(0, 8), r(10, 16)})
	mustAdvance(t, a, 2, [][]uint32{r(0, 8), r(10, 13), r(13, 16)})
	img, err := a.Save()
	if err != nil {
		t.Fatal(err)
	}

	b := New(Config{Depth: 8})
	if err := b.Restore(img); err != nil {
		t.Fatal(err)
	}
	if b.Epoch() != 2 {
		t.Fatalf("restored epoch = %d, want 2", b.Epoch())
	}
	for e := uint64(3); e <= 5; e++ {
		comms := [][]uint32{r(0, uint32(4+e)), r(10, 13), r(13, 16)}
		evA := mustAdvance(t, a, e, comms)
		evB := mustAdvance(t, b, e, comms)
		if !reflect.DeepEqual(evA, evB) {
			t.Fatalf("epoch %d events diverge:\n a=%v\n b=%v", e, evA, evB)
		}
	}
	sa, _ := a.Save()
	sb, _ := b.Save()
	if !bytes.Equal(sa, sb) {
		t.Errorf("states diverge after identical replay:\n a=%s\n b=%s", sa, sb)
	}
}

func TestRestoreRejectsBadState(t *testing.T) {
	tr := New(Config{Depth: 4})
	if err := tr.Restore([]byte("{")); err == nil {
		t.Error("corrupt state accepted")
	}
	if err := tr.Restore([]byte(`{"v":2,"epoch":1}`)); err == nil {
		t.Error("future state version accepted")
	}
	if err := tr.Restore([]byte(`{"v":1,"epoch":1,"communities":[{"lineage":7,"members":[1]},{"lineage":7,"members":[2]}]}`)); err == nil {
		t.Error("duplicate lineage accepted")
	}
}

// Two independent trackers fed the same stream assign identical lineage
// IDs — the property writer/follower equivalence rests on.
func TestIndependentReplayAgrees(t *testing.T) {
	streams := [][][]uint32{
		{r(0, 4), r(4, 8), r(10, 18)},
		{r(0, 8), r(10, 14), r(14, 18)},
		{r(0, 8), r(10, 14), r(14, 18), r(20, 26)},
		{r(0, 3), r(10, 14), r(14, 18)},
	}
	a, b := New(Config{Depth: 8}), New(Config{Depth: 8})
	a.Rebase(0, streams[0])
	b.Rebase(0, streams[0])
	for e := 1; e < len(streams); e++ {
		evA := mustAdvance(t, a, uint64(e), streams[e])
		evB := mustAdvance(t, b, uint64(e), streams[e])
		if !reflect.DeepEqual(evA, evB) {
			t.Fatalf("epoch %d: independent replays diverge", e)
		}
	}
}
