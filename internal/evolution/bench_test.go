package evolution

import (
	"fmt"
	"testing"
)

// synthEpochs builds two alternating community sets over n communities of
// ~32 members each: set B perturbs set A (membership churn, one merge
// pair, one split), so every Advance exercises matching plus every event
// kind without ever repeating an epoch.
func synthEpochs(n int) (a, b [][]uint32) {
	a = make([][]uint32, 0, n)
	b = make([][]uint32, 0, n)
	for i := 0; i < n; i++ {
		base := uint32(i) * 64
		a = append(a, r(base, base+32))
		switch {
		case i%7 == 0 && i+1 < n:
			// Merge pair: community i swallows half of i's high range.
			b = append(b, r(base, base+48))
		case i%7 == 3:
			// Split: two halves.
			b = append(b, r(base, base+16), r(base+16, base+32))
		default:
			// Churn: drop the low 4 members, add 4 new ones.
			b = append(b, r(base+4, base+36))
		}
	}
	return a, b
}

// BenchmarkEvolutionDiff measures one epoch diff (matching +
// classification + journal upkeep) against community count. CI converts
// its output to BENCH_evolution.json via scripts/bench_json.sh.
func BenchmarkEvolutionDiff(bm *testing.B) {
	for _, n := range []int{16, 128, 1024} {
		bm.Run(fmt.Sprintf("communities=%d", n), func(bm *testing.B) {
			setA, setB := synthEpochs(n)
			tr := New(Config{Depth: 8})
			tr.Rebase(0, setA)
			bm.ReportAllocs()
			bm.ResetTimer()
			epoch := uint64(0)
			for i := 0; i < bm.N; i++ {
				epoch++
				comms := setB
				if i%2 == 1 {
					comms = setA
				}
				if _, err := tr.Advance(epoch, comms); err != nil {
					bm.Fatal(err)
				}
			}
		})
	}
}
