// Package evolution tracks how a dynamic graph's overlapping communities
// evolve across snapshot epochs.
//
// After every published snapshot the caller hands the Tracker the new
// epoch's community list (as produced by cover extraction, whose order is
// bit-identical across writer and follower). The Tracker diffs it against
// the previous epoch via stable matching on member overlap — exact
// rational Jaccard comparison with deterministic tie-breaks — classifies
// every transition into one of seven kinds (birth, death, merge, split,
// grow, shrink, continue), and threads a stable lineage ID through each
// community's life. Lineage IDs are content-derived (a hash of the birth
// epoch and the sorted member list), so two processes replaying the same
// canonical batch stream assign identical IDs and emit identical event
// streams without coordination.
//
// The Tracker keeps a bounded per-epoch event journal (for cursor-based
// streaming with /feed-style horizon semantics) and a bounded per-lineage
// history ring (for point lookups of one community's life-cycle). Its
// matcher baseline — the epoch plus current communities with lineage
// IDs — serializes to JSON so a restarted writer or a bootstrapping
// follower resumes with the same lineage assignments.
//
// The Tracker is not safe for concurrent use; callers synchronize.
package evolution

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/bits"
	"sort"
)

// Kind classifies one epoch-to-epoch community transition.
type Kind string

// The seven transition kinds. Every lineage alive in the previous or the
// new epoch receives exactly one event per epoch.
const (
	// Birth: a new community with no sufficiently-overlapping predecessor.
	Birth Kind = "birth"
	// Death: a previous community with no sufficiently-overlapping successor.
	Death Kind = "death"
	// Merge: on the surviving lineage, the event lists the absorbed
	// lineages in Related; each absorbed lineage gets its own terminal
	// merge event with Related = [survivor].
	Merge Kind = "merge"
	// Split: on each breakaway part (fresh lineage, Related = [parent]);
	// the continuing parent's own event is also split, with Related
	// listing the parts.
	Split Kind = "split"
	// Grow / Shrink / Continue: one-to-one match with larger, smaller, or
	// equal membership.
	Grow     Kind = "grow"
	Shrink   Kind = "shrink"
	Continue Kind = "continue"
)

// Kinds lists every event kind, in a fixed order, for metric
// pre-registration and documentation.
var Kinds = []Kind{Birth, Death, Merge, Split, Grow, Shrink, Continue}

// Event is one classified transition of one lineage at one epoch.
type Event struct {
	Epoch    uint64 `json:"epoch"`
	Kind     Kind   `json:"kind"`
	Lineage  uint64 `json:"lineage"`
	Size     int    `json:"size"`
	PrevSize int    `json:"prev_size,omitempty"`
	// Overlap is the Jaccard similarity to the matched counterpart
	// (0 for births and deaths).
	Overlap float64  `json:"overlap,omitempty"`
	Related []uint64 `json:"related,omitempty"`
}

// Community is one tracked community: its lineage ID, the epoch the
// lineage was born (or rebased) at, and its sorted member list.
type Community struct {
	Lineage uint64   `json:"lineage"`
	Born    uint64   `json:"born"`
	Members []uint32 `json:"members"`
}

// History is the retained life-cycle of one lineage.
type History struct {
	Lineage uint64  `json:"lineage"`
	Born    uint64  `json:"born"`
	Alive   bool    `json:"alive"`
	Size    int     `json:"size"`
	Events  []Event `json:"events"`
}

// Defaults for Config fields left zero.
const (
	DefaultMinJaccard   = 0.1
	DefaultHistoryDepth = 256
)

// Config parameterizes a Tracker; the zero value selects defaults except
// Depth, which callers must set.
type Config struct {
	// Depth bounds the event journal in epochs; older epochs fall behind
	// the horizon (Events reports gone). Must be positive.
	Depth int
	// HistoryDepth bounds each lineage's retained event ring.
	// Default 256.
	HistoryDepth int
	// MinJaccard is the minimum member-overlap Jaccard for two
	// communities to be considered the same lineage. Default 0.1.
	MinJaccard float64
}

func (c Config) withDefaults() Config {
	if c.Depth < 1 {
		c.Depth = 1
	}
	if c.HistoryDepth <= 0 {
		c.HistoryDepth = DefaultHistoryDepth
	}
	if c.MinJaccard <= 0 {
		c.MinJaccard = DefaultMinJaccard
	}
	return c
}

type epochEvents struct {
	epoch  uint64
	events []Event
}

type lineage struct {
	born   uint64
	alive  bool
	size   int
	last   uint64 // epoch of the most recent event (or birth/rebase)
	events []Event
}

// Tracker diffs successive community sets and maintains the event journal
// and lineage histories. Not safe for concurrent use.
type Tracker struct {
	cfg      Config
	epoch    uint64 // epoch of cur
	baseline uint64 // epoch the tracker last (re)based or restored at
	cur      []Community
	journal  []epochEvents // contiguous epochs, ascending
	lineages map[uint64]*lineage

	// scratch reused across Advance calls
	memberIdx map[uint32][]int32
	counts    map[int32]uint64
}

// New returns a Tracker with no baseline; call Rebase or Restore before
// the first Advance.
func New(cfg Config) *Tracker {
	return &Tracker{
		cfg:       cfg.withDefaults(),
		lineages:  make(map[uint64]*lineage),
		memberIdx: make(map[uint32][]int32),
		counts:    make(map[int32]uint64),
	}
}

// Epoch returns the epoch of the tracker's current baseline.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// Communities returns the tracked communities of the current epoch. The
// returned slice and its members must not be mutated.
func (t *Tracker) Communities() []Community { return t.cur }

// LiveLineages reports how many lineages are alive at the current epoch.
func (t *Tracker) LiveLineages() int { return len(t.cur) }

// Rebase resets the tracker to a fresh baseline: every community gets a
// new lineage born at epoch, and the journal and histories are cleared.
func (t *Tracker) Rebase(epoch uint64, comms [][]uint32) {
	t.epoch, t.baseline = epoch, epoch
	t.journal = t.journal[:0]
	clear(t.lineages)
	t.cur = make([]Community, len(comms))
	taken := make(map[uint64]bool, len(comms))
	for i, m := range comms {
		members := append([]uint32(nil), m...)
		id := freshLineageID(epoch, members, taken)
		t.cur[i] = Community{Lineage: id, Born: epoch, Members: members}
		t.lineages[id] = &lineage{born: epoch, alive: true, size: len(members), last: epoch}
	}
}

// lineageID hashes (epoch, members) with fnv64a — content-derived so
// independent replayers of the same stream agree without coordination.
func lineageID(epoch uint64, members []uint32) uint64 {
	h := fnv.New64a()
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], epoch)
	h.Write(b8[:])
	var b4 [4]byte
	for _, v := range members {
		binary.LittleEndian.PutUint32(b4[:], v)
		h.Write(b4[:])
	}
	return h.Sum64()
}

// freshLineageID returns a lineage ID for a community born at epoch,
// deterministically rehashing past collisions with IDs in taken (live
// lineages plus IDs already assigned this epoch), and records the result
// in taken. Both sides of a writer/follower pair see the same taken set,
// so perturbation is replay-stable.
func freshLineageID(epoch uint64, members []uint32, taken map[uint64]bool) uint64 {
	id := lineageID(epoch, members)
	for taken[id] {
		h := fnv.New64a()
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], id)
		h.Write(b[:])
		id = h.Sum64()
	}
	taken[id] = true
	return id
}

// ratioGreater reports inter1/union1 > inter2/union2 exactly, comparing
// cross products in 128 bits so no overlap ratio is ever misordered by
// rounding.
func ratioGreater(inter1, union1, inter2, union2 uint64) bool {
	hi1, lo1 := bits.Mul64(inter1, union2)
	hi2, lo2 := bits.Mul64(inter2, union1)
	return hi1 > hi2 || (hi1 == hi2 && lo1 > lo2)
}

// Advance diffs the communities of epoch (which must be the current epoch
// plus one) against the baseline, appends the classified events to the
// journal and histories, and returns them. The returned slice must not be
// mutated.
func (t *Tracker) Advance(epoch uint64, comms [][]uint32) ([]Event, error) {
	if epoch != t.epoch+1 {
		return nil, fmt.Errorf("evolution: advance to epoch %d from %d (want %d)", epoch, t.epoch, t.epoch+1)
	}
	prev := t.cur

	// Inverted index: member -> previous community indices (ascending,
	// because we append in index order).
	idx := t.memberIdx
	clear(idx)
	for i, c := range prev {
		for _, v := range c.Members {
			idx[v] = append(idx[v], int32(i))
		}
	}

	// For each new community j, its best previous match (exact-Jaccard
	// argmax; ties to the lower previous index) — and symmetrically for
	// each previous community i, its best new match (ties to the lower
	// new index). Candidates below MinJaccard never match.
	bestPrev := make([]int32, len(comms))
	bestPrevInter := make([]uint64, len(comms))
	bestPrevUnion := make([]uint64, len(comms))
	bestNew := make([]int32, len(prev))
	bestNewInter := make([]uint64, len(prev))
	bestNewUnion := make([]uint64, len(prev))
	for j := range bestPrev {
		bestPrev[j] = -1
	}
	for i := range bestNew {
		bestNew[i] = -1
	}
	counts := t.counts
	var cand []int32
	for j, m := range comms {
		clear(counts)
		cand = cand[:0]
		for _, v := range m {
			for _, i := range idx[v] {
				if counts[i] == 0 {
					cand = append(cand, i)
				}
				counts[i]++
			}
		}
		// Candidate order must be deterministic: map iteration is not.
		sort.Slice(cand, func(a, b int) bool { return cand[a] < cand[b] })
		for _, i := range cand {
			inter := counts[i]
			union := uint64(len(m)) + uint64(len(prev[i].Members)) - inter
			if float64(inter) < t.cfg.MinJaccard*float64(union) {
				continue
			}
			if bestPrev[j] < 0 || ratioGreater(inter, union, bestPrevInter[j], bestPrevUnion[j]) {
				bestPrev[j], bestPrevInter[j], bestPrevUnion[j] = i, inter, union
			}
			if bestNew[i] < 0 || ratioGreater(inter, union, bestNewInter[i], bestNewUnion[i]) {
				bestNew[i], bestNewInter[i], bestNewUnion[i] = int32(j), inter, union
			}
		}
	}

	// Mutual best pairs inherit the lineage. A previous community whose
	// best new match went to someone else is absorbed (merge); a new
	// community whose best previous match kept its lineage elsewhere is a
	// breakaway part (split).
	inherit := make([]int32, len(comms))
	for j := range inherit {
		inherit[j] = -1
	}
	for i := range prev {
		if j := bestNew[i]; j >= 0 && bestPrev[j] == int32(i) {
			inherit[j] = int32(i)
		}
	}
	absorbed := make(map[int32][]int32) // new j -> absorbed prev indices (ascending)
	parts := make(map[int32][]int32)    // prev i -> breakaway new indices (ascending)
	for i := range prev {
		if j := bestNew[i]; j >= 0 && inherit[j] != int32(i) {
			absorbed[j] = append(absorbed[j], int32(i))
		}
	}
	for j := range comms {
		if i := bestPrev[j]; i >= 0 && inherit[j] != i {
			parts[i] = append(parts[i], int32(j))
		}
	}

	// Assign lineages: inherited first, then content-derived fresh IDs
	// perturbed past any ID visible this epoch (previous or new) so a
	// hash collision can never conflate two live histories.
	next := make([]Community, len(comms))
	taken := make(map[uint64]bool, len(prev)+len(comms))
	for _, c := range prev {
		taken[c.Lineage] = true
	}
	for j, m := range comms {
		if i := inherit[j]; i >= 0 {
			next[j] = Community{
				Lineage: prev[i].Lineage,
				Born:    prev[i].Born,
				Members: append([]uint32(nil), m...),
			}
		}
	}
	for j, m := range comms {
		if inherit[j] >= 0 {
			continue
		}
		members := append([]uint32(nil), m...)
		next[j] = Community{Lineage: freshLineageID(epoch, members, taken), Born: epoch, Members: members}
	}

	// Classify: one event per lineage, new communities in index order,
	// then ended previous lineages in index order.
	jac := func(inter, union uint64) float64 { return float64(inter) / float64(union) }
	evs := make([]Event, 0, len(comms)+len(prev))
	for j := range comms {
		c := next[j]
		switch {
		case inherit[j] >= 0:
			i := inherit[j]
			ev := Event{
				Epoch:    epoch,
				Lineage:  c.Lineage,
				Size:     len(c.Members),
				PrevSize: len(prev[i].Members),
				Overlap:  jac(bestPrevInter[j], bestPrevUnion[j]),
			}
			switch {
			case len(absorbed[int32(j)]) > 0:
				ev.Kind = Merge
				for _, ai := range absorbed[int32(j)] {
					ev.Related = append(ev.Related, prev[ai].Lineage)
				}
			case len(parts[i]) > 0:
				ev.Kind = Split
				for _, pj := range parts[i] {
					ev.Related = append(ev.Related, next[pj].Lineage)
				}
			case ev.Size > ev.PrevSize:
				ev.Kind = Grow
			case ev.Size < ev.PrevSize:
				ev.Kind = Shrink
			default:
				ev.Kind = Continue
			}
			evs = append(evs, ev)
		case bestPrev[j] >= 0:
			i := bestPrev[j]
			evs = append(evs, Event{
				Epoch:   epoch,
				Kind:    Split,
				Lineage: c.Lineage,
				Size:    len(c.Members),
				Overlap: jac(bestPrevInter[j], bestPrevUnion[j]),
				Related: []uint64{prev[i].Lineage},
			})
		default:
			evs = append(evs, Event{Epoch: epoch, Kind: Birth, Lineage: c.Lineage, Size: len(c.Members)})
		}
	}
	for i := range prev {
		j := bestNew[i]
		if j >= 0 && inherit[j] == int32(i) {
			continue // lineage survived
		}
		if j >= 0 {
			evs = append(evs, Event{
				Epoch:    epoch,
				Kind:     Merge,
				Lineage:  prev[i].Lineage,
				PrevSize: len(prev[i].Members),
				Overlap:  jac(bestNewInter[i], bestNewUnion[i]),
				Related:  []uint64{next[j].Lineage},
			})
		} else {
			evs = append(evs, Event{Epoch: epoch, Kind: Death, Lineage: prev[i].Lineage, PrevSize: len(prev[i].Members)})
		}
	}

	t.cur, t.epoch = next, epoch
	t.journal = append(t.journal, epochEvents{epoch: epoch, events: evs})
	if over := len(t.journal) - t.cfg.Depth; over > 0 {
		t.journal = t.journal[over:]
	}

	// Registry: record each event on its lineage, bound the rings, then
	// evict dead lineages whose last event fell behind the horizon.
	live := make(map[uint64]bool, len(next))
	for _, c := range next {
		live[c.Lineage] = true
	}
	for _, ev := range evs {
		l := t.lineages[ev.Lineage]
		if l == nil {
			l = &lineage{born: epoch}
			t.lineages[ev.Lineage] = l
		}
		l.alive = live[ev.Lineage]
		l.size = ev.Size
		l.last = epoch
		l.events = append(l.events, ev)
		if over := len(l.events) - t.cfg.HistoryDepth; over > 0 {
			l.events = append(l.events[:0], l.events[over:]...)
		}
	}
	horizon := t.journal[0].epoch
	for id, l := range t.lineages {
		if !l.alive && l.last < horizon {
			delete(t.lineages, id)
		}
	}
	return evs, nil
}

// FeedStatus reports whether an Events cursor is servable.
type FeedStatus int

const (
	// FeedOK: events (possibly none) follow the cursor.
	FeedOK FeedStatus = iota
	// FeedGone: the cursor fell behind the retained horizon; the caller
	// must restart from a fresh baseline.
	FeedGone
)

// Window reports the journal's retained range: the oldest epoch a cursor
// may start from without FeedGone, and the newest epoch diffed.
func (t *Tracker) Window() (oldest, newest uint64) {
	if len(t.journal) == 0 {
		return t.baseline, t.epoch
	}
	return t.journal[0].epoch - 1, t.epoch
}

// Events returns the retained events of epochs (from, from+maxEpochs],
// clamped to the diffed range. A cursor older than the retained horizon
// reports FeedGone.
func (t *Tracker) Events(from uint64, maxEpochs int) ([]Event, FeedStatus) {
	oldest, newest := t.Window()
	if from < oldest {
		return nil, FeedGone
	}
	if maxEpochs < 1 {
		maxEpochs = 1
	}
	evs := []Event{}
	for _, ee := range t.journal {
		if ee.epoch <= from {
			continue
		}
		if ee.epoch > from+uint64(maxEpochs) || ee.epoch > newest {
			break
		}
		evs = append(evs, ee.events...)
	}
	return evs, FeedOK
}

// History returns a copy of the retained life-cycle of lineage id, or
// false if the lineage is unknown (never seen, or evicted behind the
// horizon after death).
func (t *Tracker) History(id uint64) (History, bool) {
	l := t.lineages[id]
	if l == nil {
		return History{}, false
	}
	return History{
		Lineage: id,
		Born:    l.born,
		Alive:   l.alive,
		Size:    l.size,
		Events:  append([]Event(nil), l.events...),
	}, true
}

// trackerState is the serialized matcher baseline: enough to resume
// lineage assignment exactly, not the journal or histories (those refill
// from subsequent epochs; the event horizon restarts at Epoch).
type trackerState struct {
	Version     int         `json:"v"`
	Epoch       uint64      `json:"epoch"`
	Communities []Community `json:"communities"`
}

// Save serializes the matcher baseline (epoch plus current communities
// with lineage IDs) as JSON. Two trackers with equal baselines produce
// byte-identical output.
func (t *Tracker) Save() ([]byte, error) {
	return json.Marshal(trackerState{Version: 1, Epoch: t.epoch, Communities: t.cur})
}

// Restore resets the tracker from a Save image: the baseline epoch and
// communities are adopted verbatim (lineage IDs and birth epochs
// included), the journal restarts empty at that epoch, and histories are
// seeded with the live lineages.
func (t *Tracker) Restore(data []byte) error {
	var st trackerState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("evolution: restore: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("evolution: restore: unsupported state version %d", st.Version)
	}
	seen := make(map[uint64]bool, len(st.Communities))
	for _, c := range st.Communities {
		if seen[c.Lineage] {
			return fmt.Errorf("evolution: restore: duplicate lineage %d", c.Lineage)
		}
		seen[c.Lineage] = true
	}
	t.epoch, t.baseline = st.Epoch, st.Epoch
	t.journal = t.journal[:0]
	t.cur = st.Communities
	clear(t.lineages)
	for _, c := range st.Communities {
		t.lineages[c.Lineage] = &lineage{born: c.Born, alive: true, size: len(c.Members), last: st.Epoch}
	}
	return nil
}
