package dynamic

import (
	"testing"

	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := rng.New(seed)
	g := graph.New()
	for i := 0; i < n; i++ {
		g.AddVertex(uint32(i))
	}
	for g.NumEdges() < m {
		u, v := uint32(r.Intn(n)), uint32(r.Intn(n))
		if u != v {
			g.AddEdge(u, v)
		}
	}
	return g
}

func TestBatchComposition(t *testing.T) {
	g := randomGraph(100, 300, 1)
	b, err := Batch(g, 40, 7)
	if err != nil {
		t.Fatal(err)
	}
	ins, del := 0, 0
	for _, e := range b {
		if e.Op == graph.Insert {
			ins++
		} else {
			del++
		}
	}
	if ins != 20 || del != 20 {
		t.Fatalf("composition %d+/%d-", ins, del)
	}
}

func TestBatchAppliesCleanly(t *testing.T) {
	g := randomGraph(80, 200, 3)
	b, err := Batch(g, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if changed := g.Apply(b); changed != len(b) {
		t.Fatalf("only %d/%d edits applied — batch must be conflict-free", changed, len(b))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge count unchanged: equal insertions and deletions.
	if g.NumEdges() != 200 {
		t.Fatalf("edges %d, want 200", g.NumEdges())
	}
}

func TestBatchDeterministic(t *testing.T) {
	g := randomGraph(50, 120, 5)
	a, err := Batch(g, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Batch(g, 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	seen := make(map[graph.Edit]int)
	for _, e := range a {
		seen[e]++
	}
	for _, e := range b {
		if seen[e] == 0 {
			t.Fatalf("edit %+v missing from first batch", e)
		}
		seen[e]--
	}
}

func TestBatchErrors(t *testing.T) {
	g := randomGraph(10, 20, 2)
	if _, err := Batch(g, -1, 1); err == nil {
		t.Fatal("negative size accepted")
	}
	if _, err := Batch(g, 100, 1); err == nil {
		t.Fatal("deleting more edges than exist accepted")
	}
	// A near-complete graph cannot absorb many insertions.
	k := graph.New()
	for i := uint32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k.AddEdge(i, j)
		}
	}
	if _, err := Batch(k, 12, 1); err == nil {
		t.Fatal("overfull insertion accepted")
	}
}

func TestBatchZeroSize(t *testing.T) {
	g := randomGraph(20, 40, 8)
	b, err := Batch(g, 0, 1)
	if err != nil || len(b) != 0 {
		t.Fatalf("zero batch: %v %v", b, err)
	}
}

func TestStreamSequence(t *testing.T) {
	g := randomGraph(100, 300, 4)
	snapshot := g.Clone()
	batches, err := Stream(g, 30, 5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 5 {
		t.Fatalf("batches %d", len(batches))
	}
	// Replaying the batches on the snapshot must land on the same graph.
	for _, b := range batches {
		if changed := snapshot.Apply(b); changed != len(b) {
			t.Fatalf("replay applied %d/%d", changed, len(b))
		}
	}
	if !snapshot.Equal(g) {
		t.Fatal("replay diverged from streamed graph")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	g := randomGraph(60, 150, 6)
	before := g.Clone()
	b, err := Batch(g, 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	g.Apply(b)
	g.Apply(Invert(b))
	if !g.Equal(before) {
		t.Fatal("invert did not restore the graph")
	}
}

func TestBatchAvoidsDeleteInsertConflict(t *testing.T) {
	// An edge deleted in the batch must not also be inserted by it.
	g := randomGraph(30, 60, 7)
	for seed := uint64(0); seed < 20; seed++ {
		b, err := Batch(g, 40, seed)
		if err != nil {
			t.Fatal(err)
		}
		deleted := make(map[uint64]bool)
		for _, e := range b {
			if e.Op == graph.Delete {
				deleted[graph.EdgeKey(e.U, e.V)] = true
			}
		}
		for _, e := range b {
			if e.Op == graph.Insert && deleted[graph.EdgeKey(e.U, e.V)] {
				t.Fatalf("seed %d: edge %d-%d both deleted and inserted", seed, e.U, e.V)
			}
		}
	}
}
