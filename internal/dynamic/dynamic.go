// Package dynamic generates the edit workloads of the paper's dynamic
// experiments (Sections IV and V-B): batches of edge insertions and
// deletions drawn uniformly at random — "each existing edge will have equal
// probability to be deleted, and each non-existing edge will have equal
// probability to be inserted" — with half of each batch insertions and half
// deletions, at batch sizes from 100 to 100,000 (Figure 9).
package dynamic

import (
	"fmt"

	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// Batch draws an edit batch of the given size against g: size/2 uniform
// deletions of existing edges and size-size/2 uniform insertions of
// non-existing edges (between existing vertices). The batch is not applied
// to g. Deletions are sampled without replacement; insertions are rejected
// against both g and the batch so the whole batch applies cleanly.
func Batch(g *graph.Graph, size int, seed uint64) ([]graph.Edit, error) {
	if size < 0 {
		return nil, fmt.Errorf("dynamic: negative batch size %d", size)
	}
	deletions := size / 2
	insertions := size - deletions
	if deletions > g.NumEdges() {
		return nil, fmt.Errorf("dynamic: cannot delete %d of %d edges", deletions, g.NumEdges())
	}
	n := int64(g.NumVertices())
	maxInsert := n*(n-1)/2 - int64(g.NumEdges())
	if int64(insertions) > maxInsert {
		return nil, fmt.Errorf("dynamic: cannot insert %d edges into graph with %d free slots", insertions, maxInsert)
	}
	r := rng.New(seed)
	batch := make([]graph.Edit, 0, size)

	// Uniform deletions without replacement: partial Fisher-Yates over the
	// edge key list.
	edges := g.Edges()
	for i := 0; i < deletions; i++ {
		j := i + r.Intn(len(edges)-i)
		edges[i], edges[j] = edges[j], edges[i]
		u, v := graph.UnpackEdgeKey(edges[i])
		batch = append(batch, graph.Edit{Op: graph.Delete, U: u, V: v})
	}

	// Uniform insertions by rejection over vertex pairs. The graphs used
	// here are sparse (|E| << n²/2), so rejections are rare.
	vertices := g.Vertices()
	pending := make(map[uint64]struct{}, insertions)
	deleted := make(map[uint64]struct{}, deletions)
	for _, e := range batch {
		deleted[graph.EdgeKey(e.U, e.V)] = struct{}{}
	}
	for len(pending) < insertions {
		u := vertices[r.Intn(len(vertices))]
		v := vertices[r.Intn(len(vertices))]
		if u == v {
			continue
		}
		key := graph.EdgeKey(u, v)
		if _, ok := pending[key]; ok {
			continue
		}
		if _, ok := deleted[key]; ok {
			continue // keep delete+insert of one edge out of a single batch
		}
		if g.HasEdge(u, v) {
			continue
		}
		pending[key] = struct{}{}
		batch = append(batch, graph.Edit{Op: graph.Insert, U: u, V: v})
	}
	return batch, nil
}

// Stream produces a sequence of batches, each drawn against the state of
// the graph after the previous batch was applied. The supplied graph is
// mutated. It returns the batches in order.
func Stream(g *graph.Graph, batchSize, count int, seed uint64) ([][]graph.Edit, error) {
	batches := make([][]graph.Edit, 0, count)
	for i := 0; i < count; i++ {
		b, err := Batch(g, batchSize, seed+uint64(i)*0x9e3779b97f4a7c15)
		if err != nil {
			return nil, fmt.Errorf("dynamic: batch %d: %w", i, err)
		}
		g.Apply(b)
		batches = append(batches, b)
	}
	return batches, nil
}

// Invert returns the batch that undoes b (inserts become deletes and vice
// versa, in reverse order), useful for rollback-style tests.
func Invert(b []graph.Edit) []graph.Edit {
	out := make([]graph.Edit, len(b))
	for i, e := range b {
		op := graph.Insert
		if e.Op == graph.Insert {
			op = graph.Delete
		}
		out[len(b)-1-i] = graph.Edit{Op: op, U: e.U, V: e.V}
	}
	return out
}
