// Package lfr generates LFR-style benchmark graphs with planted overlapping
// communities (Lancichinetti & Fortunato, Phys. Rev. E 80, 2009), the
// synthetic workload of the paper's Section V-A.
//
// The generator reproduces the semantics of the LFR parameters that the
// paper sweeps (Table I): N vertices whose degrees follow a truncated power
// law with average k and maximum maxk; community sizes following a second
// power law; a mixing parameter µ giving the fraction of every vertex's
// edges that leave its communities; and `on` overlapping vertices that each
// belong to `om` communities. The wiring uses a configuration model with
// rejection of self-loops and duplicate edges, an internal pass per
// community and one global external pass.
//
// This is a faithful re-implementation of the published construction, not a
// binding of the authors' C++ tool (which is unavailable here); tests verify
// the realized average degree, mixing fraction, and overlap counts against
// the requested parameters.
package lfr

import (
	"fmt"
	"math"

	"rslpa/internal/cover"
	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// Params configures the generator. The zero value is not valid; start from
// Default and override fields.
type Params struct {
	N      int     // number of vertices
	AvgDeg float64 // k:    average degree
	MaxDeg int     // maxk: maximum degree
	Mu     float64 // µ:    mixing parameter, fraction of external edges per vertex
	On     int     // on:   number of overlapping vertices
	Om     int     // om:   memberships of each overlapping vertex

	MinComm int     // minimum community size (0 = derive from degrees)
	MaxComm int     // maximum community size (0 = derive from degrees)
	TauDeg  float64 // degree power-law exponent  (0 = 2, the LFR default)
	TauComm float64 // community-size exponent    (0 = 1, the LFR default)

	Seed uint64 // PRNG seed; equal params + seed => identical output
}

// Default returns the paper's default setting (Section V-A.1): N=10000,
// k=30, maxk=100, om=2, on=0.1N, µ=0.1.
func Default(n int) Params {
	return Params{
		N:      n,
		AvgDeg: 30,
		MaxDeg: 100,
		Mu:     0.1,
		On:     n / 10,
		Om:     2,
		Seed:   1,
	}
}

// withDefaults fills derived fields and returns the completed parameters.
func (p Params) withDefaults() Params {
	if p.TauDeg == 0 {
		p.TauDeg = 2
	}
	if p.TauComm == 0 {
		p.TauComm = 1
	}
	if p.MinComm == 0 {
		p.MinComm = int(math.Max(10, p.AvgDeg/2))
	}
	if p.MaxComm == 0 {
		// Communities must be able to host the largest internal degree:
		// a vertex of degree maxk keeps (1-µ)·maxk internal edges split
		// over om memberships in the worst overlapping case, but
		// non-overlapping vertices need a community of size
		// (1-µ)·maxk + 1 in one piece.
		need := int(float64(p.MaxDeg)*(1-p.Mu)) + 2
		p.MaxComm = need
		if p.MaxComm < 2*p.MinComm {
			p.MaxComm = 2 * p.MinComm
		}
	}
	if p.MaxComm > p.N {
		p.MaxComm = p.N
	}
	if p.MinComm > p.MaxComm {
		p.MinComm = p.MaxComm
	}
	return p
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	switch {
	case p.N < 10:
		return fmt.Errorf("lfr: N=%d too small (min 10)", p.N)
	case p.AvgDeg < 1:
		return fmt.Errorf("lfr: average degree %.2f < 1", p.AvgDeg)
	case p.MaxDeg < int(p.AvgDeg):
		return fmt.Errorf("lfr: max degree %d below average %.2f", p.MaxDeg, p.AvgDeg)
	case p.MaxDeg >= p.N:
		return fmt.Errorf("lfr: max degree %d must be < N=%d", p.MaxDeg, p.N)
	case p.Mu < 0 || p.Mu > 1:
		return fmt.Errorf("lfr: mixing µ=%.3f outside [0,1]", p.Mu)
	case p.On < 0 || p.On > p.N:
		return fmt.Errorf("lfr: on=%d outside [0,N]", p.On)
	case p.On > 0 && p.Om < 2:
		return fmt.Errorf("lfr: om=%d must be >= 2 when on > 0", p.Om)
	}
	return nil
}

// Result bundles a generated graph with its planted ground-truth cover.
type Result struct {
	Graph  *graph.Graph
	Truth  *cover.Cover
	Params Params // the completed parameters actually used
}

// Generate builds a benchmark graph. The same Params (including Seed)
// always produce the same graph.
func Generate(p Params) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	r := rng.New(p.Seed)

	degrees := sampleDegrees(r, p)
	internal := make([]int, p.N)
	for i, d := range degrees {
		internal[i] = int(math.Round(float64(d) * (1 - p.Mu)))
		if internal[i] > d {
			internal[i] = d
		}
	}

	memberships := sampleMemberships(r, p)
	totalSlots := 0
	for _, m := range memberships {
		totalSlots += m
	}
	sizes := sampleCommunitySizes(r, p, totalSlots)

	assign, err := assignCommunities(r, p, degrees, internal, memberships, sizes)
	if err != nil {
		return nil, err
	}

	g := wire(r, p, degrees, internal, sizes, assign)

	truth := cover.New(len(sizes))
	byComm := make([][]uint32, len(sizes))
	for v, cs := range assign {
		for _, c := range cs {
			byComm[c] = append(byComm[c], uint32(v))
		}
	}
	for _, members := range byComm {
		truth.Add(members)
	}
	return &Result{Graph: g, Truth: truth, Params: p}, nil
}

// sampleDegrees draws N degrees from a truncated power law with exponent
// TauDeg and maximum MaxDeg, choosing the lower cutoff so the mean matches
// AvgDeg, then repairs the sum to be even (configuration model requirement).
func sampleDegrees(r *rng.Source, p Params) []int {
	xmin := solveXmin(p.AvgDeg, float64(p.MaxDeg), p.TauDeg)
	degrees := make([]int, p.N)
	sum := 0
	for i := range degrees {
		d := int(math.Round(powerLaw(r, xmin, float64(p.MaxDeg), p.TauDeg)))
		if d < 1 {
			d = 1
		}
		if d > p.MaxDeg {
			d = p.MaxDeg
		}
		degrees[i] = d
		sum += d
	}
	if sum%2 == 1 {
		// Bump a random non-maximal vertex to make the stub count even.
		for {
			i := r.Intn(p.N)
			if degrees[i] < p.MaxDeg {
				degrees[i]++
				break
			}
		}
	}
	return degrees
}

// powerLaw samples a continuous power law p(x) ∝ x^-exp on [xmin, xmax]
// by inverse-CDF.
func powerLaw(r *rng.Source, xmin, xmax, exp float64) float64 {
	u := r.Float64()
	if math.Abs(exp-1) < 1e-9 {
		return xmin * math.Pow(xmax/xmin, u)
	}
	e := 1 - exp
	a := math.Pow(xmin, e)
	b := math.Pow(xmax, e)
	return math.Pow(a+u*(b-a), 1/e)
}

// powerLawMean is the analytic mean of the continuous truncated power law.
func powerLawMean(xmin, xmax, exp float64) float64 {
	if math.Abs(exp-1) < 1e-9 {
		return (xmax - xmin) / math.Log(xmax/xmin)
	}
	if math.Abs(exp-2) < 1e-9 {
		return math.Log(xmax/xmin) / (1/xmin - 1/xmax)
	}
	e1 := 1 - exp
	e2 := 2 - exp
	num := (math.Pow(xmax, e2) - math.Pow(xmin, e2)) / e2
	den := (math.Pow(xmax, e1) - math.Pow(xmin, e1)) / e1
	return num / den
}

// solveXmin binary-searches the lower cutoff so the power-law mean equals
// the requested average degree.
func solveXmin(avg, xmax, exp float64) float64 {
	lo, hi := 1.0, xmax
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if powerLawMean(mid, xmax, exp) < avg {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// sampleMemberships returns each vertex's number of community memberships:
// `on` uniformly chosen vertices get om, everyone else gets 1.
func sampleMemberships(r *rng.Source, p Params) []int {
	m := make([]int, p.N)
	for i := range m {
		m[i] = 1
	}
	perm := r.Perm(p.N)
	for i := 0; i < p.On; i++ {
		m[perm[i]] = p.Om
	}
	return m
}

// sampleCommunitySizes draws community sizes from a power law with exponent
// TauComm on [MinComm, MaxComm] until the total capacity covers all
// membership slots, then trims the overshoot.
func sampleCommunitySizes(r *rng.Source, p Params, totalSlots int) []int {
	var sizes []int
	sum := 0
	for sum < totalSlots {
		s := int(math.Round(powerLaw(r, float64(p.MinComm), float64(p.MaxComm), p.TauComm)))
		if s < p.MinComm {
			s = p.MinComm
		}
		if s > p.MaxComm {
			s = p.MaxComm
		}
		sizes = append(sizes, s)
		sum += s
	}
	// Trim the overshoot off the last community; if that would make it too
	// small, merge the remainder into earlier communities with headroom.
	over := sum - totalSlots
	last := len(sizes) - 1
	if sizes[last]-over >= p.MinComm {
		sizes[last] -= over
	} else {
		over -= sizes[last] - p.MinComm
		sizes[last] = p.MinComm
		for i := 0; i < last && over > 0; i++ {
			give := sizes[i] - p.MinComm
			if give > over {
				give = over
			}
			sizes[i] -= give
			over -= give
		}
		// Any residual overshoot is absorbed as extra capacity; the
		// assignment step tolerates slack.
	}
	return sizes
}

// assignCommunities places each vertex into its required number of distinct
// communities, respecting capacities and, where possible, the constraint
// that a community must be large enough to host the vertex's per-membership
// internal degree.
func assignCommunities(r *rng.Source, p Params, degrees, internal, memberships, sizes []int) ([][]int, error) {
	nc := len(sizes)
	if nc == 0 {
		return nil, fmt.Errorf("lfr: no communities generated")
	}
	capacity := append([]int(nil), sizes...)
	assign := make([][]int, p.N)

	// Hard-to-place vertices first: highest per-membership internal degree.
	order := r.Perm(p.N)
	sortByNeed(order, internal, memberships)

	for _, v := range order {
		need := memberships[v]
		perShare := (internal[v] + need - 1) / need
		for k := 0; k < need; k++ {
			c := pickCommunity(r, capacity, sizes, assign[v], perShare)
			if c < 0 {
				// No community satisfies the degree constraint;
				// relax it and take any with free capacity.
				c = pickCommunity(r, capacity, sizes, assign[v], 0)
			}
			if c < 0 {
				// Capacities exhausted (can happen after trimming);
				// overflow the largest community not containing v.
				c = largestAvailable(sizes, assign[v])
				if c < 0 {
					return nil, fmt.Errorf("lfr: cannot place vertex %d in %d distinct communities (only %d exist)", v, need, nc)
				}
				sizes[c]++ // tolerate slight size overflow
			} else {
				capacity[c]--
			}
			assign[v] = append(assign[v], c)
		}
	}
	return assign, nil
}

// sortByNeed orders vertex indices by decreasing per-membership internal
// degree (insertion of a stable order is not required; ties keep the random
// permutation order, which keeps the generator unbiased).
func sortByNeed(order []int, internal, memberships []int) {
	needOf := func(v int) int { return (internal[v] + memberships[v] - 1) / memberships[v] }
	// Simple in-place sort; N is at most a few hundred thousand.
	quicksortDesc(order, needOf)
}

func quicksortDesc(a []int, key func(int) int) {
	for len(a) > 12 {
		p := partitionDesc(a, key)
		if p < len(a)-p {
			quicksortDesc(a[:p], key)
			a = a[p:]
		} else {
			quicksortDesc(a[p:], key)
			a = a[:p]
		}
	}
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && key(a[j]) > key(a[j-1]); j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func partitionDesc(a []int, key func(int) int) int {
	pivot := key(a[len(a)/2])
	i, j := 0, len(a)-1
	for {
		for key(a[i]) > pivot {
			i++
		}
		for key(a[j]) < pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		a[i], a[j] = a[j], a[i]
		i++
		j--
	}
}

// pickCommunity returns a uniformly random community with free capacity,
// size > minSize, and not already in `have`, or -1 if none qualifies.
func pickCommunity(r *rng.Source, capacity, sizes []int, have []int, minSize int) int {
	eligible := make([]int, 0, 8)
	for c := range capacity {
		if capacity[c] <= 0 || sizes[c] <= minSize {
			continue
		}
		if containsInt(have, c) {
			continue
		}
		eligible = append(eligible, c)
	}
	if len(eligible) == 0 {
		return -1
	}
	return eligible[r.Intn(len(eligible))]
}

func largestAvailable(sizes []int, have []int) int {
	best, bestSize := -1, -1
	for c, s := range sizes {
		if s > bestSize && !containsInt(have, c) {
			best, bestSize = c, s
		}
	}
	return best
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}
