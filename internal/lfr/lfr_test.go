package lfr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Default(1000)
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	cases := []Params{
		{N: 5, AvgDeg: 2, MaxDeg: 3},
		{N: 100, AvgDeg: 0.5, MaxDeg: 10},
		{N: 100, AvgDeg: 20, MaxDeg: 10},
		{N: 100, AvgDeg: 5, MaxDeg: 100},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 1.5},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 0.1, On: 200},
		{N: 100, AvgDeg: 5, MaxDeg: 20, Mu: 0.1, On: 10, Om: 1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, p)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Default(300)
	p.AvgDeg, p.MaxDeg, p.On = 10, 30, 30
	a, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Graph.Equal(b.Graph) {
		t.Fatal("same params+seed produced different graphs")
	}
	if !a.Truth.Equal(b.Truth) {
		t.Fatal("same params+seed produced different ground truth")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	p := Default(2000)
	p.AvgDeg, p.MaxDeg, p.On = 12, 40, 200
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumVertices() != p.N {
		t.Fatalf("vertices %d, want %d", g.NumVertices(), p.N)
	}
	stats := g.ComputeStats()
	if math.Abs(stats.AvgDegree-p.AvgDeg) > 0.2*p.AvgDeg {
		t.Fatalf("avg degree %.2f, want %.2f ± 20%%", stats.AvgDegree, p.AvgDeg)
	}
	if stats.MaxDegree > p.MaxDeg {
		t.Fatalf("max degree %d exceeds cap %d", stats.MaxDegree, p.MaxDeg)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateMembershipCounts(t *testing.T) {
	p := Default(1500)
	p.AvgDeg, p.MaxDeg = 10, 30
	p.On, p.Om = 150, 3
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	member := res.Truth.Membership()
	over, maxM := 0, 0
	for v := uint32(0); v < uint32(p.N); v++ {
		m := len(member[v])
		if m == 0 {
			t.Fatalf("vertex %d in no community", v)
		}
		if m >= 2 {
			over++
		}
		if m > maxM {
			maxM = m
		}
	}
	if over != p.On {
		t.Fatalf("overlapping vertices %d, want %d", over, p.On)
	}
	if maxM != p.Om {
		t.Fatalf("max memberships %d, want %d", maxM, p.Om)
	}
}

func TestGenerateMixing(t *testing.T) {
	for _, mu := range []float64{0.1, 0.2, 0.3} {
		p := Default(2000)
		p.AvgDeg, p.MaxDeg, p.On = 15, 45, 200
		p.Mu = mu
		res, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		member := res.Truth.Membership()
		got := MeasureMixing(res.Graph, member)
		if math.Abs(got-mu) > 0.06 {
			t.Errorf("µ=%.2f: realized mixing %.3f (want within 0.06)", mu, got)
		}
	}
}

func TestGenerateCommunitySizeBounds(t *testing.T) {
	p := Default(1200)
	p.AvgDeg, p.MaxDeg, p.On = 10, 30, 120
	p.MinComm, p.MaxComm = 20, 60
	res, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, size := range res.Truth.Sizes() {
		// Assignment overflow may exceed the cap slightly; sizes far out
		// of range indicate a bug.
		if size < p.MinComm/2 || size > 2*p.MaxComm {
			t.Fatalf("community %d size %d far outside [%d, %d]", i, size, p.MinComm, p.MaxComm)
		}
	}
}

func TestPowerLawMeanMatchesSamples(t *testing.T) {
	quickCfg := &quick.Config{MaxCount: 20}
	check := func(seedRaw uint16) bool {
		xmin, xmax, exp := 3.0, 80.0, 2.0
		want := powerLawMean(xmin, xmax, exp)
		r := newTestSource(uint64(seedRaw))
		sum := 0.0
		const n = 30000
		for i := 0; i < n; i++ {
			sum += powerLaw(r, xmin, xmax, exp)
		}
		got := sum / n
		return math.Abs(got-want) < 0.08*want
	}
	if err := quick.Check(check, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveXminHitsTarget(t *testing.T) {
	for _, avg := range []float64{5, 15, 30, 50} {
		xmin := solveXmin(avg, 100, 2)
		got := powerLawMean(xmin, 100, 2)
		if math.Abs(got-avg) > 0.01*avg {
			t.Errorf("avg %v: solved xmin %.3f gives mean %.3f", avg, xmin, got)
		}
	}
}

func TestSampleCommunitySizesCoversSlots(t *testing.T) {
	p := Default(1000).withDefaults()
	r := newTestSource(5)
	for _, slots := range []int{1000, 1100, 1357} {
		sizes := sampleCommunitySizes(r, p, slots)
		total := 0
		for _, s := range sizes {
			total += s
		}
		if total < slots {
			t.Fatalf("slots %d: capacity %d insufficient", slots, total)
		}
	}
}
