package lfr

import (
	"rslpa/internal/graph"
	"rslpa/internal/rng"
)

// wire builds the benchmark graph from the planted structure using a
// configuration model: one internal stub-matching pass per community, then
// a single global pass for external stubs. Self-loops and duplicate edges
// are rejected by re-shuffling; stubs that cannot be matched after several
// rounds are dropped (a standard LFR relaxation — the realized degree
// sequence is validated statistically by tests, not exactly).
func wire(r *rng.Source, p Params, degrees, internal, sizes []int, assign [][]int) *graph.Graph {
	nc := len(sizes)
	members := make([][]int, nc)
	for v, cs := range assign {
		for _, c := range cs {
			members[c] = append(members[c], v)
		}
	}

	// Split each vertex's internal degree across its communities, capping
	// each share at |community|-1 (a vertex cannot have more internal
	// neighbors than the community has other members).
	shares := make([][]int, p.N) // parallel to assign[v]
	extDeg := make([]int, p.N)
	for v := range assign {
		cs := assign[v]
		m := len(cs)
		shares[v] = make([]int, m)
		remaining := internal[v]
		base := remaining / m
		extra := remaining % m
		for i, c := range cs {
			s := base
			if i < extra {
				s++
			}
			if max := len(members[c]) - 1; s > max {
				s = max
			}
			shares[v][i] = s
		}
		used := 0
		for _, s := range shares[v] {
			used += s
		}
		// Redistribute any capped-off internal degree to communities with
		// headroom so the realized mixing stays close to µ.
		deficit := internal[v] - used
		for i, c := range cs {
			if deficit == 0 {
				break
			}
			if room := len(members[c]) - 1 - shares[v][i]; room > 0 {
				add := room
				if add > deficit {
					add = deficit
				}
				shares[v][i] += add
				deficit -= add
			}
		}
		used = 0
		for _, s := range shares[v] {
			used += s
		}
		extDeg[v] = degrees[v] - used
		if extDeg[v] < 0 {
			extDeg[v] = 0
		}
	}

	g := graph.NewWithCapacity(p.N, int(float64(p.N)*p.AvgDeg/2))
	for v := 0; v < p.N; v++ {
		g.AddVertex(uint32(v))
	}

	// Internal passes.
	for c := 0; c < nc; c++ {
		stubs := make([]int, 0, 64)
		for _, v := range members[c] {
			share := 0
			for i, cc := range assign[v] {
				if cc == c {
					share = shares[v][i]
					break
				}
			}
			for k := 0; k < share; k++ {
				stubs = append(stubs, v)
			}
		}
		matchStubs(r, g, stubs, nil, 30)
	}

	// External pass: a global stub matching that avoids intra-community
	// pairs while possible.
	stubs := make([]int, 0, p.N)
	for v := 0; v < p.N; v++ {
		for k := 0; k < extDeg[v]; k++ {
			stubs = append(stubs, v)
		}
	}
	shared := func(u, v int) bool {
		for _, cu := range assign[u] {
			if containsInt(assign[v], cu) {
				return true
			}
		}
		return false
	}
	leftover := matchStubs(r, g, stubs, shared, 30)
	// Final relaxation: drain remaining external stubs without the
	// community constraint so the degree sequence stays close.
	matchStubs(r, g, leftover, nil, 10)
	return g
}

// matchStubs repeatedly shuffles the stub list and pairs adjacent entries,
// adding each valid pair as an edge; invalid pairs (self, duplicate, or
// rejected by the forbid predicate) are retried in the next round. It
// returns the stubs still unmatched after maxRounds.
func matchStubs(r *rng.Source, g *graph.Graph, stubs []int, forbid func(u, v int) bool, maxRounds int) []int {
	for round := 0; round < maxRounds && len(stubs) > 1; round++ {
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		var next []int
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			switch {
			case u == v,
				forbid != nil && forbid(u, v),
				!g.AddEdge(uint32(u), uint32(v)):
				next = append(next, u, v)
			}
		}
		if len(stubs)%2 == 1 {
			next = append(next, stubs[len(stubs)-1])
		}
		if len(next) == len(stubs) {
			// No progress; a final shuffle will not help either.
			return next
		}
		stubs = next
	}
	return stubs
}

// MeasureMixing returns the realized mixing parameter of a graph with
// respect to a membership assignment: the fraction of edge endpoints whose
// other end shares no community. Tests use it to validate the generator.
func MeasureMixing(g *graph.Graph, assign map[uint32][]int) float64 {
	external, total := 0, 0
	g.ForEachEdge(func(u, v uint32) {
		total += 2
		if !shareAny(assign[u], assign[v]) {
			external += 2
		}
	})
	if total == 0 {
		return 0
	}
	return float64(external) / float64(total)
}

func shareAny(a, b []int) bool {
	for _, x := range a {
		if containsInt(b, x) {
			return true
		}
	}
	return false
}
