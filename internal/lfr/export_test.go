package lfr

import "rslpa/internal/rng"

// newTestSource exposes a PRNG constructor to the tests without importing
// rng there directly.
func newTestSource(seed uint64) *rng.Source { return rng.New(seed) }
