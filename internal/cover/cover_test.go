package cover

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddSortsAndDedupes(t *testing.T) {
	c := New(2)
	idx := c.Add([]uint32{5, 1, 3, 1, 5})
	if idx != 0 {
		t.Fatalf("index = %d", idx)
	}
	got := c.Community(0)
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("community: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("community: %v", got)
		}
	}
	if c.Add(nil) != -1 {
		t.Fatal("empty community accepted")
	}
}

func TestFromMembershipRoundTrip(t *testing.T) {
	m := map[uint32][]int{
		1: {0},
		2: {0, 1},
		3: {1},
	}
	c := FromMembership(m)
	if c.Len() != 2 {
		t.Fatalf("communities = %d", c.Len())
	}
	back := c.Membership()
	if len(back[2]) != 2 || len(back[1]) != 1 {
		t.Fatalf("membership: %v", back)
	}
}

func TestSizesAndCovered(t *testing.T) {
	c := FromCommunities([][]uint32{{1, 2, 3}, {3, 4}})
	sizes := c.Sizes()
	if sizes[0] != 3 || sizes[1] != 2 {
		t.Fatalf("sizes: %v", sizes)
	}
	if c.CoveredVertices() != 4 {
		t.Fatalf("covered = %d", c.CoveredVertices())
	}
	over, maxM := c.OverlappingVertices()
	if over != 1 || maxM != 2 {
		t.Fatalf("overlap: %d %d", over, maxM)
	}
}

func TestEntropyMatchesFormula(t *testing.T) {
	c := FromCommunities([][]uint32{{1, 2}, {3, 4, 5, 6}})
	n := 8
	want := -(0.25*math.Log(0.25) + 0.5*math.Log(0.5))
	if got := c.Entropy(n); math.Abs(got-want) > 1e-12 {
		t.Fatalf("entropy %v want %v", got, want)
	}
	if c.Entropy(0) != 0 {
		t.Fatal("entropy with zero vertices")
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	a := FromCommunities([][]uint32{{1, 2}, {3, 4}})
	b := FromCommunities([][]uint32{{4, 3}, {2, 1}})
	if !a.Equal(b) {
		t.Fatal("order-insensitive equality failed")
	}
	c := FromCommunities([][]uint32{{1, 2}, {3, 5}})
	if a.Equal(c) {
		t.Fatal("different covers equal")
	}
	d := FromCommunities([][]uint32{{1, 2}})
	if a.Equal(d) {
		t.Fatal("different lengths equal")
	}
}

func TestRemoveSubsets(t *testing.T) {
	c := FromCommunities([][]uint32{
		{1, 2, 3, 4},
		{2, 3},       // subset
		{1, 2, 3, 4}, // duplicate
		{4, 5},       // overlapping but not subset
	})
	r := c.RemoveSubsets()
	if r.Len() != 2 {
		t.Fatalf("kept %d communities: %v", r.Len(), r.Canonical())
	}
}

func TestFilterMinSize(t *testing.T) {
	c := FromCommunities([][]uint32{{1}, {1, 2}, {1, 2, 3}})
	if got := c.FilterMinSize(2).Len(); got != 2 {
		t.Fatalf("filtered = %d", got)
	}
}

func TestReadWrite(t *testing.T) {
	in := "# truth\n3 1 2\n\n7 8\n"
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("communities = %d", c.Len())
	}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Equal(back) {
		t.Fatal("round trip mismatch")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("1 x 3\n")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCanonicalSorted(t *testing.T) {
	check := func(raw [][]uint32) bool {
		c := FromCommunities(raw)
		canon := c.Canonical()
		for i := 1; i < len(canon); i++ {
			if lessSlice(canon[i], canon[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
