// Package cover defines the community cover type shared by the detection
// algorithms, the post-processing stage, and the evaluation metrics.
//
// A cover is a set of communities, each a set of vertices; vertices may
// belong to several communities (overlap) or to none. This matches the
// output format of both SLPA and rSLPA and the ground-truth format of the
// LFR benchmark.
package cover

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Cover is a set of overlapping communities over uint32 vertex IDs.
// The zero value is an empty cover ready to use.
type Cover struct {
	communities [][]uint32
}

// New returns an empty cover with room for n communities.
func New(n int) *Cover {
	return &Cover{communities: make([][]uint32, 0, n)}
}

// FromCommunities builds a cover from explicit member lists. Each community
// is copied, sorted and de-duplicated; empty communities are dropped.
func FromCommunities(comms [][]uint32) *Cover {
	c := New(len(comms))
	for _, members := range comms {
		c.Add(members)
	}
	return c
}

// FromMembership builds a cover from a vertex -> community-IDs assignment.
// Community IDs may be arbitrary; they are compacted.
func FromMembership(member map[uint32][]int) *Cover {
	byComm := make(map[int][]uint32)
	for v, cs := range member {
		for _, id := range cs {
			byComm[id] = append(byComm[id], v)
		}
	}
	ids := make([]int, 0, len(byComm))
	for id := range byComm {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	c := New(len(ids))
	for _, id := range ids {
		c.Add(byComm[id])
	}
	return c
}

// Add appends a community. Members are copied, sorted and de-duplicated;
// an empty community is ignored. It returns the community's index, or -1
// if it was ignored.
func (c *Cover) Add(members []uint32) int {
	if len(members) == 0 {
		return -1
	}
	m := append([]uint32(nil), members...)
	sort.Slice(m, func(i, j int) bool { return m[i] < m[j] })
	m = dedupe(m)
	c.communities = append(c.communities, m)
	return len(c.communities) - 1
}

func dedupe(sorted []uint32) []uint32 {
	out := sorted[:0]
	for i, v := range sorted {
		if i == 0 || v != sorted[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the number of communities.
func (c *Cover) Len() int { return len(c.communities) }

// Community returns the members of community i (sorted, ascending). The
// returned slice is owned by the cover and must not be mutated.
func (c *Cover) Community(i int) []uint32 { return c.communities[i] }

// Communities returns all communities. The returned slices are owned by the
// cover and must not be mutated.
func (c *Cover) Communities() [][]uint32 { return c.communities }

// Sizes returns the size of each community.
func (c *Cover) Sizes() []int {
	sizes := make([]int, len(c.communities))
	for i, m := range c.communities {
		sizes[i] = len(m)
	}
	return sizes
}

// Membership returns the inverse map: vertex -> indices of the communities
// containing it.
func (c *Cover) Membership() map[uint32][]int {
	m := make(map[uint32][]int)
	for i, members := range c.communities {
		for _, v := range members {
			m[v] = append(m[v], i)
		}
	}
	return m
}

// CoveredVertices returns the number of distinct vertices that belong to at
// least one community.
func (c *Cover) CoveredVertices() int {
	seen := make(map[uint32]struct{})
	for _, members := range c.communities {
		for _, v := range members {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// OverlappingVertices returns the number of vertices with two or more
// memberships, and the maximum membership count.
func (c *Cover) OverlappingVertices() (count, maxMemberships int) {
	ms := make(map[uint32]int)
	for _, members := range c.communities {
		for _, v := range members {
			ms[v]++
		}
	}
	for _, n := range ms {
		if n >= 2 {
			count++
		}
		if n > maxMemberships {
			maxMemberships = n
		}
	}
	return count, maxMemberships
}

// Entropy computes the information entropy of the cover's community sizes
// relative to a graph of totalVertices vertices, exactly as Equation 1 of
// the paper: -sum_i (|C_i|/|V|) * log(|C_i|/|V|). Natural logarithm.
func (c *Cover) Entropy(totalVertices int) float64 {
	if totalVertices <= 0 {
		return 0
	}
	n := float64(totalVertices)
	h := 0.0
	for _, members := range c.communities {
		p := float64(len(members)) / n
		if p > 0 {
			h -= p * math.Log(p)
		}
	}
	return h
}

// Canonical returns the communities sorted lexicographically, useful for
// equality checks in tests.
func (c *Cover) Canonical() [][]uint32 {
	out := make([][]uint32, len(c.communities))
	copy(out, c.communities)
	sort.Slice(out, func(i, j int) bool { return lessSlice(out[i], out[j]) })
	return out
}

func lessSlice(a, b []uint32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// Equal reports whether the two covers contain exactly the same communities
// (regardless of order).
func (c *Cover) Equal(d *Cover) bool {
	if c.Len() != d.Len() {
		return false
	}
	a, b := c.Canonical(), d.Canonical()
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// RemoveSubsets drops every community fully contained in another community,
// the cleanup the reference SLPA post-processing applies to nested label
// groups. Exact-duplicate communities are also reduced to one copy.
func (c *Cover) RemoveSubsets() *Cover {
	// Sort indices by decreasing size so a community can only be a subset
	// of one processed earlier.
	idx := make([]int, len(c.communities))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return len(c.communities[idx[a]]) > len(c.communities[idx[b]])
	})
	kept := New(len(c.communities))
	sets := make([]map[uint32]struct{}, 0, len(c.communities))
	for _, i := range idx {
		members := c.communities[i]
		subset := false
		for _, s := range sets {
			if len(members) > len(s) {
				continue
			}
			all := true
			for _, v := range members {
				if _, ok := s[v]; !ok {
					all = false
					break
				}
			}
			if all {
				subset = true
				break
			}
		}
		if subset {
			continue
		}
		set := make(map[uint32]struct{}, len(members))
		for _, v := range members {
			set[v] = struct{}{}
		}
		sets = append(sets, set)
		kept.Add(members)
	}
	return kept
}

// FilterMinSize returns a cover containing only communities with at least
// minSize members.
func (c *Cover) FilterMinSize(minSize int) *Cover {
	out := New(c.Len())
	for _, members := range c.communities {
		if len(members) >= minSize {
			out.Add(members)
		}
	}
	return out
}

// Read parses a cover in the common "one community per line, members
// whitespace-separated" format (the LFR ground-truth convention). Empty
// lines and '#' comments are skipped.
func Read(r io.Reader) (*Cover, error) {
	c := New(16)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		members := make([]uint32, 0, len(fields))
		for _, f := range fields {
			v, err := strconv.ParseUint(f, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("cover: line %d: bad vertex %q: %v", lineno, f, err)
			}
			members = append(members, uint32(v))
		}
		c.Add(members)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cover: read: %w", err)
	}
	return c, nil
}

// Write emits the cover with one community per line, members space-
// separated, in canonical order.
func (c *Cover) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, members := range c.Canonical() {
		for j, v := range members {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatUint(uint64(v), 10)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
