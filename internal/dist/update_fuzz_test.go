package dist

import (
	"math/rand/v2"
	"testing"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// FuzzUpdateEquivalence randomizes everything the sparse scheduler depends
// on — graph shape, worker count, iteration count, batch contents (including
// self-loops, duplicate and cancelling edits, and brand-new vertex IDs) —
// and asserts sequential State.Update and dist.RSLPA.Update stay
// bit-identical on labels and on every mode-independent stats field. CI
// runs it with a fixed 10s budget alongside FuzzLoadCheckpoint.
func FuzzUpdateEquivalence(f *testing.F) {
	f.Add(uint64(1), uint8(1), uint8(17), uint8(2))
	f.Add(uint64(42), uint8(2), uint8(4), uint8(3))
	f.Add(uint64(7), uint8(6), uint8(29), uint8(1))
	f.Add(uint64(1234567), uint8(3), uint8(0), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, pRaw, tRaw, bRaw uint8) {
		workers := 1 + int(pRaw%4)
		T := 3 + int(tRaw%30)
		nBatches := 1 + int(bRaw%3)
		rnd := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))

		n := 16 + int(seed%48)
		g := graph.New()
		for i := 0; i < 3*n; i++ {
			u, v := uint32(rnd.IntN(n)), uint32(rnd.IntN(n))
			if u != v {
				g.AddEdge(u, v)
			}
		}
		if g.NumVertices() == 0 {
			g.AddEdge(0, 1)
		}

		cfg := core.Config{T: T, Seed: seed ^ 0xdecafbad}
		seq, err := core.Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cluster.New(cluster.Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}

		work := g.Clone()
		for b := 0; b < nBatches; b++ {
			batch := make([]graph.Edit, 1+rnd.IntN(12))
			for i := range batch {
				op := graph.Insert
				if rnd.IntN(2) == 1 {
					op = graph.Delete
				}
				// IDs slightly past n exercise vertex insertion; identical
				// endpoints exercise the self-loop rejection paths.
				batch[i] = graph.Edit{
					Op: op,
					U:  uint32(rnd.IntN(n + 4)),
					V:  uint32(rnd.IntN(n + 4)),
				}
			}
			ss := seq.Update(batch)
			ds, err := d.Update(batch)
			if err != nil {
				t.Fatal(err)
			}
			work.Apply(batch)
			requireSameStats(t, ss, ds, T)
			requireSameLabels(t, work, seq, d)
		}
	})
}
