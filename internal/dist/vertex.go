package dist

import (
	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// Epoch returns the number of Update batches applied so far (restored
// checkpoints resume their saved epoch). It mirrors core.State.Epoch so a
// service can publish snapshot epochs that equal the detector's own batch
// counter in every execution mode.
func (d *RSLPA) Epoch() uint64 { return d.epoch }

// AddVertex inserts an isolated vertex on its owner's shard and the master
// graph, mirroring core.State.AddVertex: ok is false if the vertex already
// existed, and the returned stats carry v in Dirty — the presence bit
// changed even though no labels did, and a copy-on-write snapshot must
// reclone the shard that now serves it.
func (d *RSLPA) AddVertex(v uint32) (core.UpdateStats, bool) {
	if d.g.HasVertex(v) {
		return core.UpdateStats{}, false
	}
	d.g.AddVertex(v)
	d.shards[d.eng.Owner(v)].addVertex(v, d.cfg.T)
	return core.UpdateStats{Dirty: []uint32{v}}, true
}

// RemoveVertex deletes a vertex and its incident edges, repairing all
// affected labels through the distributed Update path — the paper's rule:
// deletion is handled by deleting the incident edges and then ignoring the
// vertex. It mirrors core.State.RemoveVertex batch-for-batch (same induced
// edge-deletion batch, same epoch advance), so the surviving label matrix
// stays bit-identical to the sequential engine's; ok is false if the vertex
// was absent. As in the sequential engine, Dirty always includes v itself,
// even for an isolated vertex whose induced batch is empty.
func (d *RSLPA) RemoveVertex(v uint32) (core.UpdateStats, bool, error) {
	if !d.g.HasVertex(v) {
		return core.UpdateStats{}, false, nil
	}
	nbrs := d.g.Neighbors(v)
	batch := make([]graph.Edit, 0, len(nbrs))
	for _, u := range nbrs {
		batch = append(batch, graph.Edit{Op: graph.Delete, U: v, V: u})
	}
	stats, err := d.Update(batch)
	if err != nil {
		return core.UpdateStats{}, false, err
	}
	// After the batch no external pick references v (its former neighbors
	// all re-picked away), and v's own picks are self-picks recorded at v
	// itself; dropping the shard state wholesale is safe — the same
	// argument core.State.RemoveVertex relies on.
	d.g.RemoveVertex(v)
	sh := d.shards[d.eng.Owner(v)]
	if int(v) < len(sh.exists) && sh.exists[v] {
		sh.exists[v] = false
		sh.adj[v] = nil
		sh.labels[v] = nil
		sh.src[v] = nil
		sh.pos[v] = nil
		sh.recv[v] = nil
		// Preserve the owned order for the survivors: it is the per-round
		// iteration order, so a swap-removal would perturb message order.
		for i, u := range sh.owned {
			if u == v {
				sh.owned = append(sh.owned[:i], sh.owned[i+1:]...)
				break
			}
		}
	}
	stats.Dirty = core.MergeDirty(stats.Dirty, v)
	return stats, true, nil
}
