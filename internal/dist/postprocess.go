package dist

import (
	"fmt"

	"rslpa/internal/cluster"
	"rslpa/internal/cover"
	"rslpa/internal/postprocess"
)

// Postprocess extracts overlapping communities from a propagated (and
// possibly updated) distributed rSLPA state, producing the same Result as
// the sequential postprocess.Extract on the same labels.
//
// The expensive part — one common-label count per edge — runs on the
// partitions: every edge is charged to the owner of its smaller endpoint,
// boundary label sequences are shipped to where they are needed, and each
// worker reduces its edges to integer common-label counts that flow to the
// master (worker 0). The master then performs the τ₁/τ₂ selection and
// community assembly, as the paper's driver does on gathered weights.
// Counts travel as exact integers, so the final weights are bit-identical
// to the sequential ones.
func Postprocess(eng *cluster.Engine, d *RSLPA, cfg postprocess.Config) (*postprocess.Result, error) {
	if eng != d.eng {
		return nil, fmt.Errorf("dist: Postprocess engine differs from the driver's")
	}
	if !d.run {
		return nil, fmt.Errorf("dist: Postprocess before Propagate")
	}
	if d.g.NumVertices() == 0 {
		return &postprocess.Result{Cover: cover.New(0)}, nil
	}

	p := eng.Workers()
	var gathered []cluster.Message
	remote := make([]map[uint32][]uint32, p)        // per worker: shipped sequences
	counts := make([]map[uint32]map[uint32]uint32, p) // per worker: label histograms
	for w := range remote {
		remote[w] = make(map[uint32][]uint32)
		counts[w] = make(map[uint32]map[uint32]uint32)
	}
	T1 := d.cfg.T + 1

	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		switch round {
		case 0:
			// Ship each owned vertex's sequence to the workers that compute
			// an incident edge but do not own this endpoint.
			targets := make([]bool, p)
			for _, u := range sh.owned {
				for i := range targets {
					targets[i] = false
				}
				for _, v := range sh.adj[u] {
					if v < u { // edge (v, u) is computed at v's owner
						if o := d.eng.Owner(v); o != w {
							targets[o] = true
						}
					}
				}
				for to, need := range targets {
					if !need {
						continue
					}
					for i, l := range sh.labels[u] {
						emit(to, cluster.Message{Kind: kindSeq, A: u, B: uint32(i), C: l})
					}
				}
			}
			return true, nil
		case 1:
			// Reassemble shipped sequences, then reduce every owned edge to
			// its common-label count and send it to the master.
			for _, m := range inbox {
				seq := remote[w][m.A]
				if seq == nil {
					seq = make([]uint32, T1)
					remote[w][m.A] = seq
				}
				seq[m.B] = m.C
			}
			// Each sequence's label histogram is built once and reused for
			// every incident edge (a hub's sequence would otherwise be
			// re-counted per neighbor).
			countsOf := func(x uint32, seq []uint32) map[uint32]uint32 {
				if c, ok := counts[w][x]; ok {
					return c
				}
				c := make(map[uint32]uint32, 16)
				for _, l := range seq {
					c[l]++
				}
				counts[w][x] = c
				return c
			}
			for _, v := range sh.owned {
				for _, u := range sh.adj[v] {
					if v >= u {
						continue
					}
					seqU := remote[w][u]
					if d.eng.Owner(u) == w {
						seqU = sh.labels[u]
					}
					common := commonCount(countsOf(v, sh.labels[v]), countsOf(u, seqU), cfg.Metric)
					emit(0, cluster.Message{Kind: kindWeight, A: v, B: u, C: common})
				}
			}
			return true, nil
		default:
			if w == 0 {
				gathered = append(gathered, inbox...)
			}
			return false, nil
		}
	}
	if _, err := eng.RunRounds(step, 3); err != nil {
		return nil, err
	}

	// Master side: counts -> weights (the same floating-point expressions
	// as postprocess.EdgeWeights), then threshold selection and assembly.
	lu := float64(T1)
	edges := make([]postprocess.WeightedEdge, 0, len(gathered))
	for _, m := range gathered {
		w := float64(m.C) / lu
		if cfg.Metric == postprocess.SameLabelProbability {
			w = float64(m.C) / (lu * lu)
		}
		edges = append(edges, postprocess.WeightedEdge{U: m.A, V: m.B, W: w})
	}
	return postprocess.ExtractFromWeights(d.g, edges, cfg)
}

// commonCount reduces two label histograms to the integer numerator of the
// similarity weight: Σ_l min(f_a(l), f_b(l)) for Intersection and
// Σ_l f_a(l)·f_b(l) for SameLabelProbability — the exact quantities
// postprocess.EdgeWeights computes from its run-length encodings.
func commonCount(a, b map[uint32]uint32, metric postprocess.WeightMetric) uint32 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var common uint32
	for l, ca := range a {
		cb := b[l]
		if metric == postprocess.SameLabelProbability {
			common += ca * cb
		} else if ca < cb {
			common += ca
		} else {
			common += cb
		}
	}
	return common
}
