package dist

import (
	"encoding/binary"
	"fmt"
	"math"

	"rslpa/internal/cluster"
	"rslpa/internal/cover"
	"rslpa/internal/graph"
	"rslpa/internal/postprocess"
)

// Postprocess extracts overlapping communities from a propagated (and
// possibly updated) distributed rSLPA state, producing the same Result as
// the sequential postprocess.Extract on the same labels — bit-identical
// thresholds, entropy, and community structure for any worker count and
// transport.
//
// The phases, each a handful of barrier-separated supersteps:
//
//  1. RLE shipping: every boundary vertex's label sequence travels sorted
//     and run-length encoded in ONE message per (vertex, target worker) —
//     the payload is exactly the label histogram the weight computation
//     consumes — instead of T+1 fixed-shape messages. Each worker then
//     reduces its resident edges to exact integer common-label counts;
//     the edges never leave the worker.
//  2. τ₂ tree-reduce: per-vertex maximum counts (and the global maximum,
//     for the selection fallback) flow up a binomial aggregation tree —
//     ⌈log₂P⌉ levels, each level's traffic charged to the engine — and the
//     master resolves the weak threshold and broadcasts it.
//  3. Partitioned τ₁ sweep: each worker runs Kruskal over its local edges
//     ≥ τ₂ with a local disjoint-set forest and ships only the surviving
//     component-boundary union pairs (its maximum-spanning-forest edges)
//     up the tree; merge levels re-reduce, so no level forwards more than
//     O(|V|) pairs. A spanning forest preserves connectivity at every
//     threshold, and the sweep's entropy is evaluated canonically from the
//     component-size multiset, so the master's selection over the merged
//     stubs equals the sequential sweep over all edges exactly.
//  4. Assembly: the master broadcasts τ₁, workers ship the weak-attachment
//     candidates (τ₂ ≤ w < τ₁), and the master assembles communities with
//     postprocess.ExtractFromForest.
//
// Counts travel as exact integers and are converted to float weights with
// the same expressions postprocess.EdgeWeights uses, so the final weights
// are bit-identical to the sequential ones.
func Postprocess(eng *cluster.Engine, d *RSLPA, cfg postprocess.Config) (*postprocess.Result, error) {
	if eng != d.eng {
		return nil, fmt.Errorf("dist: Postprocess engine differs from the driver's")
	}
	if !d.run {
		return nil, fmt.Errorf("dist: Postprocess before Propagate")
	}
	if d.g.NumVertices() == 0 {
		return &postprocess.Result{Cover: cover.New(0)}, nil
	}
	// Counts travel as uint32 payload words. Intersection counts are ≤ T+1,
	// but the product metric can reach (T+1)², which would wrap silently
	// for absurdly large T — refuse loudly instead.
	if cfg.Metric == postprocess.SameLabelProbability && d.cfg.T+1 > 0xffff {
		return nil, fmt.Errorf("dist: SameLabelProbability counts overflow the wire integer for T=%d (max %d)", d.cfg.T, 0xffff-1)
	}

	p := eng.Workers()
	L := treeLevels(p)
	// Round schedule. With P=1 the tree has no levels and consecutive
	// phases collapse onto the same round; the step function executes the
	// phase blocks in order, so a round can carry several phases.
	var (
		rShip   = 0       // RLE boundary-sequence shipping
		rBuild  = 1       // ingest sequences, build resident edges, start τ₂ reduce
		rThresh = 1 + L   // master resolves τ₂ (and records the global max), broadcasts
		rForest = 2 + L   // workers build local forests, start forest reduce
		rTau1   = 2 + 2*L // master merges stubs, selects τ₁, broadcasts
		rAttach = 3 + 2*L // workers ship weak-attachment candidates
		rDone   = 4 + 2*L // master assembles the Result
	)

	lu := float64(d.cfg.T + 1)
	weightOf := func(c uint32) float64 {
		if cfg.Metric == postprocess.SameLabelProbability {
			return float64(c) / (lu * lu)
		}
		return float64(c) / lu
	}

	before := eng.Stats()
	ws := make([]*ppWorker, p)
	for i := range ws {
		ws[i] = &ppWorker{runs: make(map[uint32][]uint32), vmax: make(map[uint32]uint32)}
	}
	var result *postprocess.Result
	var resultErr error

	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		st := ws[w]

		// Ingest: every kind is safe to fold into worker state on arrival.
		// Malformed payloads (possible only through wire corruption) fail
		// the run loudly rather than computing silently wrong weights.
		for _, m := range inbox {
			switch m.Kind {
			case kindSeqRLE:
				runs, err := unpackRuns(m.Payload)
				if err != nil {
					return false, fmt.Errorf("dist: sequence payload for vertex %d: %w", m.A, err)
				}
				st.runs[m.A] = runs
			case kindVMax:
				if m.A > st.gmax {
					st.gmax = m.A
				}
				for i := 0; i+1 < len(m.Payload); i += 2 {
					v, c := m.Payload[i], m.Payload[i+1]
					if cur, ok := st.vmax[v]; !ok || c > cur {
						st.vmax[v] = c
					}
				}
			case kindThresh, kindTau1:
				if len(m.Payload) < 2 {
					return false, fmt.Errorf("dist: threshold payload of %d words", len(m.Payload))
				}
				if m.Kind == kindThresh {
					st.tau2 = floatFromWords(m.Payload[0], m.Payload[1])
				} else {
					st.tau1 = floatFromWords(m.Payload[0], m.Payload[1])
				}
			case kindForest:
				st.pool = appendTriples(st.pool, m.Payload)
				st.poolDirty = true
			case kindAttach:
				st.attach = appendTriples(st.attach, m.Payload)
			}
		}

		if round == rShip {
			// Ship each owned vertex's RLE sequence to the workers that
			// compute an incident edge but do not own this endpoint.
			targets := make([]bool, p)
			for _, u := range sh.owned {
				for i := range targets {
					targets[i] = false
				}
				any := false
				for _, v := range sh.adj[u] {
					if v < u { // edge (v, u) is computed at v's owner
						if o := d.eng.Owner(v); o != w {
							targets[o], any = true, true
						}
					}
				}
				if !any {
					continue
				}
				packed := packRuns(st.ensureRuns(u, sh.labels[u]))
				for to, need := range targets {
					if need {
						emit(to, cluster.Message{Kind: kindSeqRLE, A: u, Payload: packed})
					}
				}
			}
		}

		if round == rBuild {
			// Reduce every resident edge to its common-label count; edges
			// stay on this worker for the whole pipeline. Track per-vertex
			// and global maxima for the τ₂ reduce. The uint32 narrowing is
			// safe: the T bound checked above caps the count.
			for _, v := range sh.owned {
				for _, u := range sh.adj[v] {
					if v >= u {
						continue
					}
					runsU, ok := st.runs[u]
					if !ok {
						runsU = st.ensureRuns(u, sh.labels[u])
					}
					c := uint32(postprocess.CommonRuns(st.ensureRuns(v, sh.labels[v]), runsU, cfg.Metric))
					st.edges = append(st.edges, countEdge{u: v, v: u, count: c})
					if cur, ok := st.vmax[v]; !ok || c > cur {
						st.vmax[v] = c
					}
					if cur, ok := st.vmax[u]; !ok || c > cur {
						st.vmax[u] = c
					}
					if c > st.gmax {
						st.gmax = c
					}
				}
			}
		}

		// τ₂ reduce levels: the level-ℓ senders forward their merged
		// per-vertex maxima (and global max) to their tree parent. With a
		// user-fixed Tau2 the maxima map is never read at the master, so
		// only the one-word global max travels.
		if lvl := round - rBuild; round >= rBuild && round < rThresh && senderAt(w, lvl) {
			var words []uint32
			if cfg.Tau2 == 0 && len(st.vmax) > 0 {
				words = make([]uint32, 0, 2*len(st.vmax))
				for v, c := range st.vmax {
					words = append(words, v, c)
				}
			}
			if len(words) > 0 || st.gmax > 0 {
				chunks := chunkWords(words, 2)
				if chunks == nil {
					chunks = [][]uint32{nil}
				}
				for _, chunk := range chunks {
					emit(treeParent(w), cluster.Message{Kind: kindVMax, A: st.gmax, Payload: chunk})
				}
			}
		}

		if round == rThresh && w == 0 {
			st.tau2 = cfg.Tau2
			if st.tau2 == 0 && len(st.vmax) > 0 {
				min, any := uint32(0), false
				for _, c := range st.vmax {
					if !any || c < min {
						min, any = c, true
					}
				}
				st.tau2 = weightOf(min)
			}
			st.maxW = weightOf(st.gmax)
			for q := 1; q < p; q++ {
				emit(q, cluster.Message{Kind: kindThresh, Payload: floatWords(st.tau2)})
			}
		}

		if round == rForest {
			// The partitioned sweep's local half: Kruskal over the resident
			// edges ≥ τ₂ builds this worker's disjoint-set forest; only the
			// union pairs that survive (the spanning-forest edges) ever
			// reach the wire.
			st.pool = reduceCountForest(append(st.pool, st.edges...), st.tau2, weightOf)
			st.poolDirty = false
		}

		// Forest reduce levels: re-reduce only if edges arrived since the
		// last reduction, then forward at this worker's send level.
		if lvl := round - rForest; round >= rForest && round < rTau1 && senderAt(w, lvl) {
			st.reducePool(weightOf)
			if len(st.pool) > 0 {
				words := make([]uint32, 0, 3*len(st.pool))
				for _, e := range st.pool {
					words = append(words, e.u, e.v, e.count)
				}
				for _, chunk := range chunkWords(words, 3) {
					emit(treeParent(w), cluster.Message{Kind: kindForest, Payload: chunk})
				}
			}
		}

		if round == rTau1 && w == 0 {
			st.reducePool(weightOf)
			st.tau1 = postprocess.ChooseTau1(toWeighted(st.pool, weightOf), d.g.NumVertices(), st.tau2, st.maxW, cfg)
			for q := 1; q < p; q++ {
				emit(q, cluster.Message{Kind: kindTau1, Payload: floatWords(st.tau1)})
			}
		}

		if round == rAttach {
			// Candidate weak-attachment edges: τ₂ ≤ w < τ₁ (edges ≥ τ₁
			// join two strong vertices and can never attach). The master's
			// own candidates stay local.
			var words []uint32
			for _, e := range st.edges {
				if ew := weightOf(e.count); ew >= st.tau2 && ew < st.tau1 {
					if w == 0 {
						st.attach = append(st.attach, e)
					} else {
						words = append(words, e.u, e.v, e.count)
					}
				}
			}
			for _, chunk := range chunkWords(words, 3) {
				emit(0, cluster.Message{Kind: kindAttach, Payload: chunk})
			}
		}

		if round == rDone && w == 0 {
			result, resultErr = postprocess.ExtractFromForest(
				d.g, toWeighted(st.pool, weightOf), toWeighted(st.attach, weightOf),
				st.tau2, st.maxW, cfg)
		}
		return round < rDone, nil
	}
	if _, err := eng.RunRounds(step, rDone+1); err != nil {
		return nil, err
	}
	d.LastPostprocess = eng.Stats().Sub(before)
	if resultErr != nil {
		return nil, resultErr
	}
	return result, nil
}

// ppWorker is one worker's cross-round state during Postprocess.
type ppWorker struct {
	runs      map[uint32][]uint32 // interleaved sorted (label, count) runs, owned + received
	edges     []countEdge         // resident edges: (u < v, common-label count)
	vmax      map[uint32]uint32   // per-vertex max incident count (τ₂ reduce)
	gmax      uint32              // max count over all merged edges
	tau2      float64
	maxW      float64 // master only: max weight over the full edge set
	pool      []countEdge
	poolDirty bool // pool has unreduced arrivals
	tau1      float64
	attach    []countEdge // master only: gathered attachment candidates
}

// ensureRuns returns the cached sorted RLE runs for a vertex this worker
// owns, encoding them on first use.
func (st *ppWorker) ensureRuns(v uint32, labels []uint32) []uint32 {
	if r, ok := st.runs[v]; ok {
		return r
	}
	r := postprocess.EncodeRuns(labels)
	st.runs[v] = r
	return r
}

// reducePool re-reduces the forest pool if edges arrived since the last
// reduction.
func (st *ppWorker) reducePool(weightOf func(uint32) float64) {
	if st.poolDirty {
		st.pool = reduceCountForest(st.pool, st.tau2, weightOf)
		st.poolDirty = false
	}
}

// countEdge is a weighted edge in exact integer form: the common-label
// count that postprocess.EdgeWeights would divide by (T+1) or (T+1)².
type countEdge struct {
	u, v, count uint32
}

// packRuns byte-packs interleaved (label, count) runs for the wire: labels
// are sorted, so each label travels as a varint delta from its predecessor
// and each count as a varint — typically 2-3 bytes per run instead of 8.
// The byte stream rides in uint32 payload words behind a byte-length word.
func packRuns(runs []uint32) []uint32 {
	buf := make([]byte, 0, 2*len(runs))
	prev := uint64(0)
	for i := 0; i+1 < len(runs); i += 2 {
		l := uint64(runs[i])
		buf = binary.AppendUvarint(buf, l-prev)
		buf = binary.AppendUvarint(buf, uint64(runs[i+1]))
		prev = l
	}
	words := make([]uint32, 1+(len(buf)+3)/4)
	words[0] = uint32(len(buf))
	for i, x := range buf {
		words[1+i/4] |= uint32(x) << (8 * (i % 4))
	}
	return words
}

// unpackRuns inverts packRuns back to interleaved (label, count) runs. A
// payload that survived the codec's frame checks can still be corrupt;
// every structural violation is an error so the run fails loudly instead
// of computing wrong weights (or spinning on a truncated varint).
func unpackRuns(words []uint32) ([]uint32, error) {
	if len(words) == 0 {
		return nil, fmt.Errorf("empty RLE payload")
	}
	if int(words[0]) > 4*(len(words)-1) {
		return nil, fmt.Errorf("RLE byte length %d exceeds payload of %d words", words[0], len(words)-1)
	}
	buf := make([]byte, words[0])
	for i := range buf {
		buf[i] = byte(words[1+i/4] >> (8 * (i % 4)))
	}
	runs := make([]uint32, 0, len(buf))
	prev := uint64(0)
	for off := 0; off < len(buf); {
		delta, n := binary.Uvarint(buf[off:])
		if n <= 0 {
			return nil, fmt.Errorf("truncated label varint at byte %d", off)
		}
		off += n
		count, n2 := binary.Uvarint(buf[off:])
		if n2 <= 0 {
			return nil, fmt.Errorf("truncated count varint at byte %d", off)
		}
		off += n2
		prev += delta
		if prev > 0xffffffff || count > 0xffffffff {
			return nil, fmt.Errorf("RLE value overflows uint32")
		}
		runs = append(runs, uint32(prev), uint32(count))
	}
	return runs, nil
}

// reduceCountForest is postprocess.ReduceForest over integer counts: keep a
// maximum-count spanning forest of the edges whose weight reaches tau2.
// Count order equals weight order (the conversion is strictly monotonic),
// so the forest preserves connectivity at every threshold ≥ τ₂; the Kruskal
// kernel itself is shared with the sequential reduction.
func reduceCountForest(edges []countEdge, tau2 float64, weightOf func(uint32) float64) []countEdge {
	return postprocess.ReduceForestBy(edges,
		func(e countEdge) bool { return weightOf(e.count) >= tau2 },
		func(a, b countEdge) bool {
			if a.count != b.count {
				return a.count > b.count
			}
			if a.u != b.u {
				return a.u < b.u
			}
			return a.v < b.v
		},
		func(e countEdge) (uint32, uint32) { return e.u, e.v })
}

// toWeighted converts integer-count edges to the float weights the
// sequential pipeline computes, with identical expressions.
func toWeighted(edges []countEdge, weightOf func(uint32) float64) []postprocess.WeightedEdge {
	out := make([]postprocess.WeightedEdge, len(edges))
	for i, e := range edges {
		out[i] = postprocess.WeightedEdge{U: e.u, V: e.v, W: weightOf(e.count)}
	}
	return out
}

// appendTriples decodes a packed [u, v, count, ...] payload.
func appendTriples(dst []countEdge, words []uint32) []countEdge {
	for i := 0; i+2 < len(words); i += 3 {
		dst = append(dst, countEdge{u: words[i], v: words[i+1], count: words[i+2]})
	}
	return dst
}

// chunkWords splits a packed payload into chunks below MaxPayloadWords on
// record boundaries (stride words per record). Nil input yields no chunks.
func chunkWords(words []uint32, stride int) [][]uint32 {
	if len(words) == 0 {
		return nil
	}
	max := (cluster.MaxPayloadWords / stride) * stride
	var chunks [][]uint32
	for len(words) > max {
		chunks = append(chunks, words[:max])
		words = words[max:]
	}
	return append(chunks, words)
}

// floatWords packs a float64 into two payload words (hi, lo).
func floatWords(f float64) []uint32 {
	b := math.Float64bits(f)
	return []uint32{uint32(b >> 32), uint32(b)}
}

// floatFromWords unpacks floatWords.
func floatFromWords(hi, lo uint32) float64 {
	return math.Float64frombits(uint64(hi)<<32 | uint64(lo))
}

// treeLevels returns ⌈log₂ p⌉, the depth of the binomial reduce tree.
func treeLevels(p int) int {
	l := 0
	for 1<<l < p {
		l++
	}
	return l
}

// senderAt reports whether worker w transmits at reduce level lvl: each
// nonzero worker sends exactly once, at the level of its lowest set bit.
func senderAt(w, lvl int) bool {
	return w != 0 && w%(1<<(lvl+1)) == 1<<lvl
}

// treeParent is the receiver for worker w's single transmission.
func treeParent(w int) int {
	return w &^ (w & -w)
}

// NaivePostprocessBytes models the wire cost of the gather protocol this
// package replaced: one fixed 17-byte message per label per (boundary
// vertex, target worker) pair, plus one 17-byte weight message per edge
// funneled to the master. The wire-reduction regression test and the CI
// bench-smoke benchmark both measure against this single model.
func NaivePostprocessBytes(g *graph.Graph, part cluster.Partitioner, T int) int64 {
	const oldWireSize = 17
	pairs := make(map[uint64]bool)
	edges := 0
	g.ForEachEdge(func(u, v uint32) {
		edges++
		if u > v {
			u, v = v, u
		}
		// Edge (u, v), u < v, is computed at u's owner; v's sequence ships
		// there when owned elsewhere.
		if o := part.Owner(u); o != part.Owner(v) {
			pairs[uint64(v)<<32|uint64(o)] = true
		}
	})
	return int64(len(pairs))*int64(T+1)*oldWireSize + int64(edges)*oldWireSize
}
