package dist

import (
	"fmt"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// RSLPA is the distributed rSLPA driver: Algorithm 1 as BSP supersteps over
// the engine's partitions, plus Algorithm 2 for incremental repair. Create
// with NewRSLPA, call Propagate once, then any number of Update batches.
// The label matrix is bit-identical to core.Run / core.State.Update on the
// same graph, seed and batches, for any worker count and transport.
type RSLPA struct {
	eng    *cluster.Engine
	cfg    core.Config
	g      *graph.Graph // master copy, kept in step with the shards
	shards []*shard
	epoch  uint64
	run    bool

	// PropagateStats reports the cost of Propagate: Rounds is the number of
	// label-propagation iterations (T) and Messages/Bytes the wire traffic
	// the engine moved for them (2|V| messages per iteration).
	PropagateStats cluster.Stats
	// LastUpdate reports the wire cost of the most recent Update call;
	// here Rounds counts raw BSP supersteps (up to three per correction
	// level plus the repick round — the engine's own accounting).
	LastUpdate cluster.Stats
	// LastPostprocess reports the wire cost of the most recent Postprocess
	// call on this driver (raw BSP supersteps, messages, bytes).
	LastPostprocess cluster.Stats
	// LastCheckpoint reports the wire cost of the most recent Save call:
	// the gather of every worker's encoded shard to the master.
	LastCheckpoint cluster.Stats
}

// NewRSLPA partitions g over the engine's workers and returns a driver
// ready to Propagate. The graph is copied; apply later changes through
// Update.
func NewRSLPA(eng *cluster.Engine, g *graph.Graph, cfg core.Config) (*RSLPA, error) {
	if eng == nil {
		return nil, fmt.Errorf("dist: nil engine")
	}
	if cfg.T <= 0 {
		return nil, fmt.Errorf("dist: config T=%d must be positive", cfg.T)
	}
	d := &RSLPA{eng: eng, cfg: cfg, g: g.Clone()}
	d.shards = make([]*shard, eng.Workers())
	for w := range d.shards {
		d.shards[w] = &shard{}
	}
	d.g.ForEachVertex(func(v uint32) {
		sh := d.shards[eng.Owner(v)]
		sh.addVertex(v, cfg.T)
		// Copy the adjacency in graph order: the pick draws index into it.
		sh.adj[v] = append([]uint32(nil), d.g.Neighbors(v)...)
	})
	return d, nil
}

// Labels returns vertex v's label sequence (length T+1), or nil for absent
// vertices. The slice is owned by the driver; callers must not mutate it.
func (d *RSLPA) Labels(v uint32) []uint32 {
	sh := d.shards[d.eng.Owner(v)]
	if int(v) >= len(sh.exists) || !sh.exists[v] {
		return nil
	}
	return sh.labels[v]
}

// T returns the configured iteration count.
func (d *RSLPA) T() int { return d.cfg.T }

// Graph returns the driver's current master graph. The caller must not
// mutate it; use Update.
func (d *RSLPA) Graph() *graph.Graph { return d.g }

// Propagate executes Algorithm 1: T iterations, each one request/reply
// round pair. At round 2(t-1) every owner draws its vertices' picks for
// iteration t and asks the source's owner for the label value; at round
// 2t-1 the source owner installs the reverse record and replies; the value
// lands at round 2t, before any reply for iteration t+1 can read it.
func (d *RSLPA) Propagate() error {
	if d.run {
		return fmt.Errorf("dist: Propagate called twice")
	}
	T := d.cfg.T
	before := d.eng.Stats()
	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		if round%2 == 0 {
			// Install the replies for iteration round/2.
			for _, m := range inbox {
				sh.labels[m.A][m.B] = m.Payload[0]
			}
			t := round/2 + 1
			if t > T {
				return false, nil
			}
			for _, v := range sh.owned {
				src, pos := core.InitialPick(d.cfg, v, t, sh.adj[v])
				sh.src[v][t] = int32(src)
				sh.pos[v][t] = pos
				emit(d.eng.Owner(src), cluster.Message{
					Kind: kindPickReq, A: src, B: uint32(pos), Payload: []uint32{v, uint32(t)},
				})
			}
			return true, nil
		}
		// Serve the requests: record the pick at the source, reply with the
		// label value (position B < t is final by the level invariant).
		for _, m := range inbox {
			tar, iter := m.Payload[0], m.Payload[1]
			sh.recv[m.A] = append(sh.recv[m.A], core.Record{
				Pos: int32(m.B), Tar: tar, Iter: int32(iter),
			})
			emit(d.eng.Owner(tar), cluster.Message{
				Kind: kindPickRep, A: tar, B: iter, Payload: []uint32{sh.labels[m.A][m.B]},
			})
		}
		return true, nil
	}
	if _, err := d.eng.RunRounds(step, 2*T+1); err != nil {
		return err
	}
	d.run = true
	d.PropagateStats = phaseStats(T, d.eng.Stats().Sub(before))
	return nil
}

// updScratch is one worker's cross-round state during an Update run.
type updScratch struct {
	stats   core.UpdateStats
	dirtyQ  [][]uint32 // dirtyQ[t]: owned slots awaiting a value request
	stamp   []int32    // last level a vertex was requested at (dedup)
	pending int        // queued-not-yet-requested entries across all levels
}

func (u *updScratch) mark(v uint32, t int32) {
	u.dirtyQ[t] = append(u.dirtyQ[t], v)
	u.pending++
}

// Update applies a batch of edge edits and runs Correction Propagation
// (Algorithm 2) across the partitions. Round 0 applies the batch to every
// shard and repicks affected slots with the shared core.RepickPlan rules
// (emitting record drop/add fixups); each level t then costs three rounds —
// R1 ingests dirty marks and emits value requests, R2 replies, R3 installs
// the value and cascades new dirty marks to the slots that copied it. A
// cascade from level t only targets levels > t, so marks always arrive
// before their level's R1.
func (d *RSLPA) Update(batch []graph.Edit) (core.UpdateStats, error) {
	if !d.run {
		return core.UpdateStats{}, fmt.Errorf("dist: Update before Propagate")
	}
	d.epoch++
	T := d.cfg.T
	before := d.eng.Stats()

	scratch := make([]*updScratch, d.eng.Workers())
	for w := range scratch {
		scratch[w] = &updScratch{dirtyQ: make([][]uint32, T+1)}
	}

	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		sc := scratch[w]
		if round == 0 {
			d.applyBatch(sh, sc, w, batch, emit)
			return sc.pending > 0, nil
		}
		lvl := int32((round-1)/3 + 1)
		switch (round - 1) % 3 {
		case 0: // R1: ingest record fixups and dirty marks, emit requests.
			for _, m := range inbox {
				switch m.Kind {
				case kindDropRec:
					sh.dropRecord(m.A, int32(m.B), m.Payload[0], int32(m.Payload[1]))
				case kindAddRec:
					sh.recv[m.A] = append(sh.recv[m.A], core.Record{
						Pos: int32(m.B), Tar: m.Payload[0], Iter: int32(m.Payload[1]),
					})
				case kindDirty:
					sc.mark(m.A, int32(m.B))
				}
			}
			if sc.stamp == nil {
				sc.stamp = make([]int32, len(sh.exists))
				for i := range sc.stamp {
					sc.stamp[i] = -1
				}
			}
			for _, v := range sc.dirtyQ[lvl] {
				sc.pending--
				if sc.stamp[v] == lvl {
					continue // duplicate mark within this level
				}
				sc.stamp[v] = lvl
				sc.stats.Touched++
				src := uint32(sh.src[v][lvl])
				emit(d.eng.Owner(src), cluster.Message{
					Kind: kindPickReq, A: src, B: uint32(sh.pos[v][lvl]), Payload: []uint32{v, uint32(lvl)},
				})
			}
			sc.dirtyQ[lvl] = nil
		case 1: // R2: serve value requests (levels < lvl are final).
			for _, m := range inbox {
				tar, iter := m.Payload[0], m.Payload[1]
				emit(d.eng.Owner(tar), cluster.Message{
					Kind: kindPickRep, A: tar, B: iter, Payload: []uint32{sh.labels[m.A][m.B]},
				})
			}
		case 2: // R3: install values, cascade to the slots that copied them.
			for _, m := range inbox {
				v, t, val := m.A, int32(m.B), m.Payload[0]
				if sh.labels[v][t] == val {
					continue
				}
				sh.labels[v][t] = val
				sc.stats.Changed++
				for _, rec := range sh.recv[v] {
					if rec.Pos == t {
						emit(d.eng.Owner(rec.Tar), cluster.Message{
							Kind: kindDirty, A: rec.Tar, B: uint32(rec.Iter),
						})
					}
				}
			}
		}
		return sc.pending > 0, nil
	}
	if _, err := d.eng.RunRounds(step, 1+3*T); err != nil {
		return core.UpdateStats{}, err
	}

	// Mirror the batch on the master graph (same AddEdge/RemoveEdge order
	// as the shards, so adjacency order stays in lockstep).
	d.g.Apply(batch)

	var stats core.UpdateStats
	for _, sc := range scratch {
		stats.Inserted += sc.stats.Inserted
		stats.Deleted += sc.stats.Deleted
		stats.Repicked += sc.stats.Repicked
		stats.Touched += sc.stats.Touched
		stats.Changed += sc.stats.Changed
	}
	d.LastUpdate = d.eng.Stats().Sub(before)
	return stats, nil
}

// applyBatch is Update's round 0 for one worker: replay the batch against
// the local shard (edits touching no owned endpoint are skipped, and both
// endpoint owners reach the same changed/no-op verdict because adjacency
// symmetry is an invariant), accumulate the net neighbor delta, repick the
// affected slots, and emit the record drop/add fixups.
func (d *RSLPA) applyBatch(sh *shard, sc *updScratch, w int, batch []graph.Edit, emit cluster.Emitter) {
	delta := make(map[uint32]map[uint32]int8)
	bump := func(v, u uint32, dd int8) {
		m := delta[v]
		if m == nil {
			m = make(map[uint32]int8)
			delta[v] = m
		}
		if m[u] += dd; m[u] == 0 {
			delete(m, u)
		}
	}
	for _, e := range batch {
		ownsU := d.eng.Owner(e.U) == w
		ownsV := d.eng.Owner(e.V) == w
		if !ownsU && !ownsV {
			continue
		}
		switch e.Op {
		case graph.Insert:
			if e.U == e.V {
				continue // graph.AddEdge rejects self-loops
			}
			// The changed verdict from whichever endpoint is local.
			var changed bool
			if ownsU {
				sh.growTo(e.U)
				changed = !sh.hasNbr(e.U, e.V)
			} else {
				sh.growTo(e.V)
				changed = !sh.hasNbr(e.V, e.U)
			}
			if !changed {
				continue
			}
			if ownsU {
				sh.addVertex(e.U, d.cfg.T)
				sh.addNbr(e.U, e.V)
				bump(e.U, e.V, 1)
				sc.stats.Inserted++ // count each changed edit once, at U's owner
			}
			if ownsV {
				sh.addVertex(e.V, d.cfg.T)
				sh.addNbr(e.V, e.U)
				bump(e.V, e.U, 1)
			}
		case graph.Delete:
			var changed bool
			if ownsU {
				changed = sh.hasNbr(e.U, e.V)
			} else {
				changed = sh.hasNbr(e.V, e.U)
			}
			if !changed {
				continue
			}
			if ownsU {
				sh.removeNbr(e.U, e.V)
				bump(e.U, e.V, -1)
			}
			if ownsV {
				sh.removeNbr(e.V, e.U)
				bump(e.V, e.U, -1)
			}
			if ownsU {
				sc.stats.Deleted++
			}
		}
	}

	// Repick the affected slots (Algorithm 2 lines 1-12) and fix the
	// record lists at whichever workers own the old and new sources.
	for v, dm := range delta {
		if len(dm) == 0 {
			continue
		}
		plan := core.NewRepickPlan(v, dm, sh.adj[v])
		if !plan.Active() {
			continue
		}
		for t := int32(1); t <= int32(d.cfg.T); t++ {
			oldSrc := sh.src[v][t]
			newSrc, newPos, rp := plan.Slot(d.cfg, d.epoch, t, oldSrc)
			if !rp {
				continue
			}
			if oldSrc >= 0 {
				emit(d.eng.Owner(uint32(oldSrc)), cluster.Message{
					Kind: kindDropRec, A: uint32(oldSrc), B: uint32(sh.pos[v][t]), Payload: []uint32{v, uint32(t)},
				})
			}
			sh.src[v][t] = int32(newSrc)
			sh.pos[v][t] = newPos
			emit(d.eng.Owner(newSrc), cluster.Message{
				Kind: kindAddRec, A: newSrc, B: uint32(newPos), Payload: []uint32{v, uint32(t)},
			})
			sc.mark(v, t)
			sc.stats.Repicked++
		}
	}
}
