package dist

import (
	"fmt"
	"slices"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/graph"
)

// RSLPA is the distributed rSLPA driver: Algorithm 1 as BSP supersteps over
// the engine's partitions, plus Algorithm 2 for incremental repair. Create
// with NewRSLPA, call Propagate once, then any number of Update batches.
// The label matrix is bit-identical to core.Run / core.State.Update on the
// same graph, seed and batches, for any worker count and transport.
type RSLPA struct {
	eng    *cluster.Engine
	cfg    core.Config
	g      *graph.Graph // master copy, kept in step with the shards
	shards []*shard
	epoch  uint64
	run    bool

	// scratch is each worker's persistent Update scratch (see updScratch):
	// lazily created on the first Update and reset in O(1) per batch by the
	// generation-stamp trick, so steady-state incremental batches reuse all
	// the queue and stamp storage instead of reallocating it.
	scratch []*updScratch

	// PropagateStats reports the cost of Propagate: Rounds is the number of
	// label-propagation iterations (T) and Messages/Bytes the wire traffic
	// the engine moved for them (2|V| messages per iteration).
	PropagateStats cluster.Stats
	// LastUpdate reports the wire cost of the most recent Update call;
	// here Rounds counts raw BSP supersteps of the sparse schedule: the
	// apply/repick round, then one round (fused) to three rounds per
	// non-idle correction level — runs of idle levels cost zero rounds,
	// skipped by the piggybacked AllReduce-min agreement, so the count is
	// O(active levels), not O(T).
	LastUpdate cluster.Stats
	// LastPostprocess reports the wire cost of the most recent Postprocess
	// call on this driver (raw BSP supersteps, messages, bytes).
	LastPostprocess cluster.Stats
	// LastCheckpoint reports the wire cost of the most recent Save call:
	// the gather of every worker's encoded shard to the master.
	LastCheckpoint cluster.Stats
}

// NewRSLPA partitions g over the engine's workers and returns a driver
// ready to Propagate. The graph is copied; apply later changes through
// Update.
func NewRSLPA(eng *cluster.Engine, g *graph.Graph, cfg core.Config) (*RSLPA, error) {
	if eng == nil {
		return nil, fmt.Errorf("dist: nil engine")
	}
	if cfg.T <= 0 {
		return nil, fmt.Errorf("dist: config T=%d must be positive", cfg.T)
	}
	d := &RSLPA{eng: eng, cfg: cfg, g: g.Clone()}
	d.shards = make([]*shard, eng.Workers())
	for w := range d.shards {
		d.shards[w] = &shard{}
	}
	d.g.ForEachVertex(func(v uint32) {
		sh := d.shards[eng.Owner(v)]
		sh.addVertex(v, cfg.T)
		// Copy the adjacency in graph order: the pick draws index into it.
		sh.adj[v] = append([]uint32(nil), d.g.Neighbors(v)...)
	})
	return d, nil
}

// Labels returns vertex v's label sequence (length T+1), or nil for absent
// vertices. The slice is owned by the driver; callers must not mutate it.
func (d *RSLPA) Labels(v uint32) []uint32 {
	sh := d.shards[d.eng.Owner(v)]
	if int(v) >= len(sh.exists) || !sh.exists[v] {
		return nil
	}
	return sh.labels[v]
}

// T returns the configured iteration count.
func (d *RSLPA) T() int { return d.cfg.T }

// Graph returns the driver's current master graph. The caller must not
// mutate it; use Update.
func (d *RSLPA) Graph() *graph.Graph { return d.g }

// Propagate executes Algorithm 1: T iterations, each one request/reply
// round pair. At round 2(t-1) every owner draws its vertices' picks for
// iteration t and asks the source's owner for the label value; at round
// 2t-1 the source owner installs the reverse record and replies; the value
// lands at round 2t, before any reply for iteration t+1 can read it.
func (d *RSLPA) Propagate() error {
	if d.run {
		return fmt.Errorf("dist: Propagate called twice")
	}
	T := d.cfg.T
	before := d.eng.Stats()
	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		if round%2 == 0 {
			// Install the replies for iteration round/2.
			for _, m := range inbox {
				sh.labels[m.A][m.B] = m.Payload[0]
			}
			t := round/2 + 1
			if t > T {
				return false, nil
			}
			for _, v := range sh.owned {
				src, pos := core.InitialPick(d.cfg, v, t, sh.adj[v])
				sh.src[v][t] = int32(src)
				sh.pos[v][t] = pos
				emit(d.eng.Owner(src), cluster.Message{
					Kind: kindPickReq, A: src, B: uint32(pos), Payload: []uint32{v, uint32(t)},
				})
			}
			return true, nil
		}
		// Serve the requests: record the pick at the source, reply with the
		// label value (position B < t is final by the level invariant).
		for _, m := range inbox {
			tar, iter := m.Payload[0], m.Payload[1]
			sh.recv[m.A] = append(sh.recv[m.A], core.Record{
				Pos: int32(m.B), Tar: tar, Iter: int32(iter),
			})
			emit(d.eng.Owner(tar), cluster.Message{
				Kind: kindPickRep, A: tar, B: iter, Payload: []uint32{sh.labels[m.A][m.B]},
			})
		}
		return true, nil
	}
	if _, err := d.eng.RunRounds(step, 2*T+1); err != nil {
		return err
	}
	d.run = true
	d.PropagateStats = phaseStats(T, d.eng.Stats().Sub(before))
	return nil
}

// updScratch is one worker's cross-round state during an Update run. It
// persists across Update calls on the driver: reset bumps a generation
// counter that invalidates every stamp/seen mark in O(1), and all slices
// are truncated rather than freed, so a steady-state batch reuses the
// previous batch's storage (the distributed mirror of core's updArena).
type updScratch struct {
	stats  core.UpdateStats
	dirtyQ [][]uint32 // dirtyQ[t]: owned slots awaiting a value request
	gen    uint32     // current Update generation (0 = never used)
	stamp  []uint64   // stamp[v] = gen<<32|level: v drained at level (dedup)
	// touched collects this worker's owned vertices whose adjacency or
	// labels changed (UpdateStats.Dirty); owners are disjoint, so the
	// concatenation over workers is duplicate-free and equals the
	// sequential set exactly. seen gen-stamps membership so touched
	// resets in O(1) per batch.
	seen    []uint32
	touched []uint32

	deltas   core.DeltaAcc // batch net-delta accumulation (map-free)
	arrivals []uint32      // repick-plan arrival scratch

	phase     uint8 // role of the next round this worker executes
	lo        int32 // schedule floor: no queued level below lo remains
	remoteMin int32 // lowest level a remote mark was emitted at this round
	levels    int   // levels scheduled so far (identical on every worker)
}

// reset prepares the scratch for a new Update run, recycling every backing
// array. On the once-in-4-billion uint32 generation wraparound the stamp
// arrays are hard-cleared so stale marks can never alias a live one.
func (u *updScratch) reset(maxLvl int32) {
	u.stats = core.UpdateStats{}
	u.gen++
	if u.gen == 0 {
		clear(u.stamp)
		clear(u.seen)
		u.gen = 1
	}
	u.touched = u.touched[:0]
	u.deltas.Reset()
	u.phase = phaseAgree
	u.lo = 1
	u.remoteMin = maxLvl
	u.levels = 0
}

// Correction-propagation round roles. All workers transition identically
// because every transition is decided by the same reduced ballots.
const (
	phaseAgree   uint8 = iota // fold ballots, then run R1 or a fused level
	phaseServe                // answer value requests (R2)
	phaseInstall              // install values, cascade, ballot (R3)
)

func (u *updScratch) mark(v uint32, t int32) {
	u.dirtyQ[t] = append(u.dirtyQ[t], v)
}

// ensureStamp grows the stamp arrays to cover n vertex IDs (new vertices
// can appear mid-batch). Grown tails are zero, which no generation ≥ 1
// ever matches.
func (u *updScratch) ensureStamp(n int) {
	for len(u.stamp) < n {
		u.stamp = append(u.stamp, 0)
	}
	for len(u.seen) < n {
		u.seen = append(u.seen, 0)
	}
}

// touch adds v to the worker's dirty set (idempotent per batch).
func (u *updScratch) touch(v uint32) {
	if u.seen[v] == u.gen {
		return
	}
	u.seen[v] = u.gen
	u.touched = append(u.touched, v)
}

// Update applies a batch of edge edits and runs Correction Propagation
// (Algorithm 2) across the partitions on the sparse schedule (see correct).
func (d *RSLPA) Update(batch []graph.Edit) (core.UpdateStats, error) {
	if !d.run {
		return core.UpdateStats{}, fmt.Errorf("dist: Update before Propagate")
	}
	d.epoch++
	stats, err := d.correct(func(w int, sh *shard, sc *updScratch, emit cluster.Emitter) {
		d.applyBatch(sh, sc, w, batch, emit)
	})
	if err != nil {
		return core.UpdateStats{}, err
	}
	// Mirror the batch on the master graph (same AddEdge/RemoveEdge order
	// as the shards, so adjacency order stays in lockstep).
	d.g.Apply(batch)
	return stats, nil
}

// correct runs Correction Propagation over the partitions. Round 0 calls
// seed on every worker (Update's batch apply + repick, which queues local
// dirty marks and emits record fixups); every subsequent round is scheduled
// sparsely:
//
//   - Each cascade round (round 0, an R3, or a fused round) piggybacks one
//     ballot per worker — the lowest level it still has work at, counting
//     both its local queues and the marks it just emitted — via
//     cluster.EmitAllMin; idle workers stay silent. No extra barrier: the
//     ballots ride the round's existing exchange.
//   - The next round every worker folds the same P ballots with
//     cluster.ReduceAllMin, so all workers agree on the next non-idle
//     level and jump to it together; any run of idle levels collapses to
//     zero rounds, and when no ballot arrives at all the run quiesces.
//   - A level whose ballots all carry the owner-local flag runs fused:
//     requests are answered from the worker's own shard and the install +
//     cascade happen in the same round, so a fully-local level costs one
//     round instead of three.
//
// Skipping preserves the level invariant: the schedule visits non-idle
// levels in increasing order (cascades only target higher levels, and the
// reduced minimum accounts for in-flight marks through their sender's
// ballot), so a level still reads only labels that earlier levels have
// finalized.
func (d *RSLPA) correct(seed func(w int, sh *shard, sc *updScratch, emit cluster.Emitter)) (core.UpdateStats, error) {
	T := d.cfg.T
	maxLvl := int32(T) + 1
	before := d.eng.Stats()

	if d.scratch == nil {
		d.scratch = make([]*updScratch, d.eng.Workers())
		for w := range d.scratch {
			d.scratch[w] = &updScratch{dirtyQ: make([][]uint32, T+1)}
		}
	}
	scratch := d.scratch
	for _, sc := range scratch {
		sc.reset(maxLvl)
	}

	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		sh := d.shards[w]
		sc := scratch[w]
		if round == 0 {
			sc.remoteMin = maxLvl
			seed(w, sh, sc, emit)
			d.ballot(sh, sc, w, emit)
			return false, nil
		}
		switch sc.phase {
		case phaseAgree:
			// Ingest everything in flight: record fixups (round 1 only),
			// dirty marks from the previous cascade round, and the ballots.
			for _, m := range inbox {
				switch m.Kind {
				case kindDropRec:
					sh.dropRecord(m.A, int32(m.B), m.Payload[0], int32(m.Payload[1]))
				case kindAddRec:
					sh.recv[m.A] = append(sh.recv[m.A], core.Record{
						Pos: int32(m.B), Tar: m.Payload[0], Iter: int32(m.Payload[1]),
					})
				case kindDirty:
					sc.mark(m.A, int32(m.B))
				}
			}
			next, fused, _ := cluster.ReduceAllMin(inbox, kindAgree)
			if next == cluster.AllMinIdle {
				return false, nil // nobody has work left: quiesce
			}
			lvl := int32(next)
			sc.levels++
			if fused {
				// R1+R2+R3 in one round: every request at lvl is
				// owner-local, so serve, install and cascade in place.
				sc.remoteMin = maxLvl
				d.runFusedLevel(sh, sc, w, lvl, emit)
				d.ballot(sh, sc, w, emit)
				return false, nil
			}
			d.emitRequests(sh, sc, w, lvl, emit)
			sc.phase = phaseServe
		case phaseServe:
			// R2: serve value requests (positions below the level are
			// final, whether or not their levels were ever scheduled).
			for _, m := range inbox {
				tar, iter := m.Payload[0], m.Payload[1]
				emit(d.eng.Owner(tar), cluster.Message{
					Kind: kindPickRep, A: tar, B: iter, Payload: []uint32{sh.labels[m.A][m.B]},
				})
			}
			sc.phase = phaseInstall
		case phaseInstall:
			// R3: install values, cascade to the slots that copied them,
			// and ballot for the next level.
			sc.remoteMin = maxLvl
			for _, m := range inbox {
				v, t, val := m.A, int32(m.B), m.Payload[0]
				if sh.labels[v][t] == val {
					continue
				}
				sh.labels[v][t] = val
				sc.stats.Changed++
				d.cascade(sh, sc, w, v, t, emit)
			}
			d.ballot(sh, sc, w, emit)
			sc.phase = phaseAgree
		}
		return false, nil
	}
	// 2 + 3T rounds is unreachable under the sparse schedule (levels are
	// visited at most once); hitting the cap means the agreement broke.
	rounds, err := d.eng.RunRounds(step, 2+3*T)
	if err != nil {
		return core.UpdateStats{}, err
	}
	if rounds >= 2+3*T {
		return core.UpdateStats{}, fmt.Errorf("dist: correction schedule failed to converge in %d rounds", rounds)
	}

	var stats core.UpdateStats
	var dirty []uint32 // freshly allocated: Dirty escapes into snapshots
	for _, sc := range scratch {
		stats.Inserted += sc.stats.Inserted
		stats.Deleted += sc.stats.Deleted
		stats.Repicked += sc.stats.Repicked
		stats.Touched += sc.stats.Touched
		stats.Changed += sc.stats.Changed
		// Owners are disjoint, so concatenation needs no cross-worker dedup.
		dirty = append(dirty, sc.touched...)
	}
	slices.Sort(dirty)
	stats.Dirty = dirty // nil when no worker touched anything
	// Every worker schedules the same level sequence; read worker 0's.
	if lv := scratch[0].levels; lv > 0 {
		stats.RoundsRun = rounds
		stats.LevelsSkipped = T - lv
	}
	d.LastUpdate = d.eng.Stats().Sub(before)
	return stats, nil
}

// ballot piggybacks this worker's schedule vote on the cascade round it is
// called from: the lowest level it knows still has work (its own queues
// plus any remote marks it emitted this round) and whether that level's
// requests are all owner-local from its point of view. Idle workers stay
// silent — in BSP silence is as reliable as a message, so an all-idle
// cluster terminates the run with zero extra rounds.
func (d *RSLPA) ballot(sh *shard, sc *updScratch, w int, emit cluster.Emitter) {
	T := int32(d.cfg.T)
	next := sc.remoteMin
	for t := sc.lo; t <= T && t < next; t++ {
		if len(sc.dirtyQ[t]) > 0 {
			next = t
			break
		}
	}
	if next > T {
		return // idle: no ballot, no traffic
	}
	// An in-flight remote mark at the nominated level rules fusion out: its
	// receiver cannot vouch for the source's locality until it ingests it.
	local := sc.remoteMin > next
	if local {
		for _, v := range sc.dirtyQ[next] {
			if d.eng.Owner(uint32(sh.src[v][next])) != w {
				local = false
				break
			}
		}
	}
	cluster.EmitAllMin(emit, d.eng.Workers(), kindAgree, uint32(next), local)
}

// drainLevel drains one level's queue with the stamp-deduplicated
// accounting both schedules share (Touched counts exactly what the
// sequential Update counts), calling slot once per fresh mark, and
// advances the schedule floor past the level.
func (sc *updScratch) drainLevel(sh *shard, lvl int32, slot func(v uint32)) {
	sc.ensureStamp(len(sh.exists))
	key := uint64(sc.gen)<<32 | uint64(uint32(lvl))
	for _, v := range sc.dirtyQ[lvl] {
		if sc.stamp[v] == key {
			continue // duplicate mark within this level
		}
		sc.stamp[v] = key
		sc.touch(v)
		sc.stats.Touched++
		slot(v)
	}
	sc.dirtyQ[lvl] = sc.dirtyQ[lvl][:0] // recycle the queue's capacity
	sc.lo = lvl + 1
}

// emitRequests is R1 for one non-fused level: ask each queued slot's
// source owner for the finalized label value.
func (d *RSLPA) emitRequests(sh *shard, sc *updScratch, w int, lvl int32, emit cluster.Emitter) {
	sc.drainLevel(sh, lvl, func(v uint32) {
		src := uint32(sh.src[v][lvl])
		emit(d.eng.Owner(src), cluster.Message{
			Kind: kindPickReq, A: src, B: uint32(sh.pos[v][lvl]), Payload: []uint32{v, uint32(lvl)},
		})
	})
}

// runFusedLevel executes a fully owner-local level in a single round:
// every queued slot's source lives on this worker, so the value request is
// a local array read and the install + cascade happen immediately. Bit
// equivalence with the three-round path holds because a slot at level lvl
// reads only positions < lvl, which are final before the level starts.
func (d *RSLPA) runFusedLevel(sh *shard, sc *updScratch, w int, lvl int32, emit cluster.Emitter) {
	sc.drainLevel(sh, lvl, func(v uint32) {
		val := sh.labels[sh.src[v][lvl]][sh.pos[v][lvl]]
		if sh.labels[v][lvl] == val {
			return
		}
		sh.labels[v][lvl] = val
		sc.stats.Changed++
		d.cascade(sh, sc, w, v, lvl, emit)
	})
}

// cascade forwards a changed label to every slot that copied it: marks for
// owned targets are queued directly (no self-message), marks for remote
// targets are emitted and tracked in remoteMin so the next ballot accounts
// for them.
func (d *RSLPA) cascade(sh *shard, sc *updScratch, w int, v uint32, t int32, emit cluster.Emitter) {
	for _, rec := range sh.recv[v] {
		if rec.Pos != t {
			continue
		}
		if owner := d.eng.Owner(rec.Tar); owner == w {
			sc.mark(rec.Tar, rec.Iter)
		} else {
			emit(owner, cluster.Message{Kind: kindDirty, A: rec.Tar, B: uint32(rec.Iter)})
			if rec.Iter < sc.remoteMin {
				sc.remoteMin = rec.Iter
			}
		}
	}
}

// applyBatch is Update's round 0 for one worker: replay the batch against
// the local shard (edits touching no owned endpoint are skipped, and both
// endpoint owners reach the same changed/no-op verdict because adjacency
// symmetry is an invariant), accumulate the net neighbor delta, repick the
// affected slots, and emit the record drop/add fixups.
func (d *RSLPA) applyBatch(sh *shard, sc *updScratch, w int, batch []graph.Edit, emit cluster.Emitter) {
	bump := sc.deltas.Bump
	for _, e := range batch {
		ownsU := d.eng.Owner(e.U) == w
		ownsV := d.eng.Owner(e.V) == w
		if !ownsU && !ownsV {
			continue
		}
		switch e.Op {
		case graph.Insert:
			if e.U == e.V {
				continue // graph.AddEdge rejects self-loops
			}
			// The changed verdict from whichever endpoint is local.
			var changed bool
			if ownsU {
				sh.growTo(e.U)
				changed = !sh.hasNbr(e.U, e.V)
			} else {
				sh.growTo(e.V)
				changed = !sh.hasNbr(e.V, e.U)
			}
			if !changed {
				continue
			}
			if ownsU {
				sh.addVertex(e.U, d.cfg.T)
				sh.addNbr(e.U, e.V)
				bump(e.U, e.V, 1)
				sc.stats.Inserted++ // count each changed edit once, at U's owner
			}
			if ownsV {
				sh.addVertex(e.V, d.cfg.T)
				sh.addNbr(e.V, e.U)
				bump(e.V, e.U, 1)
			}
		case graph.Delete:
			var changed bool
			if ownsU {
				changed = sh.hasNbr(e.U, e.V)
			} else {
				changed = sh.hasNbr(e.V, e.U)
			}
			if !changed {
				continue
			}
			if ownsU {
				sh.removeNbr(e.U, e.V)
				bump(e.U, e.V, -1)
			}
			if ownsV {
				sh.removeNbr(e.V, e.U)
				bump(e.V, e.U, -1)
			}
			if ownsU {
				sc.stats.Deleted++
			}
		}
	}

	// Repick the affected slots (Algorithm 2 lines 1-12) and fix the
	// record lists at whichever workers own the old and new sources.
	// Finalize drops exact cancellations and yields the affected owned
	// vertices in ascending ID order (the sequential Update's order too).
	sc.deltas.Finalize()
	sc.ensureStamp(len(sh.exists))
	sc.deltas.ForEach(func(v uint32, dl core.DeltaList) {
		sc.touch(v) // adjacency changed even if no slot repicks
		plan := core.NewRepickPlan(v, dl, sh.adj[v], sc.arrivals)
		sc.arrivals = plan.Buf()
		if !plan.Active() {
			return
		}
		for t := int32(1); t <= int32(d.cfg.T); t++ {
			oldSrc := sh.src[v][t]
			newSrc, newPos, rp := plan.Slot(d.cfg, d.epoch, t, oldSrc)
			if !rp {
				continue
			}
			if oldSrc >= 0 {
				emit(d.eng.Owner(uint32(oldSrc)), cluster.Message{
					Kind: kindDropRec, A: uint32(oldSrc), B: uint32(sh.pos[v][t]), Payload: []uint32{v, uint32(t)},
				})
			}
			sh.src[v][t] = int32(newSrc)
			sh.pos[v][t] = newPos
			emit(d.eng.Owner(newSrc), cluster.Message{
				Kind: kindAddRec, A: newSrc, B: uint32(newPos), Payload: []uint32{v, uint32(t)},
			})
			sc.mark(v, t)
			sc.stats.Repicked++
		}
	})
}
