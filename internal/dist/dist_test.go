package dist

import (
	"fmt"
	"reflect"
	"testing"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
	"rslpa/internal/lfr"
	"rslpa/internal/nmi"
	"rslpa/internal/postprocess"
	"rslpa/internal/slpa"
	"rslpa/internal/webgraph"
)

func lfrFixture(t *testing.T) *graph.Graph {
	t.Helper()
	p := lfr.Default(300)
	p.Seed = 11
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	return res.Graph
}

func webFixture(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := webgraph.Generate(webgraph.Default(400))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func newEngine(t *testing.T, workers int) *cluster.Engine {
	t.Helper()
	eng, err := cluster.New(cluster.Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// requireSameStats asserts distributed UpdateStats match the sequential
// ones on every mode-independent field, and that the distributed RoundsRun
// (the only schedule-dependent field: actual BSP supersteps, where the
// sequential engine counts the fused one-pass-per-active-level lower
// bound) stays within the sparse schedule's envelope — at least one round
// per non-idle level plus the apply round, at most three.
func requireSameStats(t *testing.T, ss, ds core.UpdateStats, T int) {
	t.Helper()
	if ss.RoundsRun == 0 {
		// No-dirt batch: both counters are defined as zero in every mode.
		if ds.RoundsRun != 0 {
			t.Fatalf("distributed RoundsRun = %d for a batch that dirtied nothing", ds.RoundsRun)
		}
	} else if active := T - ss.LevelsSkipped; ds.RoundsRun < 1+active || ds.RoundsRun > 1+3*active {
		t.Fatalf("distributed RoundsRun = %d outside sparse envelope [%d, %d] for %d active levels",
			ds.RoundsRun, 1+active, 1+3*active, active)
	}
	ds.RoundsRun = ss.RoundsRun
	if !reflect.DeepEqual(ss, ds) {
		t.Fatalf("stats: sequential %+v, distributed %+v", ss, ds)
	}
}

// requireSameLabels asserts the distributed label matrix is bit-identical
// to the sequential one over every vertex of g.
func requireSameLabels(t *testing.T, g *graph.Graph, seq *core.State, d *RSLPA) {
	t.Helper()
	g.ForEachVertex(func(v uint32) {
		a, b := seq.Labels(v), d.Labels(v)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: sequence lengths %d vs %d", v, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d slot %d: sequential %d, distributed %d", v, i, a[i], b[i])
			}
		}
	})
}

// TestPropagateMatchesSequential is the core equivalence claim: for LFR and
// webgraph fixtures, NewRSLPA+Propagate+Postprocess produces the same label
// matrix and the same cover as core.Run+postprocess.Extract with the same
// seed, for Workers ∈ {1, 2, 4}.
func TestPropagateMatchesSequential(t *testing.T) {
	fixtures := map[string]*graph.Graph{"lfr": lfrFixture(t), "web": webFixture(t)}
	for name, g := range fixtures {
		for _, workers := range []int{1, 2, 4} {
			t.Run(name+"/"+string(rune('0'+workers))+"workers", func(t *testing.T) {
				cfg := core.Config{T: 60, Seed: 42}
				seq, err := core.Run(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				pp, err := postprocess.Extract(seq.Graph(), seq.Labels, postprocess.Config{})
				if err != nil {
					t.Fatal(err)
				}

				eng := newEngine(t, workers)
				d, err := NewRSLPA(eng, g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Propagate(); err != nil {
					t.Fatal(err)
				}
				requireSameLabels(t, g, seq, d)

				dp, err := Postprocess(eng, d, postprocess.Config{})
				if err != nil {
					t.Fatal(err)
				}
				if dp.Tau1 != pp.Tau1 || dp.Tau2 != pp.Tau2 {
					t.Fatalf("thresholds: distributed (%v, %v), sequential (%v, %v)",
						dp.Tau1, dp.Tau2, pp.Tau1, pp.Tau2)
				}
				if dp.Strong != pp.Strong || dp.Weak != pp.Weak || dp.Entropy != pp.Entropy {
					t.Fatalf("summary: distributed %+v, sequential %+v",
						[3]interface{}{dp.Strong, dp.Weak, dp.Entropy},
						[3]interface{}{pp.Strong, pp.Weak, pp.Entropy})
				}
				if got := nmi.Compare(dp.Cover, pp.Cover, g.NumVertices()); got < 0.9999 {
					t.Fatalf("cover NMI vs sequential = %v", got)
				}
			})
		}
	}
}

// TestUpdateMatchesSequentialAndRecompute drives incremental repair: after a
// dynamic batch, the distributed state must match both the sequentially
// updated state and (distributionally, via the exact same streams) the
// sequential implementation's own invariant tests already cover recompute
// equivalence — here we assert dist == seq on labels, covers and stats.
func TestUpdateMatchesSequential(t *testing.T) {
	g := webFixture(t)
	cfg := core.Config{T: 50, Seed: 7}
	for _, workers := range []int{1, 3} {
		seq, err := core.Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine(t, workers)
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}

		// Three consecutive batches so epochs advance past 1.
		work := g.Clone()
		for i := 0; i < 3; i++ {
			batch, err := dynamic.Batch(work, 60, uint64(100+i))
			if err != nil {
				t.Fatal(err)
			}
			work.Apply(batch)
			ss := seq.Update(batch)
			ds, err := d.Update(batch)
			if err != nil {
				t.Fatal(err)
			}
			requireSameStats(t, ss, ds, cfg.T)
			requireSameLabels(t, work, seq, d)
		}

		// Post-processing after updates must also agree.
		pp, err := postprocess.Extract(seq.Graph(), seq.Labels, postprocess.Config{})
		if err != nil {
			t.Fatal(err)
		}
		dp, err := Postprocess(eng, d, postprocess.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if got := nmi.Compare(dp.Cover, pp.Cover, work.NumVertices()); got < 0.9999 {
			t.Fatalf("workers=%d: post-update cover NMI = %v", workers, got)
		}
	}
}

// TestRemoveVertexDirtyContract pins RemoveVertex's UpdateStats.Dirty
// contract: the removed vertex and all of its former neighbors appear in
// Dirty, and the stats are identical to the distributed engine processing
// the same induced edge-deletion batch (the distributed form of removal —
// the paper handles vertex deletion as deleting the incident edges and
// then ignoring the vertex). Extends the requireSameStats pin to the
// removal path.
func TestRemoveVertexDirtyContract(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 40, Seed: 9}
	for _, workers := range []int{1, 3} {
		seq, err := core.Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine(t, workers)
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}

		// Pick a well-connected vertex and snapshot its neighborhood; the
		// induced batch must match RemoveVertex's own construction order.
		var v uint32
		g.ForEachVertex(func(u uint32) {
			if g.Degree(u) > g.Degree(v) {
				v = u
			}
		})
		nbrs := append([]uint32(nil), seq.Graph().Neighbors(v)...)
		if len(nbrs) < 2 {
			t.Fatalf("fixture vertex %d has degree %d; want >= 2", v, len(nbrs))
		}
		batch := make([]graph.Edit, 0, len(nbrs))
		for _, u := range nbrs {
			batch = append(batch, graph.Edit{Op: graph.Delete, U: v, V: u})
		}

		ss, ok := seq.RemoveVertex(v)
		if !ok {
			t.Fatalf("RemoveVertex(%d) = false", v)
		}
		ds, err := d.Update(batch)
		if err != nil {
			t.Fatal(err)
		}
		requireSameStats(t, ss, ds, cfg.T)

		// Dirty membership contract: v plus every former neighbor.
		inDirty := func(u uint32) bool {
			for _, w := range ss.Dirty {
				if w == u {
					return true
				}
			}
			return false
		}
		if !inDirty(v) {
			t.Fatalf("workers=%d: removed vertex %d missing from Dirty %v", workers, v, ss.Dirty)
		}
		for _, u := range nbrs {
			if !inDirty(u) {
				t.Fatalf("workers=%d: former neighbor %d of %d missing from Dirty %v", workers, u, v, ss.Dirty)
			}
		}

		// The surviving vertices' label matrices still agree bit-for-bit
		// (the distributed graph keeps v as an isolated vertex, which the
		// paper's rule says to ignore).
		requireSameLabels(t, seq.Graph(), seq, d)
		if seq.Graph().HasVertex(v) {
			t.Fatalf("sequential graph still has removed vertex %d", v)
		}
	}
}

// TestRemoveIsolatedVertexDirtyContract pins the isolated-vertex corner of
// the Dirty contract on BOTH engines: removing a vertex with no neighbors
// induces an empty edge-deletion batch, yet its shard presence bit flips —
// Dirty must still carry the vertex (nil Dirty here made COW snapshots keep
// serving it). The distributed RemoveVertex must mirror the sequential one
// stat-for-stat and keep the label matrices bit-identical.
func TestRemoveIsolatedVertexDirtyContract(t *testing.T) {
	g := lfrFixture(t)
	iso := uint32(g.MaxVertexID() + 3)
	g.AddVertex(iso)
	cfg := core.Config{T: 30, Seed: 9}
	for _, workers := range []int{1, 3} {
		seq, err := core.Run(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine(t, workers)
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}

		ss, ok := seq.RemoveVertex(iso)
		if !ok {
			t.Fatalf("sequential RemoveVertex(%d) = false", iso)
		}
		ds, ok, err := d.RemoveVertex(iso)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("distributed RemoveVertex(%d) = false", iso)
		}
		requireSameStats(t, ss, ds, cfg.T)
		if len(ss.Dirty) != 1 || ss.Dirty[0] != iso {
			t.Fatalf("workers=%d: isolated removal Dirty = %v, want [%d]", workers, ss.Dirty, iso)
		}
		if d.Graph().HasVertex(iso) || d.Labels(iso) != nil {
			t.Fatalf("workers=%d: distributed engine still serves removed vertex %d", workers, iso)
		}
		requireSameLabels(t, seq.Graph(), seq, d)

		// AddVertex mirrors too: presence-only change, Dirty = [v].
		as, ok := seq.AddVertex(iso)
		if !ok || len(as.Dirty) != 1 || as.Dirty[0] != iso {
			t.Fatalf("sequential AddVertex stats = %+v ok=%v", as, ok)
		}
		das, ok := d.AddVertex(iso)
		if !ok || !reflect.DeepEqual(as, das) {
			t.Fatalf("workers=%d: distributed AddVertex stats %+v ok=%v, want %+v", workers, das, ok, as)
		}
		if d.Labels(iso) == nil || seq.Labels(iso) == nil {
			t.Fatal("re-added isolated vertex has no labels")
		}
		requireSameLabels(t, seq.Graph(), seq, d)
	}
}

// TestUpdatePostprocessMatchesRecompute checks the paper's central dynamic
// claim end-to-end on the distributed driver: after a dynamic batch,
// Update+Postprocess recovers the same community structure as a full
// recompute on the mutated graph. Exact equality holds against the
// sequentially-updated state (asserted bit-for-bit elsewhere); against an
// independently seeded from-scratch run the guarantee is distributional
// (core's TestIncrementalMatchesScratchDistribution pins it), so here the
// covers must agree to high NMI on the planted LFR structure. All inputs
// are seeded — the comparison is deterministic.
func TestUpdatePostprocessMatchesRecompute(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 200, Seed: 1}
	eng := newEngine(t, 4)
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	batch, err := dynamic.Batch(g.Clone(), 40, 51)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Update(batch); err != nil {
		t.Fatal(err)
	}
	dp, err := Postprocess(eng, d, postprocess.Config{})
	if err != nil {
		t.Fatal(err)
	}
	mut := g.Clone()
	mut.Apply(batch)
	scratch, err := core.Run(mut, core.Config{T: 200, Seed: 1000}) // independent randomness
	if err != nil {
		t.Fatal(err)
	}
	sp, err := postprocess.Extract(scratch.Graph(), scratch.Labels, postprocess.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := nmi.Compare(dp.Cover, sp.Cover, mut.NumVertices()); got < 0.6 {
		t.Fatalf("incremental vs from-scratch cover NMI = %v, want >= 0.6", got)
	}
}

// TestUpdateEmptyBatch asserts an empty batch is a complete no-op: no
// repicks, no messages, unchanged labels.
func TestUpdateEmptyBatch(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 40, Seed: 3}
	seq, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t, 3)
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	stats, err := d.Update(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stats, core.UpdateStats{}) {
		t.Fatalf("empty batch did work: %+v", stats)
	}
	if d.LastUpdate.Messages != 0 {
		t.Fatalf("empty batch moved %d messages", d.LastUpdate.Messages)
	}
	seq.Update(nil)
	requireSameLabels(t, g, seq, d)
}

// TestUpdateBoundaryBatch forces every edit to cross a partition boundary
// (endpoints owned by different workers) plus new-vertex insertions, and
// asserts equivalence with the sequential update.
func TestUpdateBoundaryBatch(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 40, Seed: 5}
	const workers = 4
	eng := newEngine(t, workers)
	part := cluster.Partitioner{P: workers}

	// Build a batch of cross-boundary edits only: deletions of existing
	// boundary edges and insertions of absent boundary pairs, plus an edge
	// to a brand-new vertex ID.
	var batch []graph.Edit
	deleted := 0
	g.ForEachEdge(func(u, v uint32) {
		if deleted < 10 && part.Owner(u) != part.Owner(v) {
			batch = append(batch, graph.Edit{Op: graph.Delete, U: u, V: v})
			deleted++
		}
	})
	if deleted == 0 {
		t.Fatal("fixture has no boundary edges")
	}
	inserted := 0
	for u := uint32(0); u < 40 && inserted < 10; u++ {
		for v := u + 1; v < 60 && inserted < 10; v++ {
			if part.Owner(u) != part.Owner(v) && !g.HasEdge(u, v) {
				batch = append(batch, graph.Edit{Op: graph.Insert, U: u, V: v})
				inserted++
			}
		}
	}
	fresh := uint32(g.MaxVertexID() + 5)
	batch = append(batch, graph.Edit{Op: graph.Insert, U: 0, V: fresh})

	seq, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	ss := seq.Update(batch)
	ds, err := d.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	requireSameStats(t, ss, ds, cfg.T)
	work := g.Clone()
	work.Apply(batch)
	requireSameLabels(t, work, seq, d)
	if d.Labels(fresh) == nil {
		t.Fatal("no labels for the freshly inserted vertex")
	}
}

// TestPropagateStatsAccounting pins the cost model: Rounds equals the
// configured T, Messages = 2|V| per iteration (request+reply), and the
// engine totals strictly accumulate across Propagate and Update.
func TestPropagateStatsAccounting(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 25, Seed: 2}
	for _, workers := range []int{2, 4} {
		eng := newEngine(t, workers)
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}
		ps := d.PropagateStats
		if ps.Rounds != int64(cfg.T) {
			t.Fatalf("PropagateStats.Rounds = %d, want T = %d", ps.Rounds, cfg.T)
		}
		wantMsgs := int64(2 * cfg.T * g.NumVertices())
		if ps.Messages != wantMsgs {
			t.Fatalf("PropagateStats.Messages = %d, want 2*T*|V| = %d", ps.Messages, wantMsgs)
		}
		// Each iteration moves one request (2-word payload) and one reply
		// (1-word payload) per vertex.
		reqSize := int64(cluster.Message{Payload: make([]uint32, 2)}.WireSize())
		repSize := int64(cluster.Message{Payload: make([]uint32, 1)}.WireSize())
		if want := int64(cfg.T*g.NumVertices()) * (reqSize + repSize); ps.Bytes != want {
			t.Fatalf("PropagateStats.Bytes = %d, want %d", ps.Bytes, want)
		}

		afterPropagate := eng.Stats()
		batch, err := dynamic.Batch(g.Clone(), 40, 9)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.Update(batch); err != nil {
			t.Fatal(err)
		}
		afterUpdate := eng.Stats()
		if afterUpdate.Messages <= afterPropagate.Messages || afterUpdate.Bytes <= afterPropagate.Bytes {
			t.Fatalf("engine stats did not accumulate: %+v -> %+v", afterPropagate, afterUpdate)
		}
		if d.LastUpdate.Messages == 0 || d.LastUpdate.Bytes == 0 {
			t.Fatalf("LastUpdate empty after a non-trivial batch: %+v", d.LastUpdate)
		}
	}
}

// TestSLPAMatchesSequential asserts the distributed SLPA memories are
// bit-identical to slpa.Propagate, and the extracted covers match.
func TestSLPAMatchesSequential(t *testing.T) {
	g := lfrFixture(t)
	cfg := slpa.Config{T: 30, Tau: 0.2, Seed: 13}
	mem, err := slpa.Propagate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		eng := newEngine(t, workers)
		d, err := NewSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}
		got := d.Memories()
		if len(got) != len(mem) {
			t.Fatalf("memories length %d vs %d", len(got), len(mem))
		}
		for v := range mem {
			if len(mem[v]) != len(got[v]) {
				t.Fatalf("vertex %d memory length %d vs %d", v, len(got[v]), len(mem[v]))
			}
			for i := range mem[v] {
				if mem[v][i] != got[v][i] {
					t.Fatalf("workers=%d vertex %d slot %d: %d vs %d", workers, v, i, got[v][i], mem[v][i])
				}
			}
		}
		seqCover := slpa.ExtractCover(g, mem, cfg)
		dstCover := slpa.ExtractCover(g, got, cfg)
		if got := nmi.Compare(seqCover, dstCover, g.NumVertices()); got < 0.9999 {
			t.Fatalf("SLPA cover NMI = %v", got)
		}
		if ds := d.PropagateStats; ds.Rounds != int64(cfg.T) || ds.Messages != int64(2*cfg.T*g.NumEdges()) {
			t.Fatalf("SLPA stats %+v, want Rounds=%d Messages=%d", ds, cfg.T, 2*cfg.T*g.NumEdges())
		}
	}
}

// requireSameResult asserts two extraction Results agree exactly on every
// scalar and to near-perfect NMI on the cover.
func requireSameResult(t *testing.T, n int, got, want *postprocess.Result) {
	t.Helper()
	if got.Tau1 != want.Tau1 || got.Tau2 != want.Tau2 {
		t.Fatalf("thresholds: distributed (%v, %v), sequential (%v, %v)",
			got.Tau1, got.Tau2, want.Tau1, want.Tau2)
	}
	if got.Strong != want.Strong || got.Weak != want.Weak || got.Entropy != want.Entropy {
		t.Fatalf("summary: distributed %+v, sequential %+v",
			[3]interface{}{got.Strong, got.Weak, got.Entropy},
			[3]interface{}{want.Strong, want.Weak, want.Entropy})
	}
	if s := nmi.Compare(got.Cover, want.Cover, n); s < 0.9999 {
		t.Fatalf("cover NMI vs sequential = %v", s)
	}
}

// TestPostprocessMatchesSequentialMatrix is the acceptance matrix for the
// rebuilt distributed post-processing: for P ∈ {1, 2, 3, 7} on both
// transports, and for every selection mode (entropy sweep, grid
// enumeration, fixed thresholds) plus both weight metrics, the RLE-shipped,
// tree-reduced, partition-swept pipeline must reproduce the sequential
// postprocess.Extract bit for bit.
func TestPostprocessMatchesSequentialMatrix(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 40, Seed: 23}
	seq, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ppCfgs := map[string]postprocess.Config{
		"sweep": {},
		"grid":  {GridStep: 0.01},
		"fixed": {Tau1: 0.6, Tau2: 0.05},
		"prob":  {Metric: postprocess.SameLabelProbability},
	}
	for name, ppCfg := range ppCfgs {
		want, err := postprocess.Extract(seq.Graph(), seq.Labels, ppCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, kind := range []cluster.TransportKind{cluster.Local, cluster.TCP} {
			for _, workers := range []int{1, 2, 3, 7} {
				t.Run(fmt.Sprintf("%s/%s/%dworkers", name, kind, workers), func(t *testing.T) {
					eng, err := cluster.New(cluster.Config{Workers: workers, Transport: kind})
					if err != nil {
						t.Fatal(err)
					}
					defer eng.Close()
					d, err := NewRSLPA(eng, g, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if err := d.Propagate(); err != nil {
						t.Fatal(err)
					}
					dp, err := Postprocess(eng, d, ppCfg)
					if err != nil {
						t.Fatal(err)
					}
					requireSameResult(t, g.NumVertices(), dp, want)
					if workers > 1 && d.LastPostprocess.Messages == 0 {
						t.Fatal("multi-worker postprocess moved no messages")
					}
				})
			}
		}
	}
}

// TestPostprocessWireReduction pins the acceptance criterion: on a
// fig8-scale LFR graph the rebuilt pipeline must move at least 5x fewer
// postprocess bytes than per-label shipping plus the all-to-master weight
// funnel did.
func TestPostprocessWireReduction(t *testing.T) {
	p := lfr.Default(2000)
	p.AvgDeg, p.MaxDeg, p.On, p.Seed = 15, 50, 200, 8
	res, err := lfr.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	const workers = 4
	cfg := core.Config{T: 200, Seed: 4}
	eng := newEngine(t, workers)
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Postprocess(eng, d, postprocess.Config{}); err != nil {
		t.Fatal(err)
	}
	naive := NaivePostprocessBytes(g, cluster.Partitioner{P: workers}, cfg.T)
	got := d.LastPostprocess.Bytes
	if got == 0 {
		t.Fatal("postprocess reported zero wire bytes")
	}
	if ratio := float64(naive) / float64(got); ratio < 5 {
		t.Fatalf("postprocess wire reduction %.1fx (naive %d B, got %d B), want >= 5x",
			ratio, naive, got)
	}
}

// TestDriverValidation covers the constructor and sequencing guards.
func TestDriverValidation(t *testing.T) {
	g := graph.New()
	g.AddEdge(0, 1)
	eng := newEngine(t, 2)
	if _, err := NewRSLPA(nil, g, core.Config{T: 5}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewRSLPA(eng, g, core.Config{T: 0}); err == nil {
		t.Fatal("T=0 accepted")
	}
	if _, err := NewSLPA(eng, g, slpa.Config{T: 0}); err == nil {
		t.Fatal("slpa T=0 accepted")
	}
	d, err := NewRSLPA(eng, g, core.Config{T: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Update(nil); err == nil {
		t.Fatal("Update before Propagate accepted")
	}
	if _, err := Postprocess(eng, d, postprocess.Config{}); err == nil {
		t.Fatal("Postprocess before Propagate accepted")
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err == nil {
		t.Fatal("second Propagate accepted")
	}
	other := newEngine(t, 2)
	if _, err := Postprocess(other, d, postprocess.Config{}); err == nil {
		t.Fatal("foreign engine accepted")
	}
	if d.Labels(99) != nil {
		t.Fatal("labels for absent vertex")
	}
}

// TestOverTCP runs the full pipeline over loopback sockets to prove the
// drivers survive a real network stack.
func TestOverTCP(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 20, Seed: 21}
	seq, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cluster.New(cluster.Config{Workers: 3, Transport: cluster.TCP})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	batch, err := dynamic.Batch(g.Clone(), 30, 17)
	if err != nil {
		t.Fatal(err)
	}
	work := g.Clone()
	work.Apply(batch)
	seq.Update(batch)
	if _, err := d.Update(batch); err != nil {
		t.Fatal(err)
	}
	requireSameLabels(t, work, seq, d)
	if _, err := Postprocess(eng, d, postprocess.Config{}); err != nil {
		t.Fatal(err)
	}
}
