package dist

import (
	"fmt"
	"sort"

	"rslpa/internal/cluster"
	"rslpa/internal/graph"
	"rslpa/internal/rng"
	"rslpa/internal/slpa"
)

// SLPA is the distributed Speaker-Listener LPA baseline: one superstep per
// iteration, one message per directed edge — the O(|E|) communication
// pattern rSLPA was designed to beat. Memories are bit-identical to
// slpa.Propagate for the same seed.
type SLPA struct {
	eng   *cluster.Engine
	cfg   slpa.Config
	maxID int
	adj   [][][]uint32 // adj[w][v]: adjacency of owned vertices
	mem   [][][]uint32 // mem[w][v]: label memory of owned vertices
	owned [][]uint32
	run   bool

	// PropagateStats reports the cost of Propagate: Rounds is the number of
	// iterations (T), Messages/Bytes the wire traffic (2|E| per iteration).
	PropagateStats cluster.Stats
}

// NewSLPA partitions g over the engine's workers.
func NewSLPA(eng *cluster.Engine, g *graph.Graph, cfg slpa.Config) (*SLPA, error) {
	if eng == nil {
		return nil, fmt.Errorf("dist: nil engine")
	}
	if cfg.T <= 0 {
		return nil, fmt.Errorf("dist: slpa config T=%d must be positive", cfg.T)
	}
	p := eng.Workers()
	d := &SLPA{eng: eng, cfg: cfg, maxID: g.MaxVertexID()}
	d.adj = make([][][]uint32, p)
	d.mem = make([][][]uint32, p)
	d.owned = make([][]uint32, p)
	for w := 0; w < p; w++ {
		d.adj[w] = make([][]uint32, d.maxID)
		d.mem[w] = make([][]uint32, d.maxID)
	}
	g.ForEachVertex(func(v uint32) {
		w := eng.Owner(v)
		d.adj[w][v] = append([]uint32(nil), g.Neighbors(v)...)
		m := make([]uint32, 1, cfg.T+1)
		m[0] = v
		d.mem[w][v] = m
		d.owned[w] = append(d.owned[w], v)
	})
	return d, nil
}

// Propagate runs T speaker/listener iterations. At round r every owner
// speaks for iteration r+1 — each owned vertex pushes one label drawn from
// its memory to every neighbor (the speaker's pick is a pure function of
// (seed, t, speaker, listener), exactly slpa.listen's derivation) — and
// listens for iteration r, appending the plurality label of the messages
// that arrived, with slpa's uniform tie-break.
func (d *SLPA) Propagate() error {
	if d.run {
		return fmt.Errorf("dist: Propagate called twice")
	}
	T := d.cfg.T
	before := d.eng.Stats()
	step := func(w, round int, inbox []cluster.Message, emit cluster.Emitter) (bool, error) {
		adj, mem := d.adj[w], d.mem[w]
		if round >= 1 {
			t := round
			// Listener step: tally the labels spoken to each owned vertex.
			counts := make(map[uint32]map[uint32]int)
			for _, m := range inbox {
				c := counts[m.A]
				if c == nil {
					c = make(map[uint32]int, 8)
					counts[m.A] = c
				}
				c[m.B]++
			}
			for _, v := range d.owned[w] {
				label := v // isolated vertex hears only itself
				if c := counts[v]; c != nil {
					label = plurality(c, d.cfg.Seed, t, v)
				}
				mem[v] = append(mem[v], label)
			}
		}
		if t2 := round + 1; t2 <= T {
			for _, u := range d.owned[w] {
				for _, v := range adj[u] {
					s := rng.StreamOf(d.cfg.Seed, uint64(t2), uint64(u), uint64(v))
					emit(d.eng.Owner(v), cluster.Message{
						Kind: kindSpeak, A: v, B: mem[u][s.Intn(t2)],
					})
				}
			}
			return true, nil
		}
		return false, nil
	}
	if _, err := d.eng.RunRounds(step, T+1); err != nil {
		return err
	}
	d.run = true
	d.PropagateStats = phaseStats(T, d.eng.Stats().Sub(before))
	return nil
}

// plurality returns the most frequent label, tie-broken uniformly with the
// same stream derivation as the sequential slpa.listen.
func plurality(counts map[uint32]int, seed uint64, t int, v uint32) uint32 {
	best := 0
	for _, c := range counts {
		if c > best {
			best = c
		}
	}
	tied := make([]uint32, 0, 4)
	for label, c := range counts {
		if c == best {
			tied = append(tied, label)
		}
	}
	if len(tied) == 1 {
		return tied[0]
	}
	sort.Slice(tied, func(i, j int) bool { return tied[i] < tied[j] })
	s := rng.StreamOf(seed, uint64(t), uint64(v), 0xdecade)
	return tied[s.Intn(len(tied))]
}

// Memories gathers the label memories from all partitions in the format of
// slpa.Propagate: Memories()[v] has length T+1, nil for absent IDs.
func (d *SLPA) Memories() [][]uint32 {
	out := make([][]uint32, d.maxID)
	for w := range d.mem {
		for _, v := range d.owned[w] {
			out[v] = d.mem[w][v]
		}
	}
	return out
}
