package dist

import (
	"bytes"
	"strings"
	"testing"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dynamic"
	"rslpa/internal/graph"
)

// saveDistributed detects on g with the given worker count, applies batch,
// and returns the checkpoint bytes plus the driver for reference.
func saveDistributed(t *testing.T, g *graph.Graph, cfg core.Config, workers int, batch []graph.Edit) ([]byte, *RSLPA) {
	t.Helper()
	eng := newEngine(t, workers)
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	if len(batch) > 0 {
		if _, err := d.Update(batch); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), d
}

func TestDistributedSaveLoadReshards(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 20, Seed: 9}
	batch, err := dynamic.Batch(g, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := saveDistributed(t, g, cfg, 4, batch)

	// Sequential reference over the same history.
	seq := mustRunSeq(t, g, cfg)
	seq.Update(batch)

	for _, loadP := range []int{1, 2, 4, 7} {
		c, err := core.ReadCheckpoint(bytes.NewReader(blob))
		if err != nil {
			t.Fatal(err)
		}
		eng := newEngine(t, loadP)
		d, err := NewRSLPAFromCheckpoint(eng, c)
		if err != nil {
			t.Fatalf("load at P=%d: %v", loadP, err)
		}
		requireSameLabels(t, seq.Graph(), seq, d)
		if !d.Graph().Equal(seq.Graph()) {
			t.Fatalf("load at P=%d: graph differs", loadP)
		}
	}
}

func TestDistributedLoadedDriverResumesBitIdentically(t *testing.T) {
	g := webFixture(t)
	cfg := core.Config{T: 15, Seed: 21}
	batch1, err := dynamic.Batch(g, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := saveDistributed(t, g, cfg, 3, batch1)

	// Uninterrupted twin: sequential, same history plus a second batch.
	seq := mustRunSeq(t, g, cfg)
	seq.Update(batch1)
	batch2, err := dynamic.Batch(seq.Graph(), 40, 6)
	if err != nil {
		t.Fatal(err)
	}
	seqStats := seq.Update(batch2)

	c, err := core.ReadCheckpoint(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t, 2)
	d, err := NewRSLPAFromCheckpoint(eng, c)
	if err != nil {
		t.Fatal(err)
	}
	dStats, err := d.Update(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if dStats.Repicked != seqStats.Repicked || dStats.Changed != seqStats.Changed {
		t.Fatalf("update stats diverged after restore: %+v vs %+v", dStats, seqStats)
	}
	requireSameLabels(t, seq.Graph(), seq, d)
}

func TestDistributedSaveMatchesSequentialCheckpointState(t *testing.T) {
	// A distributed checkpoint must load into a sequential State identical
	// to the one the sequential detector would have saved.
	g := lfrFixture(t)
	cfg := core.Config{T: 12, Seed: 2}
	blob, _ := saveDistributed(t, g, cfg, 5, nil)
	fromDist, err := core.Load(bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if err := fromDist.Validate(); err != nil {
		t.Fatalf("restored state invalid: %v", err)
	}
	seq := mustRunSeq(t, g, cfg)
	if !seq.EqualLabels(fromDist) {
		t.Fatal("distributed checkpoint state differs from sequential")
	}
}

func TestDistributedSaveBeforePropagate(t *testing.T) {
	eng := newEngine(t, 2)
	d, err := NewRSLPA(eng, lfrFixture(t), core.Config{T: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save before Propagate accepted")
	}
}

func TestDistributedSaveOverTCPChargesWire(t *testing.T) {
	g := lfrFixture(t)
	eng, err := cluster.New(cluster.Config{Workers: 3, Transport: cluster.TCP})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	d, err := NewRSLPA(eng, g, core.Config{T: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if d.LastCheckpoint.Bytes == 0 {
		t.Fatal("checkpoint gather charged no wire bytes")
	}
	// The shipped shards are the dominant content of the file itself.
	if d.LastCheckpoint.Bytes < int64(buf.Len())/2 {
		t.Fatalf("gather bytes %d implausibly small for a %d-byte checkpoint",
			d.LastCheckpoint.Bytes, buf.Len())
	}
	st, err := core.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointDigestMismatchRejected(t *testing.T) {
	g := lfrFixture(t)
	blob, _ := saveDistributed(t, g, core.Config{T: 8, Seed: 3}, 3, nil)

	// Flip one bit inside a shard's first vertex ID: the shard digest no
	// longer matches and the loader must say so explicitly.
	mut := append([]byte(nil), blob...)
	// Header: magic(7) + 6 u64 + 3 shard lengths, then shard 0's digest(8)
	// + count(8) + first record's vertex ID.
	off := 7 + 8*6 + 8*3 + 16
	mut[off] ^= 0x01
	_, err := core.ReadCheckpoint(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupted shard vertex ID: got %v, want owner-map digest mismatch", err)
	}

	// Corrupt the header's combined digest field.
	mut = append([]byte(nil), blob...)
	mut[7+8*5] ^= 0xff
	_, err = core.ReadCheckpoint(bytes.NewReader(mut))
	if err == nil || !strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("corrupted header digest: got %v, want owner-map digest mismatch", err)
	}
}

func mustRunSeq(t *testing.T, g *graph.Graph, cfg core.Config) *core.State {
	t.Helper()
	s, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
