package dist

import (
	"fmt"
	"testing"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
	"rslpa/internal/dynamic"
)

// TestUpdateSkipsIdleLevels pins the sparse schedule's acceptance
// criterion: a correction run that dirties only levels {3, 97} at T=100
// costs O(active levels) engine rounds, not O(T). The marks are injected
// directly into the correction runner on a clean post-Propagate state, so
// every re-read reproduces the existing value (the pick invariant), no
// cascades fire, and exactly two levels are non-idle.
func TestUpdateSkipsIdleLevels(t *testing.T) {
	g := webFixture(t)
	cfg := core.Config{T: 100, Seed: 9}
	seq, err := core.Run(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		eng := newEngine(t, workers)
		d, err := NewRSLPA(eng, g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Propagate(); err != nil {
			t.Fatal(err)
		}

		wantTouched := 0
		stats, err := d.correct(func(w int, sh *shard, sc *updScratch, emit cluster.Emitter) {
			marked := 0
			for _, v := range sh.owned {
				if marked == 3 {
					break
				}
				sc.mark(v, 3)
				sc.mark(v, 97)
				marked++
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < workers; w++ {
			owned := 0
			g.ForEachVertex(func(v uint32) {
				if eng.Owner(v) == w {
					owned++
				}
			})
			if owned > 3 {
				owned = 3
			}
			wantTouched += 2 * owned
		}

		if stats.LevelsSkipped != 98 {
			t.Fatalf("workers=%d: LevelsSkipped = %d, want 98", workers, stats.LevelsSkipped)
		}
		if stats.Touched != wantTouched || stats.Changed != 0 {
			t.Fatalf("workers=%d: touched %d (want %d), changed %d (want 0)",
				workers, stats.Touched, wantTouched, stats.Changed)
		}
		// Two active levels: at least one round each plus the seed round;
		// at most three each. The dense schedule would pay 1+3*97 rounds
		// just to reach level 97.
		if stats.RoundsRun < 3 || stats.RoundsRun > 7 {
			t.Fatalf("workers=%d: RoundsRun = %d, want within [3, 7]", workers, stats.RoundsRun)
		}
		if dense := 1 + 3*cfg.T; stats.RoundsRun*10 >= dense {
			t.Fatalf("workers=%d: RoundsRun = %d is not O(active levels) vs dense %d", workers, stats.RoundsRun, dense)
		}
		// No value changed, so the matrix must still equal the sequential one.
		requireSameLabels(t, g, seq, d)
	}
}

// TestUpdateEquivalenceMatrix re-pins bit-identity of the sparse scheduler
// against the sequential Update for P ∈ {1, 2, 3, 7} on both transports:
// labels, covers-feeding state and every mode-independent stats field must
// match after consecutive dynamic batches.
func TestUpdateEquivalenceMatrix(t *testing.T) {
	g := webFixture(t)
	cfg := core.Config{T: 40, Seed: 31}
	for _, kind := range []cluster.TransportKind{cluster.Local, cluster.TCP} {
		for _, workers := range []int{1, 2, 3, 7} {
			t.Run(fmt.Sprintf("%s/%dworkers", kind, workers), func(t *testing.T) {
				seq, err := core.Run(g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				eng, err := cluster.New(cluster.Config{Workers: workers, Transport: kind})
				if err != nil {
					t.Fatal(err)
				}
				defer eng.Close()
				d, err := NewRSLPA(eng, g, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := d.Propagate(); err != nil {
					t.Fatal(err)
				}
				work := g.Clone()
				for i := 0; i < 2; i++ {
					batch, err := dynamic.Batch(work, 50, uint64(200+i))
					if err != nil {
						t.Fatal(err)
					}
					work.Apply(batch)
					ss := seq.Update(batch)
					ds, err := d.Update(batch)
					if err != nil {
						t.Fatal(err)
					}
					requireSameStats(t, ss, ds, cfg.T)
					requireSameLabels(t, work, seq, d)
				}
			})
		}
	}
}

// TestUpdateRoundTrace checks the engine's per-round accounting of an
// Update run: the trace covers exactly RoundsRun supersteps and its final
// round is quiescent (the schedule terminates by silence, not by a cap).
func TestUpdateRoundTrace(t *testing.T) {
	g := lfrFixture(t)
	cfg := core.Config{T: 30, Seed: 17}
	eng := newEngine(t, 3)
	d, err := NewRSLPA(eng, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Propagate(); err != nil {
		t.Fatal(err)
	}
	batch, err := dynamic.Batch(g.Clone(), 40, 77)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := d.Update(batch)
	if err != nil {
		t.Fatal(err)
	}
	trace := eng.LastTrace()
	if len(trace) != stats.RoundsRun {
		t.Fatalf("trace has %d rounds, UpdateStats.RoundsRun = %d", len(trace), stats.RoundsRun)
	}
	if last := trace[len(trace)-1]; last.Messages != 0 || last.Bytes != 0 {
		t.Fatalf("final round moved traffic %+v, want quiescent termination", last)
	}
	var total cluster.Stats
	for _, r := range trace {
		total.Messages += r.Messages
		total.Bytes += r.Bytes
	}
	if total.Messages != d.LastUpdate.Messages || total.Bytes != d.LastUpdate.Bytes {
		t.Fatalf("trace totals %+v != LastUpdate %+v", total, d.LastUpdate)
	}
}
