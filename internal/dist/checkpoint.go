// Shard-parallel checkpointing for the distributed rSLPA driver.
//
// Save runs a snapshot barrier over the engine: every worker serializes its
// own partition (adjacency shard, label matrix, pick provenance, in
// ascending vertex order) into a self-contained shard blob CONCURRENTLY,
// the blobs cross the transport to the master via the engine's Gather
// phase, and the master writes the sharded container of core's checkpoint
// format. Nothing is re-encoded centrally — the master only concatenates.
//
// Loading is the inverse with resharding: NewRSLPAFromCheckpoint replays
// every vertex record through the LOADING engine's Owner map, so a
// checkpoint saved at P=4 restores onto P=2 (or P=7, or a sequential
// detector via core's BuildState) with bit-identical state. Reverse records
// are rebuilt at whichever worker owns each pick's source, exactly where
// live propagation would have installed them.
package dist

import (
	"fmt"
	"io"
	"sort"

	"rslpa/internal/cluster"
	"rslpa/internal/core"
)

// Save checkpoints the distributed detector's full state to w. It is a
// BSP phase like any other: the engine's workers must be idle (no Propagate
// or Update in flight), and the snapshot barrier guarantees every shard is
// serialized from the same superstep-consistent state. The wire cost of
// shipping the shards to the master is recorded in LastCheckpoint.
func (d *RSLPA) Save(w io.Writer) error {
	if !d.run {
		return fmt.Errorf("dist: Save before Propagate")
	}
	before := d.eng.Stats()
	blobs, err := d.eng.Gather(func(worker int) ([]byte, error) {
		return core.EncodeShard(d.cfg.T, d.shardRecords(worker)), nil
	})
	if err != nil {
		return fmt.Errorf("dist: save: %w", err)
	}
	d.LastCheckpoint = d.eng.Stats().Sub(before)
	meta := core.CheckpointMeta{
		T:       d.cfg.T,
		Seed:    d.cfg.Seed,
		Epoch:   d.epoch,
		IDSpace: d.g.MaxVertexID(),
	}
	return core.WriteCheckpoint(w, meta, blobs)
}

// shardRecords snapshots one worker's owned vertices as checkpoint records
// in ascending vertex-ID order. Slices alias the shard's live arrays; the
// caller encodes them before the next mutating phase (which the Gather
// barrier guarantees).
func (d *RSLPA) shardRecords(worker int) []core.VertexRecord {
	sh := d.shards[worker]
	owned := append([]uint32(nil), sh.owned...)
	sort.Slice(owned, func(i, j int) bool { return owned[i] < owned[j] })
	recs := make([]core.VertexRecord, 0, len(owned))
	for _, v := range owned {
		recs = append(recs, core.VertexRecord{
			V:      v,
			Nbrs:   sh.adj[v],
			Labels: sh.labels[v][1:],
			Src:    sh.src[v][1:],
			Pos:    sh.pos[v][1:],
		})
	}
	return recs
}

// NewRSLPAFromCheckpoint restores a distributed driver from a decoded
// checkpoint, re-partitioning every vertex record through eng.Owner — the
// checkpoint's own shard count is irrelevant, which is what makes
// checkpoints portable across worker counts and transports. The returned
// driver has already propagated (epoch and label state come from the
// checkpoint) and accepts Update / postprocessing immediately.
func NewRSLPAFromCheckpoint(eng *cluster.Engine, c *core.Checkpoint) (*RSLPA, error) {
	if eng == nil {
		return nil, fmt.Errorf("dist: nil engine")
	}
	if err := c.Verify(); err != nil {
		return nil, err
	}
	g, err := c.BuildGraph()
	if err != nil {
		return nil, err
	}
	d := &RSLPA{
		eng:   eng,
		cfg:   core.Config{T: c.T, Seed: c.Seed},
		g:     g,
		epoch: c.Epoch,
		run:   true,
	}
	d.shards = make([]*shard, eng.Workers())
	for w := range d.shards {
		d.shards[w] = &shard{}
	}
	T := c.T
	c.Records(func(rec *core.VertexRecord) {
		sh := d.shards[eng.Owner(rec.V)]
		sh.addVertex(rec.V, T)
		sh.adj[rec.V] = append([]uint32(nil), rec.Nbrs...)
		copy(sh.labels[rec.V][1:], rec.Labels)
		copy(sh.src[rec.V][1:], rec.Src)
		copy(sh.pos[rec.V][1:], rec.Pos)
	})
	// Rebuild the reverse records at the owner of each pick's source — the
	// placement live propagation uses (records live where the source lives).
	c.Records(func(rec *core.VertexRecord) {
		for i := 0; i < T; i++ {
			sv := rec.Src[i]
			if sv < 0 {
				continue
			}
			sh := d.shards[eng.Owner(uint32(sv))]
			sh.growTo(uint32(sv))
			sh.recv[sv] = append(sh.recv[sv], core.Record{
				Pos: rec.Pos[i], Tar: rec.V, Iter: int32(i + 1),
			})
		}
	})
	// Keep per-round iteration order deterministic and independent of the
	// checkpoint's shard grouping.
	for _, sh := range d.shards {
		sort.Slice(sh.owned, func(i, j int) bool { return sh.owned[i] < sh.owned[j] })
	}
	return d, nil
}
