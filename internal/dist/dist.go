// Package dist executes the paper's algorithms on the partitioned BSP
// engine of internal/cluster — the distributed half of "On Efficiently
// Detecting Overlapping Communities over Distributed Dynamic Graphs".
//
// # Partitioning model
//
// Vertices are assigned to the engine's P workers by Engine.Owner. Each
// worker holds, for the vertices it owns, the adjacency lists, the label
// matrix, the (src, pos) pick provenance, and the reverse records; no state
// is shared between workers — everything a worker learns about a remote
// vertex arrives as a cluster.Message (a fixed header plus an optional
// packed payload), so the same drivers run unchanged over the in-memory and
// loopback-TCP transports.
//
// # BSP supersteps
//
// Every phase is a sequence of barrier-separated supersteps keyed on the
// engine's round number:
//
//   - rSLPA propagation (Algorithm 1) costs two rounds per iteration: each
//     owner draws its vertices' (src, pos) picks — a pure function of
//     (seed, vertex, iteration), see core.InitialPick — and sends one
//     request to the source's owner, which installs the reverse record and
//     replies with the label value: 2|V| messages per iteration, the
//     O(|V|)-vs-O(|E|) communication claim of Section III-A.
//   - SLPA propagation costs one round per iteration but one message per
//     directed edge (every speaker pushes one label to every neighbor):
//     2|E| messages per iteration.
//   - Incremental repair (Algorithm 2) applies the batch locally, repicks
//     affected slots with the shared core.RepickPlan rules, fixes the
//     record lists with drop/add messages, and then runs correction
//     propagation level-synchronously on a *sparse* schedule: every cascade
//     round piggybacks an all-reduce-min ballot ("the lowest level I still
//     have work at", cluster.EmitAllMin/ReduceAllMin), so all P workers
//     jump together from the level just finished to the next globally
//     dirty level and any run of idle levels costs zero rounds. A non-idle
//     level costs three rounds (dirty-mark ingestion + value request,
//     value reply, value install + cascade) — or a single fused round when
//     the ballots agree that every request at that level is owner-local.
//     Because the schedule visits the non-idle levels in increasing order
//     and a pick's position is always below its level, a level still only
//     reads labels that earlier levels have finalized — exactly the
//     invariant the sequential Update exploits, preserved under skipping.
//
// Because every random decision is a pure function of
// (seed, epoch, vertex, iteration) and the per-worker adjacency shards
// replay the identical mutation order as the sequential graph, the label
// matrices are bit-identical to internal/core's for any worker count, which
// the equivalence tests assert.
package dist

import (
	"rslpa/internal/cluster"
	"rslpa/internal/core"
)

// Message kinds; header operand (A, B) and payload meanings are per kind.
const (
	// kindPickReq asks the owner of src A for the label at position B, on
	// behalf of the vertex and iteration in payload [v, t].
	kindPickReq uint8 = iota + 1
	// kindPickRep delivers payload [label] for vertex A's slot B.
	kindPickRep
	// kindDropRec removes record {Pos: B, Tar: payload[0], Iter: payload[1]}
	// at source A.
	kindDropRec
	// kindAddRec appends record {Pos: B, Tar: payload[0], Iter: payload[1]}
	// at source A.
	kindAddRec
	// kindDirty marks vertex A's slot B for correction at level B
	// (header-only).
	kindDirty
	// kindSeqRLE ships vertex A's full label sequence, sorted and
	// run-length encoded: payload [label, count, label, count, ...] — the
	// exact histogram the weight computation consumes, in one message.
	kindSeqRLE
	// kindVMax moves one τ₂-reduce step up the aggregation tree: payload
	// [vertex, maxCount, ...] pairs of per-vertex maximum common-label
	// counts; header A piggybacks the sender's maximum count over ALL its
	// edges (the global-max reduce the selection fallback needs).
	kindVMax
	// kindThresh broadcasts the resolved weak threshold: payload holds the
	// float64 bits of τ₂ as [hi32, lo32].
	kindThresh
	// kindForest moves one forest-reduce step up the aggregation tree:
	// payload [u, v, count, ...] triples — the sender's component-boundary
	// union pairs (its maximum-spanning-forest edges over counts ≥ τ₂).
	kindForest
	// kindTau1 broadcasts the selected strong threshold: payload holds the
	// float64 bits of τ₁ as [hi32, lo32].
	kindTau1
	// kindAttach ships weak-attachment candidate edges (τ₂ ≤ w < τ₁) to
	// the master: payload [u, v, count, ...] triples.
	kindAttach
	// kindSpeak delivers one spoken label B to listener A (header-only).
	kindSpeak
	// kindAgree is one worker's sparse-Update schedule ballot (see
	// cluster.EmitAllMin): A is the lowest level the sender still has
	// correction work at, B is 1 when every request the sender knows of at
	// that level is owner-local (the level can run fused).
	kindAgree
)

// shard is one worker's slice of the rSLPA state: adjacency, label matrix,
// pick provenance, and reverse records for owned vertices only. All slices
// are globally indexed (index = vertex ID) with zero entries for vertices
// this worker does not own; that trades P× index memory for branch-free
// lookups, which is fine at the laptop scales this repo targets.
type shard struct {
	exists []bool
	adj    [][]uint32
	labels [][]uint32
	src    [][]int32
	pos    [][]int32
	recv   [][]core.Record
	owned  []uint32 // owned present vertices, the per-round iteration order
}

// growTo extends the per-vertex arrays to cover vertex ID v.
func (sh *shard) growTo(v uint32) {
	for int(v) >= len(sh.exists) {
		sh.exists = append(sh.exists, false)
		sh.adj = append(sh.adj, nil)
		sh.labels = append(sh.labels, nil)
		sh.src = append(sh.src, nil)
		sh.pos = append(sh.pos, nil)
		sh.recv = append(sh.recv, nil)
	}
}

// addVertex makes v present, allocating its label slots with the initial
// label l⁰_v = v and sentinel picks, mirroring core.State.initVertex.
func (sh *shard) addVertex(v uint32, T int) {
	sh.growTo(v)
	if sh.exists[v] {
		return
	}
	sh.exists[v] = true
	sh.owned = append(sh.owned, v)
	if sh.labels[v] == nil {
		labels := make([]uint32, T+1)
		srcs := make([]int32, T+1)
		poss := make([]int32, T+1)
		for i := range labels {
			labels[i] = v
			srcs[i] = -1
			poss[i] = -1
		}
		sh.labels[v] = labels
		sh.src[v] = srcs
		sh.pos[v] = poss
	}
}

// hasNbr reports whether u's adjacency (owned by this shard) contains v.
func (sh *shard) hasNbr(u, v uint32) bool {
	if int(u) >= len(sh.adj) {
		return false
	}
	for _, w := range sh.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// addNbr appends v to u's adjacency — the same append graph.Graph.AddEdge
// performs, so shard neighbor order tracks the sequential graph exactly
// (the category draws index into that order).
func (sh *shard) addNbr(u, v uint32) { sh.adj[u] = append(sh.adj[u], v) }

// removeNbr deletes v from u's adjacency by swap-removal, byte-for-byte the
// reordering graph.Graph.removeHalf applies.
func (sh *shard) removeNbr(u, v uint32) {
	list := sh.adj[u]
	for i, w := range list {
		if w == v {
			last := len(list) - 1
			list[i] = list[last]
			sh.adj[u] = list[:last]
			return
		}
	}
}

// dropRecord removes the record {pos, tar, iter} from source vertex src's
// list (no-op when absent), mirroring core.State.dropRecord.
func (sh *shard) dropRecord(src uint32, pos int32, tar uint32, iter int32) {
	list := sh.recv[src]
	for i, rec := range list {
		if rec.Pos == pos && rec.Tar == tar && rec.Iter == iter {
			last := len(list) - 1
			list[i] = list[last]
			sh.recv[src] = list[:last]
			return
		}
	}
}

// phaseStats charges an algorithm phase: Rounds counts the phase's logical
// supersteps (label-propagation iterations or correction levels), while
// Messages and Bytes are the engine's measured wire traffic for the phase.
func phaseStats(rounds int, delta cluster.Stats) cluster.Stats {
	return cluster.Stats{Rounds: int64(rounds), Messages: delta.Messages, Bytes: delta.Bytes}
}
