package rslpa_test

import (
	"bytes"
	"strings"
	"testing"

	"rslpa"
)

func TestDetectParallelMatchesSequential(t *testing.T) {
	g := twoBlocks()
	seq, err := rslpa.Detect(g, rslpa.Config{Seed: 7, T: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	par, err := rslpa.DetectParallel(g, rslpa.Config{Seed: 7, T: 40}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	g.ForEachVertex(func(v uint32) {
		a, b := seq.Labels(v), par.Labels(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d pos %d differs", v, i)
			}
		}
	})
}

func TestDetectParallelRejectsWorkers(t *testing.T) {
	if _, err := rslpa.DetectParallel(twoBlocks(), rslpa.Config{Workers: 4}, 2); err == nil {
		t.Fatal("Workers>1 accepted by DetectParallel")
	}
}

func TestSaveLoadDetector(t *testing.T) {
	g := twoBlocks()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 3, T: 30})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	det.Update([]rslpa.Edit{{Op: rslpa.Insert, U: 2, V: 107}})

	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := rslpa.LoadDetector(&buf, rslpa.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	// The restored detector continues incremental maintenance.
	if _, err := restored.Update([]rslpa.Edit{{Op: rslpa.Delete, U: 2, V: 107}}); err != nil {
		t.Fatal(err)
	}
	r1, err := restored.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Communities.Len() < 2 {
		t.Fatal("restored detector lost the communities")
	}
}

func TestSaveLoadDistributedDetector(t *testing.T) {
	det, err := rslpa.Detect(twoBlocks(), rslpa.Config{Seed: 1, T: 10, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatalf("distributed Save: %v", err)
	}
	restored, err := rslpa.LoadDetector(&buf, rslpa.Config{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	want, err := det.Communities()
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Communities()
	if err != nil {
		t.Fatal(err)
	}
	if !got.Communities.Equal(want.Communities) {
		t.Fatal("restored distributed detector lost the communities")
	}
}

func TestLoadDetectorRejectsUnknownVersion(t *testing.T) {
	_, err := rslpa.LoadDetector(strings.NewReader("RSLPA9\nxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"), rslpa.Config{})
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("unknown magic: got %v, want explicit version error", err)
	}
}

func TestLoadDetectorRejectsGarbage(t *testing.T) {
	if _, err := rslpa.LoadDetector(strings.NewReader("not a checkpoint"), rslpa.Config{}); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadWeightedEdgeListFacade(t *testing.T) {
	g, err := rslpa.ReadWeightedEdgeList(strings.NewReader("1 2 0.9\n2 3 0.1\n"), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestOmegaAndF1Facade(t *testing.T) {
	g := twoBlocks()
	det, err := rslpa.Detect(g, rslpa.Config{Seed: 2, T: 40})
	if err != nil {
		t.Fatal(err)
	}
	defer det.Close()
	res, err := det.Communities()
	if err != nil {
		t.Fatal(err)
	}
	c := res.Communities
	if got := rslpa.Omega(c, c, g.NumVertices()); got < 0.999 {
		t.Fatalf("self-omega = %v", got)
	}
	if got := rslpa.AverageF1(c, c); got != 1 {
		t.Fatalf("self-F1 = %v", got)
	}
}
